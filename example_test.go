package memsched_test

import (
	"context"
	"fmt"
	"log"

	"memsched"
)

// ExampleMixByName shows catalog lookups: Table 3 workloads resolve to the
// Table 2 applications they schedule.
func ExampleMixByName() {
	mix, err := memsched.MixByName("4MEM-1")
	if err != nil {
		log.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range apps {
		fmt.Printf("core %d: %s (%v, paper ME %.0f)\n", i, a.Name, a.Class, a.PaperME)
	}
	// Output:
	// core 0: wupwise (MEM, paper ME 15)
	// core 1: swim (MEM, paper ME 2)
	// core 2: mgrid (MEM, paper ME 4)
	// core 3: applu (MEM, paper ME 1)
}

// ExampleAppByCode resolves a Table 2 code letter.
func ExampleAppByCode() {
	app, err := memsched.AppByCode('k')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(app.Name, app.Class)
	// Output:
	// mcf MEM
}

// ExampleSMTSpeedup computes the paper's throughput metric.
func ExampleSMTSpeedup() {
	multi := []float64{0.5, 1.0}  // IPCs under sharing
	single := []float64{1.0, 2.0} // IPCs alone
	sp, err := memsched.SMTSpeedup(multi, single)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", sp)
	// Output:
	// 1.0
}

// ExampleUnfairness computes max slowdown over min slowdown.
func ExampleUnfairness() {
	multi := []float64{0.5, 2.0}
	single := []float64{1.0, 2.0}
	u, err := memsched.Unfairness(multi, single)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", u)
	// Output:
	// 2.0
}

// ExampleRun runs a workload under the paper's scheduler via the
// context-aware RunSpec API. The context makes the simulation cancellable
// mid-run (hook it to signal.NotifyContext in a real tool). Output depends
// on the simulator model, so this example is compiled but not verified.
func ExampleRun() {
	mix, err := memsched.MixByName("2MEM-1")
	if err != nil {
		log.Fatal(err)
	}
	res, err := memsched.Run(context.Background(), memsched.RunSpec{
		Mix:    mix,
		Policy: "me-lreq",
		Instr:  50_000,
		Seed:   memsched.EvalSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cores {
		fmt.Printf("%s: IPC %.3f, %d DRAM reads\n", c.App, c.IPC, c.MemReads)
	}
}

// ExampleProfileAppContext measures memory efficiency (Equation 1).
func ExampleProfileAppContext() {
	app, err := memsched.AppByName("swim")
	if err != nil {
		log.Fatal(err)
	}
	p, err := memsched.ProfileAppContext(context.Background(), app, 50_000, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC=%.2f BW=%.1f GB/s ME=%.3f\n", p.IPC, p.BWGBs, p.ME)
}

// ExampleNewSystem builds a machine explicitly, with a custom configuration.
func ExampleNewSystem() {
	apps := []memsched.App{}
	for _, name := range []string{"mcf", "gzip"} {
		a, err := memsched.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, a)
	}
	cfg := memsched.DefaultConfig(len(apps))
	cfg.Memory.Channels = 1 // halve the memory system
	sys, err := memsched.NewSystem(memsched.Options{
		Config: &cfg,
		Policy: "lreq",
		Apps:   apps,
		Seed:   memsched.EvalSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(50_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %d cycles\n", res.TotalCycles)
}

// Command sweepd runs the distributed sweep service (package sweepd): a
// coordinator that accepts RunSpec matrices over the versioned /v1/ HTTP API
// and shards them to worker processes, fronted by a content-addressed result
// cache so repeated or overlapping sweeps are nearly free.
//
// Usage:
//
//	sweepd serve  -addr :7023 -cache sweepd.cache.json
//	sweepd worker -addr localhost:7023 -parallel 4
//	sweep -remote localhost:7023 -knob buffer -values 32,64,128
//
// serve starts the coordinator. Jobs are leased to workers and re-queued if
// a worker stops heartbeating (crash recovery); results are cached by spec
// fingerprint in -cache, which survives restarts.
//
// worker starts a claim/execute/complete loop against a coordinator. A
// worker is stateless: kill it at any time and its in-flight jobs return to
// the queue after the lease TTL. -parallel sets concurrent job slots,
// -simparallel the intra-run parallelism over simulated cores — both mean
// exactly what they mean on cmd/sweep and cmd/experiments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"memsched/internal/cliflags"
	"memsched/internal/sweepd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "worker":
		err = worker(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `sweepd runs the distributed sweep service.

  sweepd serve  [flags]   start a coordinator
  sweepd worker [flags]   start a worker against a coordinator

Run "sweepd serve -h" or "sweepd worker -h" for flags.
`)
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("sweepd serve", flag.ExitOnError)
	addr := fs.String("addr", ":7023", "listen address")
	cache := fs.String("cache", "", "content-addressed result cache file (\"\" = in-memory only)")
	lease := fs.Duration("lease", 30*time.Second, "job lease TTL: a worker silent this long forfeits its job")
	maxAttempts := fs.Int("maxattempts", 5, "lease expiries before a job is failed permanently")
	fs.Parse(args)

	coord, err := sweepd.NewCoordinator(sweepd.CoordinatorConfig{
		CachePath:   *cache,
		LeaseTTL:    *lease,
		MaxAttempts: *maxAttempts,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logf("sweepd: coordinator listening on %s (cache %q, lease %s)", *addr, *cache, *lease)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func worker(args []string) error {
	fs := flag.NewFlagSet("sweepd worker", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7023", "coordinator address")
	name := fs.String("name", "", "worker name in outcomes and logs (\"\" = hostname-pid)")
	parallel := cliflags.Parallel(fs)
	simPar := cliflags.SimParallel(fs)
	timeout := cliflags.Timeout(fs)
	progress := cliflags.Progress(fs)
	poll := fs.Duration("poll", 500*time.Millisecond, "idle wait between claim attempts")
	fs.Parse(args)

	slots := *parallel
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wlogf func(string, ...any)
	if *progress > 0 {
		wlogf = logf
	}
	logf("sweepd: worker %q: %d slots against %s", *name, slots, *addr)
	return sweepd.RunWorker(ctx, sweepd.WorkerOptions{
		Coordinator:   *addr,
		Name:          *name,
		Slots:         slots,
		ParallelCores: *simPar,
		JobTimeout:    *timeout,
		Poll:          *poll,
		Logf:          wlogf,
	})
}

// Command sweepd runs the distributed sweep service (package sweepd): a
// coordinator that accepts RunSpec matrices over the versioned /v1/ HTTP API
// and shards them to worker processes, fronted by a content-addressed result
// cache so repeated or overlapping sweeps are nearly free.
//
// Usage:
//
//	sweepd serve    -addr :7023 -cache sweepd.cache.json -shards 8
//	sweepd worker   -addr localhost:7023 -minprocs 1 -maxprocs 4 -batch 16
//	sweepd loadtest -jobs 5000 -batch 32
//	sweep -remote localhost:7023 -knob buffer -values 32,64,128
//
// serve starts the coordinator. Jobs are leased to workers and re-queued if
// a worker stops heartbeating (crash recovery); results are cached by spec
// fingerprint in -cache, which survives restarts. State is split across
// -shards independent shards so concurrent submits, claims, and completes
// rarely contend; -debugaddr exposes pprof and expvar counters on a separate
// listener.
//
// worker starts a claim/execute/complete loop against a coordinator. A
// worker is stateless: kill it at any time and its in-flight jobs return to
// the queue after the lease TTL. The executor pool autoscales between
// -minprocs and -maxprocs from the queue-depth hint on every claim response;
// -batch bounds how many leases ride one claim round trip. -simparallel sets
// the intra-run parallelism over simulated cores, exactly as on cmd/sweep
// and cmd/experiments.
//
// loadtest stands up an in-process coordinator (no listener) and pushes
// -jobs tiny jobs through the full submit → claim → complete → aggregate
// pipeline with stub executors, printing jobs/sec and claim latency
// percentiles — the quick way to size -batch and -shards for a deployment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"memsched/internal/cliflags"
	"memsched/internal/sweepd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "worker":
		err = worker(os.Args[2:])
	case "loadtest":
		err = loadtest(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `sweepd runs the distributed sweep service.

  sweepd serve    [flags]   start a coordinator
  sweepd worker   [flags]   start a worker against a coordinator
  sweepd loadtest [flags]   measure service throughput in-process

Run "sweepd <subcommand> -h" for flags.
`)
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("sweepd serve", flag.ExitOnError)
	addr := fs.String("addr", ":7023", "listen address")
	cache := fs.String("cache", "", "content-addressed result cache file (\"\" = in-memory only)")
	shards := fs.Int("shards", sweepd.DefaultShards, "independent state shards (queue, leases, cache)")
	lease := fs.Duration("lease", 30*time.Second, "job lease TTL: a worker silent this long forfeits its job")
	maxAttempts := fs.Int("maxattempts", 5, "lease expiries before a job is failed permanently")
	debugAddr := fs.String("debugaddr", "", "pprof/expvar debug listen address (\"\" = disabled)")
	fs.Parse(args)

	coord, err := sweepd.NewCoordinator(sweepd.CoordinatorConfig{
		CachePath:   *cache,
		Shards:      *shards,
		LeaseTTL:    *lease,
		MaxAttempts: *maxAttempts,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: coord.DebugHandler()}
		go func() { errCh <- dbg.ListenAndServe() }()
		defer dbg.Close()
		logf("sweepd: debug endpoints (pprof, expvar) on %s", *debugAddr)
	}
	logf("sweepd: coordinator listening on %s (cache %q, %d shards, lease %s)",
		*addr, *cache, *shards, *lease)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func worker(args []string) error {
	fs := flag.NewFlagSet("sweepd worker", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7023", "coordinator address")
	name := fs.String("name", "", "worker name in outcomes and logs (\"\" = hostname-pid)")
	minProcs := fs.Int("minprocs", 1, "executor pool floor")
	maxProcs := fs.Int("maxprocs", 0, "executor pool ceiling (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "max leases per claim round trip (0 = pool ceiling, 1 = single-job wire forms)")
	parallel := cliflags.Parallel(fs)
	simPar := cliflags.SimParallel(fs)
	timeout := cliflags.Timeout(fs)
	progress := cliflags.Progress(fs)
	poll := fs.Duration("poll", 500*time.Millisecond, "idle wait between claim attempts")
	fs.Parse(args)

	if *maxProcs <= 0 {
		// Legacy -parallel pins a fixed pool; otherwise scale up to the host.
		if *parallel > 0 {
			*maxProcs = *parallel
		} else {
			*maxProcs = runtime.GOMAXPROCS(0)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wlogf func(string, ...any)
	if *progress > 0 {
		wlogf = logf
	}
	logf("sweepd: worker %q: %d-%d procs, batch %d, against %s",
		*name, *minProcs, *maxProcs, *batch, *addr)
	return sweepd.RunWorker(ctx, sweepd.WorkerOptions{
		Coordinator:   *addr,
		Name:          *name,
		MinProcs:      *minProcs,
		MaxProcs:      *maxProcs,
		Batch:         *batch,
		ParallelCores: *simPar,
		JobTimeout:    *timeout,
		Poll:          *poll,
		Logf:          wlogf,
	})
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("sweepd loadtest", flag.ExitOnError)
	jobs := fs.Int("jobs", 5000, "total tiny jobs to push through the service")
	sweepSize := fs.Int("sweepsize", 250, "jobs per submitted sweep")
	workers := fs.Int("workers", 2, "concurrent claiming worker loops")
	batch := fs.Int("batch", 32, "claim/complete batch width (1 = single-job wire forms)")
	shards := fs.Int("shards", sweepd.DefaultShards, "coordinator state shards")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := sweepd.LoadTest(ctx, sweepd.LoadOptions{
		Jobs:      *jobs,
		SweepSize: *sweepSize,
		Workers:   *workers,
		Batch:     *batch,
		Shards:    *shards,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

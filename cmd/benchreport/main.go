// Command benchreport runs the repository's benchmark suite and maintains
// machine-readable performance snapshots, so controller-path optimizations
// are measured instead of asserted and regressions fail loudly.
//
// Each run executes `go test -bench` with -benchmem, parses the standard
// benchmark output, and writes results/BENCH_<date>.json recording ns/op,
// B/op, allocs/op, and any custom metrics per benchmark. The new numbers are
// compared against the most recent earlier snapshot (or an explicit
// -baseline); a benchmark whose ns/op or allocs/op grew by more than
// -tolerance counts as a regression. Custom metrics (speedups, jobs/sec) are
// shown as old -> new deltas under each benchmark's row but are never gated —
// their meaning and direction-of-good vary per benchmark.
//
// Usage:
//
//	benchreport                          # run, snapshot, compare vs previous
//	benchreport -check                   # compare only, exit 1 on regression
//	benchreport -bench Fig2 -count 3     # restrict and repeat (min is kept)
//	benchreport -baseline results/BENCH_2026-08-06.json -tolerance 0.1
//
// Snapshots are written to -dir (default results/) and are meant to be
// committed: the checked-in snapshot is the baseline the next change is
// judged against. Wall-clock tolerances must absorb machine and load
// variance; allocs/op is deterministic and uses the same threshold only for
// slack on rounding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

var (
	benchFlag     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	pkgsFlag      = flag.String("pkgs", ".", "comma-separated packages to benchmark")
	benchtimeFlag = flag.String("benchtime", "1x", "go test -benchtime value")
	countFlag     = flag.Int("count", 1, "go test -count; the minimum ns/op across repeats is recorded")
	dirFlag       = flag.String("dir", "results", "directory snapshots are written to and discovered in")
	baselineFlag  = flag.String("baseline", "", "snapshot to compare against (default: newest BENCH_*.json in -dir)")
	tolFlag       = flag.Float64("tolerance", 0.20, "allowed fractional growth in ns/op and allocs/op before failing")
	allocTolFlag  = flag.Float64("alloctolerance", -1, "allowed fractional growth in allocs/op (-1 = use -tolerance); allocs are deterministic, so tight bounds like 0.01 make zero-perturbation guards real")
	checkFlag     = flag.Bool("check", false, "compare against the baseline without writing a new snapshot; exit 1 on regression")
	verboseFlag   = flag.Bool("v", false, "echo the raw go test output")
)

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the on-disk BENCH_<date>.json document. GOMAXPROCS and NumCPU
// record the host parallelism the numbers were taken under: benchmarks with an
// intra-run parallel arm (BenchmarkParallelScaling) are only comparable
// between snapshots taken at similar widths.
type Snapshot struct {
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs,omitempty"`
	NumCPU     int                    `json:"num_cpu,omitempty"`
	Benchtime  string                 `json:"benchtime"`
	Count      int                    `json:"count"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run() error {
	cur, err := runBenchmarks()
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks matched %q in %s", *benchFlag, *pkgsFlag)
	}

	basePath := *baselineFlag
	if basePath == "" {
		basePath = newestSnapshot(*dirFlag)
	}
	regressions := 0
	if basePath != "" {
		base, err := readSnapshot(basePath)
		if err != nil {
			return err
		}
		regressions = compare(base, cur, basePath)
	} else {
		fmt.Printf("no baseline snapshot in %s; nothing to compare against\n", *dirFlag)
	}

	if !*checkFlag {
		out := filepath.Join(*dirFlag, "BENCH_"+cur.Date+".json")
		if err := writeSnapshot(out, cur); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(cur.Benchmarks))
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance %.0f%%", regressions, *tolFlag*100)
	}
	return nil
}

// runBenchmarks shells out to go test and parses its output.
func runBenchmarks() (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", *benchFlag, "-benchmem",
		"-benchtime", *benchtimeFlag, "-count", strconv.Itoa(*countFlag)}
	args = append(args, strings.Split(*pkgsFlag, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if *verboseFlag {
		os.Stdout.Write(out)
	}
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	snap := &Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchtime:  *benchtimeFlag,
		Count:      *countFlag,
		Benchmarks: map[string]Measurement{},
	}
	for _, line := range strings.Split(string(out), "\n") {
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := snap.Benchmarks[name]; seen {
			// Repeats (-count > 1): keep the least-noise observation per axis.
			m = minMeasurement(prev, m)
		}
		snap.Benchmarks[name] = m
	}
	return snap, nil
}

// gomaxprocsSuffix strips the trailing -<N> go test appends to benchmark
// names, so snapshots compare across machines with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseBenchLine(line string) (string, Measurement, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Measurement{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(f[0], "")
	m := Measurement{}
	// f[1] is the iteration count; the rest are value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Measurement{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = v
		}
	}
	return name, m, m.NsPerOp > 0
}

func minMeasurement(a, b Measurement) Measurement {
	out := a
	// Custom metrics (speedups, jobs/sec, skip ratios) are not noise floors to
	// minimize — they belong to a particular run. Keep the set from the repeat
	// with the lower wall clock, the least-perturbed observation.
	if b.NsPerOp < a.NsPerOp {
		out.Metrics = b.Metrics
	}
	if b.NsPerOp < out.NsPerOp {
		out.NsPerOp = b.NsPerOp
	}
	if b.BytesPerOp < out.BytesPerOp {
		out.BytesPerOp = b.BytesPerOp
	}
	if b.AllocsPerOp < out.AllocsPerOp {
		out.AllocsPerOp = b.AllocsPerOp
	}
	return out
}

// newestSnapshot returns the lexically greatest BENCH_*.json in dir (the date
// format sorts chronologically), or "" when none exists.
func newestSnapshot(dir string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	sort.Strings(matches)
	if len(matches) == 0 {
		return ""
	}
	return matches[len(matches)-1]
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints a per-benchmark delta table and returns how many benchmarks
// regressed beyond the tolerance.
func compare(base, cur *Snapshot, basePath string) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("comparing against %s (tolerance %.0f%%)\n", basePath, *tolFlag*100)
	regressions := 0
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		timeRatio := c.NsPerOp / b.NsPerOp
		status := "ok"
		switch {
		case timeRatio > 1+*tolFlag:
			status = "REGRESSION"
			regressions++
		case timeRatio < 1/(1+*tolFlag):
			status = "improved"
		}
		// Allocation counts are deterministic; growth beyond slack is a
		// regression even when wall clock is inside tolerance. -alloctolerance
		// tightens this independently of the wall-clock tolerance (the +1
		// absolute slack covers go test's rounding of large counts).
		allocTol := *allocTolFlag
		if allocTol < 0 {
			allocTol = *tolFlag
		}
		if c.AllocsPerOp > b.AllocsPerOp*(1+allocTol)+1 {
			if status != "REGRESSION" {
				regressions++
			}
			status = "REGRESSION(allocs)"
		}
		fmt.Printf("  %-36s %12.0f -> %12.0f ns/op (%+.1f%%)  %8.0f -> %8.0f allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, (timeRatio-1)*100, b.AllocsPerOp, c.AllocsPerOp, status)
		// Custom metrics travel informationally: they are the scientific
		// payload (speedups, jobs/sec), not regression-gated axes — their
		// meaning and direction-of-good vary per benchmark.
		units := make([]string, 0, len(c.Metrics))
		for unit := range c.Metrics {
			if _, ok := b.Metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := b.Metrics[unit], c.Metrics[unit]
			line := fmt.Sprintf("    %-34s %12.4g -> %12.4g %s", "", ov, nv, unit)
			if ov != 0 {
				line += fmt.Sprintf(" (%+.1f%%)", (nv/ov-1)*100)
			}
			fmt.Println(line)
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("  %-36s new benchmark (no baseline)\n", name)
		}
	}
	return regressions
}

// Command tracegen records, inspects, and replays instruction traces.
//
// The simulator normally drives cores with live synthetic generators;
// tracegen freezes a generator's output into the compact binary trace format
// of internal/trace, so slices can be archived, diffed across versions, or
// replayed bit-exactly.
//
// Usage:
//
//	tracegen -app swim -n 1000000 -o swim.trace       # record
//	tracegen -stats swim.trace                        # inspect
//	tracegen -replay swim.trace -policy me-lreq       # simulate from a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"memsched/internal/report"
	"memsched/internal/sim"
	"memsched/internal/trace"
	"memsched/internal/workload"
)

var (
	appFlag    = flag.String("app", "", "application to record (Table 2 name, e.g. swim)")
	nFlag      = flag.Uint64("n", 1_000_000, "instructions to record")
	outFlag    = flag.String("o", "", "output trace file")
	seedFlag   = flag.Uint64("seed", uint64(sim.ProfileSeed), "generator seed")
	statsFlag  = flag.String("stats", "", "trace file to summarize")
	replayFlag = flag.String("replay", "", "trace file to replay on a single core")
	policyFlag = flag.String("policy", "hf-rf", "policy for -replay")
	instrFlag  = flag.Uint64("instr", 200_000, "instructions to simulate for -replay")
)

func main() {
	flag.Parse()
	var err error
	switch {
	case *statsFlag != "":
		err = statsCmd(*statsFlag)
	case *replayFlag != "":
		err = replayCmd(*replayFlag)
	case *appFlag != "" && *outFlag != "":
		err = recordCmd(*appFlag, *outFlag, *nFlag, *seedFlag)
	default:
		err = fmt.Errorf("need -app/-o to record, -stats to inspect, or -replay to simulate")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func recordCmd(appName, out string, n, seed uint64) error {
	app, err := workload.ByName(appName)
	if err != nil {
		return err
	}
	gen, err := trace.NewSynthetic(app.Params, 0, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	var ins trace.Instr
	for i := uint64(0); i < n; i++ {
		gen.Next(&ins)
		if err := w.Write(&ins); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f bits/instr)\n",
		n, appName, out, info.Size(), float64(info.Size()*8)/float64(n))
	return nil
}

func statsCmd(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	counts := map[trace.Kind]uint64{}
	deps := uint64(0)
	lines := map[uint64]struct{}{}
	var ins trace.Instr
	for {
		if err := r.Read(&ins); err != nil {
			break
		}
		counts[ins.Kind]++
		if ins.DepOnLoad {
			deps++
		}
		if ins.Kind.IsMem() {
			lines[ins.Line] = struct{}{}
		}
	}
	total := r.Count()
	t := report.NewTable(fmt.Sprintf("%s: %d instructions", path, total), "metric", "value", "share")
	for k := trace.KindInt; k <= trace.KindStore; k++ {
		t.AddRow(k.String(), fmt.Sprint(counts[k]),
			fmt.Sprintf("%.1f%%", 100*float64(counts[k])/float64(total)))
	}
	t.AddRow("load-dependent", fmt.Sprint(deps),
		fmt.Sprintf("%.1f%%", 100*float64(deps)/float64(total)))
	t.AddRow("distinct lines", fmt.Sprint(len(lines)), "")
	return t.WriteText(os.Stdout)
}

func replayCmd(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	looper, err := trace.NewLooper(f)
	if err != nil {
		return err
	}
	// Replay traces carry no app identity; use a neutral profile for
	// metadata (the generator is overridden anyway).
	app, err := workload.ByName("swim")
	if err != nil {
		return err
	}
	app.Name = path
	sys, err := sim.New(sim.Options{
		Policy:     *policyFlag,
		Apps:       []workload.App{app},
		Generators: []trace.Generator{looper},
		Seed:       sim.EvalSeed,
	})
	if err != nil {
		return err
	}
	res, err := sys.Run(*instrFlag, 0)
	if err != nil {
		return err
	}
	c := res.Cores[0]
	fmt.Printf("replayed %s under %s: IPC=%.3f read latency=%.0f cycles BW=%.2f GB/s (loop of %d instructions)\n",
		path, res.Policy, c.IPC, c.AvgReadLatency, c.BandwidthGBs, looper.Len())
	return nil
}

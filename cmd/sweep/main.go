// Command sweep explores the memory-system design space: it runs one
// workload under one policy across a sweep of a single configuration knob
// and reports how the paper's metrics move.
//
// Usage:
//
//	sweep -mix 4MEM-1 -knob channels -values 1,2,4
//	sweep -mix 8MEM-4 -policy lreq -knob buffer -values 16,32,64,128
//	sweep -knobs                       # list sweepable knobs
//
// Knobs: channels, banks, buffer, prioritybits, drainhigh, rowpolicy,
// prefetch, refresh, l2mb, robsize, lqsize.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"memsched/internal/config"
	"memsched/internal/lab"
	"memsched/internal/metrics"
	"memsched/internal/prof"
	"memsched/internal/report"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

var (
	mixFlag    = flag.String("mix", "4MEM-1", "Table 3 workload to sweep")
	policyFlag = flag.String("policy", "me-lreq", "scheduling policy")
	knobFlag   = flag.String("knob", "", "configuration knob to sweep")
	valuesFlag = flag.String("values", "", "comma-separated knob values")
	instrFlag  = flag.Uint64("instr", 150_000, "instructions per core")
	seedFlag   = flag.Uint64("seed", sim.EvalSeed, "evaluation seed")
	listFlag   = flag.Bool("knobs", false, "list sweepable knobs and exit")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

// knob applies one string-encoded value to a configuration.
type knob struct {
	describe string
	apply    func(*config.Config, string) error
}

func intKnob(describe string, set func(*config.Config, int)) knob {
	return knob{describe: describe, apply: func(c *config.Config, s string) error {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("%q is not an integer", s)
		}
		set(c, v)
		return nil
	}}
}

func boolKnob(describe string, set func(*config.Config, bool)) knob {
	return knob{describe: describe, apply: func(c *config.Config, s string) error {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("%q is not a boolean", s)
		}
		set(c, v)
		return nil
	}}
}

var knobs = map[string]knob{
	"channels": intKnob("logic memory channels",
		func(c *config.Config, v int) { c.Memory.Channels = v }),
	"banks": intKnob("banks per rank",
		func(c *config.Config, v int) { c.Memory.BanksPerRank = v }),
	"buffer": intKnob("controller read+write buffer entries",
		func(c *config.Config, v int) { c.Memory.ReadQueueCap = v; c.Memory.WriteQueueCap = v }),
	"prioritybits": intKnob("priority-table entry width (0 = exact)",
		func(c *config.Config, v int) { c.Memory.PriorityBits = v }),
	"robsize": intKnob("reorder buffer entries per core",
		func(c *config.Config, v int) { c.Core.ROBSize = v }),
	"lqsize": intKnob("load queue entries per core",
		func(c *config.Config, v int) { c.Core.LQSize = v }),
	"l2mb": intKnob("shared L2 capacity in MiB",
		func(c *config.Config, v int) { c.L2.SizeBytes = v << 20 }),
	"prefetch": boolKnob("L2 next-line stream prefetcher",
		func(c *config.Config, v bool) { c.L2StreamPrefetch = v }),
	"refresh": boolKnob("DDR2 auto-refresh",
		func(c *config.Config, v bool) {
			if v {
				c.Memory.EnableRefresh()
			}
		}),
	"drainhigh": {describe: "write-drain high watermark (low = half of it)",
		apply: func(c *config.Config, s string) error {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("%q is not a float", s)
			}
			c.Memory.DrainHigh = v
			c.Memory.DrainLow = v / 2
			return nil
		}},
	"rowpolicy": {describe: "row policy: close-hit-aware | open | close-strict",
		apply: func(c *config.Config, s string) error {
			switch s {
			case "close-hit-aware":
				c.Memory.RowPolicy = config.ClosePageHitAware
			case "open":
				c.Memory.RowPolicy = config.OpenPage
			case "close-strict":
				c.Memory.RowPolicy = config.ClosePageStrict
			default:
				return fmt.Errorf("unknown row policy %q", s)
			}
			return nil
		}},
}

func main() {
	flag.Parse()
	if *listFlag {
		names := make([]string, 0, len(knobs))
		for n := range knobs {
			names = append(names, n)
		}
		sort.Strings(names)
		t := report.NewTable("Sweepable knobs", "knob", "meaning")
		for _, n := range names {
			t.AddRow(n, knobs[n].describe)
		}
		t.WriteText(os.Stdout)
		return
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	k, ok := knobs[*knobFlag]
	if !ok {
		return fmt.Errorf("unknown knob %q (try -knobs)", *knobFlag)
	}
	if *valuesFlag == "" {
		return fmt.Errorf("-values is required")
	}
	mix, err := workload.MixByName(*mixFlag)
	if err != nil {
		return err
	}
	apps, err := mix.Apps()
	if err != nil {
		return err
	}

	// Profiling and single-core references are knob-independent (they use
	// the default machine, as the paper's methodology does).
	l := lab.New(lab.Options{Instr: *instrFlag, ProfInstr: *instrFlag, Seed: *seedFlag})
	mes, singles, err := l.MixVectors(mix)
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("sweep of %s on %s under %s (%s)", *knobFlag, mix.Name, *policyFlag, k.describe),
		*knobFlag, "SMT speedup", "unfairness", "read lat", "p95 lat", "bus util", "row hits")
	chart := report.NewChart("", 36)
	for _, raw := range strings.Split(*valuesFlag, ",") {
		raw = strings.TrimSpace(raw)
		cfg := config.Default(len(apps))
		if err := k.apply(&cfg, raw); err != nil {
			return err
		}
		sys, err := sim.New(sim.Options{Config: &cfg, Policy: *policyFlag,
			Apps: apps, ME: mes, Seed: *seedFlag})
		if err != nil {
			return err
		}
		res, err := sys.Run(*instrFlag, 0)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", *knobFlag, raw, err)
		}
		sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			return err
		}
		u, err := metrics.Unfairness(res.IPCs(), singles)
		if err != nil {
			return err
		}
		var p95 int64
		for _, c := range res.Cores {
			if c.P95ReadLatency > p95 {
				p95 = c.P95ReadLatency
			}
		}
		t.AddRow(raw,
			fmt.Sprintf("%.3f", sp),
			fmt.Sprintf("%.3f", u),
			fmt.Sprintf("%.0f", res.AvgReadLatency),
			fmt.Sprintf("<%d", p95),
			fmt.Sprintf("%.1f%%", 100*res.BusUtilization),
			fmt.Sprintf("%.1f%%", 100*res.DRAM.HitRate()))
		chart.Add(fmt.Sprintf("%s=%s", *knobFlag, raw), sp)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return chart.WriteText(os.Stdout)
}

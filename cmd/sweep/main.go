// Command sweep explores the memory-system design space: it runs one
// workload under one policy across a sweep of a single configuration knob
// and reports how the paper's metrics move.
//
// Usage:
//
//	sweep -mix 4MEM-1 -knob channels -values 1,2,4
//	sweep -mix 8MEM-4 -policy lreq -knob buffer -values 16,32,64,128
//	sweep -mix 8MIX-2 -knob banks -values 4,8,16 -parallel 4
//	sweep -knob channels -values 1,2,4 -resume sweep.ckpt.json
//	sweep -knobs                       # list sweepable knobs
//
// Knobs: channels, banks, buffer, prioritybits, drainhigh, rowpolicy,
// prefetch, refresh, l2mb, robsize, lqsize.
//
// With -telemetry DIR each point additionally records epoch-sampled telemetry
// (package telemetry) and exports CSV/JSON/Chrome-trace files under
// DIR/<knob>=<value>; -epoch sets the sampling window in cycles.
//
// The knob values run on internal/runner's worker pool: -parallel sets the
// pool width (output is identical for every width, 1 included), -resume names
// a JSON checkpoint that persists completed points and lets an interrupted
// sweep pick up where it stopped, and Ctrl-C cancels mid-simulation.
// -simparallel additionally shards each run's simulated cores across worker
// goroutines (0 = auto, 1 = serial, >1 = forced width); output is identical
// either way.
//
// With -remote ADDR the matrix is not simulated locally: it is submitted to a
// sweepd coordinator (see cmd/sweepd), which shards the points across worker
// processes and serves repeated points from its content-addressed result
// cache. Profiling still runs locally (it feeds the job specs), progress
// streams live from the coordinator, and the printed table is identical to a
// local run of the same matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"memsched/internal/cliflags"
	"memsched/internal/config"
	"memsched/internal/lab"
	"memsched/internal/metrics"
	"memsched/internal/prof"
	"memsched/internal/report"
	"memsched/internal/runner"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/sweepd"
	"memsched/internal/telemetry"
	"memsched/internal/workload"
)

var (
	mixFlag    = flag.String("mix", "4MEM-1", "Table 3 workload to sweep")
	policyFlag = flag.String("policy", "me-lreq", "scheduling policy")
	knobFlag   = flag.String("knob", "", "configuration knob to sweep")
	valuesFlag = flag.String("values", "", "comma-separated knob values")
	instrFlag  = flag.Uint64("instr", 150_000, "instructions per core")
	seedFlag   = flag.Uint64("seed", sim.EvalSeed, "evaluation seed")
	listFlag   = flag.Bool("knobs", false, "list sweepable knobs and exit")
	parallel   = cliflags.Parallel(flag.CommandLine)
	simPar     = cliflags.SimParallel(flag.CommandLine)
	resumeFlag = cliflags.Resume(flag.CommandLine)
	progress   = cliflags.Progress(flag.CommandLine)
	timeoutFlg = cliflags.Timeout(flag.CommandLine)
	remoteFlag = flag.String("remote", "", "submit the sweep to a sweepd coordinator at this address instead of running locally")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
	telemDir   = flag.String("telemetry", "", "directory for per-point telemetry exports (CSV/JSON/trace-event under DIR/<knob>=<value>)")
	epochFlag  = flag.Int64("epoch", 0, "telemetry sampling epoch in cycles (0 = default)")
)

// knob applies one string-encoded value to a configuration.
type knob struct {
	describe string
	apply    func(*config.Config, string) error
}

func intKnob(describe string, set func(*config.Config, int)) knob {
	return knob{describe: describe, apply: func(c *config.Config, s string) error {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("%q is not an integer", s)
		}
		set(c, v)
		return nil
	}}
}

func boolKnob(describe string, set func(*config.Config, bool)) knob {
	return knob{describe: describe, apply: func(c *config.Config, s string) error {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("%q is not a boolean", s)
		}
		set(c, v)
		return nil
	}}
}

var knobs = map[string]knob{
	"channels": intKnob("logic memory channels",
		func(c *config.Config, v int) { c.Memory.Channels = v }),
	"banks": intKnob("banks per rank",
		func(c *config.Config, v int) { c.Memory.BanksPerRank = v }),
	"buffer": intKnob("controller read+write buffer entries",
		func(c *config.Config, v int) { c.Memory.ReadQueueCap = v; c.Memory.WriteQueueCap = v }),
	"prioritybits": intKnob("priority-table entry width (0 = exact)",
		func(c *config.Config, v int) { c.Memory.PriorityBits = v }),
	"robsize": intKnob("reorder buffer entries per core",
		func(c *config.Config, v int) { c.Core.ROBSize = v }),
	"lqsize": intKnob("load queue entries per core",
		func(c *config.Config, v int) { c.Core.LQSize = v }),
	"l2mb": intKnob("shared L2 capacity in MiB",
		func(c *config.Config, v int) { c.L2.SizeBytes = v << 20 }),
	"prefetch": boolKnob("L2 next-line stream prefetcher",
		func(c *config.Config, v bool) { c.L2StreamPrefetch = v }),
	"refresh": boolKnob("DDR2 auto-refresh",
		func(c *config.Config, v bool) {
			if v {
				c.Memory.EnableRefresh()
			}
		}),
	"drainhigh": {describe: "write-drain high watermark (low = half of it)",
		apply: func(c *config.Config, s string) error {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("%q is not a float", s)
			}
			c.Memory.DrainHigh = v
			c.Memory.DrainLow = v / 2
			return nil
		}},
	"rowpolicy": {describe: "row policy: close-hit-aware | open | close-strict",
		apply: func(c *config.Config, s string) error {
			switch s {
			case "close-hit-aware":
				c.Memory.RowPolicy = config.ClosePageHitAware
			case "open":
				c.Memory.RowPolicy = config.OpenPage
			case "close-strict":
				c.Memory.RowPolicy = config.ClosePageStrict
			default:
				return fmt.Errorf("unknown row policy %q", s)
			}
			return nil
		}},
}

func main() {
	flag.Parse()
	if *listFlag {
		names := make([]string, 0, len(knobs))
		for n := range knobs {
			names = append(names, n)
		}
		sort.Strings(names)
		t := report.NewTable("Sweepable knobs", "knob", "meaning")
		for _, n := range names {
			t.AddRow(n, knobs[n].describe)
		}
		t.WriteText(os.Stdout)
		return
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// sweepPoint is one knob value's aggregated metrics — the unit the runner
// checkpoints, so it must round-trip through JSON.
type sweepPoint struct {
	Speedup    float64 `json:"speedup"`
	Unfairness float64 `json:"unfairness"`
	ReadLat    float64 `json:"read_lat"`
	P95Lat     int64   `json:"p95_lat"`
	BusUtil    float64 `json:"bus_util"`
	RowHitRate float64 `json:"row_hit_rate"`
}

// point derives one knob value's table row from a finished run. Local and
// remote sweeps both go through here, which is what keeps their tables
// identical.
func point(res sim.Result, singles []float64) (sweepPoint, error) {
	sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
	if err != nil {
		return sweepPoint{}, err
	}
	u, err := metrics.Unfairness(res.IPCs(), singles)
	if err != nil {
		return sweepPoint{}, err
	}
	var p95 int64
	for _, c := range res.Cores {
		if c.P95ReadLatency > p95 {
			p95 = c.P95ReadLatency
		}
	}
	return sweepPoint{Speedup: sp, Unfairness: u, ReadLat: res.AvgReadLatency,
		P95Lat: p95, BusUtil: res.BusUtilization, RowHitRate: res.DRAM.HitRate()}, nil
}

func run(ctx context.Context) error {
	k, ok := knobs[*knobFlag]
	if !ok {
		return fmt.Errorf("unknown knob %q (try -knobs)", *knobFlag)
	}
	if *valuesFlag == "" {
		return fmt.Errorf("-values is required")
	}
	mix, err := workload.MixByName(*mixFlag)
	if err != nil {
		return err
	}
	apps, err := mix.Apps()
	if err != nil {
		return err
	}
	// Fail on a bad policy name — with the registry in the message — before
	// burning profiling or simulation time (or a remote submission) on it.
	if _, err := sched.New(*policyFlag, len(apps)); err != nil {
		return err
	}

	// Profiling and single-core references are knob-independent (they use
	// the default machine, as the paper's methodology does).
	l := lab.New(lab.Options{Instr: *instrFlag, ProfInstr: *instrFlag, Seed: *seedFlag})
	mes, singles, err := l.MixVectorsContext(ctx, mix)
	if err != nil {
		return err
	}

	var values []string
	for _, raw := range strings.Split(*valuesFlag, ",") {
		raw = strings.TrimSpace(raw)
		// Validate every value before burning simulation time on any of them.
		cfg := config.Default(len(apps))
		if err := k.apply(&cfg, raw); err != nil {
			return err
		}
		values = append(values, raw)
	}

	meta := fmt.Sprintf("sweep mix=%s policy=%s knob=%s instr=%d seed=%#x",
		mix.Name, *policyFlag, *knobFlag, *instrFlag, *seedFlag)
	var points []sweepPoint
	if *remoteFlag != "" {
		points, err = runRemote(ctx, k, values, len(apps), mes, singles, meta)
	} else {
		points, err = runLocal(ctx, k, values, apps, mes, singles, meta)
	}
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("sweep of %s on %s under %s (%s)", *knobFlag, mix.Name, *policyFlag, k.describe),
		*knobFlag, "SMT speedup", "unfairness", "read lat", "p95 lat", "bus util", "row hits")
	chart := report.NewChart("", 36)
	for i, p := range points {
		t.AddRow(values[i],
			fmt.Sprintf("%.3f", p.Speedup),
			fmt.Sprintf("%.3f", p.Unfairness),
			fmt.Sprintf("%.0f", p.ReadLat),
			fmt.Sprintf("<%d", p.P95Lat),
			fmt.Sprintf("%.1f%%", 100*p.BusUtil),
			fmt.Sprintf("%.1f%%", 100*p.RowHitRate))
		chart.Add(fmt.Sprintf("%s=%s", *knobFlag, values[i]), p.Speedup)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return chart.WriteText(os.Stdout)
}

// runLocal fans the knob values across the in-process worker pool. Outcomes
// come back in admission order, so the table is identical for every -parallel.
func runLocal(ctx context.Context, k knob, values []string, apps []workload.App,
	mes, singles []float64, meta string) ([]sweepPoint, error) {
	outs, err := runner.Run(ctx, runner.NewJobs(values),
		func(ctx context.Context, j runner.Job) (sweepPoint, error) {
			cfg := config.Default(len(apps))
			if err := k.apply(&cfg, j.Key); err != nil {
				return sweepPoint{}, err
			}
			spec := sim.RunSpec{Config: &cfg, Apps: apps,
				Policy: *policyFlag, Instr: *instrFlag, ME: mes, Seed: *seedFlag,
				ParallelCores: *simPar}
			if *telemDir != "" {
				// One export directory per point; points run concurrently, so
				// the per-point directories keep writers disjoint.
				spec.Telemetry = &telemetry.Options{Epoch: *epochFlag, Commands: true,
					Dir: filepath.Join(*telemDir, fmt.Sprintf("%s=%s", *knobFlag, j.Key))}
			}
			res, err := sim.Run(ctx, spec)
			if err != nil {
				return sweepPoint{}, fmt.Errorf("%s=%s: %w", *knobFlag, j.Key, err)
			}
			return point(res, singles)
		},
		runner.Options{
			Workers:    *parallel,
			JobTimeout: *timeoutFlg,
			Progress:   *progress,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
			Checkpoint: *resumeFlag,
			Meta:       meta,
		})
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	points := make([]sweepPoint, len(outs))
	for i, o := range outs {
		points[i] = o.Value
	}
	return points, nil
}

// runRemote submits the matrix to a sweepd coordinator, streams progress, and
// derives the same sweepPoints a local run would. Profiling vectors (mes,
// singles) were computed locally and travel inside the job specs, so a remote
// outcome is byte-identical to a local run of the same point.
func runRemote(ctx context.Context, k knob, values []string, cores int,
	mes, singles []float64, meta string) ([]sweepPoint, error) {
	if *telemDir != "" {
		return nil, fmt.Errorf("-telemetry is not supported with -remote (telemetry exports are worker-local)")
	}
	if *resumeFlag != "" {
		return nil, fmt.Errorf("-resume applies to local runs; remote sweeps resume from the coordinator's result cache")
	}
	jobs := make([]sweepd.JobV1, len(values))
	for i, v := range values {
		cfg := config.Default(cores)
		if err := k.apply(&cfg, v); err != nil {
			return nil, err
		}
		jobs[i] = sweepd.JobV1{ID: i, Key: fmt.Sprintf("%s=%s", *knobFlag, v),
			Spec: sweepd.JobSpecV1{
				Mix:           *mixFlag,
				Policy:        *policyFlag,
				Instr:         *instrFlag,
				ME:            mes,
				Seed:          *seedFlag,
				Config:        &cfg,
				ParallelCores: *simPar,
			}}
	}
	client := sweepd.NewClient(*remoteFlag)
	sub, err := client.Submit(ctx, sweepd.SweepRequestV1{Meta: meta, Jobs: jobs})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "sweep: submitted %s to %s: %d points (%d cached, %d coalesced)\n",
		sub.SweepID, *remoteFlag, sub.Jobs, sub.CacheHits, sub.Coalesced)
	if *progress > 0 {
		if err := client.Watch(ctx, sub.SweepID, func(ev sweepd.EventV1) {
			if ev.Type != "job" {
				return
			}
			state := "done"
			switch {
			case ev.Err != "":
				state = "FAILED: " + ev.Err
			case ev.CacheHit:
				state = "cached"
			case ev.Worker != "":
				state = "done on " + ev.Worker
			}
			fmt.Fprintf(os.Stderr, "sweep: %d/%d %s %s\n", ev.Completed, ev.Total, ev.Key, state)
		}); err != nil {
			return nil, err
		}
	}
	resp, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		return nil, err
	}
	points := make([]sweepPoint, len(resp.Outcomes))
	for i := range resp.Outcomes {
		res, err := resp.Outcomes[i].Result()
		if err != nil {
			return nil, err
		}
		if points[i], err = point(res, singles); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// Command memsched runs one workload under one scheduling policy and prints
// detailed statistics. It is the interactive front end to the library; use
// cmd/experiments to regenerate the paper's tables and figures.
//
// Usage:
//
//	memsched -mix 4MEM-1 -policy me-lreq -instr 200000
//	memsched -apps swim,mcf,gzip,eon -policy lreq
//	memsched -mix 4MEM-1 -policy me-lreq -profile     # profile first (Eq. 1)
//	memsched -list                                     # show apps and mixes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"memsched/internal/metrics"
	"memsched/internal/report"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

var (
	mixFlag     = flag.String("mix", "", "Table 3 workload name (e.g. 4MEM-1)")
	appsFlag    = flag.String("apps", "", "comma-separated application names (alternative to -mix)")
	policyFlag  = flag.String("policy", "me-lreq", "scheduling policy ("+strings.Join(sched.Names(), "|")+")")
	instrFlag   = flag.Uint64("instr", 200_000, "instructions per core")
	seedFlag    = flag.Uint64("seed", sim.EvalSeed, "simulation seed")
	profileFlag = flag.Bool("profile", false, "run single-core profiling to obtain ME values (otherwise Table 2 values are used)")
	onlineFlag  = flag.Bool("online", false, "estimate ME online instead of loading it up front")
	listFlag    = flag.Bool("list", false, "list applications, mixes and policies, then exit")
	jsonFlag    = flag.Bool("json", false, "emit the result as JSON instead of tables")
	appFileFlag = flag.String("appfile", "", "JSON file of custom application profiles to run (see workload.LoadApps)")
	traceFlag   = flag.Int("trace", 0, "print the last N scheduling decisions after the run")
	classFlag   = flag.String("class", "", "serving class per core, one letter each: L=latency-critical, B=best-effort (e.g. LBBB)")
)

func main() {
	flag.Parse()
	if *listFlag {
		list()
		return
	}
	apps, label, err := selectApps()
	if err != nil {
		fatal(err)
	}

	var mes []float64
	if *profileFlag {
		fmt.Fprintf(os.Stderr, "profiling %d applications (%d instructions each)...\n", len(apps), *instrFlag)
		_, mes, err = sim.ProfileAllContext(context.Background(), apps, *instrFlag, sim.ProfileSeed)
		if err != nil {
			fatal(err)
		}
	}

	classes, err := workload.ParseServiceClasses(*classFlag, len(apps))
	if err != nil {
		fatal(err)
	}

	sys, err := sim.New(sim.Options{
		Policy:   *policyFlag,
		Apps:     apps,
		ME:       mes,
		Seed:     *seedFlag,
		OnlineME: *onlineFlag,
		Classes:  classes,
	})
	if err != nil {
		fatal(err)
	}
	if *traceFlag > 0 {
		sys.Controller().EnableDecisionTrace(*traceFlag)
	}
	res, err := sys.Run(*instrFlag, 0)
	if err != nil {
		fatal(err)
	}
	if *traceFlag > 0 {
		fmt.Printf("last %d scheduling decisions:\n", *traceFlag)
		if err := sys.Controller().DumpDecisions(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *jsonFlag {
		printJSON(label, res, mes)
		return
	}
	printResult(label, apps, res, mes)
}

// printJSON emits a machine-readable result record.
func printJSON(label string, res sim.Result, mes []float64) {
	record := struct {
		Workload string     `json:"workload"`
		ME       []float64  `json:"memoryEfficiency,omitempty"`
		Result   sim.Result `json:"result"`
	}{Workload: label, ME: mes, Result: res}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(record); err != nil {
		fatal(err)
	}
}

func selectApps() ([]workload.App, string, error) {
	switch {
	case *appFileFlag != "":
		if *mixFlag != "" || *appsFlag != "" {
			return nil, "", fmt.Errorf("-appfile cannot be combined with -mix/-apps")
		}
		f, err := os.Open(*appFileFlag)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		apps, err := workload.LoadApps(f)
		return apps, *appFileFlag, err
	case *mixFlag != "" && *appsFlag != "":
		return nil, "", fmt.Errorf("give either -mix or -apps, not both")
	case *mixFlag != "":
		mix, err := workload.MixByName(*mixFlag)
		if err != nil {
			return nil, "", err
		}
		apps, err := mix.Apps()
		return apps, mix.Name, err
	case *appsFlag != "":
		var apps []workload.App
		for _, name := range strings.Split(*appsFlag, ",") {
			a, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, "", err
			}
			apps = append(apps, a)
		}
		return apps, *appsFlag, nil
	default:
		return nil, "", fmt.Errorf("-mix, -apps or -appfile is required (try -list)")
	}
}

func printResult(label string, apps []workload.App, res sim.Result, mes []float64) {
	fmt.Printf("workload %s under %s: %d cycles, avg read latency %.0f cycles, %d write-drain episodes\n",
		label, res.Policy, res.TotalCycles, res.AvgReadLatency, res.Drains)
	d := res.DRAM
	fmt.Printf("DRAM: %d accesses, %.1f%% row hits, %.1f%% closed, %.1f%% conflicts\n",
		d.Accesses(),
		100*float64(d.Hits)/nz(d.Accesses()),
		100*float64(d.Closed)/nz(d.Accesses()),
		100*float64(d.Conflicts)/nz(d.Accesses()))
	fmt.Printf("bus utilization %.1f%%, mean queue depth %.1f reads / %.1f writes\n",
		100*res.BusUtilization, res.ReadQueueOcc, res.WriteQueueOcc)
	fmt.Printf("DRAM energy: %.0f uJ total (%.0f%% background), avg %.0f mW, %.1f pJ/bit dynamic\n",
		res.Energy.TotalNJ/1000,
		100*res.Energy.BackgroundNJ/nzf(res.Energy.TotalNJ),
		res.Energy.AvgPowerMW, res.Energy.EnergyPerBitPJ)

	t := report.NewTable("", "core", "app", "class", "svc", "IPC", "read lat", "p95 lat", "p99 lat", "BW GB/s", "L2 MPKI", "mem rd", "mem wr")
	for i, c := range res.Cores {
		t.AddRow(fmt.Sprint(i), c.App, c.Class.String(), c.Service.String(),
			fmt.Sprintf("%.3f", c.IPC),
			fmt.Sprintf("%.0f", c.AvgReadLatency),
			fmt.Sprintf("<%d", c.P95ReadLatency),
			fmt.Sprintf("<%d", c.ReadLatencyP99),
			fmt.Sprintf("%.2f", c.BandwidthGBs),
			fmt.Sprintf("%.1f", c.L2MissesPerKI),
			fmt.Sprint(c.MemReads), fmt.Sprint(c.MemWrites))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	// The per-class tail breakdown only means something once at least one
	// core is latency-critical; a classless run is all best-effort.
	if res.ClassLat[workload.LC].Cores > 0 {
		for _, cl := range res.ClassLat {
			if cl.Cores == 0 {
				continue
			}
			fmt.Printf("%s (%d cores): %d reads, mean %.0f, p50 %d, p95 %d, p99 %d, p99.9 %d cycles\n",
				cl.Class, cl.Cores, cl.Reads, cl.MeanReadLatency, cl.P50, cl.P95, cl.P99, cl.P999)
		}
	}
	fmt.Printf("aggregate IPC: %.3f\n", sumIPC(res))
	// With profiled ME values in hand, also report the SMT-speedup metric
	// using fresh single-core reference runs.
	if mes == nil {
		return
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := sim.ProfileAppContext(context.Background(), a, res.Cores[i].Retired, *seedFlag)
		if err != nil {
			fatal(err)
		}
		singles[i] = p.IPC
	}
	sp, err := metrics.SMTSpeedup(ipcs(res), singles)
	if err != nil {
		fatal(err)
	}
	u, err := metrics.Unfairness(ipcs(res), singles)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SMT speedup: %.3f of %d   unfairness: %.3f\n", sp, len(apps), u)
}

func ipcs(res sim.Result) []float64 {
	out := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		out[i] = c.IPC
	}
	return out
}

func sumIPC(res sim.Result) float64 {
	s := 0.0
	for _, c := range res.Cores {
		s += c.IPC
	}
	return s
}

func nzf(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func nz(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

func list() {
	t := report.NewTable("Applications (Table 2)", "name", "code", "class", "paper ME")
	for _, a := range workload.Apps() {
		t.AddRow(a.Name, string(a.Code), a.Class.String(), fmt.Sprintf("%.0f", a.PaperME))
	}
	t.WriteText(os.Stdout)
	fmt.Println()
	m := report.NewTable("Workload mixes (Table 3)", "name", "codes")
	for _, mix := range workload.Mixes() {
		m.AddRow(mix.Name, mix.Codes)
	}
	m.WriteText(os.Stdout)
	fmt.Println()
	fmt.Println("policies: " + strings.Join(sched.Names(), ", ") + " (e.g. fix:3210)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsched:", err)
	os.Exit(1)
}

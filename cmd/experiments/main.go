// Command experiments regenerates every table and figure of the paper's
// evaluation (ICPP 2008). Each experiment prints an aligned text table to
// stdout and, with -csvdir, also writes a CSV file. The orchestration
// (profiling, caching, parallel sweeps) lives in internal/lab; this command
// is presentation only.
//
// Usage:
//
//	experiments -exp all                  # everything (default)
//	experiments -exp fig2 -instr 200000   # one experiment, custom slice
//	experiments -exp fig2 -parallel 8     # fan evaluations across 8 workers
//	experiments -exp all -resume exp.ckpt.json   # checkpoint + resume
//	experiments -exp ablation,extended    # beyond-paper sweeps
//
// Experiments: table1, table2, table3, fig2, fig3, fig4, fig5, ablation,
// extended, noise, energy, skip, telemetry, scaling, fairness-battleground.
//
// The fairness-battleground experiment runs the head-to-head fairness
// comparison: classic throughput policies (hf-rf, lreq, me-lreq) against
// fairness-oriented schedulers (fq, bliss, cads) on the Figure 2 MEM
// workloads, scored on SMT speedup, maximum slowdown, unfairness and harmonic
// speedup plus a hardware-complexity proxy (scheduler state bits per core,
// sched.StateBits). -fbcores picks the core count (default 8).
//
// -simparallel controls intra-run parallelism (epoch-sharded execution of
// simulated cores; results are identical to the serial loop): 0 auto-enables
// it on multi-core hosts, 1 forces the serial loop, >1 forces a worker count.
// The scaling experiment times serial vs parallel runs at 2-16 simulated
// cores and prints the observed speedup and window coverage.
//
// The telemetry experiment samples epoch time series (per-core IPC, pending
// reads, live priorities) from single runs and prints them as sparklines;
// with -telemetry DIR it also exports CSV/JSON/Chrome-trace files per policy
// (load DIR/<policy>/trace.json at ui.perfetto.dev). -epoch sets the sampling
// window in cycles.
//
// Evaluation sweeps run on internal/runner's worker pool: -parallel sets the
// width (results are identical for every width), -resume names a JSON
// checkpoint that persists completed evaluations so an interrupted invocation
// picks up where it stopped, and Ctrl-C cancels mid-simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"memsched/internal/cliflags"
	"memsched/internal/config"
	"memsched/internal/lab"
	"memsched/internal/metrics"
	"memsched/internal/prof"
	"memsched/internal/report"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/telemetry"
	"memsched/internal/workload"
)

var (
	expFlag      = flag.String("exp", "all", "experiments to run, comma separated (table1|table2|table3|fig2|fig3|fig4|fig5|ablation|extended|noise|energy|skip|telemetry|scaling|fairness-battleground|all)")
	instrFlag    = flag.Uint64("instr", 200_000, "instructions per core in evaluation runs")
	profFlag     = flag.Uint64("profinstr", 200_000, "instructions for profiling runs")
	csvDirFlag   = flag.String("csvdir", "", "directory to also write CSV outputs into")
	seedFlag     = flag.Uint64("seed", sim.EvalSeed, "evaluation seed (profiling uses a disjoint seed)")
	onlineFlag   = flag.Bool("online", false, "additionally evaluate me-lreq with online ME estimation in fig2")
	replicasFlag = flag.Int("replicas", 5, "seeds per measurement in the noise experiment")
	parallelFlag = cliflags.Parallel(flag.CommandLine)
	simParFlag   = cliflags.SimParallel(flag.CommandLine)
	resumeFlag   = cliflags.Resume(flag.CommandLine)
	progressFlag = cliflags.Progress(flag.CommandLine)
	verboseFlag  = flag.Bool("v", false, "log per-run progress to stderr")
	cpuProfFlag  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	telemDirFlag = flag.String("telemetry", "", "directory for telemetry exports of the telemetry experiment (CSV/JSON/trace-event per policy)")
	epochFlag    = flag.Int64("epoch", 0, "telemetry sampling epoch in cycles (0 = default)")
	fbCoresFlag  = flag.Int("fbcores", 8, "core count for the fairness-battleground experiment (2, 4 or 8)")
	sloCoresFlag = flag.Int("slocores", 8, "largest core count in the slo-pack density sweep (2, 4 or 8)")
)

// figure2Policies is the evaluation set of paper Section 5.1.
var figure2Policies = []string{"hf-rf", "me", "rr", "lreq", "me-lreq"}

func main() {
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfFlag, *memProfFlag)
	if err != nil {
		fatal(err)
	}
	if *csvDirFlag != "" {
		if err := os.MkdirAll(*csvDirFlag, 0o755); err != nil {
			fatal(err)
		}
	}
	opts := lab.Options{Instr: *instrFlag, ProfInstr: *profFlag, Seed: *seedFlag,
		Workers: *parallelFlag, ParallelCores: *simParFlag,
		Checkpoint: *resumeFlag, Progress: *progressFlag}
	if *verboseFlag || *progressFlag > 0 {
		opts.Logf = func(format string, args ...any) {
			// Progress lines always reach stderr; per-run lines only with -v.
			if !*verboseFlag && !strings.HasPrefix(format, "runner:") {
				return
			}
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	l := lab.New(opts)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runners := map[string]func(context.Context, *lab.Lab) error{
		"table1":    table1,
		"table2":    table2,
		"table3":    table3,
		"fig2":      figure2,
		"fig3":      figure3,
		"fig4":      figure4,
		"fig5":      figure5,
		"ablation":  ablation,
		"extended":  extended,
		"noise":     noise,
		"energy":    energy,
		"skip":      skipReport,
		"telemetry": telemetryReport,
		"scaling":   scaling,

		"fairness-battleground": fairnessBattleground,
		"slo-pack":              sloPack,
	}
	order := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "ablation", "extended", "noise", "energy", "skip", "telemetry", "scaling", "fairness-battleground", "slo-pack"}
	want := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		want = order
	}
	for _, name := range want {
		r, ok := runners[strings.TrimSpace(name)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (known: %s, all)", name, strings.Join(order, ", ")))
		}
		if err := r(ctx, l); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// emit prints a table and optionally writes its CSV twin.
func emit(t *report.Table, csvName string) {
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	if *csvDirFlag == "" {
		return
	}
	f, err := os.Create(filepath.Join(*csvDirFlag, csvName+".csv"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
}

// table1 prints the simulation parameters actually in force.
func table1(context.Context, *lab.Lab) error {
	cfg := config.Default(4)
	if err := cfg.Validate(); err != nil {
		return err
	}
	d := cfg.DRAMCycles()
	t := report.NewTable("Table 1: major simulation parameters", "parameter", "value")
	t.AddRow("processor", fmt.Sprintf("1/2/4/8 cores, %.1f GHz, %d-issue, %d-stage pipeline",
		cfg.Core.FreqGHz, cfg.Core.IssueWidth, cfg.Core.PipelineDepth))
	t.AddRow("functional units", fmt.Sprintf("%d IntALU, %d IntMult, %d FPALU, %d FPMult",
		cfg.Core.IntALUs, cfg.Core.IntMults, cfg.Core.FPALUs, cfg.Core.FPMults))
	t.AddRow("IQ/ROB/LQ/SQ", fmt.Sprintf("%d / %d / %d / %d",
		cfg.Core.IQSize, cfg.Core.ROBSize, cfg.Core.LQSize, cfg.Core.SQSize))
	t.AddRow("L1I (per core)", fmt.Sprintf("%dKB, %d-way, %dB line, %d-cycle, %d MSHRs",
		cfg.L1I.SizeBytes>>10, cfg.L1I.Assoc, cfg.L1I.LineBytes, cfg.L1I.HitLatency, cfg.L1I.MSHRs))
	t.AddRow("L1D (per core)", fmt.Sprintf("%dKB, %d-way, %dB line, %d-cycle, %d MSHRs",
		cfg.L1D.SizeBytes>>10, cfg.L1D.Assoc, cfg.L1D.LineBytes, cfg.L1D.HitLatency, cfg.L1D.MSHRs))
	t.AddRow("L2 (shared)", fmt.Sprintf("%dMB, %d-way, %dB line, %d-cycle, %d MSHRs",
		cfg.L2.SizeBytes>>20, cfg.L2.Assoc, cfg.L2.LineBytes, cfg.L2.HitLatency, cfg.L2.MSHRs))
	t.AddRow("memory", fmt.Sprintf("%d logic channels, %d ranks/chan, %d banks/rank, %dKB row",
		cfg.Memory.Channels, cfg.Memory.RanksPerChan, cfg.Memory.BanksPerRank, cfg.Memory.RowBytes>>10))
	t.AddRow("channel bandwidth", fmt.Sprintf("%.1f GB/s per logic channel", cfg.Memory.BusBytesPerNs))
	t.AddRow("DRAM timing", fmt.Sprintf("tRP=tRCD=tCL=%.1fns (%d cycles each), burst %d cycles",
		cfg.Memory.Timing.TRPns, d.TRP, d.Burst))
	t.AddRow("row policy", cfg.Memory.RowPolicy.String())
	t.AddRow("memory controller", fmt.Sprintf("%d-entry buffer, %.0fns overhead (%d cycles)",
		cfg.Memory.ReadQueueCap, cfg.Memory.CtrlOverheadNs, d.CtrlOverhead))
	t.AddRow("priority tables", fmt.Sprintf("%d entries x %d bits per core (640N bits total)",
		cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits))
	emit(t, "table1")
	return nil
}

// table2 profiles all 26 applications and classifies them with a perfect
// memory run (paper Section 4.2 methodology).
func table2(ctx context.Context, l *lab.Lab) error {
	t := report.NewTable(
		"Table 2: application class and memory efficiency (measured vs paper)",
		"app", "code", "IPC", "BW GB/s", "mem/KI", "ME meas", "ME paper", "perf gain", "class meas", "class paper")
	for _, a := range workload.Apps() {
		p, err := l.ProfileContext(ctx, a.Code)
		if err != nil {
			return err
		}
		if err := sim.ClassifyContext(ctx, a, &p, *profFlag, sim.ProfileSeed); err != nil {
			return err
		}
		l.SetProfile(a.Code, p)
		t.AddRow(a.Name, string(a.Code),
			fmt.Sprintf("%.3f", p.IPC), fmt.Sprintf("%.2f", p.BWGBs),
			fmt.Sprintf("%.2f", p.MemMPKI),
			fmt.Sprintf("%.3f", p.ME), fmt.Sprintf("%.0f", a.PaperME),
			report.Pct(p.Gain), p.Class.String(), a.Class.String())
	}
	emit(t, "table2")
	return nil
}

// table3 prints the workload mixes.
func table3(context.Context, *lab.Lab) error {
	t := report.NewTable("Table 3: workload mixes", "workload", "codes", "applications")
	for _, m := range workload.Mixes() {
		apps, err := m.Apps()
		if err != nil {
			return err
		}
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Name
		}
		t.AddRow(m.Name, m.Codes, strings.Join(names, " "))
	}
	emit(t, "table3")
	return nil
}

// figure2 sweeps all mixes and policies and reports SMT speedups.
func figure2(ctx context.Context, l *lab.Lab) error {
	policies := figure2Policies
	if *onlineFlag {
		policies = append(append([]string{}, policies...), lab.OnlinePolicy)
	}
	var allMixes []workload.Mix
	for _, cores := range []int{2, 4, 8} {
		allMixes = append(allMixes, workload.MixesFor(cores, "")...)
	}
	if err := l.PrimeContext(ctx, allMixes, policies); err != nil {
		return err
	}

	headers := append([]string{"workload"}, policies...)
	headers = append(headers, "ME-LREQ vs HF-RF", "ME-LREQ vs LREQ")
	t := report.NewTable("Figure 2: SMT speedup by scheduling policy", headers...)

	type key struct {
		cores int
		group string
	}
	sums := map[key]map[string]float64{}
	counts := map[key]int{}
	for _, cores := range []int{2, 4, 8} {
		for _, group := range []string{"MEM", "MIX"} {
			for _, mix := range workload.MixesFor(cores, group) {
				row := []string{mix.Name}
				byPolicy := map[string]float64{}
				for _, pol := range policies {
					out, err := l.RunContext(ctx, mix, pol)
					if err != nil {
						return err
					}
					byPolicy[pol] = out.Speedup
					row = append(row, fmt.Sprintf("%.3f", out.Speedup))
				}
				row = append(row,
					report.Pct(metrics.RelativeGain(byPolicy["me-lreq"], byPolicy["hf-rf"])),
					report.Pct(metrics.RelativeGain(byPolicy["me-lreq"], byPolicy["lreq"])))
				t.AddRow(row...)
				k := key{cores, group}
				if sums[k] == nil {
					sums[k] = map[string]float64{}
				}
				for p, v := range byPolicy {
					sums[k][p] += v
				}
				counts[k]++
			}
		}
	}
	for _, cores := range []int{2, 4, 8} {
		for _, group := range []string{"MEM", "MIX"} {
			k := key{cores, group}
			if counts[k] == 0 {
				continue
			}
			row := []string{fmt.Sprintf("avg %d%s", cores, group)}
			n := float64(counts[k])
			for _, pol := range policies {
				row = append(row, fmt.Sprintf("%.3f", sums[k][pol]/n))
			}
			row = append(row,
				report.Pct(metrics.RelativeGain(sums[k]["me-lreq"], sums[k]["hf-rf"])),
				report.Pct(metrics.RelativeGain(sums[k]["me-lreq"], sums[k]["lreq"])))
			t.AddRow(row...)
		}
	}
	emit(t, "fig2")

	chart := report.NewChart("Figure 2 (chart): average SMT speedup, 8-core MEM workloads", 40)
	k8 := key{8, "MEM"}
	if counts[k8] > 0 {
		for _, pol := range policies {
			chart.Add(pol, sums[k8][pol]/float64(counts[k8]))
		}
		if err := chart.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// figure3 compares fixed-priority orders on the 4-core platform.
func figure3(ctx context.Context, l *lab.Lab) error {
	policies := []string{"hf-rf", "me", "fix:3210", "fix:0123"}
	if err := l.PrimeContext(ctx, workload.MixesFor(4, ""), policies); err != nil {
		return err
	}
	headers := append([]string{"workload"}, policies...)
	t := report.NewTable("Figure 3: simple and fixed priority schemes (4-core)", headers...)
	for _, group := range []string{"MEM", "MIX"} {
		for _, mix := range workload.MixesFor(4, group) {
			row := []string{mix.Name}
			for _, pol := range policies {
				out, err := l.RunContext(ctx, mix, pol)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.3f", out.Speedup))
			}
			t.AddRow(row...)
		}
	}
	emit(t, "fig3")
	return nil
}

// skipReport documents the quiescence-aware run loop: for one mix per core
// count it reports how many simulated cycles next-event time advance jumped
// over (the skip ratio), per policy. Purely diagnostic — the skipped cycles
// are fully accounted for in every other column of every other table.
func skipReport(ctx context.Context, l *lab.Lab) error {
	mixNames := []string{"2MEM-1", "4MEM-1", "8MEM-1", "4MIX-1"}
	policies := []string{"hf-rf", "lreq", "me-lreq"}
	var mixes []workload.Mix
	for _, name := range mixNames {
		mix, err := workload.MixByName(name)
		if err != nil {
			return err
		}
		mixes = append(mixes, mix)
	}
	if err := l.PrimeContext(ctx, mixes, policies); err != nil {
		return err
	}
	var headers []string
	for _, pol := range policies {
		headers = append(headers, pol+" skip%")
	}
	t := report.NewTable("Cycle skipping: fraction of simulated cycles jumped by next-event advance",
		append([]string{"workload", "total cycles"}, headers...)...)
	for _, mix := range mixes {
		var row []string
		for _, pol := range policies {
			out, err := l.RunContext(ctx, mix, pol)
			if err != nil {
				return err
			}
			if row == nil {
				row = []string{mix.Name, fmt.Sprintf("%d", out.Result.TotalCycles)}
			}
			ratio := 0.0
			if out.Result.TotalCycles > 0 {
				ratio = float64(out.Result.SkippedCycles) / float64(out.Result.TotalCycles)
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*ratio))
		}
		t.AddRow(row...)
	}
	emit(t, "skip")
	return nil
}

// telemetryReport demonstrates the epoch-sampled telemetry layer: it runs
// 4MEM-1 under hf-rf and me-lreq with a collector attached and prints the
// per-core IPC and pending-read series as sparklines — the time-resolved view
// of why ME-LREQ wins (pending-read pressure from inefficient cores is
// deprioritized, so efficient cores' IPC recovers). With -telemetry DIR every
// run additionally exports its CSV/JSON/trace-event file set to DIR/<policy>.
func telemetryReport(ctx context.Context, l *lab.Lab) error {
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		return err
	}
	mes, _, err := l.MixVectorsContext(ctx, mix)
	if err != nil {
		return err
	}
	for _, pol := range []string{"hf-rf", "me-lreq"} {
		opts := telemetry.Options{Epoch: *epochFlag}
		if *telemDirFlag != "" {
			opts.Dir = filepath.Join(*telemDirFlag, pol)
			opts.Commands = true
		}
		var snap *telemetry.Snapshot
		opts.Sink = func(s *telemetry.Snapshot) { snap = s }
		if _, err := sim.Run(ctx, sim.RunSpec{Mix: mix, Policy: pol, Instr: *instrFlag,
			ME: mes, Seed: *seedFlag, Telemetry: &opts}); err != nil {
			return err
		}
		ipc := report.NewSeries(fmt.Sprintf("Telemetry: per-core IPC over epochs, 4MEM-1 under %s", pol), 60)
		pending := report.NewSeries(fmt.Sprintf("Telemetry: per-core pending reads over epochs, 4MEM-1 under %s", pol), 60)
		for core := 0; core < snap.Cores; core++ {
			ipcs := make([]float64, len(snap.Epochs))
			pend := make([]float64, len(snap.Epochs))
			for i, ep := range snap.Epochs {
				ipcs[i] = ep.Cores[core].IPC
				pend[i] = float64(ep.Cores[core].PendingReads)
			}
			label := fmt.Sprintf("core%d", core)
			ipc.Add(label, ipcs)
			pending.Add(label, pend)
		}
		for _, s := range []*report.Series{ipc, pending} {
			if err := s.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if opts.Dir != "" {
			fmt.Printf("telemetry exports written to %s\n\n", opts.Dir)
		}
	}
	return nil
}

// scaling times the serial run loop against epoch-sharded parallel execution
// at 2, 4, 8 and 16 simulated cores (the 16-core machine cycles the 8MEM-4
// applications; Table 3 tops out at eight). Both arms produce identical
// Results — the table reports wall-clock speedup and the fraction of
// simulated cycles executed inside parallel windows. On a single-CPU host the
// parallel arm falls back to the serial loop and the speedup column reads
// ~1.0.
func scaling(ctx context.Context, l *lab.Lab) error {
	mix, err := workload.MixByName("8MEM-4")
	if err != nil {
		return err
	}
	base, err := mix.Apps()
	if err != nil {
		return err
	}
	par := *simParFlag
	if par == 1 {
		par = 0 // forcing serial would make both arms identical; use auto
	}
	t := report.NewTable(
		fmt.Sprintf("Scaling: intra-run parallel speedup (GOMAXPROCS=%d, NumCPU=%d)",
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"cores", "serial", "parallel", "speedup", "win-coverage")
	for _, cores := range []int{2, 4, 8, 16} {
		apps := make([]workload.App, cores)
		for i := range apps {
			apps[i] = base[i%len(base)]
		}
		cfg := config.Default(cores)
		run := func(parallel int) (time.Duration, float64, error) {
			sys, err := sim.New(sim.Options{Config: &cfg, Policy: "hf-rf",
				Apps: apps, Seed: *seedFlag, ParallelCores: parallel})
			if err != nil {
				return 0, 0, err
			}
			start := time.Now()
			res, err := sys.RunContext(ctx, *instrFlag, 0)
			if err != nil {
				return 0, 0, err
			}
			elapsed := time.Since(start)
			coverage := 0.0
			if _, winCycles := sys.ParallelWindows(); res.TotalCycles > 0 {
				coverage = float64(winCycles) / float64(res.TotalCycles)
			}
			return elapsed, coverage, nil
		}
		serial, _, err := run(1)
		if err != nil {
			return err
		}
		parallel, coverage, err := run(par)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprint(cores),
			fmt.Sprintf("%.2fs", serial.Seconds()),
			fmt.Sprintf("%.2fs", parallel.Seconds()),
			fmt.Sprintf("%.2fx", serial.Seconds()/parallel.Seconds()),
			fmt.Sprintf("%.1f%%", 100*coverage))
	}
	emit(t, "scaling")
	return nil
}

// figure4 reports average read latency per policy (left) and per-core read
// latencies for 4MEM-1 and 4MEM-5 (right).
func figure4(ctx context.Context, l *lab.Lab) error {
	if err := l.PrimeContext(ctx, workload.MixesFor(4, "MEM"), figure2Policies); err != nil {
		return err
	}
	t := report.NewTable("Figure 4 (left): average memory read latency, 4-core MEM workloads (cycles)",
		append([]string{"workload"}, figure2Policies...)...)
	perCore := report.NewTable("Figure 4 (right): per-core read latency (cycles)",
		"workload", "policy", "core0", "core1", "core2", "core3")
	for _, mix := range workload.MixesFor(4, "MEM") {
		row := []string{mix.Name}
		for _, pol := range figure2Policies {
			out, err := l.RunContext(ctx, mix, pol)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", out.Result.AvgReadLatency))
			if mix.Name == "4MEM-1" || mix.Name == "4MEM-5" {
				pcRow := []string{mix.Name, pol}
				for _, c := range out.Result.Cores {
					pcRow = append(pcRow, fmt.Sprintf("%.0f", c.AvgReadLatency))
				}
				perCore.AddRow(pcRow...)
			}
		}
		t.AddRow(row...)
	}
	emit(t, "fig4")
	emit(perCore, "fig4percore")
	return nil
}

// figure5 reports unfairness (max slowdown / min slowdown).
func figure5(ctx context.Context, l *lab.Lab) error {
	if err := l.PrimeContext(ctx, workload.MixesFor(4, "MEM"), figure2Policies); err != nil {
		return err
	}
	t := report.NewTable("Figure 5: unfairness (max/min slowdown), 4-core MEM workloads",
		append([]string{"workload"}, figure2Policies...)...)
	sums := map[string]float64{}
	n := 0
	for _, mix := range workload.MixesFor(4, "MEM") {
		row := []string{mix.Name}
		for _, pol := range figure2Policies {
			u, err := l.Unfairness(mix, pol)
			if err != nil {
				return err
			}
			sums[pol] += u
			row = append(row, fmt.Sprintf("%.3f", u))
		}
		n++
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, pol := range figure2Policies {
		avg = append(avg, fmt.Sprintf("%.3f", sums[pol]/float64(n)))
	}
	t.AddRow(avg...)
	emit(t, "fig5")

	chart := report.NewChart("Figure 5 (chart): average unfairness, 4-core MEM workloads (lower is fairer)", 40)
	for _, pol := range figure2Policies {
		chart.Add(pol, sums[pol]/float64(n))
	}
	if err := chart.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// extended compares ME-LREQ against simplified versions of its related work
// (fair queueing [Nesbit et al. '06] and burst scheduling [Shao & Davis
// '07]) and against the online-ME variant, on the 4- and 8-core MEM
// workloads — comparisons the paper discusses but does not run.
func extended(ctx context.Context, l *lab.Lab) error {
	policies := []string{"hf-rf", "lreq", "me-lreq", "fq", "burst", lab.OnlinePolicy}
	mixes := append(workload.MixesFor(4, "MEM"), workload.MixesFor(8, "MEM")...)
	if err := l.PrimeContext(ctx, mixes, policies); err != nil {
		return err
	}
	headers := append([]string{"workload"}, policies...)
	t := report.NewTable("Extended: ME-LREQ vs related-work schedulers (SMT speedup)", headers...)
	sums := map[string]float64{}
	for _, mix := range mixes {
		row := []string{mix.Name}
		for _, pol := range policies {
			out, err := l.RunContext(ctx, mix, pol)
			if err != nil {
				return err
			}
			sums[pol] += out.Speedup
			row = append(row, fmt.Sprintf("%.3f", out.Speedup))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, pol := range policies {
		avg = append(avg, fmt.Sprintf("%.3f", sums[pol]/float64(len(mixes))))
	}
	t.AddRow(avg...)
	emit(t, "extended")
	return nil
}

// ablation sweeps design choices beyond the paper: priority-table
// quantization width, controller buffer size, channel count, write-drain
// watermarks, row policy and refresh, all on the 4-core MEM workloads under
// me-lreq.
func ablation(ctx context.Context, l *lab.Lab) error {
	mixes := workload.MixesFor(4, "MEM")

	runWith := func(mut func(*config.Config)) (float64, error) {
		total := 0.0
		for _, mix := range mixes {
			mes, singles, err := l.MixVectorsContext(ctx, mix)
			if err != nil {
				return 0, err
			}
			apps, err := mix.Apps()
			if err != nil {
				return 0, err
			}
			cfg := config.Default(len(apps))
			mut(&cfg)
			res, err := sim.Run(ctx, sim.RunSpec{Config: &cfg, Policy: "me-lreq",
				Apps: apps, ME: mes, Seed: *seedFlag, Instr: *instrFlag})
			if err != nil {
				return 0, err
			}
			sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
			if err != nil {
				return 0, err
			}
			total += sp
		}
		return total / float64(len(mixes)), nil
	}

	t := report.NewTable("Ablation: me-lreq design choices (avg SMT speedup over 4-core MEM)",
		"dimension", "setting", "avg speedup")
	addRow := func(dim, setting string, mut func(*config.Config)) error {
		sp, err := runWith(mut)
		if err != nil {
			return err
		}
		t.AddRow(dim, setting, fmt.Sprintf("%.3f", sp))
		return nil
	}

	for _, bits := range []int{0, 4, 6, 10} {
		label := fmt.Sprintf("%d-bit", bits)
		if bits == 0 {
			label = "exact (no quantization)"
		}
		b := bits
		if err := addRow("priority table width", label, func(c *config.Config) { c.Memory.PriorityBits = b }); err != nil {
			return err
		}
	}
	for _, buf := range []int{16, 32, 64, 128} {
		b := buf
		if err := addRow("controller buffer", fmt.Sprintf("%d entries", buf), func(c *config.Config) {
			c.Memory.ReadQueueCap = b
			c.Memory.WriteQueueCap = b
		}); err != nil {
			return err
		}
	}
	for _, ch := range []int{1, 2, 4} {
		v := ch
		if err := addRow("logic channels", fmt.Sprint(ch), func(c *config.Config) { c.Memory.Channels = v }); err != nil {
			return err
		}
	}
	for _, wm := range [][2]float64{{0.25, 0.125}, {0.5, 0.25}, {0.75, 0.5}} {
		w := wm
		if err := addRow("write drain watermarks", fmt.Sprintf("%.2f/%.3f", wm[0], wm[1]), func(c *config.Config) {
			c.Memory.DrainHigh, c.Memory.DrainLow = w[0], w[1]
		}); err != nil {
			return err
		}
	}
	for _, rp := range []config.RowPolicy{config.ClosePageHitAware, config.OpenPage, config.ClosePageStrict} {
		p := rp
		if err := addRow("row policy", rp.String(), func(c *config.Config) { c.Memory.RowPolicy = p }); err != nil {
			return err
		}
	}
	// The pairing the paper explicitly rejects in Section 4.1: open page
	// with page interleaving, vs its choice of close page with cache-line
	// interleaving (the default row above).
	if err := addRow("mapping pairing", "open page + page interleave", func(c *config.Config) {
		c.Memory.RowPolicy = config.OpenPage
		c.Memory.PageInterleave = true
	}); err != nil {
		return err
	}
	if err := addRow("refresh", "disabled (paper model)", func(*config.Config) {}); err != nil {
		return err
	}
	if err := addRow("refresh", "tREFI 7.8us, tRFC 127.5ns", func(c *config.Config) {
		c.Memory.EnableRefresh()
	}); err != nil {
		return err
	}
	for _, pf := range []bool{false, true} {
		label := "off (paper model)"
		if pf {
			label = "next-line at L2"
		}
		v := pf
		if err := addRow("stream prefetch", label, func(c *config.Config) {
			c.L2StreamPrefetch = v
		}); err != nil {
			return err
		}
	}
	emit(t, "ablation")
	return nil
}

// noise estimates run-to-run variance: representative workloads are
// evaluated across several seeds and reported as mean ± standard deviation,
// so readers can judge which Figure 2 differences exceed measurement noise —
// a check the paper's single-run methodology cannot provide.
func noise(ctx context.Context, l *lab.Lab) error {
	t := report.NewTable(
		fmt.Sprintf("Noise: SMT speedup across %d seeds (mean ± stddev)", *replicasFlag),
		"workload", "policy", "mean", "stddev", "min", "max")
	for _, mixName := range []string{"4MEM-1", "4MEM-5", "8MEM-4"} {
		mix, err := workload.MixByName(mixName)
		if err != nil {
			return err
		}
		for _, pol := range []string{"hf-rf", "lreq", "me-lreq"} {
			rep, err := l.RunReplicated(mix, pol, *replicasFlag)
			if err != nil {
				return err
			}
			lo, hi := rep.Samples[0], rep.Samples[0]
			for _, s := range rep.Samples {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			t.AddRow(mix.Name, pol,
				fmt.Sprintf("%.3f", rep.Mean),
				fmt.Sprintf("%.3f", rep.StdDev),
				fmt.Sprintf("%.3f", lo), fmt.Sprintf("%.3f", hi))
		}
	}
	emit(t, "noise")
	return nil
}

// fairnessBattlegroundPolicies pits the paper's throughput-centric policies
// against the fairness-oriented schedulers of the follow-on literature.
var fairnessBattlegroundPolicies = []string{"hf-rf", "lreq", "me-lreq", "fq", "bliss", "cads"}

// fairnessBattleground runs the head-to-head fairness comparison on the
// Figure 2 MEM workloads at -fbcores cores: every policy scored on throughput
// (SMT speedup), fairness (maximum slowdown, unfairness, harmonic speedup) and
// hardware cost (scheduler state bits per core, per sched.StateBits). The
// per-workload table shows each run; the summary table averages across the
// mixes and appends the complexity column.
func fairnessBattleground(ctx context.Context, l *lab.Lab) error {
	cores := *fbCoresFlag
	mixes := workload.MixesFor(cores, "MEM")
	if len(mixes) == 0 {
		return fmt.Errorf("fairness-battleground: no MEM mixes for %d cores", cores)
	}
	policies := fairnessBattlegroundPolicies
	if err := l.PrimeContext(ctx, mixes, policies); err != nil {
		return err
	}

	detail := report.NewTable(
		fmt.Sprintf("Fairness battleground: per-workload metrics (%d-core MEM workloads)", cores),
		"workload", "policy", "SMT speedup", "max slowdown", "unfairness", "harmonic speedup")
	sums := map[string]*lab.FairnessOut{}
	for _, mix := range mixes {
		for _, pol := range policies {
			f, err := l.FairnessContext(ctx, mix, pol)
			if err != nil {
				return err
			}
			detail.AddRow(mix.Name, pol,
				fmt.Sprintf("%.3f", f.Speedup),
				fmt.Sprintf("%.3f", f.MaxSlowdown),
				fmt.Sprintf("%.3f", f.Unfairness),
				fmt.Sprintf("%.3f", f.HarmonicSpeedup))
			s := sums[pol]
			if s == nil {
				s = &lab.FairnessOut{}
				sums[pol] = s
			}
			s.Speedup += f.Speedup
			s.MaxSlowdown += f.MaxSlowdown
			s.Unfairness += f.Unfairness
			s.HarmonicSpeedup += f.HarmonicSpeedup
		}
	}
	emit(detail, "fairness-battleground-detail")

	cfg := config.Default(cores)
	summary := report.NewTable(
		fmt.Sprintf("Fairness battleground: averages over %d MEM workloads + hardware cost", len(mixes)),
		"policy", "SMT speedup", "max slowdown", "unfairness", "harmonic speedup", "state bits/core")
	n := float64(len(mixes))
	for _, pol := range policies {
		bits, err := sched.StateBits(pol, cores, cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
		if err != nil {
			return err
		}
		s := sums[pol]
		summary.AddRow(pol,
			fmt.Sprintf("%.3f", s.Speedup/n),
			fmt.Sprintf("%.3f", s.MaxSlowdown/n),
			fmt.Sprintf("%.3f", s.Unfairness/n),
			fmt.Sprintf("%.3f", s.HarmonicSpeedup/n),
			fmt.Sprintf("%.1f", float64(bits)/float64(cores)))
	}
	emit(summary, "fairness-battleground")
	return nil
}

// sloPackPolicies pits the class-blind schedulers against the deadline-aware
// dash policy on the latency-critical serving battleground.
var sloPackPolicies = []string{"hf-rf", "lreq", "me-lreq", "fq", "bliss", "cads", "dash"}

// sloPackBudget is the fixed LC tail-latency SLO: p99 read latency at or
// below this many cycles — about 1.7x the LC application's lightly-colocated
// tail (~290 cycles at one BE neighbor). It sits above every scheduler's
// low-density tail and below the class-blind schedulers' seven-neighbor
// tails, so the sweep actually discriminates: a deadline-aware scheduler can
// hold the SLO at full colocation, a class-blind one cannot.
const sloPackBudget int64 = 500

// sloPack runs the latency-critical vs best-effort serving battleground: one
// LC application (wupwise, a moderate MEM program standing in for a serving
// tenant) on core 0 with a p99 read-latency SLO, colocated with an
// increasingly dense pack of memory-hungry best-effort programs (swim, applu,
// mcf round-robin) at 1, 3 and 7 BE cores. Every policy runs every density;
// the detail table reports the LC tail and the aggregate BE throughput, and
// the summary scores each policy the way serving clusters are scored: the
// maximum BE throughput it sustains while the LC SLO still holds
// (metrics.MaxBEAtSLO).
func sloPack(ctx context.Context, l *lab.Lab) error {
	const lcCode = "b"
	const beCycle = "gfj"
	densities := []int{1, 3, 7}

	var jobs []lab.ClassedJob
	type point struct {
		mix     workload.Mix
		classes []workload.ServiceClass
		beCores int
	}
	var points []point
	for _, d := range densities {
		if 1+d > *sloCoresFlag {
			continue
		}
		codes := lcCode
		for i := 0; i < d; i++ {
			codes += string(beCycle[i%len(beCycle)])
		}
		mix := workload.Mix{Name: fmt.Sprintf("SLO-%d", 1+d), Codes: codes}
		classes, err := workload.ParseServiceClasses("L"+strings.Repeat("B", d), 1+d)
		if err != nil {
			return err
		}
		points = append(points, point{mix, classes, d})
		for _, pol := range sloPackPolicies {
			jobs = append(jobs, lab.ClassedJob{Mix: mix, Policy: pol, Classes: classes})
		}
	}
	if len(points) == 0 {
		return fmt.Errorf("slo-pack: -slocores %d leaves no density to sweep", *sloCoresFlag)
	}
	if err := l.PrimeClassedContext(ctx, jobs); err != nil {
		return err
	}

	detail := report.NewTable(
		fmt.Sprintf("SLO battleground: LC wupwise vs BE colocation density (SLO: LC p99 <= %d cycles)", sloPackBudget),
		"BE cores", "policy", "LC p99", "LC p99.9", "LC attain", "BE IPC", "SLO")
	pointsByPolicy := map[string][]metrics.SLOPoint{}
	for _, pt := range points {
		for _, pol := range sloPackPolicies {
			out, err := l.RunClassedContext(ctx, pt.mix, pol, pt.classes)
			if err != nil {
				return err
			}
			lc := out.Result.ClassLat[workload.LC]
			beIPC := 0.0
			for _, c := range out.Result.Cores {
				if c.Service == workload.BE {
					beIPC += c.IPC
				}
			}
			met := "miss"
			if lc.P99 <= sloPackBudget {
				met = "met"
			}
			detail.AddRow(fmt.Sprint(pt.beCores), pol,
				fmt.Sprint(lc.P99), fmt.Sprint(lc.P999),
				fmt.Sprintf("%.4f", metrics.Attainment(&lc.Hist, sloPackBudget)),
				fmt.Sprintf("%.3f", beIPC), met)
			pointsByPolicy[pol] = append(pointsByPolicy[pol], metrics.SLOPoint{
				Policy: pol, BECores: pt.beCores, LCTail: lc.P99, BEIPC: beIPC})
		}
	}
	emit(detail, "slo-pack-detail")

	summary := report.NewTable(
		fmt.Sprintf("SLO battleground: max BE throughput at fixed LC p99 <= %d cycles", sloPackBudget),
		"policy", "best BE cores", "BE IPC @ SLO", "LC p99 there")
	for _, pol := range sloPackPolicies {
		best, ok := metrics.MaxBEAtSLO(pointsByPolicy[pol], sloPackBudget)
		if !ok {
			summary.AddRow(pol, "-", "SLO missed at every density", "-")
			continue
		}
		summary.AddRow(pol, fmt.Sprint(best.BECores),
			fmt.Sprintf("%.3f", best.BEIPC), fmt.Sprint(best.LCTail))
	}
	emit(summary, "slo-pack")
	return nil
}

// energy compares the DRAM energy cost of the scheduling policies on the
// 4-core MEM workloads: policies that preserve row-buffer locality (fewer
// activations) move the same data for less dynamic energy — a dimension the
// paper does not evaluate.
func energy(ctx context.Context, l *lab.Lab) error {
	if err := l.PrimeContext(ctx, workload.MixesFor(4, "MEM"), figure2Policies); err != nil {
		return err
	}
	t := report.NewTable("Energy: dynamic DRAM energy per kilo-instruction (nJ/KI), 4-core MEM workloads",
		append([]string{"workload"}, figure2Policies...)...)
	for _, mix := range workload.MixesFor(4, "MEM") {
		row := []string{mix.Name}
		for _, pol := range figure2Policies {
			out, err := l.RunContext(ctx, mix, pol)
			if err != nil {
				return err
			}
			e := out.Result.Energy
			dynamic := e.TotalNJ - e.BackgroundNJ
			var instr uint64
			for _, c := range out.Result.Cores {
				instr += c.Retired
			}
			row = append(row, fmt.Sprintf("%.1f", dynamic*1000/float64(instr)))
		}
		t.AddRow(row...)
	}
	emit(t, "energy")
	return nil
}

module memsched

go 1.22

package memsched_test

import (
	"context"
	"errors"
	"testing"

	"memsched"
)

const apiSlice = 20_000

func TestPublicConfigDefaults(t *testing.T) {
	cfg := memsched.DefaultConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 4 || cfg.Core.ROBSize != 196 {
		t.Fatalf("unexpected defaults: %d cores, ROB %d", cfg.Cores, cfg.Core.ROBSize)
	}
}

func TestPublicCatalog(t *testing.T) {
	if got := len(memsched.Apps()); got != 26 {
		t.Fatalf("Apps() = %d, want 26", got)
	}
	if got := len(memsched.Mixes()); got != 36 {
		t.Fatalf("Mixes() = %d, want 36", got)
	}
	if got := len(memsched.MixesFor(4, "MEM")); got != 6 {
		t.Fatalf("MixesFor(4, MEM) = %d, want 6", got)
	}
	a, err := memsched.AppByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if a.Code != 'k' || a.Class != memsched.MEM {
		t.Fatalf("mcf = %+v", a)
	}
	if _, err := memsched.AppByCode('k'); err != nil {
		t.Fatal(err)
	}
	if len(memsched.PolicyNames()) < 6 {
		t.Fatal("policy registry too small")
	}
}

func TestPublicRunSpec(t *testing.T) {
	mix, err := memsched.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	spec := memsched.RunSpec{Mix: mix, Policy: "me-lreq", Instr: apiSlice, Seed: memsched.EvalSeed}
	res, err := memsched.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 || res.TotalCycles == 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicRunCancellation(t *testing.T) {
	mix, err := memsched.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = memsched.Run(ctx, memsched.RunSpec{Mix: mix, Policy: "hf-rf", Instr: apiSlice})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestPublicProfileAndMetrics(t *testing.T) {
	app, err := memsched.AppByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	p, err := memsched.ProfileAppContext(context.Background(), app, apiSlice, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	if p.ME <= 0 || p.IPC <= 0 {
		t.Fatalf("profile = %+v", p)
	}
	if err := memsched.ClassifyContext(context.Background(), app, &p, apiSlice, memsched.ProfileSeed); err != nil {
		t.Fatal(err)
	}
	if p.Class != memsched.MEM {
		t.Fatalf("swim classified %v", p.Class)
	}
	sp, err := memsched.SMTSpeedup([]float64{1, 1}, []float64{2, 2})
	if err != nil || sp != 1 {
		t.Fatalf("SMTSpeedup = %v, %v", sp, err)
	}
	u, err := memsched.Unfairness([]float64{1, 1}, []float64{2, 2})
	if err != nil || u != 1 {
		t.Fatalf("Unfairness = %v, %v", u, err)
	}
}

// strictRR is a minimal custom policy: pure arrival order.
type strictRR struct{ last int }

func (p *strictRR) Name() string { return "strict-age" }

func (p *strictRR) Pick(cands []memsched.Candidate, ctx *memsched.PolicyContext) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Req.Arrive < cands[best].Req.Arrive {
			best = i
		}
	}
	return best
}

func TestPublicCustomPolicy(t *testing.T) {
	mix, err := memsched.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsched.NewSystem(memsched.Options{
		CustomPolicy: &strictRR{},
		Apps:         apps,
		Seed:         memsched.EvalSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(apiSlice, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "strict-age" {
		t.Fatalf("policy label = %q", res.Policy)
	}
}

func TestPublicNewPolicy(t *testing.T) {
	p, err := memsched.NewPolicy("me-lreq", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "me-lreq" {
		t.Fatalf("Name = %q", p.Name())
	}
	if _, err := memsched.NewPolicy("bogus", 4); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

package memsched

import (
	"memsched/internal/sim"
)

// This file quarantines the pre-context compatibility wrappers. They are
// slated for removal in a future major revision: no example, command, or
// internal caller uses them anymore, and new code must use the context-aware
// entry points (Run, ProfileAppContext, ProfileAllContext, ClassifyContext).
// Each wrapper stays a thin, behavior-identical shim until then —
// deprecated_test.go pins that equivalence.

// RunMix runs a Table 3 workload under the named policy. mes supplies the
// per-core memory-efficiency values (nil uses the paper's Table 2 numbers).
//
// Deprecated: use Run, which takes a context and a RunSpec. RunMix is slated
// for removal.
func RunMix(mix Mix, policy string, instrPerCore uint64, mes []float64, seed uint64) (Result, error) {
	return sim.RunMix(mix, policy, instrPerCore, mes, seed)
}

// ProfileApp is ProfileAppContext under context.Background().
//
// Deprecated: use ProfileAppContext, which supports cancellation. ProfileApp
// is slated for removal.
func ProfileApp(app App, instr uint64, seed uint64) (Profile, error) {
	return sim.ProfileApp(app, instr, seed)
}

// ProfileAll is ProfileAllContext under context.Background().
//
// Deprecated: use ProfileAllContext, which supports cancellation. ProfileAll
// is slated for removal.
func ProfileAll(apps []App, instr uint64, seed uint64) ([]Profile, []float64, error) {
	return sim.ProfileAll(apps, instr, seed)
}

// Classify is ClassifyContext under context.Background().
//
// Deprecated: use ClassifyContext, which supports cancellation. Classify is
// slated for removal.
func Classify(app App, p *Profile, instr uint64, seed uint64) error {
	return sim.Classify(app, p, instr, seed)
}

// Benchmarks regenerating each table and figure of the paper at reduced
// scale (one testing.B benchmark per artifact; cmd/experiments produces the
// full-size versions). Custom metrics attach the scientifically meaningful
// numbers — SMT speedups, latencies, unfairness — to the benchmark output,
// so `go test -bench=.` doubles as a miniature reproduction run.
package memsched_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memsched"
	"memsched/internal/lab"
	"memsched/internal/sweepd"
	"memsched/internal/trace"
	"memsched/internal/workload"
)

// benchSlice keeps per-iteration cost small; the shapes already show at this
// scale, absolute magnitudes need cmd/experiments' longer runs.
const benchSlice = 40_000

func mustMix(b *testing.B, name string) memsched.Mix {
	b.Helper()
	mix, err := memsched.MixByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return mix
}

func mixVectors(b *testing.B, mix memsched.Mix) (mes, singles []float64) {
	b.Helper()
	ctx := context.Background()
	apps, err := mix.Apps()
	if err != nil {
		b.Fatal(err)
	}
	_, mes, err = memsched.ProfileAllContext(ctx, apps, benchSlice, memsched.ProfileSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range apps {
		p, err := memsched.ProfileAppContext(ctx, a, benchSlice, memsched.EvalSeed)
		if err != nil {
			b.Fatal(err)
		}
		singles = append(singles, p.IPC)
	}
	return mes, singles
}

// benchRun is the evaluation-seed Run shorthand the benchmarks share.
func benchRun(mix memsched.Mix, policy string, mes []float64) (memsched.Result, error) {
	return memsched.Run(context.Background(), memsched.RunSpec{
		Mix: mix, Policy: policy, Instr: benchSlice, ME: mes, Seed: memsched.EvalSeed,
	})
}

// BenchmarkTable1ConfigValidate regenerates Table 1's parameter set.
func BenchmarkTable1ConfigValidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4, 8} {
			cfg := memsched.DefaultConfig(n)
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Profiling measures the profiling methodology (Equation 1)
// on a spread of applications covering the ME range.
func BenchmarkTable2Profiling(b *testing.B) {
	codes := []byte{'e', 'c', 'i', 'n', 'a'}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lastME float64 = -1
		for _, code := range codes {
			app, err := memsched.AppByCode(code)
			if err != nil {
				b.Fatal(err)
			}
			p, err := memsched.ProfileAppContext(context.Background(), app, benchSlice, memsched.ProfileSeed)
			if err != nil {
				b.Fatal(err)
			}
			if p.ME < lastME {
				b.Fatalf("ME ordering violated at %s", app.Name)
			}
			lastME = p.ME
		}
	}
}

// BenchmarkTable3WorkloadGen exercises workload construction: every mix
// resolved and every application's generator producing instructions.
func BenchmarkTable3WorkloadGen(b *testing.B) {
	var ins trace.Instr
	_ = ins
	for i := 0; i < b.N; i++ {
		for _, mix := range memsched.Mixes() {
			apps, err := mix.Apps()
			if err != nil {
				b.Fatal(err)
			}
			if len(apps) != mix.Cores() {
				b.Fatal("mix size mismatch")
			}
		}
	}
}

// BenchmarkFig2SpeedupSweep runs one memory-intensive 4-core workload under
// all five evaluated policies and reports their SMT speedups.
func BenchmarkFig2SpeedupSweep(b *testing.B) {
	mix := mustMix(b, "4MEM-1")
	mes, singles := mixVectors(b, mix)
	policies := []string{"hf-rf", "me", "rr", "lreq", "me-lreq"}
	speedups := make([]float64, len(policies))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			res, err := benchRun(mix, pol, mes)
			if err != nil {
				b.Fatal(err)
			}
			sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
			if err != nil {
				b.Fatal(err)
			}
			speedups[pi] = sp
		}
	}
	b.StopTimer()
	for pi, pol := range policies {
		b.ReportMetric(speedups[pi], "speedup-"+pol)
	}
}

// BenchmarkFig2EightCore runs the largest configuration (8 cores), where the
// paper reports the biggest ME-LREQ gains.
func BenchmarkFig2EightCore(b *testing.B) {
	mix := mustMix(b, "8MEM-4")
	mes, singles := mixVectors(b, mix)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := benchRun(mix, "hf-rf", mes)
		if err != nil {
			b.Fatal(err)
		}
		best, err := benchRun(mix, "me-lreq", mes)
		if err != nil {
			b.Fatal(err)
		}
		spBase, err := memsched.SMTSpeedup(base.IPCs(), singles)
		if err != nil {
			b.Fatal(err)
		}
		spBest, err := memsched.SMTSpeedup(best.IPCs(), singles)
		if err != nil {
			b.Fatal(err)
		}
		gain = spBest/spBase - 1
	}
	b.StopTimer()
	b.ReportMetric(gain*100, "melreq-gain-%")
}

// BenchmarkFig3FixedPriority compares the arbitrary fixed orders of
// Section 5.2 against HF-RF and ME on the workload the paper highlights
// (4MEM-1: FIX-3210 hurts it, FIX-0123 helps slightly).
func BenchmarkFig3FixedPriority(b *testing.B) {
	mix := mustMix(b, "4MEM-1")
	mes, singles := mixVectors(b, mix)
	policies := []string{"hf-rf", "me", "fix:3210", "fix:0123"}
	speedups := make([]float64, len(policies))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			res, err := benchRun(mix, pol, mes)
			if err != nil {
				b.Fatal(err)
			}
			sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
			if err != nil {
				b.Fatal(err)
			}
			speedups[pi] = sp
		}
	}
	b.StopTimer()
	for pi, pol := range policies {
		b.ReportMetric(speedups[pi], "speedup-"+pol)
	}
}

// BenchmarkFig4ReadLatency reports the average memory read latency under the
// baseline and under ME-LREQ (paper Figure 4 left: ME-LREQ is lowest among
// the balanced schemes).
func BenchmarkFig4ReadLatency(b *testing.B) {
	mix := mustMix(b, "4MEM-1")
	mes, _ := mixVectors(b, mix)
	var latBase, latBest float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := benchRun(mix, "hf-rf", mes)
		if err != nil {
			b.Fatal(err)
		}
		best, err := benchRun(mix, "me-lreq", mes)
		if err != nil {
			b.Fatal(err)
		}
		latBase, latBest = base.AvgReadLatency, best.AvgReadLatency
	}
	b.StopTimer()
	b.ReportMetric(latBase, "lat-hf-rf")
	b.ReportMetric(latBest, "lat-me-lreq")
}

// BenchmarkFig5Unfairness reports the unfairness metric for the fixed ME
// scheme vs ME-LREQ (paper Figure 5: ME is the least fair, ME-LREQ improves
// on the baseline).
func BenchmarkFig5Unfairness(b *testing.B) {
	mix := mustMix(b, "4MEM-5")
	mes, singles := mixVectors(b, mix)
	var uME, uMELREQ float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resME, err := benchRun(mix, "me", mes)
		if err != nil {
			b.Fatal(err)
		}
		resML, err := benchRun(mix, "me-lreq", mes)
		if err != nil {
			b.Fatal(err)
		}
		if uME, err = memsched.Unfairness(resME.IPCs(), singles); err != nil {
			b.Fatal(err)
		}
		if uMELREQ, err = memsched.Unfairness(resML.IPCs(), singles); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(uME, "unfairness-me")
	b.ReportMetric(uMELREQ, "unfairness-me-lreq")
}

// BenchmarkAblationQuantization compares exact division against the paper's
// 10-bit hardware tables (the approximation argued for in Section 3.2).
func BenchmarkAblationQuantization(b *testing.B) {
	mix := mustMix(b, "4MEM-1")
	mes, singles := mixVectors(b, mix)
	apps, err := mix.Apps()
	if err != nil {
		b.Fatal(err)
	}
	run := func(bits int) float64 {
		cfg := memsched.DefaultConfig(len(apps))
		cfg.Memory.PriorityBits = bits
		sys, err := memsched.NewSystem(memsched.Options{
			Config: &cfg, Policy: "me-lreq", Apps: apps, ME: mes, Seed: memsched.EvalSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(benchSlice, 0)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			b.Fatal(err)
		}
		return sp
	}
	var exact, quant float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact = run(0)
		quant = run(10)
	}
	b.StopTimer()
	b.ReportMetric(exact, "speedup-exact")
	b.ReportMetric(quant, "speedup-10bit")
}

// BenchmarkSweepMatrix measures the parallel experiment engine end to end:
// a fresh lab primes a small (mix, policy) matrix through internal/runner's
// worker pool each iteration — profiling, single-core references and every
// evaluation included — so regressions in the engine's dispatch or in lab
// caching show up here rather than only in full cmd/experiments runs.
func BenchmarkSweepMatrix(b *testing.B) {
	mixes := workload.MixesFor(2, "MEM")[:2]
	policies := []string{"hf-rf", "lreq", "me-lreq"}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := lab.New(lab.Options{Instr: benchSlice, ProfInstr: benchSlice, Workers: 0})
		if err := l.Prime(mixes, policies); err != nil {
			b.Fatal(err)
		}
		out, err := l.Run(mixes[0], "me-lreq")
		if err != nil {
			b.Fatal(err)
		}
		speedup = out.Speedup
	}
	b.StopTimer()
	b.ReportMetric(speedup, "speedup-me-lreq")
}

// BenchmarkFig3MemoryBound measures simulation throughput on a fully
// memory-bound workload (8MEM-1: eight MEM-class applications), where cores
// spend most cycles stalled on DRAM and the quiescence-aware run loop has
// the most cycles to skip. The skip-ratio metric is the fraction of simulated
// cycles the next-event loop jumped over instead of ticking.
func BenchmarkFig3MemoryBound(b *testing.B) {
	mix := mustMix(b, "8MEM-1")
	spec := memsched.RunSpec{Mix: mix, Policy: "hf-rf", Instr: benchSlice, Seed: memsched.EvalSeed}
	// Reference pass with next-event advance disabled, timed outside the
	// benchmark loop: skip-speedup is the wall-clock ratio naive/skipping.
	naiveStart := time.Now()
	naiveSpec := spec
	naiveSpec.NoCycleSkip = true
	if _, err := memsched.Run(context.Background(), naiveSpec); err != nil {
		b.Fatal(err)
	}
	naive := time.Since(naiveStart)
	var cycles, skipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := memsched.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.TotalCycles
		skipped += res.SkippedCycles
	}
	b.StopTimer()
	if cycles > 0 {
		b.ReportMetric(float64(skipped)/float64(cycles), "skip-ratio")
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		perRun := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(naive.Seconds()/perRun, "skip-speedup")
	}
}

// BenchmarkParallelScaling compares the serial run loop against epoch-sharded
// parallel execution at 4, 8 and 16 simulated cores. The parallel arm uses
// the auto setting (ParallelCores: 0): on a single-CPU host it falls back to
// the serial loop and the two arms coincide, so the committed snapshot stays
// machine-independent; on a multi-core host the win-coverage metric reports
// the fraction of simulated cycles executed inside parallel windows and the
// serial/parallel ns/op ratio is the observed speedup. The 16-core machine
// cycles the 8MEM-4 applications (Table 3 tops out at eight cores).
func BenchmarkParallelScaling(b *testing.B) {
	base, err := mustMix(b, "8MEM-4").Apps()
	if err != nil {
		b.Fatal(err)
	}
	for _, cores := range []int{4, 8, 16} {
		apps := make([]workload.App, cores)
		for i := range apps {
			apps[i] = base[i%len(base)]
		}
		for _, arm := range []struct {
			name     string
			parallel int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("%s-%dc", arm.name, cores), func(b *testing.B) {
				cfg := memsched.DefaultConfig(cores)
				var cycles, winCycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys, err := memsched.NewSystem(memsched.Options{
						Config: &cfg, Policy: "hf-rf", Apps: apps,
						Seed: memsched.EvalSeed, ParallelCores: arm.parallel,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := sys.Run(benchSlice/4, 0)
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.TotalCycles
					_, wc := sys.ParallelWindows()
					winCycles += wc
				}
				b.StopTimer()
				if b.Elapsed() > 0 {
					b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
				}
				if cycles > 0 {
					b.ReportMetric(float64(winCycles)/float64(cycles), "win-coverage")
				}
			})
		}
	}
}

// BenchmarkSweepdThroughput measures the distributed sweep service's job
// pipeline — submit, claim, complete, aggregate over loopback HTTP with stub
// executors — in jobs per second. The single arm is the pre-batching wire
// protocol on a single-mutex coordinator (one job per claim/complete round
// trip); the batched arm claims and completes 32 jobs per round trip against
// a sharded coordinator. The jobs/sec ratio between the arms is the batching
// payoff, which must hold on a single-CPU host: it comes from removing round
// trips, not from parallelism.
func BenchmarkSweepdThroughput(b *testing.B) {
	const jobs = 1000
	for _, arm := range []struct {
		name          string
		batch, shards int
	}{{"single", 1, 1}, {"batched", 32, sweepd.DefaultShards}} {
		b.Run(arm.name, func(b *testing.B) {
			var jobsPerSec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sweepd.LoadTest(context.Background(), sweepd.LoadOptions{
					Jobs: jobs, Workers: 2, Batch: arm.batch, Shards: arm.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				jobsPerSec = rep.JobsPerSec
			}
			b.StopTimer()
			b.ReportMetric(jobsPerSec, "jobs/sec")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// cycles per second on a 4-core memory-intensive run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	mix := mustMix(b, "4MEM-1")
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := benchRun(mix, "me-lreq", nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.TotalCycles
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	}
}

package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

type val struct {
	N int `json:"n"`
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("job-%02d", i)
	}
	return out
}

func TestDeterministicAdmissionOrder(t *testing.T) {
	jobs := NewJobs(keys(32))
	fn := func(ctx context.Context, j Job) (val, error) {
		// Finish in scrambled wall-clock order.
		time.Sleep(time.Duration((j.ID*7)%5) * time.Millisecond)
		return val{N: j.ID * j.ID}, nil
	}
	for _, workers := range []int{1, 4, 16} {
		outs, err := Run(context.Background(), jobs, fn, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			if o.Job.ID != i || o.Value.N != i*i || o.Err != nil {
				t.Fatalf("workers=%d: slot %d holds %+v", workers, i, o)
			}
		}
	}
}

func TestJobValidation(t *testing.T) {
	fn := func(context.Context, Job) (val, error) { return val{}, nil }
	if _, err := Run(context.Background(), []Job{{ID: 0, Key: ""}}, fn, Options{}); err == nil {
		t.Fatal("empty key accepted")
	}
	dup := []Job{{ID: 0, Key: "a"}, {ID: 1, Key: "a"}}
	if _, err := Run(context.Background(), dup, fn, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := NewJobs(keys(8))
	fn := func(ctx context.Context, j Job) (val, error) {
		if j.ID == 3 {
			panic("policy exploded")
		}
		return val{N: j.ID}, nil
	}
	outs, err := Run(context.Background(), jobs, fn, Options{Workers: 4})
	if err != nil {
		t.Fatalf("panic aborted the sweep: %v", err)
	}
	for i, o := range outs {
		if i == 3 {
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("job 3 error = %v, want PanicError", o.Err)
			}
			if pe.Job.Key != "job-03" || len(pe.Stack) == 0 {
				t.Fatalf("panic error lacks context: %+v", pe)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("healthy job %d failed: %v", i, o.Err)
		}
	}
	if err := FirstError(outs); err == nil || !errors.As(err, new(*PanicError)) {
		t.Fatalf("FirstError = %v", err)
	}
}

func TestJobTimeout(t *testing.T) {
	jobs := NewJobs(keys(3))
	fn := func(ctx context.Context, j Job) (val, error) {
		if j.ID == 1 {
			<-ctx.Done() // simulate a run that only stops when told to
			return val{}, ctx.Err()
		}
		return val{N: j.ID}, nil
	}
	outs, err := Run(context.Background(), jobs, fn, Options{Workers: 2, JobTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[1].Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job error = %v", outs[1].Err)
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatal("timeout leaked into other jobs")
	}
}

func TestCancellationPromptWithoutGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	jobs := NewJobs(keys(64))
	var started atomic.Int32
	release := make(chan struct{})
	fn := func(ctx context.Context, j Job) (val, error) {
		started.Add(1)
		select {
		case <-ctx.Done():
			return val{}, ctx.Err()
		case <-release:
			return val{N: j.ID}, nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	start := time.Now()
	outs, err := Run(ctx, jobs, fn, Options{Workers: 4, Progress: 50 * time.Millisecond,
		Logf: t.Logf})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	// "Within one progress interval": the pool must not wait for the queue.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	close(release)
	ranOK, cancelled := 0, 0
	for _, o := range outs {
		switch {
		case o.Err == nil:
			ranOK++
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("unexpected outcome error: %v", o.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("no job reported cancellation")
	}
	// All pool goroutines must have exited; poll briefly for the runtime to
	// settle before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt.json")
	jobs := NewJobs(keys(10))
	var executions atomic.Int32
	blockAfter := int32(4)
	ctx, cancel := context.WithCancel(context.Background())
	fn := func(c context.Context, j Job) (val, error) {
		if executions.Add(1) > blockAfter {
			cancel() // simulate an interruption partway through the sweep
			<-c.Done()
			return val{}, c.Err()
		}
		return val{N: j.ID * 10}, nil
	}
	opts := Options{Workers: 1, Checkpoint: path, Meta: "m1"}
	if _, err := Run(ctx, jobs, fn, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("first pass returned %v, want context.Canceled", err)
	}
	firstPass := executions.Load()
	if firstPass >= 10 {
		t.Fatal("interruption did not interrupt")
	}

	// The partial checkpoint must hold exactly the completed jobs.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Jobs map[string]json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Jobs) != int(blockAfter) {
		t.Fatalf("checkpoint holds %d jobs, want %d", len(file.Jobs), blockAfter)
	}

	// Resume: completed jobs are skipped, the rest execute, values line up.
	executions.Store(0)
	blockAfter = 100
	fresh := func(c context.Context, j Job) (val, error) {
		executions.Add(1)
		return val{N: j.ID * 10}, nil
	}
	outs, err := Run(context.Background(), jobs, fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for i, o := range outs {
		if o.Err != nil || o.Value.N != i*10 {
			t.Fatalf("slot %d after resume: %+v", i, o)
		}
		if o.Resumed {
			resumed++
		}
	}
	if resumed != 4 || executions.Load() != 6 {
		t.Fatalf("resume skipped %d and executed %d, want 4 and 6", resumed, executions.Load())
	}

	// A checkpoint from a different matrix must not be spliced in: the run
	// starts clean (every job re-executes) and the stale file moves to .bak.
	executions.Store(0)
	outs, err = Run(context.Background(), jobs, fresh, Options{Checkpoint: path, Meta: "other", Logf: t.Logf})
	if err != nil {
		t.Fatalf("meta mismatch refused the run: %v", err)
	}
	for i, o := range outs {
		if o.Resumed || o.Err != nil || o.Value.N != i*10 {
			t.Fatalf("slot %d after meta mismatch: %+v", i, o)
		}
	}
	if executions.Load() != 10 {
		t.Fatalf("meta mismatch executed %d jobs, want all 10", executions.Load())
	}
	if _, err := os.Stat(path + ".bak"); err != nil {
		t.Fatalf("stale checkpoint not preserved: %v", err)
	}
}

// TestCheckpointCorruptionRecovery pins the recovery contract: a truncated or
// garbage checkpoint, an unknown version, and a mismatched Meta fingerprint
// all fall back to a clean start — never an error, never silent reuse of
// stale results — with the damaged file preserved as .bak.
func TestCheckpointCorruptionRecovery(t *testing.T) {
	jobs := NewJobs(keys(4))
	fn := func(ctx context.Context, j Job) (val, error) { return val{N: j.ID + 1}, nil }

	// A valid checkpoint to corrupt, written under meta "m1".
	seedCheckpoint := func(t *testing.T, path string) []byte {
		t.Helper()
		if _, err := Run(context.Background(), jobs, fn, Options{Checkpoint: path, Meta: "m1"}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	cases := []struct {
		name    string
		corrupt func(valid []byte) []byte
		meta    string
	}{
		{"truncated", func(v []byte) []byte { return v[:len(v)/3] }, "m1"},
		{"garbage", func(v []byte) []byte { return []byte("{\x00\xff not json") }, "m1"},
		{"version", func(v []byte) []byte {
			return []byte(`{"version": 999, "meta": "m1", "jobs": {"job-00": {"n": 777}}}`)
		}, "m1"},
		{"meta-mismatch", func(v []byte) []byte { return v }, "m2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ckpt.json")
			valid := seedCheckpoint(t, path)
			if err := os.WriteFile(path, tc.corrupt(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			var executed atomic.Int32
			counting := func(ctx context.Context, j Job) (val, error) {
				executed.Add(1)
				return val{N: j.ID + 1}, nil
			}
			outs, err := Run(context.Background(), jobs, counting,
				Options{Checkpoint: path, Meta: tc.meta, Logf: t.Logf})
			if err != nil {
				t.Fatalf("recovery errored instead of starting clean: %v", err)
			}
			// Clean start: nothing resumed (no stale reuse), everything re-ran.
			if executed.Load() != int32(len(jobs)) {
				t.Fatalf("executed %d jobs, want %d", executed.Load(), len(jobs))
			}
			for i, o := range outs {
				if o.Resumed || o.Err != nil || o.Value.N != i+1 {
					t.Fatalf("slot %d: %+v", i, o)
				}
			}
			if _, err := os.Stat(path + ".bak"); err != nil {
				t.Fatalf("damaged checkpoint not moved aside: %v", err)
			}
			// The rewritten checkpoint must be healthy: a third run resumes all.
			outs, err = Run(context.Background(), jobs, counting, Options{Checkpoint: path, Meta: tc.meta})
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range outs {
				if !o.Resumed {
					t.Fatalf("slot %d not resumed from rewritten checkpoint", i)
				}
			}
		})
	}
}

// TestCheckpointInMemory pins LoadCheckpoint("") as a valid disk-free store —
// the mode the sweep coordinator uses when no cache path is configured.
func TestCheckpointInMemory(t *testing.T) {
	cp, err := LoadCheckpoint("", "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.Lookup("a"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := cp.Record("a", val{N: 7}); err != nil {
		t.Fatal(err)
	}
	raw, ok := cp.Lookup("a")
	if !ok || cp.Len() != 1 {
		t.Fatalf("Lookup=%v Len=%d after Record", ok, cp.Len())
	}
	var v val
	if err := json.Unmarshal(raw, &v); err != nil || v.N != 7 {
		t.Fatalf("round trip: %v %+v", err, v)
	}
	// RawMessage values must be stored verbatim — the byte-determinism the
	// result cache relies on.
	blob := json.RawMessage(`{"n":  9}`)
	if err := cp.Record("b", blob); err != nil {
		t.Fatal(err)
	}
	got, _ := cp.Lookup("b")
	if string(got) != string(blob) {
		t.Fatalf("raw value altered: %q != %q", got, blob)
	}
}

// TestCheckpointRecordBatch pins the batched write path the sweep
// coordinator's sharded cache uses: one flush for the whole batch, values
// stored verbatim, and the file loadable by a fresh Checkpoint.
func TestCheckpointRecordBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.ckpt.json")
	cp, err := LoadCheckpoint(path, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.RecordBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("empty batch flushed a file")
	}
	entries := []BatchEntry{
		{Key: "a", Value: val{N: 1}},
		{Key: "b", Value: json.RawMessage(`{"n":  2}`)},
		{Key: "c", Value: val{N: 3}},
	}
	if err := cp.RecordBatch(entries); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", cp.Len(), len(entries))
	}
	// RawMessage entries keep their exact bytes — the determinism contract
	// batched completions inherit from Record.
	got, ok := cp.Lookup("b")
	if !ok || string(got) != `{"n":  2}` {
		t.Fatalf("raw batch value altered: %q", got)
	}
	reload, err := LoadCheckpoint(path, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if reload.Len() != len(entries) {
		t.Fatalf("reloaded %d entries, want %d", reload.Len(), len(entries))
	}
	for _, e := range entries {
		if _, ok := reload.Lookup(e.Key); !ok {
			t.Fatalf("entry %q missing after reload", e.Key)
		}
	}
	// A nil checkpoint ignores batches, like Record.
	var none *Checkpoint
	if err := none.RecordBatch(entries); err != nil {
		t.Fatalf("nil checkpoint: %v", err)
	}
}

func TestCheckpointSurvivesFailedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	jobs := NewJobs(keys(4))
	fn := func(ctx context.Context, j Job) (val, error) {
		if j.ID == 2 {
			return val{}, errors.New("boom")
		}
		return val{N: j.ID}, nil
	}
	if _, err := Run(context.Background(), jobs, fn, Options{Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	// Failed jobs are not checkpointed: the resume re-runs them.
	var reran atomic.Int32
	fn2 := func(ctx context.Context, j Job) (val, error) {
		reran.Add(1)
		return val{N: j.ID}, nil
	}
	outs, err := Run(context.Background(), jobs, fn2, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 1 || outs[2].Err != nil || outs[2].Value.N != 2 {
		t.Fatalf("failed job not retried: reran=%d outcome=%+v", reran.Load(), outs[2])
	}
}

func TestReflectValueRoundTrip(t *testing.T) {
	// Values restored from a checkpoint must equal freshly computed ones.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	jobs := NewJobs(keys(5))
	fn := func(ctx context.Context, j Job) (map[string]float64, error) {
		return map[string]float64{"speedup": float64(j.ID) * 1.5}, nil
	}
	direct, err := Run(context.Background(), jobs, fn, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Run(context.Background(), jobs, fn, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if !restored[i].Resumed {
			t.Fatalf("slot %d not resumed", i)
		}
		if !reflect.DeepEqual(direct[i].Value, restored[i].Value) {
			t.Fatalf("slot %d: %v != %v", i, direct[i].Value, restored[i].Value)
		}
	}
}

// Package runner is the parallel experiment engine: it fans a job matrix —
// (workload, policy, seed, replication) tuples, knob sweeps, anything that
// can be keyed — across a bounded worker pool and aggregates the outcomes in
// deterministic admission order, so a parallel sweep is byte-identical to a
// serial one.
//
// The engine adds the operational layer a paper-scale sweep needs and a bare
// WaitGroup fan-out lacks:
//
//   - context cancellation, observed mid-simulation (sim.System polls its
//     context every sim.CancelCheckCycles cycles), so Ctrl-C returns within
//     milliseconds instead of after the current multi-second run;
//   - per-job panic isolation: a crashed run (e.g. a buggy custom policy)
//     becomes that job's *PanicError instead of killing the whole sweep;
//   - per-job timeouts;
//   - live progress reporting at a fixed interval;
//   - JSON checkpointing: every completed job is persisted immediately, and
//     a later invocation with the same checkpoint file resumes, skipping the
//     jobs already done.
//
// internal/lab, cmd/experiments and cmd/sweep all run on this engine.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work: a stable Key (the checkpoint identity) plus the
// admission ID that fixes its slot in the aggregated output.
type Job struct {
	ID  int    `json:"id"`
	Key string `json:"key"`
}

// NewJobs assigns sequential admission IDs to keys, in order.
func NewJobs(keys []string) []Job {
	jobs := make([]Job, len(keys))
	for i, k := range keys {
		jobs[i] = Job{ID: i, Key: k}
	}
	return jobs
}

// Func executes one job. The context it receives is the pool context,
// narrowed by the per-job timeout when one is configured; implementations
// should pass it down into sim so cancellation lands mid-simulation.
type Func[T any] func(ctx context.Context, job Job) (T, error)

// Options configures a Run.
type Options struct {
	// Workers bounds the pool; 0 selects GOMAXPROCS. Workers=1 is the
	// serial reference ordering every other width must reproduce.
	Workers int
	// JobTimeout bounds each job's wall clock (0 = unbounded). An expired
	// job fails with context.DeadlineExceeded; the sweep continues.
	JobTimeout time.Duration
	// Progress is the interval between progress lines (0 disables them).
	Progress time.Duration
	// Logf receives progress lines (nil disables them).
	Logf func(format string, args ...any)
	// Checkpoint is the path of the JSON checkpoint file ("" disables
	// checkpointing). Completed jobs are flushed to it as they finish; if
	// the file already exists, its jobs are resumed instead of re-run.
	Checkpoint string
	// Meta fingerprints the matrix (instruction counts, seeds, flags...).
	// It is stored in the checkpoint; a checkpoint written under a different
	// Meta — or one that fails to decode — is moved aside to Checkpoint+".bak"
	// and the sweep starts clean (see LoadCheckpoint). Stale results are never
	// spliced in, and a corrupt file never refuses the run.
	Meta string
}

// Outcome is one job's result in admission order.
type Outcome[T any] struct {
	Job     Job
	Value   T
	Err     error
	Resumed bool          // satisfied from the checkpoint, not executed
	Elapsed time.Duration // execution wall clock (zero when resumed)
}

// PanicError wraps a panic raised inside a job.
type PanicError struct {
	Job   Job
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Job.Key, e.Value)
}

// FirstError returns the first failed outcome's error in admission order
// (wrapped with its job key), or nil when every job succeeded.
func FirstError[T any](outs []Outcome[T]) error {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("runner: job %q: %w", o.Job.Key, o.Err)
		}
	}
	return nil
}

// Run executes jobs on the worker pool and returns their outcomes indexed
// exactly like jobs — position i of the result is job i, whatever order the
// pool finished them in, so aggregation code iterates admission-ID order and
// produces output independent of Workers.
//
// Job failures (including panics and timeouts) do not abort the sweep; they
// are reported per-outcome (see FirstError). Run's own error is non-nil only
// when ctx was cancelled — the outcomes of jobs that never ran carry ctx's
// error too — or when the checkpoint file cannot be read or written. The
// checkpoint is flushed after every completed job, so even a cancelled or
// killed sweep resumes from everything that finished.
func Run[T any](ctx context.Context, jobs []Job, fn Func[T], opts Options) ([]Outcome[T], error) {
	outs := make([]Outcome[T], len(jobs))
	byKey := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("runner: job %d has an empty key", i)
		}
		if prev, dup := byKey[j.Key]; dup {
			return nil, fmt.Errorf("runner: jobs %d and %d share key %q", prev, i, j.Key)
		}
		byKey[j.Key] = i
		outs[i].Job = j
	}

	var cp *Checkpoint
	if opts.Checkpoint != "" {
		var err error
		cp, err = LoadCheckpoint(opts.Checkpoint, opts.Meta, opts.Logf)
		if err != nil {
			return nil, err
		}
	}
	var pending []int
	for i := range jobs {
		if raw, ok := cp.Lookup(jobs[i].Key); ok {
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("runner: checkpoint entry %q: %w", jobs[i].Key, err)
			}
			outs[i].Value = v
			outs[i].Resumed = true
			continue
		}
		pending = append(pending, i)
	}

	var completed, failed atomic.Int64
	start := time.Now()
	progressDone := make(chan struct{})
	if opts.Progress > 0 && opts.Logf != nil {
		go func() {
			tick := time.NewTicker(opts.Progress)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
					c, f := completed.Load(), failed.Load()
					opts.Logf("runner: %d/%d jobs done (%d resumed, %d failed), %s elapsed",
						int(c)+len(jobs)-len(pending), len(jobs), len(jobs)-len(pending), f,
						time.Since(start).Round(time.Millisecond))
				}
			}
		}()
	}
	defer close(progressDone)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	jobCh := make(chan int, len(pending))
	for _, i := range pending {
		jobCh <- i
	}
	close(jobCh)

	// ran[i] is written only by the worker that owns job i and read only
	// after wg.Wait, so the WaitGroup provides the happens-before edge.
	ran := make([]bool, len(outs))
	var cpErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				// Between jobs: stop picking up new work once cancelled.
				if ctx.Err() != nil {
					return
				}
				ran[i] = true
				t0 := time.Now()
				outs[i].Value, outs[i].Err = Execute(ctx, outs[i].Job, fn, opts.JobTimeout)
				outs[i].Elapsed = time.Since(t0)
				if outs[i].Err != nil {
					failed.Add(1)
					continue
				}
				completed.Add(1)
				if err := cp.Record(outs[i].Job.Key, outs[i].Value); err != nil {
					e := err
					cpErr.Store(&e)
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Jobs that never ran inherit the cancellation error so callers can
		// tell "not attempted" from "succeeded with a zero value".
		for i := range outs {
			if !outs[i].Resumed && !ran[i] {
				outs[i].Err = err
			}
		}
		return outs, err
	}
	if perr := cpErr.Load(); perr != nil {
		return outs, *perr
	}
	return outs, nil
}

// Execute runs a single job with panic isolation and an optional timeout: a
// panic inside fn becomes the job's *PanicError instead of crashing the
// process, and a positive timeout narrows ctx for the duration of the job.
// Run uses it for every pool job; the sweep service's worker loop uses it
// directly so a remote job crash is reported exactly like a local one.
func Execute[T any](ctx context.Context, job Job, fn Func[T], timeout time.Duration) (val T, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: job, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, job)
}

// Checkpoint is the persistent completed-job store: a meta-fingerprinted map
// of key -> marshaled value, flushed atomically on every Record. Run uses it
// for -resume checkpoints; the sweep service's coordinator reuses it as the
// content-addressed result cache (keys there are spec fingerprints). A nil
// *Checkpoint (no path configured) is valid and inert, so call sites need no
// branching.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	file checkpointFile
}

type checkpointFile struct {
	Version int                        `json:"version"`
	Meta    string                     `json:"meta,omitempty"`
	Jobs    map[string]json.RawMessage `json:"jobs"`
}

const checkpointVersion = 1

// LoadCheckpoint opens (or initializes) the store at path. An empty path is a
// purely in-memory store: Lookup and Record work, nothing touches disk.
//
// A file that cannot be decoded, carries an unknown version, or was written
// under a different meta fingerprint is NOT an error and is NOT spliced in:
// the stale file is moved aside to path+".bak", a warning goes to logf, and
// the run starts from a clean slate — corruption or a re-parameterized sweep
// costs re-simulation, never wrong results and never a refused run. Only I/O
// errors (unreadable file) are returned.
func LoadCheckpoint(path, meta string, logf func(format string, args ...any)) (*Checkpoint, error) {
	cp := &Checkpoint{path: path, file: checkpointFile{
		Version: checkpointVersion,
		Meta:    meta,
		Jobs:    map[string]json.RawMessage{},
	}}
	if path == "" {
		return cp, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: reading checkpoint: %w", err)
	}
	discard := func(reason string) (*Checkpoint, error) {
		if err := os.Rename(path, path+".bak"); err != nil {
			return nil, fmt.Errorf("runner: moving %s checkpoint aside: %w", reason, err)
		}
		if logf != nil {
			logf("runner: discarding checkpoint %s (%s); previous contents saved to %s.bak",
				path, reason, path)
		}
		return cp, nil
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return discard(fmt.Sprintf("corrupt: %v", err))
	}
	if f.Version != checkpointVersion {
		return discard(fmt.Sprintf("version %d, want %d", f.Version, checkpointVersion))
	}
	if f.Meta != meta {
		return discard(fmt.Sprintf("written by a different sweep: meta %q, want %q", f.Meta, meta))
	}
	if f.Jobs != nil {
		cp.file.Jobs = f.Jobs
	}
	return cp, nil
}

// Lookup returns the stored raw value for key, if present. Safe for
// concurrent use with Record.
func (cp *Checkpoint) Lookup(key string) (json.RawMessage, bool) {
	if cp == nil {
		return nil, false
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	raw, ok := cp.file.Jobs[key]
	return raw, ok
}

// Len returns the number of stored entries.
func (cp *Checkpoint) Len() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.file.Jobs)
}

// Record persists one completed job and flushes the file atomically
// (temp file + rename), so a kill mid-write cannot corrupt the checkpoint.
// json.RawMessage values are stored verbatim, byte-for-byte.
func (cp *Checkpoint) Record(key string, value any) error {
	return cp.RecordBatch([]BatchEntry{{Key: key, Value: value}})
}

// BatchEntry is one (key, value) pair of a RecordBatch.
type BatchEntry struct {
	Key   string
	Value any
}

// RecordBatch persists several completed jobs with a single file flush — the
// flush serializes the whole store, so batching turns O(batch) flushes into
// one. An empty batch is a no-op. Values follow Record's rules
// (json.RawMessage stored verbatim, anything else marshaled once).
func (cp *Checkpoint) RecordBatch(entries []BatchEntry) error {
	if cp == nil || len(entries) == 0 {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for _, e := range entries {
		raw, ok := e.Value.(json.RawMessage)
		if !ok {
			var err error
			raw, err = json.Marshal(e.Value)
			if err != nil {
				return fmt.Errorf("runner: marshaling job %q for checkpoint: %w", e.Key, err)
			}
		}
		cp.file.Jobs[e.Key] = raw
	}
	if cp.path == "" {
		return nil
	}
	blob, err := json.MarshalIndent(&cp.file, "", "  ")
	if err != nil {
		return err
	}
	tmp := cp.path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cp.path); err != nil {
		return fmt.Errorf("runner: committing checkpoint: %w", err)
	}
	return nil
}

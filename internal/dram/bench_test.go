package dram

import (
	"testing"

	"memsched/internal/addr"
	"memsched/internal/config"
)

func BenchmarkIssueClosedPage(b *testing.B) {
	cfg := config.Default(1)
	ch := NewChannel(cfg.DRAMCycles(), 2, 4)
	now := int64(0)
	c := addr.Coord{}
	for i := 0; i < b.N; i++ {
		c.Bank = i % 4
		c.Rank = (i / 4) % 2
		c.Row = int64(i)
		for !ch.CanIssue(c, now) {
			now++
		}
		res := ch.Issue(c, now, true)
		now = res.Start + 1
	}
}

func BenchmarkCanIssueScan(b *testing.B) {
	cfg := config.Default(1)
	ch := NewChannel(cfg.DRAMCycles(), 2, 4)
	coords := make([]addr.Coord, 64)
	for i := range coords {
		coords[i] = addr.Coord{Rank: i % 2, Bank: (i / 2) % 4, Row: int64(i), Col: i % 128}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range coords {
			ch.CanIssue(c, int64(i))
		}
	}
}

package dram

import (
	"testing"
	"testing/quick"

	"memsched/internal/addr"
	"memsched/internal/config"
)

func testChannel() *Channel {
	cfg := config.Default(1)
	return NewChannel(cfg.DRAMCycles(), cfg.Memory.RanksPerChan, cfg.Memory.BanksPerRank)
}

func coord(rank, bank int, row int64, col int) addr.Coord {
	return addr.Coord{Channel: 0, Rank: rank, Bank: bank, Row: row, Col: col}
}

func TestClosedAccessLatency(t *testing.T) {
	ch := testChannel()
	c := coord(0, 0, 5, 0)
	if !ch.CanIssue(c, 0) {
		t.Fatal("fresh bank should accept a transaction")
	}
	res := ch.Issue(c, 0, false)
	// Precharged bank: tRCD + tCL = 80, then 16-cycle burst.
	if res.Class != AccessClosed {
		t.Fatalf("class = %v, want closed", res.Class)
	}
	if res.DataStart != 80 || res.DataDone != 96 {
		t.Fatalf("DataStart/Done = %d/%d, want 80/96", res.DataStart, res.DataDone)
	}
}

func TestRowHitLatency(t *testing.T) {
	ch := testChannel()
	c1 := coord(0, 0, 5, 0)
	r1 := ch.Issue(c1, 0, false)
	c2 := coord(0, 0, 5, 1)
	if !ch.WouldHit(c2) {
		t.Fatal("same open row should be a predicted hit")
	}
	now := r1.DataDone
	r2 := ch.Issue(c2, now, false)
	if r2.Class != AccessHit {
		t.Fatalf("class = %v, want hit", r2.Class)
	}
	// Hit pays only tCL = 40 before the burst.
	if r2.DataStart != now+40 {
		t.Fatalf("hit DataStart = %d, want %d", r2.DataStart, now+40)
	}
}

func TestConflictLatency(t *testing.T) {
	ch := testChannel()
	r1 := ch.Issue(coord(0, 0, 5, 0), 0, false)
	now := r1.DataDone
	r2 := ch.Issue(coord(0, 0, 9, 0), now, false)
	if r2.Class != AccessConflict {
		t.Fatalf("class = %v, want conflict", r2.Class)
	}
	// Conflict pays tRP + tRCD + tCL = 120.
	if r2.DataStart != now+120 {
		t.Fatalf("conflict DataStart = %d, want %d", r2.DataStart, now+120)
	}
}

func TestAutoPrechargeClosesRow(t *testing.T) {
	ch := testChannel()
	c := coord(0, 0, 5, 0)
	r := ch.Issue(c, 0, true)
	b := ch.Bank(c)
	if b.State != BankPrecharged {
		t.Fatalf("bank state = %v, want precharged", b.State)
	}
	// Bank must be unavailable until data done + tRP.
	if b.ReadyAt != r.DataDone+40 {
		t.Fatalf("ReadyAt = %d, want %d", b.ReadyAt, r.DataDone+40)
	}
	// A later access to the same row is NOT a hit (row was closed) but is
	// cheaper than a conflict.
	if ch.WouldHit(coord(0, 0, 5, 1)) {
		t.Fatal("closed bank must not predict a hit")
	}
	r2 := ch.Issue(coord(0, 0, 5, 1), b.ReadyAt, false)
	if r2.Class != AccessClosed {
		t.Fatalf("post-precharge class = %v, want closed", r2.Class)
	}
}

func TestBankBusyRejectsIssue(t *testing.T) {
	ch := testChannel()
	c := coord(0, 1, 2, 0)
	r := ch.Issue(c, 0, false)
	if ch.CanIssue(coord(0, 1, 7, 0), r.DataDone-1) {
		t.Fatal("bank should be busy until DataDone")
	}
	if !ch.CanIssue(coord(0, 1, 7, 0), r.DataDone) {
		t.Fatal("bank should be ready at DataDone")
	}
}

func TestIssueToBusyBankPanics(t *testing.T) {
	ch := testChannel()
	ch.Issue(coord(0, 0, 1, 0), 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("issuing into a busy bank should panic")
		}
	}()
	ch.Issue(coord(0, 0, 2, 0), 1, false)
}

func TestBusSerializesBanks(t *testing.T) {
	ch := testChannel()
	// Two different banks issued at the same cycle: bank prep overlaps but
	// data bursts must not.
	r1 := ch.Issue(coord(0, 0, 1, 0), 0, false)
	r2 := ch.Issue(coord(0, 1, 1, 0), 0, false)
	if r2.DataStart < r1.DataDone {
		t.Fatalf("data bursts overlap: [%d,%d) and [%d,%d)",
			r1.DataStart, r1.DataDone, r2.DataStart, r2.DataDone)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	ch := testChannel()
	// Interleaving across banks should finish faster than tRC-serialized
	// accesses to one bank.
	var lastDone int64
	now := int64(0)
	for i := 0; i < 8; i++ {
		c := coord(i/4, i%4, 3, 0)
		for !ch.CanIssue(c, now) {
			now++
		}
		r := ch.Issue(c, now, false)
		lastDone = r.DataDone
	}
	serial := int64(8 * (40 + 40 + 16)) // 8 x closed access, no overlap
	if lastDone >= serial {
		t.Fatalf("8-bank interleave took %d cycles, not faster than serial %d", lastDone, serial)
	}
}

func TestInflightLimit(t *testing.T) {
	cfg := config.Default(1)
	ch := NewChannel(cfg.DRAMCycles(), 2, 4) // 8 banks
	issued := 0
	for rank := 0; rank < 2; rank++ {
		for bank := 0; bank < 4; bank++ {
			c := coord(rank, bank, 1, 0)
			if ch.CanIssue(c, 0) {
				ch.Issue(c, 0, false)
				issued++
			}
		}
	}
	if issued != 8 {
		t.Fatalf("issued %d transactions at cycle 0, want 8 (all banks)", issued)
	}
	// All banks busy now, and the in-flight set is full.
	if ch.CanIssue(coord(0, 0, 2, 0), 0) {
		t.Fatal("ninth concurrent transaction should be rejected")
	}
}

func TestStatsCount(t *testing.T) {
	ch := testChannel()
	r1 := ch.Issue(coord(0, 0, 1, 0), 0, false)           // closed
	r2 := ch.Issue(coord(0, 0, 1, 1), r1.DataDone, false) // hit
	ch.Issue(coord(0, 0, 2, 0), r2.DataDone, false)       // conflict
	st := ch.Stats()
	if st.Hits != 1 || st.Closed != 1 || st.Conflicts != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", st)
	}
	if st.Accesses() != 3 {
		t.Fatalf("Accesses = %d, want 3", st.Accesses())
	}
	if st.HitRate() != 1.0/3.0 {
		t.Fatalf("HitRate = %v", st.HitRate())
	}
	if st.BusBusyCycles != 3*16 {
		t.Fatalf("BusBusyCycles = %d, want 48", st.BusBusyCycles)
	}
}

func TestNextBankReady(t *testing.T) {
	ch := testChannel()
	r := ch.Issue(coord(0, 0, 1, 0), 0, false)
	coords := []addr.Coord{coord(0, 0, 2, 0), coord(0, 1, 1, 0)}
	ready, ok := ch.NextBankReady(coords)
	if !ok || ready != 0 {
		// Bank (0,1) is untouched, ready at 0.
		t.Fatalf("NextBankReady = %d,%v want 0,true", ready, ok)
	}
	ready, ok = ch.NextBankReady([]addr.Coord{coord(0, 0, 2, 0)})
	if !ok || ready != r.DataDone {
		t.Fatalf("busy-bank NextBankReady = %d, want %d", ready, r.DataDone)
	}
	if _, ok := ch.NextBankReady(nil); ok {
		t.Fatal("empty coords should report !ok")
	}
}

// TestTimingInvariants drives a channel with a pseudo-random workload and
// asserts global timing invariants: data bursts never overlap, banks never
// accept work while busy, and every completion is after its issue.
func TestTimingInvariants(t *testing.T) {
	cfg := config.Default(1)
	f := func(seed uint16) bool {
		ch := NewChannel(cfg.DRAMCycles(), 2, 4)
		rng := uint64(seed)*2654435761 + 1
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		var lastDataDone, lastDataStart int64 = -1, -1
		now := int64(0)
		for i := 0; i < 300; i++ {
			c := coord(next(2), next(4), int64(next(8)), next(16))
			for !ch.CanIssue(c, now) {
				now++
			}
			r := ch.Issue(c, now, next(2) == 0)
			if r.DataStart < now || r.DataDone <= r.DataStart {
				return false
			}
			if lastDataDone >= 0 && r.DataStart < lastDataDone && r.DataStart > lastDataStart {
				// New burst starts inside the previous burst: overlap.
				return false
			}
			if r.DataStart < lastDataDone {
				return false
			}
			lastDataDone, lastDataStart = r.DataDone, r.DataStart
			now += int64(next(20))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemConstruction(t *testing.T) {
	cfg := config.Default(4)
	sys := NewSystem(&cfg)
	if len(sys.Channels) != 2 {
		t.Fatalf("channels = %d, want 2", len(sys.Channels))
	}
	if sys.Channels[0].NumBanks() != 8 {
		t.Fatalf("banks per channel = %d, want 8", sys.Channels[0].NumBanks())
	}
	if sys.Mapper.LinesPerRow() != 128 {
		t.Fatalf("lines per row = %d, want 128", sys.Mapper.LinesPerRow())
	}
}

func TestSystemTotalStats(t *testing.T) {
	cfg := config.Default(1)
	sys := NewSystem(&cfg)
	sys.Channels[0].Issue(coord(0, 0, 1, 0), 0, false)
	sys.Channels[1].Issue(coord(0, 0, 1, 0), 0, false)
	total := sys.TotalStats()
	if total.Closed != 2 || total.Accesses() != 2 {
		t.Fatalf("TotalStats = %+v", total)
	}
}

func TestResetStatsKeepsBankState(t *testing.T) {
	ch := testChannel()
	r := ch.Issue(coord(0, 0, 5, 0), 0, false)
	ch.ResetStats()
	st := ch.Stats()
	if st.Accesses() != 0 {
		t.Fatal("stats not zeroed")
	}
	// Bank state survives: the open row still predicts a hit.
	if !ch.WouldHit(coord(0, 0, 5, 1)) {
		t.Fatal("ResetStats disturbed bank state")
	}
	if ch.BusFreeAt() != r.DataDone {
		t.Fatalf("BusFreeAt = %d, want %d", ch.BusFreeAt(), r.DataDone)
	}
}

func TestTimingAccessor(t *testing.T) {
	ch := testChannel()
	if ch.Timing().TCL != 40 {
		t.Fatalf("Timing().TCL = %d", ch.Timing().TCL)
	}
}

func TestSystemResetStats(t *testing.T) {
	cfg := config.Default(1)
	sys := NewSystem(&cfg)
	sys.Channels[0].Issue(coord(0, 0, 1, 0), 0, false)
	sys.ResetStats()
	total := sys.TotalStats()
	if total.Accesses() != 0 {
		t.Fatal("System.ResetStats left counts")
	}
}

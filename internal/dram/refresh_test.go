package dram

import (
	"testing"

	"memsched/internal/config"
)

func refreshTiming() config.DRAMCycles {
	cfg := config.Default(1)
	cfg.Memory.EnableRefresh()
	return cfg.DRAMCycles()
}

func TestRefreshDisabledByDefault(t *testing.T) {
	ch := testChannel()
	// Run far past any plausible refresh interval.
	ch.Issue(coord(0, 0, 1, 0), 100_000_000, false)
	if ch.Stats().Refreshes != 0 {
		t.Fatalf("refreshes = %d without refresh enabled", ch.Stats().Refreshes)
	}
}

func TestRefreshFiresPeriodically(t *testing.T) {
	timing := refreshTiming()
	ch := NewChannel(timing, 2, 4)
	// Advance time via CanIssue probes; after 8 x tREFI every bank must have
	// refreshed exactly once (round robin over 8 banks).
	horizon := timing.TREFI * 8
	ch.CanIssue(coord(0, 0, 0, 0), horizon)
	if got := ch.Stats().Refreshes; got != 8 {
		t.Fatalf("refreshes = %d after 8 tREFI, want 8", got)
	}
}

func TestRefreshClosesRowAndBlocksBank(t *testing.T) {
	timing := refreshTiming()
	ch := NewChannel(timing, 2, 4)
	// Open a row in bank 0 (the first bank to refresh).
	res := ch.Issue(coord(0, 0, 5, 0), 0, false)
	if res.DataDone >= timing.TREFI {
		t.Skip("test assumes access finishes before first refresh")
	}
	// Just after the first refresh interval, bank 0 must be precharged and
	// busy until tREFI + tRFC.
	ch.CanIssue(coord(0, 0, 5, 1), timing.TREFI)
	b := ch.Bank(coord(0, 0, 5, 1))
	if b.State != BankPrecharged {
		t.Fatalf("bank state after refresh = %v, want precharged", b.State)
	}
	if b.ReadyAt != timing.TREFI+timing.TRFC {
		t.Fatalf("bank ReadyAt = %d, want %d", b.ReadyAt, timing.TREFI+timing.TRFC)
	}
	if ch.WouldHit(coord(0, 0, 5, 1)) {
		t.Fatal("row survived a refresh")
	}
}

func TestRefreshDefersToBusyBank(t *testing.T) {
	timing := refreshTiming()
	ch := NewChannel(timing, 2, 4)
	// Start a transaction on bank 0 that is still in flight when the
	// refresh is due: the refresh must wait for it.
	start := timing.TREFI - 10
	res := ch.Issue(coord(0, 0, 1, 0), start, false)
	if res.DataDone <= timing.TREFI {
		t.Fatalf("test setup: transaction ended at %d before tREFI %d", res.DataDone, timing.TREFI)
	}
	ch.CanIssue(coord(0, 0, 1, 0), timing.TREFI)
	b := ch.Bank(coord(0, 0, 1, 0))
	if b.ReadyAt != res.DataDone+timing.TRFC {
		t.Fatalf("deferred refresh: ReadyAt = %d, want %d (data done %d + tRFC)",
			b.ReadyAt, res.DataDone+timing.TRFC, res.DataDone)
	}
}

func TestRefreshRoundRobinCoversAllBanks(t *testing.T) {
	timing := refreshTiming()
	ch := NewChannel(timing, 2, 4)
	// After exactly numBanks intervals, bank 7 (the last) must have been
	// refreshed; probe its ReadyAt right after its slot.
	slot := timing.TREFI * 8
	ch.CanIssue(coord(0, 0, 0, 0), slot)
	last := ch.Bank(coord(1, 3, 0, 0)) // rank 1, bank 3 = global index 7
	if last.ReadyAt != slot+timing.TRFC {
		t.Fatalf("last bank ReadyAt = %d, want %d", last.ReadyAt, slot+timing.TRFC)
	}
}

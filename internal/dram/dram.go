// Package dram models the DDR2 memory devices of the paper's Table 1 at
// transaction granularity: per-bank row-buffer state machines, per-channel
// data-bus reservation, and close-page row management with hit-first
// awareness.
//
// The model intentionally works at the granularity of whole memory
// transactions (one cache line) rather than individual DDR commands. The
// three properties the evaluated scheduling policies discriminate on are
// preserved exactly:
//
//   - a row-buffer hit costs tCL + burst; an access to a precharged bank
//     costs tRCD + tCL + burst; a row conflict additionally pays tRP;
//   - banks operate in parallel but share one data bus per logic channel,
//     reserved in completion order;
//   - under close-page policy a row stays open only while the controller
//     still holds queued requests for it (the "hit-first" window), otherwise
//     the access is issued with auto-precharge.
package dram

import (
	"fmt"

	"memsched/internal/addr"
	"memsched/internal/config"
)

// BankState enumerates the row-buffer states of a bank.
type BankState uint8

const (
	// BankPrecharged means the bank is idle with no open row: the next access
	// pays tRCD + tCL.
	BankPrecharged BankState = iota
	// BankActive means a row is latched in the row buffer: an access to the
	// same row pays only tCL, another row pays tRP + tRCD + tCL.
	BankActive
)

// String implements fmt.Stringer for diagnostics.
func (s BankState) String() string {
	switch s {
	case BankPrecharged:
		return "precharged"
	case BankActive:
		return "active"
	default:
		return fmt.Sprintf("BankState(%d)", uint8(s))
	}
}

// Bank is one DRAM bank's scheduling-visible state.
type Bank struct {
	State   BankState
	OpenRow int64
	// ReadyAt is the earliest cycle at which a new transaction may start on
	// this bank (the previous access, including any auto-precharge, has
	// completed by then).
	ReadyAt int64
}

// AccessClass classifies a transaction by its row-buffer outcome.
type AccessClass uint8

const (
	// AccessHit is a column access to the currently open row.
	AccessHit AccessClass = iota
	// AccessClosed is an access to a precharged bank (activate + column).
	AccessClosed
	// AccessConflict is an access that must first precharge another row.
	AccessConflict
)

// String implements fmt.Stringer.
func (c AccessClass) String() string {
	switch c {
	case AccessHit:
		return "hit"
	case AccessClosed:
		return "closed"
	case AccessConflict:
		return "conflict"
	default:
		return fmt.Sprintf("AccessClass(%d)", uint8(c))
	}
}

// Result describes one issued transaction.
type Result struct {
	Class AccessClass
	// Start is when the bank began working on the transaction.
	Start int64
	// DataStart is when the data burst begins on the channel bus.
	DataStart int64
	// DataDone is when the last data beat leaves the channel bus; read data
	// is available to the controller at this time.
	DataDone int64
}

// Stats aggregates per-channel access counts.
type Stats struct {
	Hits      uint64
	Closed    uint64
	Conflicts uint64
	// BusBusyCycles accumulates data-bus occupancy for utilization reporting.
	BusBusyCycles int64
	// Refreshes counts per-bank refresh operations performed.
	Refreshes uint64
}

// Accesses returns the total transaction count.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Closed + s.Conflicts }

// HitRate returns the fraction of transactions that were row-buffer hits.
func (s *Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

// Channel is one logic channel: a set of banks sharing a data bus.
type Channel struct {
	timing    config.DRAMCycles
	banks     []Bank
	busFreeAt int64
	// inflight counts transactions whose data phase has not finished; it
	// bounds how far ahead of the data bus the controller may issue.
	inflight     []int64 // DataDone times, unordered
	maxInflight  int
	banksPerRank int
	ranksPerChan int
	stats        Stats

	// Refresh state: every TREFI cycles one bank (round-robin, per-bank
	// staggered refresh) is taken offline for TRFC and its row closed.
	// Disabled when TREFI == 0.
	nextRefreshAt int64
	refreshBank   int

	// observer, when set, sees every issued transaction; used by the
	// independent timing checker (package dramcheck) in tests.
	observer Observer
}

// Observer receives every issued transaction; see SetObserver.
type Observer func(c addr.Coord, res Result, autoPrecharge bool)

// SetObserver installs a transaction observer (nil removes it). Observers
// must not mutate channel state.
func (ch *Channel) SetObserver(o Observer) { ch.observer = o }

// NewChannel builds a channel with ranks x banks banks.
func NewChannel(timing config.DRAMCycles, ranksPerChan, banksPerRank int) *Channel {
	n := ranksPerChan * banksPerRank
	ch := &Channel{
		timing:       timing,
		banks:        make([]Bank, n),
		inflight:     make([]int64, 0, n),
		maxInflight:  n,
		banksPerRank: banksPerRank,
		ranksPerChan: ranksPerChan,
	}
	if timing.TREFI > 0 {
		ch.nextRefreshAt = timing.TREFI
	} else {
		ch.nextRefreshAt = 1<<62 - 1
	}
	return ch
}

// advanceRefresh applies every refresh due at or before now. Each refresh
// closes one bank's row and blocks that bank for tRFC; banks are refreshed
// round-robin so at most one bank per channel is offline at a time.
func (ch *Channel) advanceRefresh(now int64) {
	for ch.nextRefreshAt <= now {
		b := &ch.banks[ch.refreshBank]
		start := ch.nextRefreshAt
		if b.ReadyAt > start {
			// Bank busy with a transaction: refresh right after it.
			start = b.ReadyAt
		}
		b.State = BankPrecharged
		b.OpenRow = -1
		b.ReadyAt = start + ch.timing.TRFC
		ch.stats.Refreshes++
		ch.refreshBank = (ch.refreshBank + 1) % len(ch.banks)
		ch.nextRefreshAt += ch.timing.TREFI
	}
}

// Timing returns the channel's timing parameters in cycles.
func (ch *Channel) Timing() config.DRAMCycles { return ch.timing }

// Stats returns a copy of the channel's access statistics.
func (ch *Channel) Stats() Stats { return ch.stats }

// ResetStats zeroes the access statistics (bank and bus state are kept:
// resetting happens at measurement-window boundaries, not at power-on).
func (ch *Channel) ResetStats() { ch.stats = Stats{} }

// NumBanks returns the number of banks on this channel.
func (ch *Channel) NumBanks() int { return len(ch.banks) }

func (ch *Channel) bankIndex(c addr.Coord) int {
	return c.Rank*ch.banksPerRank + c.Bank
}

// Bank returns a copy of the bank state addressed by c (for inspection).
func (ch *Channel) Bank(c addr.Coord) Bank { return ch.banks[ch.bankIndex(c)] }

// pruneInflight drops completed transactions from the in-flight set.
func (ch *Channel) pruneInflight(now int64) {
	kept := ch.inflight[:0]
	for _, done := range ch.inflight {
		if done > now {
			kept = append(kept, done)
		}
	}
	ch.inflight = kept
}

// CanIssue reports whether a transaction to coordinate c may start at cycle
// now: the bank must be ready and the channel must have an in-flight slot.
func (ch *Channel) CanIssue(c addr.Coord, now int64) bool {
	ch.Sync(now)
	if len(ch.inflight) >= ch.maxInflight {
		return false
	}
	return ch.banks[ch.bankIndex(c)].ReadyAt <= now
}

// Sync brings time-dependent channel state (refresh schedule, in-flight
// window) up to cycle now. It is the scan fast path: callers that examine
// many banks in one scheduling pass call Sync once and then use the O(1)
// accessors BankAt and HasInflightSlot, instead of paying the refresh and
// prune bookkeeping inside CanIssue per request. Idempotent at a given now.
func (ch *Channel) Sync(now int64) {
	ch.advanceRefresh(now)
	ch.pruneInflight(now)
}

// HasInflightSlot reports whether the channel can accept one more
// transaction. Callers must Sync(now) first.
func (ch *Channel) HasInflightSlot() bool {
	return len(ch.inflight) < ch.maxInflight
}

// NextInflightFree returns the earliest cycle at which an occupied in-flight
// slot frees (its transaction's DataDone), with full=false when the window
// already has room. The controller threads this into its scan wake-up time so
// a next-event run loop can jump a bus-saturated stretch instead of rescanning
// a full window every cycle. Callers must Sync(now) first.
func (ch *Channel) NextInflightFree() (at int64, full bool) {
	if len(ch.inflight) < ch.maxInflight {
		return 0, false
	}
	at = ch.inflight[0]
	for _, done := range ch.inflight[1:] {
		if done < at {
			at = done
		}
	}
	return at, true
}

// BankAt returns a copy of the bank state at dense per-channel index i
// (i = rank*banksPerRank + bank, as computed by addr.Coord.GlobalBank per
// channel). Callers must Sync(now) first for readiness decisions.
func (ch *Channel) BankAt(i int) Bank { return ch.banks[i] }

// WouldHit reports whether an access to c issued now would be a row-buffer
// hit given current bank state. Schedulers use this for hit-first ordering.
func (ch *Channel) WouldHit(c addr.Coord) bool {
	b := &ch.banks[ch.bankIndex(c)]
	return b.State == BankActive && b.OpenRow == c.Row
}

// Classify returns the access class an access to c would have if issued now.
func (ch *Channel) Classify(c addr.Coord) AccessClass {
	b := &ch.banks[ch.bankIndex(c)]
	switch {
	case b.State == BankActive && b.OpenRow == c.Row:
		return AccessHit
	case b.State == BankPrecharged:
		return AccessClosed
	default:
		return AccessConflict
	}
}

// NextBankReady returns the earliest ReadyAt among the banks addressed by
// coords, used by the controller to skip scheduling scans that cannot
// succeed. Returns ok=false for an empty slice.
func (ch *Channel) NextBankReady(coords []addr.Coord) (int64, bool) {
	if len(coords) == 0 {
		return 0, false
	}
	earliest := int64(1<<62 - 1)
	for _, c := range coords {
		if r := ch.banks[ch.bankIndex(c)].ReadyAt; r < earliest {
			earliest = r
		}
	}
	return earliest, true
}

// Issue starts a transaction for coordinate c at cycle now. autoPrecharge
// requests close-page behavior: the bank precharges right after the access
// (the controller sets it when no queued request targets the same row).
//
// Issue panics if CanIssue would be false — the controller must check first;
// issuing into a busy bank is a scheduling bug, not a runtime condition.
func (ch *Channel) Issue(c addr.Coord, now int64, autoPrecharge bool) Result {
	ch.advanceRefresh(now)
	b := &ch.banks[ch.bankIndex(c)]
	if b.ReadyAt > now {
		panic(fmt.Sprintf("dram: issue to busy bank %d (ready at %d, now %d)",
			ch.bankIndex(c), b.ReadyAt, now))
	}
	ch.pruneInflight(now)
	if len(ch.inflight) >= ch.maxInflight {
		panic("dram: issue past in-flight limit")
	}

	class := ch.Classify(c)
	var prep int64
	switch class {
	case AccessHit:
		prep = ch.timing.TCL
		ch.stats.Hits++
	case AccessClosed:
		prep = ch.timing.TRCD + ch.timing.TCL
		ch.stats.Closed++
	case AccessConflict:
		prep = ch.timing.TRP + ch.timing.TRCD + ch.timing.TCL
		ch.stats.Conflicts++
	}

	dataStart := now + prep
	if dataStart < ch.busFreeAt {
		dataStart = ch.busFreeAt
	}
	dataDone := dataStart + ch.timing.Burst
	ch.busFreeAt = dataDone
	ch.stats.BusBusyCycles += ch.timing.Burst
	ch.inflight = append(ch.inflight, dataDone)

	b.State = BankActive
	b.OpenRow = c.Row
	b.ReadyAt = dataDone
	if autoPrecharge {
		b.State = BankPrecharged
		b.OpenRow = -1
		b.ReadyAt = dataDone + ch.timing.TRP
	}

	res := Result{Class: class, Start: now, DataStart: dataStart, DataDone: dataDone}
	if ch.observer != nil {
		ch.observer(c, res, autoPrecharge)
	}
	return res
}

// BusFreeAt returns when the channel data bus becomes free (for tests and
// utilization accounting).
func (ch *Channel) BusFreeAt() int64 { return ch.busFreeAt }

// System is the set of logic channels making up the memory system.
type System struct {
	Channels []*Channel
	Mapper   *addr.Mapper
}

// NewSystem builds all channels for the given memory configuration.
func NewSystem(cfg *config.Config) *System {
	timing := cfg.DRAMCycles()
	m := cfg.Memory
	iv := addr.LineInterleave
	if m.PageInterleave {
		iv = addr.PageInterleave
	}
	sys := &System{
		Mapper: addr.MustMapperWith(m.Channels, m.RanksPerChan, m.BanksPerRank,
			m.LinesPerRow(cfg.L2.LineBytes), iv),
	}
	for i := 0; i < m.Channels; i++ {
		sys.Channels = append(sys.Channels, NewChannel(timing, m.RanksPerChan, m.BanksPerRank))
	}
	return sys
}

// ResetStats zeroes the statistics of every channel.
func (s *System) ResetStats() {
	for _, ch := range s.Channels {
		ch.ResetStats()
	}
}

// TotalStats sums statistics across channels.
func (s *System) TotalStats() Stats {
	var total Stats
	for _, ch := range s.Channels {
		st := ch.Stats()
		total.Hits += st.Hits
		total.Closed += st.Closed
		total.Conflicts += st.Conflicts
		total.BusBusyCycles += st.BusBusyCycles
		total.Refreshes += st.Refreshes
	}
	return total
}

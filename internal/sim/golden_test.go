package sim_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/workload"
)

// -update-golden regenerates the fixtures under testdata/golden from the
// current implementation. The committed fixtures were produced by the
// pre-indexing (seed) controller, so running the test without the flag
// proves the indexed hot path is observably identical to the original
// full-scan implementation: same candidate sets, same tie-break RNG draws,
// same completion ordering, hence byte-identical Results.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden equivalence fixtures")

// goldenFloatTol is the relative tolerance for float fields. Integer fields
// must stay byte-identical; floats may drift at this scale because the
// quiescence-aware run loop absorbs stalled stretches into Running stats with
// one parallel-merge step (stats.ObserveN), which reorders float additions.
// Comparison goes through sim.DiffResults, which also exempts SkippedCycles
// (the fixtures predate the field, and it describes the run loop, not the
// simulated machine).
const goldenFloatTol = 1e-9

const goldenInstr = 6_000

// goldenCase is one fixed-seed run whose Result is pinned.
type goldenCase struct {
	Mix    string
	Policy string
}

// goldenCases covers every registered policy, with the paper's four headline
// policies exercised at 2, 4 and 8 cores (write-drain bursts and bank
// contention differ qualitatively across core counts).
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, mix := range []string{"2MEM-1", "4MEM-1", "8MEM-4"} {
		for _, pol := range []string{"fcfs", "hf-rf", "lreq", "me-lreq"} {
			cases = append(cases, goldenCase{Mix: mix, Policy: pol})
		}
	}
	// Remaining registry entries once each, on the 4-core MEM mix.
	for _, pol := range []string{"rr", "me", "fq", "burst", "fix:3210"} {
		cases = append(cases, goldenCase{Mix: "4MEM-1", Policy: pol})
	}
	return cases
}

func goldenPath(c goldenCase) string {
	name := fmt.Sprintf("%s_%s.json", c.Mix, c.Policy)
	for _, bad := range []string{":", "/"} {
		name = replaceAll(name, bad, "-")
	}
	return filepath.Join("testdata", "golden", name)
}

func replaceAll(s, old, new string) string {
	out := ""
	for _, r := range s {
		if string(r) == old {
			out += new
		} else {
			out += string(r)
		}
	}
	return out
}

func runGolden(t *testing.T, c goldenCase) sim.Result {
	t.Helper()
	mix, err := workload.MixByName(c.Mix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunMix(mix, c.Policy, goldenInstr, nil, sim.EvalSeed)
	if err != nil {
		t.Fatalf("%s/%s: %v", c.Mix, c.Policy, err)
	}
	return res
}

// TestGoldenEquivalence pins fixed-seed Results against fixtures generated
// by the seed (pre-indexing) implementation.
func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence runs full simulations")
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Mix+"/"+c.Policy, func(t *testing.T) {
			t.Parallel()
			got := runGolden(t, c)
			path := goldenPath(c)
			if *updateGolden {
				blob, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden): %v", err)
			}
			var want sim.Result
			if err := json.Unmarshal(blob, &want); err != nil {
				t.Fatal(err)
			}
			diffs := sim.DiffResults(got, want, goldenFloatTol)
			if len(diffs) > 0 {
				for _, d := range diffs {
					t.Error(d)
				}
				t.Errorf("result diverged from seed implementation (%d fields)", len(diffs))
			}
		})
	}
}

package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/stats"
	"memsched/internal/workload"
)

// TestClassZeroPerturbation pins the zero-perturbation contract of serving
// classes at the byte level: a run with no Classes and a run with an explicit
// all-best-effort assignment must marshal to identical JSON — same scheduling,
// same statistics, same labels (BE is the zero value). This is what lets the
// class machinery ride inside every Result without fragmenting caches or
// fixtures for classless users.
func TestClassZeroPerturbation(t *testing.T) {
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Mix: mix, Policy: "me-lreq", Instr: 4_000, Seed: sim.EvalSeed}
	plain, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Classes = []workload.ServiceClass{workload.BE, workload.BE, workload.BE, workload.BE}
	tagged, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		for _, d := range sim.DiffResults(tagged, plain, 0) {
			t.Error(d)
		}
		t.Fatal("all-BE tagging changed the Result encoding")
	}
}

// TestClassTaggingIsLabelOnly pins the other half of the contract: under a
// class-blind policy, tagging a core latency-critical changes labels and the
// per-class latency split but nothing about the simulated machine — every
// per-core statistic matches the classless run, and the two class histograms
// partition the classless BE histogram exactly.
func TestClassTaggingIsLabelOnly(t *testing.T) {
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Mix: mix, Policy: "me-lreq", Instr: 4_000, Seed: sim.EvalSeed}
	plain, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	classes, err := workload.ParseServiceClasses("LBLB", 4)
	if err != nil {
		t.Fatal(err)
	}
	spec.Classes = classes
	tagged, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the label-carrying fields, then demand bitwise equality on the
	// rest (tolerance 0: scheduling must be untouched, not merely close).
	normalize := func(r sim.Result) sim.Result {
		for i := range r.Cores {
			r.Cores[i].Service = workload.BE
		}
		r.ClassLat = [2]sim.ClassLatency{}
		return r
	}
	for _, d := range sim.DiffResults(normalize(tagged), normalize(plain), 0) {
		t.Error(d)
	}
	// The class split partitions the stream: BE+LC merged equals the
	// classless run's all-BE histogram, bit for bit.
	merged := tagged.ClassLat[workload.BE].Hist
	merged.Merge(&tagged.ClassLat[workload.LC].Hist)
	if merged != plain.ClassLat[workload.BE].Hist {
		t.Error("per-class histograms do not partition the classless histogram")
	}
	for cls, want := range map[workload.ServiceClass]int{workload.BE: 2, workload.LC: 2} {
		if got := tagged.ClassLat[cls].Cores; got != want {
			t.Errorf("%s core count = %d, want %d", cls, got, want)
		}
	}
}

// TestClassHistogramDifferential is the System-level three-way differential
// for per-class latency histograms: for a policy subset spanning stateless,
// stateful and deadline-aware schedulers at 2, 4 and 8 cores with mixed
// classes, the full LC and BE histograms (struct equality — every bucket
// count, sum and max) must be identical across the naive, cycle-skipping and
// parallel-window run modes. The Result-level matrix covers all policies;
// this pins the ClassLatencyHist accessor itself.
func TestClassHistogramDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulation triples")
	}
	mixFor := map[int]string{2: "2MEM-1", 4: "4MEM-1", 8: "8MEM-4"}
	rng := rand.New(rand.NewSource(0xC1A55))
	for _, cores := range []int{2, 4, 8} {
		for _, policy := range []string{"hf-rf", "me-lreq", "bliss", "dash"} {
			for s := 0; s < 2; s++ {
				cores, policy, seed := cores, policy, rng.Uint64()
				name := mixFor[cores] + "/" + policy
				if s == 1 {
					name += "/seed1"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					mix, err := workload.MixByName(mixFor[cores])
					if err != nil {
						t.Fatal(err)
					}
					apps, err := mix.Apps()
					if err != nil {
						t.Fatal(err)
					}
					classes := make([]workload.ServiceClass, cores)
					for i := 0; i < cores; i += 2 {
						classes[i] = workload.LC
					}
					run := func(parallel int, noSkip bool) [2]stats.LatencyHist {
						sys, err := sim.New(sim.Options{
							Policy: policy, Apps: apps, Seed: seed, Classes: classes,
							NoCycleSkip: noSkip, ParallelCores: parallel,
						})
						if err != nil {
							t.Fatal(err)
						}
						if _, err := sys.Run(3_000, 0); err != nil {
							t.Fatal(err)
						}
						return [2]stats.LatencyHist{
							sys.ClassLatencyHist(workload.BE),
							sys.ClassLatencyHist(workload.LC),
						}
					}
					par := run(parallelTestWorkers, false)
					skip := run(1, false)
					naive := run(1, true)
					for cls, label := range []string{"BE", "LC"} {
						if par[cls] != skip[cls] {
							t.Errorf("%s histogram: parallel != skip", label)
						}
						if par[cls] != naive[cls] {
							t.Errorf("%s histogram: parallel != naive", label)
						}
						if naive[cls].N() == 0 {
							t.Errorf("%s histogram empty; differential is vacuous", label)
						}
					}
				})
			}
		}
	}
}

package sim

import (
	"runtime"
	"sync"

	"memsched/internal/cpu"
)

// Parallel windows: conservative intra-run parallelism over simulated cores.
//
// The serial loop interleaves components cycle by cycle: cores (in index
// order), then the cache hierarchy, the memory controller, and the observers.
// The only way any of those can influence a core mid-run is a fill callback
// (an L1/L1I MSHR waiter firing), and the NextEventAt contract from the
// cycle-skipping work already makes every such interaction point predictable:
//
//   - a pending hierarchy fill fires at Hierarchy.FillHorizon() at the
//     earliest; a pending L2 request needs the L2 hit latency before it can
//     produce a fill;
//   - an in-flight DRAM read returns at Controller.NextCompletionAt() at the
//     earliest, and any read issued later returns no earlier than the
//     controller overhead after its issue cycle;
//   - a miss issued by a core inside the window needs at least
//     min(L1D, L1I hit latency) + L2 hit latency before its fill;
//   - the online estimator and telemetry sample cores only at their epoch
//     boundaries.
//
// windowEnd folds those bounds into the largest E such that no callback can
// reach a core before cycle E-1. Cores are then ticked for [T, E) cycles
// concurrently — each touches only its own pipeline, RNG, L1s and MSHRs, with
// would-be event-heap pushes staged per core — and a serial replay loop runs
// the hierarchy, controller and observers over the same cycles, merging the
// staged events at their issue cycle in core-index order. That reproduces the
// serial event-heap sequence numbers exactly, so every queue order, policy
// decision and RNG draw is identical to the serial loop; Results match with
// integer statistics byte-identical and floats within the same ~1e-9 bound
// the cycle skipper already carries (windows and skips partition stalled
// stretches differently, which regroups Welford merges).
//
// Commit-target crossings are pinned by clamping E so that no unfinished
// core can reach its target before the window's final cycle
// (Core.MinCyclesToRetire), keeping warmup-end and freeze cycles exact.

// minParallelWindow is the smallest window worth a barrier round-trip; below
// this the serial path is used for the cycle.
const minParallelWindow = 4

// ParallelWindows reports how many parallel windows the last (or current) run
// executed and how many simulated cycles they covered — 0 when the run was
// serial. Differential tests use it to prove the parallel path actually
// engaged; benchmarks report coverage from it.
func (s *System) ParallelWindows() (windows, cycles int64) {
	return s.winRuns, s.winCycles
}

// parallelWorkers resolves Options.ParallelCores against the machine: the
// worker count to use, or 0 for the serial loop.
func (s *System) parallelWorkers() int {
	n := len(s.cores)
	w := s.opts.ParallelCores
	if w == 1 || n < 2 {
		return 0
	}
	if w <= 0 { // auto: parallel only when both sides have headroom
		if n <= 2 || runtime.GOMAXPROCS(0) < 2 {
			return 0
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 2 {
		return 0
	}
	return w
}

// windowCap returns the run-independent bound on window length: a miss issued
// at the window's first cycle cannot produce a fill callback before
// min(L1D, L1I hit latency) + L2 hit latency cycles, and a read issued to
// DRAM during the window cannot complete before the controller overhead.
func (s *System) windowCap() int64 {
	minL1 := int64(s.cfg.L1D.HitLatency)
	if l := int64(s.cfg.L1I.HitLatency); l < minL1 {
		minL1 = l
	}
	bound := minL1 + int64(s.cfg.L2.HitLatency) + 1
	if c := s.mc.CtrlOverhead() + 1; c < bound {
		bound = c
	}
	return bound
}

// windowEnd returns the largest cycle E in (T, maxCycles] such that ticking
// every core through [T, E) cannot miss an interaction: no fill callback can
// fire before E-1, no observer epoch boundary lies before E-1, and no
// unfinished core can cross its commit target before E-1.
func (s *System) windowEnd(T, maxCycles int64) int64 {
	end := T + s.winCap
	if h := s.hier.FillHorizon() + 1; h < end {
		end = h
	}
	if m := s.mc.NextCompletionAt() + 1; m < end {
		end = m
	}
	if s.online != nil {
		if t := s.online.NextEventAt(T) + 1; t < end {
			end = t
		}
	}
	if s.telem != nil {
		if t := s.telem.NextEventAt(T) + 1; t < end {
			end = t
		}
	}
	if end > maxCycles {
		end = maxCycles
	}
	if end-T < minParallelWindow {
		return end
	}
	for i, c := range s.cores {
		tgt := s.winTargets[i]
		if tgt == 0 {
			continue
		}
		if k := T + c.MinCyclesToRetire(tgt); k < end {
			end = k
		}
	}
	return end
}

// runWindow executes cycles [T, E): cores concurrently with their L2 requests
// staged, then the shared components serially in the exact per-cycle order of
// the serial loop, folding the staged requests in at their issue cycle.
func (s *System) runWindow(T, E int64) {
	s.winRuns++
	s.winCycles += E - T
	s.hier.BeginStaging()
	s.pool.run(T, E)
	s.hier.EndStaging()
	for t := T; t < E; t++ {
		s.hier.MergeStaged(t)
		s.hier.Tick(t)
		s.mc.Tick(t)
		if s.online != nil {
			s.online.Tick(t)
		}
		if s.telem != nil {
			s.telem.Tick(t)
		}
	}
}

// advance executes at least one simulated cycle starting at now and returns
// the next unexecuted cycle plus how many of the covered cycles were skipped
// (bulk-accounted rather than ticked). It prefers a parallel window when one
// long enough opens; otherwise it falls back to the serial tick-plus-skip
// step. When the planner reports a window too short to pay for its barrier,
// the binding constraint is an absolute event time, so re-planning is
// deferred until the clock passes it (noWinBefore).
func (s *System) advance(now, maxCycles int64) (int64, int64) {
	if s.pool != nil && now >= s.noWinBefore {
		if end := s.windowEnd(now, maxCycles); end-now >= minParallelWindow {
			s.runWindow(now, end)
			return end, 0
		} else {
			s.noWinBefore = end
		}
	}
	s.tick(now)
	k := s.skipQuiescent(now, maxCycles)
	return now + 1 + k, k
}

// corePool runs core shards on persistent worker goroutines. Worker w owns
// cores w, w+workers, w+2*workers, ...; shard 0 runs on the caller's
// goroutine, so a pool of W workers adds W-1 goroutines. Channel handoffs
// order the workers' core mutations before the caller's replay loop and the
// next window's planning reads (happens-before in both directions).
type corePool struct {
	cores   []*cpu.Core
	workers int
	cmds    []chan poolWindow
	done    chan struct{}
	wg      sync.WaitGroup
}

type poolWindow struct{ from, to int64 }

func newCorePool(cores []*cpu.Core, workers int) *corePool {
	p := &corePool{
		cores:   cores,
		workers: workers,
		cmds:    make([]chan poolWindow, workers-1),
		done:    make(chan struct{}, workers-1),
	}
	for w := 1; w < workers; w++ {
		ch := make(chan poolWindow, 1)
		p.cmds[w-1] = ch
		p.wg.Add(1)
		go func(shard int, ch chan poolWindow) {
			defer p.wg.Done()
			for win := range ch {
				p.runShard(shard, win)
				p.done <- struct{}{}
			}
		}(w, ch)
	}
	return p
}

// runShard ticks every core of one shard through the window, core-major:
// within a window the cores are independent, and running each core's cycles
// back to back keeps its working set hot.
func (p *corePool) runShard(shard int, win poolWindow) {
	for i := shard; i < len(p.cores); i += p.workers {
		c := p.cores[i]
		for t := win.from; t < win.to; t++ {
			c.Tick(t)
		}
	}
}

// run executes one window across all shards and blocks until every core has
// reached win.to.
func (p *corePool) run(from, to int64) {
	win := poolWindow{from: from, to: to}
	for _, ch := range p.cmds {
		ch <- win
	}
	p.runShard(0, win)
	for range p.cmds {
		<-p.done
	}
}

// close shuts the workers down and waits for them to exit; the pool must not
// be used afterwards.
func (p *corePool) close() {
	for _, ch := range p.cmds {
		close(ch)
	}
	p.wg.Wait()
}

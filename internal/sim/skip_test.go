package sim_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/workload"
)

// TestSkipDifferential is the correctness contract of quiescence-aware cycle
// skipping: for randomized stimulus across every registered policy and 2, 4
// and 8 cores, a run with next-event time advance must produce integer
// statistics byte-identical to the naive cycle-by-cycle loop, and float
// statistics within 1e-9 relative (the only float drift allowed is the
// parallel-merge reassociation inside stats.ObserveN).
func TestSkipDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulation pairs")
	}
	type diffCase struct {
		mix     string
		policy  string
		online  bool
		classes string
	}
	var cases []diffCase
	// The paper's four headline policies at every core count; the remaining
	// registry entries on the 4-core MEM mix (fix:3210 encodes exactly four
	// priorities). One online-estimator case exercises the epoch-boundary
	// wakeup path.
	for _, mix := range []string{"2MEM-1", "4MEM-1", "8MEM-4"} {
		for _, pol := range []string{"fcfs", "hf-rf", "lreq", "me-lreq"} {
			cases = append(cases, diffCase{mix: mix, policy: pol})
		}
	}
	for _, pol := range []string{"rr", "me", "fq", "burst", "bliss", "cads", "dash", "fix:3210"} {
		cases = append(cases, diffCase{mix: "4MEM-1", policy: pol})
	}
	cases = append(cases, diffCase{mix: "4MEM-1", policy: "me-lreq", online: true})
	// Mixed serving classes: the deadline-aware policy's urgency decisions and
	// a class-blind policy's per-class latency split must both survive skipping.
	cases = append(cases,
		diffCase{mix: "4MEM-1", policy: "dash", classes: "LBBB"},
		diffCase{mix: "4MEM-1", policy: "me-lreq", classes: "LBLB"})

	// Randomized stimulus: each case gets two seeds from a fixed-source
	// stream, so the workloads differ run to run of the matrix but the test
	// stays reproducible.
	rng := rand.New(rand.NewSource(0x5EED))
	var totalSkipped atomic.Int64
	for _, c := range cases {
		for s := 0; s < 2; s++ {
			c, seed := c, rng.Uint64()
			name := c.mix + "/" + c.policy
			if c.online {
				name += "/online"
			}
			if c.classes != "" {
				name += "/" + c.classes
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				mix, err := workload.MixByName(c.mix)
				if err != nil {
					t.Fatal(err)
				}
				classes, err := workload.ParseServiceClasses(c.classes, len(mix.Codes))
				if err != nil {
					t.Fatal(err)
				}
				run := func(noSkip bool) sim.Result {
					res, err := sim.Run(context.Background(), sim.RunSpec{
						Mix: mix, Policy: c.policy, Instr: 3_000, Seed: seed,
						OnlineME: c.online, NoCycleSkip: noSkip, Classes: classes,
					})
					if err != nil {
						t.Fatalf("seed %#x noSkip=%v: %v", seed, noSkip, err)
					}
					return res
				}
				skipped, naive := run(false), run(true)
				if naive.SkippedCycles != 0 {
					t.Errorf("NoCycleSkip run reported %d skipped cycles", naive.SkippedCycles)
				}
				for _, d := range sim.DiffResults(skipped, naive, 1e-9) {
					t.Error(d)
				}
				totalSkipped.Add(skipped.SkippedCycles)
			})
		}
	}
	t.Cleanup(func() {
		// The property is vacuous if no case ever skipped a cycle.
		if totalSkipped.Load() == 0 {
			t.Error("no case skipped any cycle; next-event advance never engaged")
		}
	})
}

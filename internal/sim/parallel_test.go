package sim_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"memsched/internal/runner"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// parallelTestWorkers forces the parallel window path with an uneven shard
// split (3 workers over 2, 4 and 8 simulated cores), independent of the host
// CPU count — on a single-CPU host the goroutines simply timeslice, which
// changes nothing about the execution order the barrier merge enforces.
const parallelTestWorkers = 3

// fixOrderFor returns a fixed-priority policy spec matching the core count
// (the fix policy encodes exactly one priority digit per core).
func fixOrderFor(cores int) string {
	order := ""
	for i := cores - 1; i >= 0; i-- {
		order += fmt.Sprintf("%d", i)
	}
	return "fix:" + order
}

// TestParallelDifferential is the correctness contract of epoch-sharded
// parallel execution: for randomized stimulus across every registered policy
// at 2, 4 and 8 cores, a run with cores ticking concurrently inside derived
// windows must match the serial loop — integer statistics byte-identical,
// float statistics within 1e-9 relative (windows and skips partition stalled
// stretches differently, regrouping stats.ObserveN merges; nothing else may
// move). Three arms: parallel (windows + skipping), skip (the serial
// quiescence-aware loop) and naive (serial, every cycle ticked).
func TestParallelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulation triples")
	}
	mixFor := map[int]string{2: "2MEM-1", 4: "4MEM-1", 8: "8MEM-4"}
	type diffCase struct {
		cores  int
		policy string
		online bool
	}
	var cases []diffCase
	for _, cores := range []int{2, 4, 8} {
		for _, pol := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "dash", fixOrderFor(cores)} {
			cases = append(cases, diffCase{cores: cores, policy: pol})
		}
	}
	// One online-estimator case exercises the epoch-boundary window clamp.
	cases = append(cases, diffCase{cores: 4, policy: "me-lreq", online: true})

	// Randomized stimulus: each case gets two seeds from a fixed-source
	// stream, so the workloads differ run to run of the matrix but the test
	// stays reproducible. The second seed of every case additionally runs
	// with mixed serving classes (alternating LC/BE), so the per-class
	// latency histograms embedded in the Result — and dash's deadline
	// decisions — are pinned across all three run modes for every policy.
	rng := rand.New(rand.NewSource(0x5EED))
	for _, c := range cases {
		for s := 0; s < 2; s++ {
			c, seed := c, rng.Uint64()
			var classes []workload.ServiceClass
			name := fmt.Sprintf("%dcores/%s/seed%d", c.cores, c.policy, s)
			if s == 1 {
				classes = make([]workload.ServiceClass, c.cores)
				for i := 0; i < c.cores; i += 2 {
					classes[i] = workload.LC
				}
				name += "/classed"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				mix, err := workload.MixByName(mixFor[c.cores])
				if err != nil {
					t.Fatal(err)
				}
				run := func(parallel int, noSkip bool) sim.Result {
					// The generous MaxCycles covers strict fixed priority at 8
					// memory-bound cores, which starves its lowest core far past
					// the default bound (serial and parallel identically so).
					res, err := sim.Run(context.Background(), sim.RunSpec{
						Mix: mix, Policy: c.policy, Instr: 3_000, Seed: seed,
						OnlineME: c.online, NoCycleSkip: noSkip, ParallelCores: parallel,
						MaxCycles: 20_000_000, Classes: classes,
					})
					if err != nil {
						t.Fatalf("seed %#x parallel=%d noSkip=%v: %v", seed, parallel, noSkip, err)
					}
					return res
				}
				par := run(parallelTestWorkers, false)
				skip := run(1, false)
				naive := run(1, true)
				for _, d := range sim.DiffResults(par, skip, 1e-9) {
					t.Errorf("parallel vs skip: %s", d)
				}
				for _, d := range sim.DiffResults(par, naive, 1e-9) {
					t.Errorf("parallel vs naive: %s", d)
				}
			})
		}
	}
}

// TestParallelWindowsEngage proves the differential property is not vacuous:
// on a memory-bound 8-core mix the planner must actually open windows, and
// they must cover a meaningful share of the run. It also pins the
// parallel-vs-serial equivalence at the System level, where the window
// counters are observable.
func TestParallelWindowsEngage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	mix, err := workload.MixByName("8MEM-4")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) (sim.Result, int64, int64) {
		sys, err := sim.New(sim.Options{
			Policy: "me-lreq", Apps: apps, Seed: sim.EvalSeed, ParallelCores: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(5_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		wins, cycles := sys.ParallelWindows()
		return res, wins, cycles
	}
	par, wins, winCycles := run(parallelTestWorkers)
	ser, serWins, _ := run(1)
	if serWins != 0 {
		t.Errorf("serial run executed %d parallel windows", serWins)
	}
	if wins == 0 {
		t.Fatal("parallel run opened no windows; the property tests are vacuous")
	}
	total := par.TotalCycles
	t.Logf("windows=%d covering %d cycles (measurement window %d cycles, %.1f%%)",
		wins, winCycles, total, 100*float64(winCycles)/float64(total))
	for _, d := range sim.DiffResults(par, ser, 1e-9) {
		t.Error(d)
	}
}

// TestParallelWorkerResolution pins the ParallelCores knob semantics on the
// only machine-independent cases: explicit serial, explicit widths (capped at
// the core count) and the auto fallback for small machines.
func TestParallelWorkerResolution(t *testing.T) {
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		parallel int
		wantWins bool
	}{
		{parallel: 1, wantWins: false}, // explicit serial
		{parallel: 8, wantWins: true},  // explicit, capped at 2 cores, still parallel
		{parallel: 0, wantWins: false}, // auto: 2 simulated cores fall back to serial
	} {
		sys, err := sim.New(sim.Options{
			Policy: "hf-rf", Apps: apps, Seed: sim.EvalSeed, ParallelCores: tc.parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(2_000, 0); err != nil {
			t.Fatal(err)
		}
		wins, _ := sys.ParallelWindows()
		if got := wins > 0; got != tc.wantWins {
			t.Errorf("ParallelCores=%d: windows executed = %d, want engaged=%v",
				tc.parallel, wins, tc.wantWins)
		}
	}
}

// TestParallelCancelStress runs the parallel loop under -race against the two
// lifecycles that could leak its worker goroutines: mid-run context
// cancellation, and runner-pool fan-out (parallel runs inside parallel
// workers). Afterwards the goroutine count must return to its baseline —
// every pool shut down cleanly on every exit path.
func TestParallelCancelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	// Arm 1: cancellation mid-flight, staggered so some runs are cancelled
	// during warmup, some during measurement, some not at all.
	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			cancel()
			close(done)
		}()
		res, err := sim.Run(ctx, sim.RunSpec{
			Mix: mix, Policy: "me-lreq", Instr: 150_000, Seed: sim.EvalSeed + uint64(i),
			ParallelCores: parallelTestWorkers,
		})
		<-done
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("run %d: unexpected error: %v", i, err)
			}
			if res.TotalCycles != 0 {
				t.Errorf("run %d: cancelled run returned non-zero Result", i)
			}
		}
	}

	// Arm 2: parallel-within-parallel — the experiment runner fans RunSpecs
	// across its own worker pool while each run shards its cores.
	jobs := runner.NewJobs([]string{"a", "b", "c", "d", "e", "f"})
	outs, err := runner.Run(context.Background(), jobs,
		func(ctx context.Context, job runner.Job) (sim.Result, error) {
			return sim.Run(ctx, sim.RunSpec{
				Mix: mix, Policy: "lreq", Instr: 5_000,
				Seed: sim.EvalSeed ^ uint64(job.ID), ParallelCores: parallelTestWorkers,
			})
		}, runner.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.FirstError(outs); err != nil {
		t.Fatal(err)
	}
	// Fan-out must not perturb results: each job matches its serial twin.
	for _, out := range outs {
		ser, err := sim.Run(context.Background(), sim.RunSpec{
			Mix: mix, Policy: "lreq", Instr: 5_000,
			Seed: sim.EvalSeed ^ uint64(out.Job.ID), ParallelCores: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range sim.DiffResults(out.Value, ser, 1e-9) {
			t.Errorf("job %s: %s", out.Job.Key, d)
		}
	}

	// Every worker pool must be gone: poll briefly, the final goroutine exits
	// happen after close() returns only if the scheduler is slow.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"memsched/internal/config"
	"memsched/internal/metrics"
	"memsched/internal/trace"
	"memsched/internal/workload"
)

const testSlice = 30_000 // instructions per core in tests: small but stable

func app(t *testing.T, code byte) workload.App {
	t.Helper()
	a, err := workload.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSingleCoreRunCompletes(t *testing.T) {
	sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'c')}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(testSlice, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cores[0]
	if c.Retired != testSlice {
		t.Fatalf("retired %d, want %d", c.Retired, testSlice)
	}
	if c.IPC <= 0 || c.IPC > 4 {
		t.Fatalf("swim single-core IPC = %v, want in (0, 4]", c.IPC)
	}
	if c.MemReads == 0 {
		t.Fatal("swim generated no memory reads")
	}
	if c.BandwidthGBs <= 0 {
		t.Fatal("no bandwidth recorded")
	}
	if res.TotalCycles != c.Cycles {
		t.Fatalf("single-core total cycles %d != core cycles %d", res.TotalCycles, c.Cycles)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := New(Options{Policy: "hf-rf"}); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := New(Options{Policy: "bogus", Apps: []workload.App{app(t, 'c')}}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'c')},
		ME: []float64{1, 2}}); err == nil {
		t.Error("mismatched ME vector accepted")
	}
	sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'c')}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0, 0); err == nil {
		t.Error("zero instruction target accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Result {
		sys, err := New(Options{Policy: "me-lreq",
			Apps: []workload.App{app(t, 'c'), app(t, 'a')}, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(20_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.TotalCycles, b.TotalCycles)
	}
	for i := range a.Cores {
		if a.Cores[i].IPC != b.Cores[i].IPC {
			t.Fatalf("core %d IPC differs across identical runs", i)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) int64 {
		sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'c')}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(20_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCycles
	}
	if run(1) == run(999) {
		t.Fatal("different seeds produced identical cycle counts (suspicious)")
	}
}

func TestMultiCoreContentionSlowsCores(t *testing.T) {
	// Four applu instances (the heaviest streamer) must run slower on
	// average than applu alone. (At two cores the paper itself reports
	// insignificant contention, so the check uses four.)
	alone, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'e')}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resAlone, err := alone.Run(testSlice, 0)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := New(Options{Policy: "hf-rf",
		Apps: []workload.App{app(t, 'e'), app(t, 'e'), app(t, 'e'), app(t, 'e')}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resQuad, err := quad.Run(testSlice, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range resQuad.Cores {
		sum += c.IPC
	}
	if avg := sum / 4; avg >= resAlone.Cores[0].IPC {
		t.Errorf("4-core average IPC %v not below solo IPC %v: no memory contention",
			avg, resAlone.Cores[0].IPC)
	}
}

func TestProfileOrderingMatchesTable2(t *testing.T) {
	// Measured ME must reproduce the paper's ordering for a spread of apps:
	// applu (1) < swim (2) < galgel (8) < facerec (40) < gzip (192) << eon.
	codes := []byte{'e', 'c', 'i', 'n', 'a', 't'}
	mes := make([]float64, len(codes))
	for i, code := range codes {
		p, err := ProfileApp(app(t, code), testSlice, ProfileSeed)
		if err != nil {
			t.Fatal(err)
		}
		if p.IPC <= 0 {
			t.Fatalf("%s: IPC %v", p.App, p.IPC)
		}
		mes[i] = p.ME
	}
	for i := 1; i < len(mes); i++ {
		// Strict ordering among apps with measurable traffic; the sparsest
		// profiles (gzip, eon) may see only a handful of requests in a short
		// test slice, so the final step tolerates near-ties.
		if codes[i] == 't' {
			if mes[i] < mes[i-1]*(1-1e-6) {
				t.Errorf("ME ordering violated at %q (%v) vs %q (%v)",
					string(codes[i]), mes[i], string(codes[i-1]), mes[i-1])
			}
			continue
		}
		if mes[i] <= mes[i-1] {
			t.Errorf("ME ordering violated at %q (%v) vs %q (%v)",
				string(codes[i]), mes[i], string(codes[i-1]), mes[i-1])
		}
	}
}

func TestClassification(t *testing.T) {
	// applu must classify MEM (huge perfect-memory gain), eon must be ILP.
	cases := []struct {
		code byte
		want workload.Class
	}{
		{'e', workload.MEM},
		{'k', workload.MEM},
		{'t', workload.ILP},
		{'u', workload.ILP},
	}
	for _, c := range cases {
		a := app(t, c.code)
		p, err := ProfileApp(a, testSlice, ProfileSeed)
		if err != nil {
			t.Fatal(err)
		}
		if err := Classify(a, &p, testSlice, ProfileSeed); err != nil {
			t.Fatal(err)
		}
		if p.Class != c.want {
			t.Errorf("%s: measured class %v (gain %.1f%%), paper class %v",
				a.Name, p.Class, p.Gain*100, c.want)
		}
	}
}

func TestRunMixWithProfiledME(t *testing.T) {
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	_, mes, err := ProfileAll(apps, 20_000, ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMix(mix, "me-lreq", 20_000, mes, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	if res.AvgReadLatency <= 0 {
		t.Fatal("no average read latency")
	}
}

func TestPoliciesProduceDifferentSchedules(t *testing.T) {
	// On a contended 4-core MEM workload, at least some policies must
	// produce different total runtimes.
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, pol := range []string{"hf-rf", "rr", "lreq", "me-lreq"} {
		res, err := RunMix(mix, pol, 15_000, nil, EvalSeed)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		seen[res.TotalCycles] = true
	}
	if len(seen) < 2 {
		t.Fatal("all four policies produced identical runtimes — scheduling has no effect")
	}
}

func TestSMTSpeedupSane(t *testing.T) {
	mix, err := workload.MixByName("2MIX-1")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := ProfileApp(a, 20_000, EvalSeed)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = p.IPC
	}
	res, err := RunMix(mix, "hf-rf", 20_000, nil, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 || sp > float64(len(apps))*1.1 {
		t.Fatalf("2-core SMT speedup = %v, want in (0, 2.2]", sp)
	}
}

func TestOnlineMEEstimatorTracks(t *testing.T) {
	apps := []workload.App{app(t, 'c'), app(t, 'a')} // swim (low ME) + gzip (high ME)
	sys, err := New(Options{Policy: "me-lreq", Apps: apps, Seed: 5,
		OnlineME: true, OnlineEpoch: 20_000,
		// Start from deliberately WRONG static values: online estimation
		// must recover the true ordering.
		ME: []float64{1000, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(60_000, 0); err != nil {
		t.Fatal(err)
	}
	est := sys.online
	if est.Estimate(0) <= 0 || est.Estimate(1) <= 0 {
		t.Fatalf("estimates not produced: %v, %v", est.Estimate(0), est.Estimate(1))
	}
	if est.Estimate(0) >= est.Estimate(1) {
		t.Fatalf("online ME: swim (%v) should be far below gzip (%v)",
			est.Estimate(0), est.Estimate(1))
	}
	// And the controller table must have been reloaded accordingly.
	tab := sys.Controller().Table()
	if tab.ME(0) >= tab.ME(1) {
		t.Fatalf("table not reloaded: ME(0)=%v ME(1)=%v", tab.ME(0), tab.ME(1))
	}
}

func TestPerfectMemoryConfigRun(t *testing.T) {
	cfg := config.Default(1)
	cfg.PerfectMemory = true
	sys, err := New(Options{Config: &cfg, Policy: "hf-rf",
		Apps: []workload.App{app(t, 'e')}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(testSlice, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Accesses() != 0 {
		t.Fatalf("perfect memory performed %d DRAM accesses", res.DRAM.Accesses())
	}
}

// fixedGen emits a repeating load/compute pattern for generator-override
// tests.
type fixedGen struct{ i int }

func (g *fixedGen) Next(ins *trace.Instr) {
	g.i++
	if g.i%4 == 0 {
		*ins = trace.Instr{Kind: trace.KindLoad, Line: uint64(g.i % 997)}
		return
	}
	*ins = trace.Instr{Kind: trace.KindInt}
}

func TestGeneratorOverride(t *testing.T) {
	a := app(t, 'c')
	sys, err := New(Options{
		Policy:     "hf-rf",
		Apps:       []workload.App{a},
		Generators: []trace.Generator{&fixedGen{}},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(20_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The override pattern is 25% loads over a tiny footprint: the run must
	// complete with near-zero DRAM traffic after warmup (hot set fits L1).
	if res.Cores[0].Retired != 20_000 {
		t.Fatalf("retired %d", res.Cores[0].Retired)
	}
	if res.Cores[0].MemReads > 100 {
		t.Fatalf("override generator produced %d memory reads, want ~0", res.Cores[0].MemReads)
	}
}

func TestGeneratorOverrideCountMismatch(t *testing.T) {
	a := app(t, 'c')
	_, err := New(Options{
		Policy:     "hf-rf",
		Apps:       []workload.App{a},
		Generators: []trace.Generator{&fixedGen{}, &fixedGen{}},
		Seed:       1,
	})
	if err == nil {
		t.Fatal("generator count mismatch accepted")
	}
}

func TestNoWarmupOption(t *testing.T) {
	a := app(t, 't') // eon: almost no traffic, so cold misses dominate early
	run := func(noWarmup bool) float64 {
		sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{a},
			Seed: 1, NoWarmup: noWarmup})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(20_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cores[0].IPC
	}
	warm, cold := run(false), run(true)
	if cold >= warm {
		t.Fatalf("cold-start IPC %.3f should be below warmed IPC %.3f", cold, warm)
	}
}

func TestEnergyReported(t *testing.T) {
	sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app(t, 'c')}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(20_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Energy
	if e.TotalNJ <= 0 || e.AvgPowerMW <= 0 {
		t.Fatalf("energy not populated: %+v", e)
	}
	sum := e.ActivateNJ + e.ReadNJ + e.WriteNJ + e.RefreshNJ + e.BackgroundNJ
	if diff := sum - e.TotalNJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("components (%v) != total (%v)", sum, e.TotalNJ)
	}
	if e.ReadNJ <= 0 {
		t.Fatal("swim produced no read energy")
	}
	if e.RefreshNJ != 0 {
		t.Fatal("refresh energy with refresh disabled")
	}
}

func TestEveryPolicySmoke(t *testing.T) {
	// Every registered policy must complete a small 2-core MEM run with
	// sane results — the catch-all regression for new policies.
	mix, err := workload.MixByName("2MEM-4") // mcf + equake: stress both patterns
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "fix:01", "fix:10"} {
		res, err := RunMix(mix, pol, 15_000, nil, EvalSeed)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for i, c := range res.Cores {
			if c.IPC <= 0 || c.IPC > 4 {
				t.Errorf("%s core %d: IPC %v", pol, i, c.IPC)
			}
			if c.Retired != 15_000 {
				t.Errorf("%s core %d: retired %d", pol, i, c.Retired)
			}
		}
		if res.DRAM.Accesses() == 0 {
			t.Errorf("%s: no DRAM traffic on a MEM mix", pol)
		}
	}
}

func TestWarmupChangesOnlyStatistics(t *testing.T) {
	// With and without warmup the run completes; warmup must not leak into
	// the measured instruction count.
	a := app(t, 'c')
	for _, warm := range []uint64{0, 5_000, 20_000} {
		sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{a},
			Seed: 1, WarmupInstr: warm})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(10_000, 0)
		if err != nil {
			t.Fatalf("warmup %d: %v", warm, err)
		}
		if res.Cores[0].Retired != 10_000 {
			t.Fatalf("warmup %d: retired %d", warm, res.Cores[0].Retired)
		}
	}
}

func TestLatencyDecompositionConsistent(t *testing.T) {
	res, err := RunMix(mustMixT(t, "2MEM-2"), "hf-rf", 20_000, nil, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cores {
		if c.MemReads == 0 {
			continue
		}
		// QueueDelay is sampled at issue while latency/service are sampled
		// at completion, so reads in flight at the freeze boundary make the
		// means differ slightly; require agreement within 2%.
		sum := c.AvgQueueDelay + c.AvgServiceTime
		if diff := sum - c.AvgReadLatency; diff > 0.02*c.AvgReadLatency || diff < -0.02*c.AvgReadLatency {
			t.Errorf("core %d: queue %.1f + service %.1f != latency %.1f",
				i, c.AvgQueueDelay, c.AvgServiceTime, c.AvgReadLatency)
		}
		if int64(c.AvgReadLatency) > c.P95ReadLatency {
			t.Errorf("core %d: mean %v above p95 bound %d", i, c.AvgReadLatency, c.P95ReadLatency)
		}
	}
}

func mustMixT(t *testing.T, name string) workload.Mix {
	t.Helper()
	mix, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

func TestRunSpecMatchesRunMix(t *testing.T) {
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	old, err := RunMix(mix, "me-lreq", testSlice, nil, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Run(context.Background(), RunSpec{Mix: mix, Policy: "me-lreq", Instr: testSlice, Seed: EvalSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, spec) {
		t.Fatal("RunSpec result differs from RunMix")
	}
}

func TestRunSpecAppsOverrideMix(t *testing.T) {
	apps := []workload.App{app(t, 'c'), app(t, 'e')}
	res, err := Run(context.Background(), RunSpec{Apps: apps, Policy: "hf-rf", Instr: testSlice, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 || res.Cores[0].App != apps[0].Name {
		t.Fatalf("apps not honored: %+v", res.Cores)
	}
}

func TestRunSpecValidation(t *testing.T) {
	if _, err := Run(context.Background(), RunSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	mix, _ := workload.MixByName("2MEM-1")
	if _, err := Run(context.Background(), RunSpec{Mix: mix, Policy: "me-lreq"}); err == nil {
		t.Fatal("zero Instr accepted")
	}
}

// TestRunContextCancellation proves the cycle-granularity guarantee: a run
// whose context is cancelled mid-flight returns promptly with ctx's error,
// and an already-cancelled context never starts ticking.
func TestRunContextCancellation(t *testing.T) {
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, RunSpec{Mix: mix, Policy: "me-lreq", Instr: testSlice, Seed: EvalSeed}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// A deadline shorter than the run observes DeadlineExceeded mid-simulation.
	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = Run(ctx, RunSpec{Mix: mix, Policy: "me-lreq", Instr: 10_000_000, Seed: EvalSeed})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: cancellation is checked every CancelCheckCycles, so
	// the return must be near-immediate, not after the 10M-instruction run.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunContextDoesNotPerturb pins that supplying a cancellable (but never
// cancelled) context yields byte-identical results to Background.
func TestRunContextDoesNotPerturb(t *testing.T) {
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Mix: mix, Policy: "me-lreq", Instr: testSlice, Seed: EvalSeed}
	plain, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancellable, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cancellable) {
		t.Fatal("cancellable context perturbed the simulation")
	}
}

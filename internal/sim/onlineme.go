package sim

// OnlineEstimator implements the paper's future-work item (Section 7): an
// epoch-based runtime estimate of each core's memory efficiency, replacing
// off-line profiling. Every epoch it measures committed instructions and
// DRAM traffic per core with the hardware counters the paper already assumes
// (instruction throughput and last-level cache misses) and reloads the
// controller's priority tables.
type OnlineEstimator struct {
	s     *System
	epoch int64
	next  int64

	lastRetired []uint64
	lastTraffic []uint64
	// ewma smooths the per-epoch estimates so one bursty phase does not whip
	// the priorities around.
	ewma []float64
}

// DefaultOnlineEpoch is the measurement window in cycles (62.5 us at
// 3.2 GHz), long enough to see thousands of memory requests from a
// memory-intensive core.
const DefaultOnlineEpoch int64 = 200_000

// ewmaAlpha is the weight of the newest epoch in the running estimate.
const ewmaAlpha = 0.25

// NewOnlineEstimator attaches an estimator to s. epoch <= 0 selects
// DefaultOnlineEpoch.
func NewOnlineEstimator(s *System, epoch int64) *OnlineEstimator {
	if epoch <= 0 {
		epoch = DefaultOnlineEpoch
	}
	n := len(s.cores)
	return &OnlineEstimator{
		s:           s,
		epoch:       epoch,
		next:        epoch,
		lastRetired: make([]uint64, n),
		lastTraffic: make([]uint64, n),
		ewma:        make([]float64, n),
	}
}

// Epoch returns the configured epoch length in cycles.
func (o *OnlineEstimator) Epoch() int64 { return o.epoch }

// NextEventAt implements the next-event time-advance contract: the estimator
// does nothing until the next epoch boundary, so a quiescent run loop must
// not jump past it (the epoch sampling and table reload are time-triggered).
func (o *OnlineEstimator) NextEventAt(int64) int64 { return o.next }

// Estimate returns the current smoothed ME estimate for core (0 until the
// first epoch with measurable traffic completes).
func (o *OnlineEstimator) Estimate(core int) float64 { return o.ewma[core] }

// Tick advances the estimator; call once per cycle.
func (o *OnlineEstimator) Tick(now int64) {
	if now < o.next {
		return
	}
	o.next += o.epoch
	table := o.s.mc.Table()
	for i, c := range o.s.cores {
		retired := c.Retired()
		mcs := o.s.mc.CoreStatsOf(i)
		traffic := mcs.ReadsCompleted + mcs.WritesRetired

		dR := retired - o.lastRetired[i]
		dT := traffic - o.lastTraffic[i]
		o.lastRetired[i] = retired
		o.lastTraffic[i] = traffic

		if dT == 0 {
			// No memory traffic this epoch: treat as extremely efficient,
			// but only once the core has demonstrably made progress.
			if dR > 0 {
				o.fold(i, 1e6)
			}
			continue
		}
		ipc := float64(dR) / float64(o.epoch)
		bytes := float64(dT) * float64(o.s.cfg.L2.LineBytes)
		ns := float64(o.epoch) / o.s.cfg.CyclesPerNs()
		bw := bytes / ns // GB/s
		o.fold(i, ipc/bw)
	}
	// Reload the hardware tables from the smoothed estimates.
	for i := range o.ewma {
		if o.ewma[i] > 0 {
			// SetME only fails for non-positive values, which fold prevents.
			_ = table.SetME(i, o.ewma[i])
		}
	}
}

func (o *OnlineEstimator) fold(core int, sample float64) {
	if sample <= 0 {
		return
	}
	if o.ewma[core] == 0 {
		o.ewma[core] = sample
		return
	}
	o.ewma[core] = (1-ewmaAlpha)*o.ewma[core] + ewmaAlpha*sample
}

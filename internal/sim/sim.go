// Package sim assembles cores, caches, memory controller and DRAM into a
// full system, runs the paper's execution methodology, and reports results.
//
// Methodology (paper Section 4.1): the workload runs until the last core
// commits its instruction slice; cores that finish earlier keep running
// (their generators are infinite, the statistical analogue of "reload the
// application"), but their statistics freeze at their own commit target.
package sim

import (
	"context"
	"fmt"

	"memsched/internal/cache"
	"memsched/internal/config"
	"memsched/internal/cpu"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/power"
	"memsched/internal/sched"
	"memsched/internal/stats"
	"memsched/internal/telemetry"
	"memsched/internal/trace"
	"memsched/internal/workload"
	"memsched/internal/xrand"
)

// Options configures one simulation run.
type Options struct {
	// Config is the machine description; zero value selects config.Default
	// for the number of applications.
	Config *config.Config
	// Policy is the scheduling policy registry name (see package sched).
	Policy string
	// CustomPolicy, when non-nil, overrides Policy with a user-supplied
	// implementation of the controller's Policy interface; Policy is then
	// used only as a display label (defaulting to CustomPolicy.Name()).
	CustomPolicy memctrl.Policy
	// Apps lists the application profiles, one per core.
	Apps []workload.App
	// Generators, when non-nil, overrides the synthetic generators (e.g.
	// with trace.Looper replays of recorded traces); one per core. Apps is
	// still required for names, classes and fallback ME values.
	Generators []trace.Generator
	// Classes assigns each core's application a serving class (LC/BE), one
	// entry per core; nil marks every core best-effort. Classes are labels
	// plus policy input: they are forwarded to the controller (deadline-aware
	// policies read them via Context.LC) and drive per-class latency
	// reporting, but never change admission, timing or any other machine
	// mechanics — a run under a class-blind policy is byte-identical with and
	// without them, apart from the class labels themselves.
	Classes []workload.ServiceClass
	// ME holds the per-core memory-efficiency values loaded into the
	// controller's priority tables (from profiling). nil falls back to each
	// application's PaperME — useful for quick runs without a profiling
	// pass.
	ME []float64
	// Seed drives every random stream in the run. Profiling and evaluation
	// runs use different seeds (the paper's distinct SimPoint slices).
	Seed uint64
	// WarmupInstr is the per-core fast-forward slice executed before
	// statistics start: caches and branch state warm up, then every counter
	// resets. 0 selects instrPerCore/4. Set NoWarmup to measure from a cold
	// machine.
	WarmupInstr uint64
	// NoWarmup disables the warmup phase entirely.
	NoWarmup bool
	// OnlineME enables the epoch-based runtime ME estimator (the paper's
	// future-work extension) instead of the statically loaded table.
	OnlineME bool
	// OnlineEpoch is the estimator epoch length in cycles (0 = default).
	OnlineEpoch int64
	// NoCycleSkip disables next-event time advance and ticks every cycle
	// one at a time. Cycle skipping never changes integer statistics and
	// perturbs float statistics by at most ~1e-9 relative (see RunContext),
	// so this is for differential testing and debugging, not for results.
	NoCycleSkip bool
	// Telemetry, when non-nil, attaches the epoch-sampled observer layer
	// (package telemetry) over the measurement window. It is read-only with
	// respect to the simulated machine: enabling it never changes a Result
	// beyond the exempt SkippedCycles field (epoch boundaries clamp skips).
	Telemetry *telemetry.Options
	// ParallelCores controls intra-run parallelism: between provably
	// interaction-free synchronization points, simulated cores tick
	// concurrently on a worker pool, and the shared hierarchy/controller
	// cycles are replayed serially with a deterministic barrier merge (see
	// parallel.go). Results are policy- and core-count-independent of this
	// knob: integer statistics are byte-identical to the serial loop, floats
	// within the same ~1e-9 regrouping bound cycle skipping carries.
	//   0  auto: parallel when the run simulates >= 3 cores and the host has
	//      >= 2 schedulable CPUs; serial otherwise.
	//   1  serial (the reference loop).
	//   >1 that many workers, capped at the simulated core count; forces the
	//      parallel path even on a single-CPU host (differential tests rely
	//      on this).
	ParallelCores int
}

// CoreResult holds one core's frozen statistics.
type CoreResult struct {
	App     string
	Class   workload.Class
	Retired uint64
	Cycles  int64 // cycles until this core hit its commit target
	IPC     float64
	// Memory-side statistics at freeze time.
	MemReads       uint64
	MemWrites      uint64
	AvgReadLatency float64 // controller admission -> data return, cycles
	// AvgQueueDelay and AvgServiceTime decompose AvgReadLatency into the
	// scheduling component (admission -> issue) and the DRAM component
	// (issue -> data).
	AvgQueueDelay  float64
	AvgServiceTime float64
	// P95ReadLatency is an upper bound on the 95th-percentile read latency
	// (power-of-two histogram buckets).
	P95ReadLatency int64
	// Service is the serving class (LC/BE) assigned to this core's
	// application; BE unless Options.Classes said otherwise.
	Service workload.ServiceClass
	// ReadLatencyP50..P999 are read-latency percentiles from the
	// deterministic log-spaced histogram (exact integer counts, within one
	// bucket width — <= 12.5% relative; cf. P95ReadLatency's 2x bound).
	ReadLatencyP50  int64
	ReadLatencyP95  int64
	ReadLatencyP99  int64
	ReadLatencyP999 int64
	BandwidthGBs   float64 // read+write DRAM traffic over the core's runtime
	L2MissesPerKI  float64 // L2 misses per thousand retired instructions
	// Pipeline-side statistics over the measurement window.
	RetireStallPct float64 // fraction of cycles with a non-empty ROB retiring nothing
	IFetchStalls   uint64  // front-end stalls on instruction supply
	DispatchHaz    uint64  // dispatch attempts blocked by structural hazards
}

// Result is the outcome of one Run.
type Result struct {
	Policy      string
	Cores       []CoreResult
	TotalCycles int64 // when the last core hit its target
	// SkippedCycles counts the measurement-window cycles the next-event run
	// loop jumped over instead of ticking one at a time, because every
	// component was provably idle until a known future event. They are fully
	// accounted for in every statistic (TotalCycles includes them); the ratio
	// SkippedCycles/TotalCycles is the fraction of wall-clock work the
	// quiescence-aware loop avoided.
	SkippedCycles int64
	DRAM          dram.Stats
	// AvgReadLatency is the request-weighted mean across cores, the metric
	// of the paper's Figure 4 (left).
	AvgReadLatency float64
	Drains         uint64
	// ReadQueueOcc and WriteQueueOcc are the mean controller queue depths.
	ReadQueueOcc  float64
	WriteQueueOcc float64
	// BusUtilization is the fraction of cycles the DRAM data buses carried
	// data, averaged over channels.
	BusUtilization float64
	// Energy is the estimated DRAM energy breakdown for the measurement
	// window (DDR2 coefficients; see internal/power).
	Energy power.Breakdown
	// ClassLat summarizes the read-latency distribution per serving class,
	// indexed by workload.ServiceClass (BE = 0, LC = 1). Both entries are
	// always present; with no classes assigned every core is BE and the LC
	// entry is zero. Each core's histogram is captured at its own freeze
	// point, consistent with the per-core statistics.
	ClassLat [2]ClassLatency
}

// ClassLatency is one serving class's aggregated read-latency distribution:
// the merge of the member cores' deterministic histograms, so the integer
// fields are byte-identical across naive, cycle-skipping and parallel run
// modes.
type ClassLatency struct {
	Class workload.ServiceClass
	// Cores is the number of cores in the class; Reads the merged sample
	// count.
	Cores int
	Reads uint64
	// MeanReadLatency is the exact merged mean (integer sum over count).
	MeanReadLatency float64
	// P50..P999 are log-spaced-bucket percentiles (within one bucket width).
	P50  int64
	P95  int64
	P99  int64
	P999 int64
	// Hist is the merged histogram itself, for consumers that need more than
	// the canned percentiles (SLO attainment at arbitrary budgets, run-mode
	// differential tests). It serializes sparsely — occupied buckets only —
	// so wire results and cached checkpoints round-trip with full fidelity.
	Hist stats.LatencyHist `json:"hist"`
}

// IPCs returns the per-core IPC vector.
func (r *Result) IPCs() []float64 {
	out := make([]float64, len(r.Cores))
	for i, c := range r.Cores {
		out[i] = c.IPC
	}
	return out
}

// System is an assembled machine ready to Run.
type System struct {
	cfg    config.Config
	opts   Options
	cores  []*cpu.Core
	hier   *cache.Hierarchy
	mc     *memctrl.Controller
	dramSy *dram.System
	online *OnlineEstimator
	telem  *telemetry.Collector

	// frozenLat[i] is core i's read-latency histogram captured at its own
	// freeze point (cores keep running past their commit target, so the live
	// controller histogram drifts on). Preallocated at New; reset per run.
	frozenLat []stats.LatencyHist

	// Parallel-window state (see parallel.go); pool is non-nil only while a
	// RunContext with an active worker pool is executing.
	pool        *corePool
	winCap      int64
	winTargets  []uint64
	noWinBefore int64
	winRuns     int64
	winCycles   int64

	// Cached non-core horizon for nextEventAt: hier and mc expose change
	// counters, so stalled stretches where neither moved revalidate the last
	// computed min with two integer compares instead of rescanning the event
	// heap and every channel.
	nonCoreNext  int64
	nonCoreHV    uint64
	nonCoreMV    uint64
	nonCoreValid bool
}

// New assembles a system. The number of cores is len(opts.Apps).
func New(opts Options) (*System, error) {
	n := len(opts.Apps)
	if n == 0 {
		return nil, fmt.Errorf("sim: no applications given")
	}
	var cfg config.Config
	if opts.Config != nil {
		cfg = *opts.Config
	} else {
		cfg = config.Default(n)
	}
	cfg.Cores = n
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	pol := opts.CustomPolicy
	if pol == nil {
		var err error
		pol, err = sched.New(opts.Policy, n)
		if err != nil {
			return nil, err
		}
	} else if opts.Policy == "" {
		opts.Policy = pol.Name()
	}

	me := opts.ME
	if me == nil {
		me = make([]float64, n)
		for i, a := range opts.Apps {
			me[i] = a.PaperME
		}
	}
	if len(me) != n {
		return nil, fmt.Errorf("sim: %d ME values for %d cores", len(me), n)
	}
	if opts.Classes != nil && len(opts.Classes) != n {
		return nil, fmt.Errorf("sim: %d service classes for %d cores", len(opts.Classes), n)
	}
	table, err := memctrl.NewPriorityTable(me, cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
	if err != nil {
		return nil, err
	}

	dramSys := dram.NewSystem(&cfg)
	mc, err := memctrl.New(&cfg, dramSys, pol, table, xrand.NewStream(opts.Seed, 0xC0))
	if err != nil {
		return nil, err
	}
	hier := cache.NewHierarchy(&cfg, mc)
	if opts.Classes != nil {
		lc := make([]bool, n)
		for i, c := range opts.Classes {
			lc[i] = c == workload.LC
		}
		if err := mc.SetLatencyCritical(lc); err != nil {
			return nil, err
		}
	}

	if opts.Generators != nil && len(opts.Generators) != n {
		return nil, fmt.Errorf("sim: %d generators for %d cores", len(opts.Generators), n)
	}
	s := &System{cfg: cfg, opts: opts, hier: hier, mc: mc, dramSy: dramSys,
		frozenLat: make([]stats.LatencyHist, n)}
	for i, a := range opts.Apps {
		var gen trace.Generator
		if opts.Generators != nil {
			gen = opts.Generators[i]
		} else {
			// The instruction stream is a function of (seed, application),
			// NOT of the core index: the paper's SMT-speedup metric divides
			// each application's multi-core IPC by its IPC on the *same
			// slice* run alone, so the stream must be identical in both runs.
			var err error
			gen, err = trace.NewSynthetic(a.Params, workload.BaseFor(i), opts.Seed^(uint64(a.Code)*0x9E3779B97F4A7C15))
			if err != nil {
				return nil, fmt.Errorf("sim: core %d (%s): %w", i, a.Name, err)
			}
		}
		core := cpu.NewCore(i, &s.cfg, gen, hier, xrand.NewStream(opts.Seed, uint64(a.Code)))
		core.ConfigureFetch(a.Params.EffectiveCodeLines(), a.Params.EffectiveTakenProb(),
			workload.CodeBaseFor(i))
		// With skipping off the core must also drop its quiescent fast path,
		// so the NoCycleSkip arm of differential tests is a strict
		// cycle-by-cycle reference.
		core.SetNoQuiesce(opts.NoCycleSkip)
		s.cores = append(s.cores, core)
	}
	if opts.OnlineME {
		s.online = NewOnlineEstimator(s, opts.OnlineEpoch)
	}
	if opts.Telemetry != nil {
		s.telem = telemetry.NewCollector(*opts.Telemetry, &s.cfg, s.cores, hier, mc, dramSys)
	}
	return s, nil
}

// Config returns the system's validated configuration.
func (s *System) Config() *config.Config { return &s.cfg }

// Controller exposes the memory controller (for examples and tests).
func (s *System) Controller() *memctrl.Controller { return s.mc }

// Online returns the online ME estimator, or nil when OnlineME is off.
func (s *System) Online() *OnlineEstimator { return s.online }

// Telemetry returns the attached telemetry collector, or nil when disabled.
func (s *System) Telemetry() *telemetry.Collector { return s.telem }

// CancelCheckCycles is the cancellation-check granularity of RunContext: a
// cancelled context is observed within at most this many simulated cycles
// (plus the cost of the in-flight cycle). The check is a single atomic load
// once per interval, so it is invisible in profiles, and it never perturbs
// the simulation itself — a run that is not cancelled produces byte-identical
// Results whether or not a cancellable context is supplied. When cycle
// skipping jumps over an interval boundary the check fires on the first
// cycle actually executed after it, so wall-clock responsiveness is at least
// as good as the naive loop's (a skip costs one loop iteration regardless of
// how many simulated cycles it covers).
const CancelCheckCycles = 1024

// nextCancelCheck returns the first cancellation-check cycle at or after now
// (the naive loop checks at every multiple of CancelCheckCycles).
func nextCancelCheck(now int64) int64 {
	if rem := now % CancelCheckCycles; rem != 0 {
		return now + CancelCheckCycles - rem
	}
	return now
}

// Run executes until every core retires instrPerCore instructions, or until
// maxCycles elapse (0 selects a generous default); hitting the bound is an
// error, because results would be truncated.
func (s *System) Run(instrPerCore uint64, maxCycles int64) (Result, error) {
	return s.RunContext(context.Background(), instrPerCore, maxCycles)
}

// RunContext is Run with mid-simulation cancellation: ctx is polled every
// CancelCheckCycles simulated cycles, in both the warmup and the measurement
// phase, and a cancelled run returns ctx's error (wrapped, so errors.Is works)
// with a zero-valued Result.
func (s *System) RunContext(ctx context.Context, instrPerCore uint64, maxCycles int64) (Result, error) {
	if instrPerCore == 0 {
		return Result{}, fmt.Errorf("sim: instrPerCore must be positive")
	}
	// A context that can never be cancelled (context.Background()) has a nil
	// Done channel; skip the polling entirely in that case.
	cancelCh := ctx.Done()
	warm := s.opts.WarmupInstr
	if warm == 0 && !s.opts.NoWarmup {
		warm = instrPerCore / 4
	}
	if maxCycles <= 0 {
		// 200 cycles per instruction is far beyond any credible slowdown.
		maxCycles = int64(instrPerCore+warm) * 200
	}
	n := len(s.cores)
	res := Result{Policy: s.opts.Policy, Cores: make([]CoreResult, n)}
	for i := range s.frozenLat {
		s.frozenLat[i].Reset()
	}

	// Spin up the parallel worker pool when configured and worthwhile; the
	// deferred close guarantees no goroutine outlives the run, on every exit
	// path including cancellation and cycle-bound errors.
	s.winRuns, s.winCycles = 0, 0
	if w := s.parallelWorkers(); w > 0 {
		if s.winCap = s.windowCap(); s.winCap >= minParallelWindow {
			s.pool = newCorePool(s.cores, w)
			s.winTargets = make([]uint64, n)
			s.noWinBefore = 0
			defer func() {
				s.pool.close()
				s.pool = nil
			}()
		}
	}
	s.nonCoreValid = false

	now := int64(0)

	// Phase 1: warmup. Run until every core has retired `warm` instructions,
	// then reset every statistic; caches, queues and predictor state carry
	// over (fast-forward-then-measure, the role SimPoint warmup plays in the
	// paper's methodology).
	if warm > 0 {
		warmDone := 0
		warmed := make([]bool, n)
		if s.pool != nil {
			for i := range s.winTargets {
				s.winTargets[i] = warm
			}
		}
		nextCancel := nextCancelCheck(now)
		for warmDone < n {
			if now >= maxCycles {
				return res, fmt.Errorf("sim: warmup exceeded %d cycles", maxCycles)
			}
			if cancelCh != nil && now >= nextCancel {
				nextCancel = nextCancelCheck(now + 1)
				if err := ctx.Err(); err != nil {
					return Result{}, fmt.Errorf("sim: run cancelled at warmup cycle %d: %w", now, err)
				}
			}
			now, _ = s.advance(now, maxCycles)
			for i, c := range s.cores {
				if !warmed[i] && c.Retired() >= warm {
					warmed[i] = true
					warmDone++
					if s.pool != nil {
						s.winTargets[i] = 0
					}
				}
			}
		}
		s.mc.ResetStats()
		s.hier.ResetStats()
		s.dramSy.ResetStats()
	}

	// Phase 2: measurement. Each core's target is its own retired count at
	// the window start plus the slice length; its IPC uses cycles from the
	// window start (paper: statistics only over the simpoint's instructions).
	// The window counters restart with the other statistics, so
	// ParallelWindows describes the measurement window (coverage <= 100%).
	s.winRuns, s.winCycles = 0, 0
	t0 := now
	if s.telem != nil {
		// Armed only now: warmup resets have run, so the collector's counter
		// baselines and epoch grid are anchored to the measurement window.
		s.telem.Start(now)
	}
	base := make([]uint64, n)
	cpuBase := make([]cpu.Stats, n)
	for i, c := range s.cores {
		base[i] = c.Retired()
		cpuBase[i] = *c.Stats() // measurement-window baseline
	}
	if s.pool != nil {
		for i := range s.winTargets {
			s.winTargets[i] = base[i] + instrPerCore
		}
	}
	finished := 0
	done := make([]bool, n)
	nextCancel := nextCancelCheck(now)
	for finished < n {
		if now >= maxCycles {
			return res, fmt.Errorf("sim: exceeded %d cycles with %d/%d cores finished",
				maxCycles, finished, n)
		}
		if cancelCh != nil && now >= nextCancel {
			nextCancel = nextCancelCheck(now + 1)
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: run cancelled at cycle %d: %w", now, err)
			}
		}
		var skipped int64
		now, skipped = s.advance(now, maxCycles)
		res.SkippedCycles += skipped
		for i, c := range s.cores {
			if !done[i] && c.Retired() >= base[i]+instrPerCore {
				done[i] = true
				finished++
				if s.pool != nil {
					s.winTargets[i] = 0
				}
				s.freeze(i, now-t0, instrPerCore, &cpuBase[i], &res.Cores[i])
				if finished == n {
					res.TotalCycles = now - t0
				}
			}
		}
	}

	if s.telem != nil {
		// now was post-incremented past the final executed cycle.
		s.telem.Finish(now - 1)
	}
	res.DRAM = s.dramSy.TotalStats()
	res.Drains = s.mc.DrainEntries()
	res.ReadQueueOcc, res.WriteQueueOcc = s.mc.QueueOccupancy()
	if res.TotalCycles > 0 {
		res.BusUtilization = float64(res.DRAM.BusBusyCycles) /
			float64(res.TotalCycles*int64(len(s.dramSy.Channels)))
	}
	res.Energy, _ = power.Estimate(power.DDR2(), power.Counts{
		Activations: res.DRAM.Closed + res.DRAM.Conflicts,
		Reads:       s.mc.ReadsIssued(),
		Writes:      s.mc.WritesIssued(),
		Refreshes:   res.DRAM.Refreshes,
		Ranks:       s.cfg.Memory.Channels * s.cfg.Memory.RanksPerChan,
		Cycles:      res.TotalCycles,
	}, s.cfg.Core.FreqGHz)
	var latSum float64
	var latN uint64
	for i := range res.Cores {
		cs := s.mc.CoreStatsOf(i)
		latSum += cs.ReadLatency.Mean() * float64(cs.ReadLatency.N())
		latN += cs.ReadLatency.N()
	}
	if latN > 0 {
		res.AvgReadLatency = latSum / float64(latN)
	}
	for cls := range res.ClassLat {
		c := workload.ServiceClass(cls)
		h := s.ClassLatencyHist(c)
		cores := 0
		for i := range res.Cores {
			if s.serviceClass(i) == c {
				cores++
			}
		}
		res.ClassLat[cls] = ClassLatency{
			Class:           c,
			Cores:           cores,
			Reads:           h.N(),
			MeanReadLatency: h.Mean(),
			P50:             h.Quantile(0.50),
			P95:             h.Quantile(0.95),
			P99:             h.Quantile(0.99),
			P999:            h.Quantile(0.999),
			Hist:            h,
		}
	}
	return res, nil
}

// serviceClass returns core i's serving class (BE when no classes were
// assigned).
func (s *System) serviceClass(i int) workload.ServiceClass {
	if len(s.opts.Classes) > 0 {
		return s.opts.Classes[i]
	}
	return workload.BE
}

// ClassLatencyHist returns the merged read-latency histogram of every core in
// the given serving class, each captured at its own freeze point. Valid after
// a completed run; the merge of shard histograms is bitwise equal to the
// histogram of the concatenated stream, so the result is byte-identical
// across naive, cycle-skipping and parallel run modes.
func (s *System) ClassLatencyHist(class workload.ServiceClass) stats.LatencyHist {
	var h stats.LatencyHist
	for i := range s.frozenLat {
		if s.serviceClass(i) == class {
			h.Merge(&s.frozenLat[i])
		}
	}
	return h
}

// tick advances every component by one cycle.
func (s *System) tick(now int64) {
	for _, c := range s.cores {
		c.Tick(now)
	}
	s.hier.Tick(now)
	s.mc.Tick(now)
	if s.online != nil {
		s.online.Tick(now)
	}
	// Telemetry samples last, so epoch-boundary samples see the cycle's final
	// state (all completions fired, queues updated).
	if s.telem != nil {
		s.telem.Tick(now)
	}
}

// skipQuiescent implements next-event time advance: called right after the
// tick at `now`, it asks every component for the earliest cycle at which it
// could do anything but repeat the stall it just exhibited, and when that is
// beyond now+1 it bulk-applies the per-cycle statistics of the intervening
// stalled cycles and returns how many cycles the caller may jump over. The
// skipped cycles are exactly the ones the naive loop would have ticked
// without any state change, so results are preserved (integer counters
// exactly; float Running stats to ~1e-9 relative, via stats.ObserveN).
func (s *System) skipQuiescent(now, maxCycles int64) int64 {
	if s.opts.NoCycleSkip {
		return 0
	}
	// Cheap pre-filter: a skip is only possible when no core retired or
	// dispatched this cycle, so don't even scan NextEventAt while any core
	// is making progress — that keeps compute-bound phases at naive-loop cost.
	for _, c := range s.cores {
		if !c.IdleLastTick() {
			return 0
		}
	}
	next := s.nextEventAt(now)
	if next > maxCycles {
		// Never jump past the cycle bound: the error path must fire at the
		// same cycle it would under the naive loop.
		next = maxCycles
	}
	k := next - now - 1
	if k <= 0 {
		return 0
	}
	for _, c := range s.cores {
		c.AbsorbStall(now, k)
	}
	s.hier.AbsorbStall(k)
	s.mc.AbsorbStall(k)
	return k
}

// nextEventAt returns the earliest cycle > now at which any component can
// make progress. A core that can retire or dispatch next cycle short-circuits
// the scan, so compute-bound phases pay almost nothing for the check.
func (s *System) nextEventAt(now int64) int64 {
	next := cpu.FarFuture
	for _, c := range s.cores {
		t := c.NextEventAt(now)
		if t <= now+1 {
			return now + 1
		}
		if t < next {
			next = t
		}
	}
	if t := s.nonCoreNextAt(now); t < next {
		next = t
	}
	if s.online != nil {
		if t := s.online.NextEventAt(now); t < next {
			next = t
		}
	}
	if s.telem != nil {
		// Epoch boundaries clamp the skip target so boundary samples are taken
		// at their exact cycle (same contract as the online estimator).
		if t := s.telem.NextEventAt(now); t < next {
			next = t
		}
	}
	return next
}

// nonCoreNextAt returns min(hierarchy, controller).NextEventAt(now), cached
// between calls: both components maintain a change counter over exactly the
// state their horizon derives from, so a stalled stretch where neither moved
// revalidates the previous answer with two integer compares instead of
// rescanning the event heap and every memory channel. Cached values that are
// not strictly in the future are discarded, because both horizons collapse to
// now+1 when the component can act immediately and that answer does not age.
func (s *System) nonCoreNextAt(now int64) int64 {
	hv, mv := s.hier.Version(), s.mc.Version()
	if s.nonCoreValid && hv == s.nonCoreHV && mv == s.nonCoreMV && s.nonCoreNext > now {
		return s.nonCoreNext
	}
	next := s.hier.NextEventAt(now)
	if t := s.mc.NextEventAt(now); t < next {
		next = t
	}
	s.nonCoreNext, s.nonCoreHV, s.nonCoreMV, s.nonCoreValid = next, hv, mv, true
	return next
}

// freeze records core i's statistics at the moment it reached its target.
// cpuBase is the core's counter snapshot at the start of the measurement
// window, so pipeline statistics cover only the measured slice.
func (s *System) freeze(i int, cycles int64, target uint64, cpuBase *cpu.Stats, out *CoreResult) {
	app := s.opts.Apps[i]
	mcs := s.mc.CoreStatsOf(i)
	hcs := s.hier.CoreStats(i)
	out.App = app.Name
	out.Class = app.Class
	out.Retired = target
	out.Cycles = cycles
	out.IPC = float64(target) / float64(cycles)
	out.MemReads = mcs.ReadsCompleted
	out.MemWrites = mcs.WritesRetired
	out.AvgReadLatency = mcs.ReadLatency.Mean()
	out.AvgQueueDelay = mcs.QueueDelay.Mean()
	out.AvgServiceTime = mcs.ServiceTime.Mean()
	out.P95ReadLatency = mcs.ReadLatencyHist.Quantile(0.95)
	out.Service = s.serviceClass(i)
	// Capture the log-spaced histogram at the core's own freeze point; the
	// copy also feeds the per-class merge after the last core commits.
	s.frozenLat[i] = mcs.LatHist
	out.ReadLatencyP50 = s.frozenLat[i].Quantile(0.50)
	out.ReadLatencyP95 = s.frozenLat[i].Quantile(0.95)
	out.ReadLatencyP99 = s.frozenLat[i].Quantile(0.99)
	out.ReadLatencyP999 = s.frozenLat[i].Quantile(0.999)
	out.L2MissesPerKI = float64(hcs.L2Misses.Value()) * 1000 / float64(target)
	cur := s.cores[i].Stats()
	if dCycles := cur.Cycles - cpuBase.Cycles; dCycles > 0 {
		out.RetireStallPct = float64(cur.RetireStalls-cpuBase.RetireStalls) / float64(dCycles)
	}
	out.IFetchStalls = cur.IFetchStalls - cpuBase.IFetchStalls
	out.DispatchHaz = cur.DispatchHaz - cpuBase.DispatchHaz
	bytes := float64(mcs.ReadsCompleted+mcs.WritesRetired) * float64(s.cfg.L2.LineBytes)
	ns := float64(cycles) / s.cfg.CyclesPerNs()
	if ns > 0 {
		out.BandwidthGBs = bytes / ns // bytes per ns == GB/s
	}
}

// Profile holds one application's single-core profiling outcome
// (paper Equation 1 inputs and result).
type Profile struct {
	App     string
	Code    byte
	IPC     float64
	BWGBs   float64
	ME      float64 // IPC / BW
	MemMPKI float64
	// PerfectIPC and Gain are filled by Classify: IPC under a perfect
	// memory system and the fractional gain over the real system.
	PerfectIPC float64
	Gain       float64
	Class      workload.Class // measured class: MEM if Gain > 0.15
}

// ProfileSeed is the default seed for profiling runs; evaluation runs use a
// different seed, mirroring the paper's disjoint SimPoint slices.
const ProfileSeed uint64 = 0xA11CE

// EvalSeed is the default evaluation seed.
const EvalSeed uint64 = 0xBEEF5

// RunSpec is the declarative description of one simulation run — the input
// of Run, and the unit of work the experiment runner fans out. The zero value
// of every optional field selects the same behavior the positional RunMix
// arguments did, so RunMix(mix, pol, n, mes, seed) and
// Run(ctx, RunSpec{Mix: mix, Policy: pol, Instr: n, ME: mes, Seed: seed})
// are interchangeable.
type RunSpec struct {
	// Mix is the workload to run, one application per core. Apps, when
	// non-nil, overrides it (for ad-hoc app lists outside Table 3).
	Mix  workload.Mix
	Apps []workload.App
	// Classes assigns serving classes (LC/BE), one per core; nil marks every
	// core best-effort (see Options.Classes).
	Classes []workload.ServiceClass
	// Policy is the scheduling policy registry name; CustomPolicy, when
	// non-nil, overrides it with a user implementation (Policy then only
	// labels the result).
	Policy       string
	CustomPolicy memctrl.Policy
	// Instr is the per-core instruction slice; it must be positive.
	Instr uint64
	// ME holds per-core memory-efficiency values from profiling; nil falls
	// back to the paper's Table 2 numbers.
	ME []float64
	// Seed drives every random stream of the run.
	Seed uint64
	// Config overrides the default Table 1 machine.
	Config *config.Config
	// OnlineME enables the epoch-based runtime ME estimator (OnlineEpoch is
	// its epoch length in cycles, 0 = default) instead of static tables.
	OnlineME    bool
	OnlineEpoch int64
	// WarmupInstr/NoWarmup control the fast-forward phase (see Options).
	WarmupInstr uint64
	NoWarmup    bool
	// NoCycleSkip disables next-event time advance (see Options).
	NoCycleSkip bool
	// ParallelCores controls intra-run parallelism over simulated cores
	// (see Options.ParallelCores): 0 = auto, 1 = serial, >1 = worker count.
	ParallelCores int
	// MaxCycles bounds the run (0 selects a generous default).
	MaxCycles int64
	// Telemetry, when non-nil, attaches the epoch-sampled observer layer
	// (see Options.Telemetry); after a successful run the snapshot is
	// exported to Telemetry.Dir when set, and handed to Telemetry.Sink.
	Telemetry *telemetry.Options
}

// Run assembles a system from spec and executes it under ctx. Cancellation
// is observed mid-simulation with CancelCheckCycles granularity, making this
// the entry point the parallel experiment runner builds on.
func Run(ctx context.Context, spec RunSpec) (Result, error) {
	apps := spec.Apps
	if apps == nil {
		var err error
		apps, err = spec.Mix.Apps()
		if err != nil {
			return Result{}, err
		}
	}
	sys, err := New(Options{
		Config:        spec.Config,
		Policy:        spec.Policy,
		CustomPolicy:  spec.CustomPolicy,
		Apps:          apps,
		Classes:       spec.Classes,
		ME:            spec.ME,
		Seed:          spec.Seed,
		WarmupInstr:   spec.WarmupInstr,
		NoWarmup:      spec.NoWarmup,
		OnlineME:      spec.OnlineME,
		OnlineEpoch:   spec.OnlineEpoch,
		NoCycleSkip:   spec.NoCycleSkip,
		ParallelCores: spec.ParallelCores,
		Telemetry:     spec.Telemetry,
	})
	if err != nil {
		return Result{}, err
	}
	res, err := sys.RunContext(ctx, spec.Instr, spec.MaxCycles)
	if err == nil && spec.Telemetry != nil && spec.Telemetry.Dir != "" {
		err = sys.Telemetry().Snapshot().Export(spec.Telemetry.Dir)
	}
	return res, err
}

// ProfileApp measures IPC_single and BW_single for one application on a
// single-core machine with the same per-core configuration (Equation 1).
//
// Deprecated: use ProfileAppContext, which supports cancellation.
func ProfileApp(app workload.App, instr uint64, seed uint64) (Profile, error) {
	return ProfileAppContext(context.Background(), app, instr, seed)
}

// ProfileAppContext is ProfileApp under a cancellable context.
func ProfileAppContext(ctx context.Context, app workload.App, instr uint64, seed uint64) (Profile, error) {
	sys, err := New(Options{Policy: "hf-rf", Apps: []workload.App{app}, Seed: seed})
	if err != nil {
		return Profile{}, err
	}
	res, err := sys.RunContext(ctx, instr, 0)
	if err != nil {
		return Profile{}, fmt.Errorf("sim: profiling %s: %w", app.Name, err)
	}
	c := res.Cores[0]
	p := Profile{
		App: app.Name, Code: app.Code,
		IPC: c.IPC, BWGBs: c.BandwidthGBs,
		MemMPKI: float64(c.MemReads+c.MemWrites) * 1000 / float64(c.Retired),
	}
	if p.BWGBs > 0 {
		p.ME = p.IPC / p.BWGBs
	} else {
		// No measurable traffic in the slice: effectively infinite memory
		// efficiency; use a large finite stand-in like the paper's eon.
		p.ME = 1e6
	}
	return p, nil
}

// Classify runs app under a perfect memory system and fills the profile's
// classification fields (paper Section 4.2: MEM if >15% faster with perfect
// memory).
//
// Deprecated: use ClassifyContext, which supports cancellation.
func Classify(app workload.App, p *Profile, instr uint64, seed uint64) error {
	return ClassifyContext(context.Background(), app, p, instr, seed)
}

// ClassifyContext is Classify under a cancellable context.
func ClassifyContext(ctx context.Context, app workload.App, p *Profile, instr uint64, seed uint64) error {
	cfg := config.Default(1)
	cfg.PerfectMemory = true
	sys, err := New(Options{Config: &cfg, Policy: "hf-rf", Apps: []workload.App{app}, Seed: seed})
	if err != nil {
		return err
	}
	res, err := sys.RunContext(ctx, instr, 0)
	if err != nil {
		return fmt.Errorf("sim: classifying %s: %w", app.Name, err)
	}
	p.PerfectIPC = res.Cores[0].IPC
	if p.IPC > 0 {
		p.Gain = p.PerfectIPC/p.IPC - 1
	}
	p.Class = workload.ILP
	if p.Gain > 0.15 {
		p.Class = workload.MEM
	}
	return nil
}

// ProfileAll profiles every application in apps and returns the ME vector in
// the same order, for feeding a subsequent evaluation run.
//
// Deprecated: use ProfileAllContext, which supports cancellation.
func ProfileAll(apps []workload.App, instr uint64, seed uint64) ([]Profile, []float64, error) {
	return ProfileAllContext(context.Background(), apps, instr, seed)
}

// ProfileAllContext is ProfileAll under a cancellable context.
func ProfileAllContext(ctx context.Context, apps []workload.App, instr uint64, seed uint64) ([]Profile, []float64, error) {
	profiles := make([]Profile, len(apps))
	mes := make([]float64, len(apps))
	for i, a := range apps {
		p, err := ProfileAppContext(ctx, a, instr, seed)
		if err != nil {
			return nil, nil, err
		}
		profiles[i] = p
		mes[i] = p.ME
	}
	return profiles, mes, nil
}

// RunMix runs a Table 3 workload under the named policy.
//
// Deprecated: use Run, which takes a context and a RunSpec.
func RunMix(mix workload.Mix, policy string, instrPerCore uint64, mes []float64, seed uint64) (Result, error) {
	return Run(context.Background(), RunSpec{Mix: mix, Policy: policy, Instr: instrPerCore, ME: mes, Seed: seed})
}

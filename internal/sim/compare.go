package sim

import (
	"fmt"
	"reflect"
)

// DiffResults compares two Results field by field and returns a description
// of every divergence (nil means equivalent). Integer, string and boolean
// fields must be identical; float fields may differ by at most floatTol
// relative. SkippedCycles is exempt: it describes how the run loop advanced
// time (naive ticking vs next-event skipping), not the simulated machine, so
// two equivalent runs may legitimately differ there.
//
// This is the acceptance contract of the quiescence-aware run loop: a run
// with cycle skipping must diff clean against the same run with NoCycleSkip,
// and against fixtures recorded before skipping existed. The float tolerance
// exists only because absorbed stall stretches enter Running statistics via
// one parallel-merge step (stats.ObserveN) instead of k repeated Observes,
// which reorders float additions.
func DiffResults(got, want Result, floatTol float64) []string {
	var diffs []string
	diffValues("", reflect.ValueOf(got), reflect.ValueOf(want), floatTol, &diffs)
	return diffs
}

// resultExemptFields are top-level Result fields DiffResults skips.
var resultExemptFields = map[string]bool{"SkippedCycles": true}

func diffValues(path string, got, want reflect.Value, floatTol float64, diffs *[]string) {
	switch got.Kind() {
	case reflect.Struct:
		for i := 0; i < got.NumField(); i++ {
			f := got.Type().Field(i)
			if path == "" && resultExemptFields[f.Name] {
				continue
			}
			diffValues(path+"."+f.Name, got.Field(i), want.Field(i), floatTol, diffs)
		}
	case reflect.Slice, reflect.Array:
		if got.Len() != want.Len() {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d != %d", path, got.Len(), want.Len()))
			return
		}
		for i := 0; i < got.Len(); i++ {
			diffValues(fmt.Sprintf("%s[%d]", path, i), got.Index(i), want.Index(i), floatTol, diffs)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		// Integer kinds are compared via the kind accessors, not Interface(),
		// so comparison reaches unexported fields (stats.LatencyHist counts).
		if g, w := got.Int(), want.Int(); g != w {
			*diffs = append(*diffs, fmt.Sprintf("%s: %d != %d", path, g, w))
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if g, w := got.Uint(), want.Uint(); g != w {
			*diffs = append(*diffs, fmt.Sprintf("%s: %d != %d", path, g, w))
		}
	case reflect.Bool:
		if g, w := got.Bool(), want.Bool(); g != w {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v", path, g, w))
		}
	case reflect.String:
		if g, w := got.String(), want.String(); g != w {
			*diffs = append(*diffs, fmt.Sprintf("%s: %q != %q", path, g, w))
		}
	case reflect.Float32, reflect.Float64:
		g, w := got.Float(), want.Float()
		scale := 1.0
		for _, v := range []float64{g, w, -g, -w} {
			if v > scale {
				scale = v
			}
		}
		if d := g - w; d > floatTol*scale || d < -floatTol*scale {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v (rel tol %g)", path, g, w, floatTol))
		}
	default:
		if !reflect.DeepEqual(got.Interface(), want.Interface()) {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v", path, got.Interface(), want.Interface()))
		}
	}
}

package sim_test

import (
	"context"
	"sync/atomic"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/telemetry"
	"memsched/internal/workload"
)

// TestTelemetrySkipAlignment extends the skip differential property to the
// telemetry layer: for every registered policy at 2, 4 and 8 cores, the epoch
// series sampled under next-event time advance must agree with the naive
// cycle-by-cycle loop — integer fields exactly, floats within 1e-9 relative.
// This is the acceptance contract of the epoch-boundary skip clamp: if a skip
// ever jumped past a boundary, the late sample would bin deltas into the
// wrong epoch and the integer series would diverge.
func TestTelemetrySkipAlignment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulation pairs")
	}
	// fix:<order> encodes one priority digit per core, so each core count
	// gets its own spelling.
	fixFor := map[string]string{"2MEM-1": "fix:10", "4MEM-1": "fix:3210", "8MEM-4": "fix:76543210"}
	var totalSkipped atomic.Int64
	for _, mixName := range []string{"2MEM-1", "4MEM-1", "8MEM-4"} {
		for _, pol := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", fixFor[mixName]} {
			mixName, pol := mixName, pol
			t.Run(mixName+"/"+pol, func(t *testing.T) {
				t.Parallel()
				mix, err := workload.MixByName(mixName)
				if err != nil {
					t.Fatal(err)
				}
				run := func(noSkip bool) (*telemetry.Snapshot, sim.Result) {
					var snap *telemetry.Snapshot
					res, err := sim.Run(context.Background(), sim.RunSpec{
						Mix: mix, Policy: pol, Instr: 2_000, Seed: sim.EvalSeed,
						// Strict fixed priority starves the lowest core at 8
						// cores; give headroom beyond the default cycle bound.
						MaxCycles:   2_000_000,
						NoCycleSkip: noSkip,
						Telemetry: &telemetry.Options{
							Epoch: 500, Commands: true,
							Sink: func(s *telemetry.Snapshot) { snap = s },
						},
					})
					if err != nil {
						t.Fatalf("noSkip=%v: %v", noSkip, err)
					}
					return snap, res
				}
				skipSnap, skipRes := run(false)
				naiveSnap, naiveRes := run(true)
				for _, d := range telemetry.DiffSnapshots(skipSnap, naiveSnap, 1e-9) {
					t.Error(d)
				}
				for _, d := range sim.DiffResults(skipRes, naiveRes, 1e-9) {
					t.Error(d)
				}
				totalSkipped.Add(skipRes.SkippedCycles)
			})
		}
	}
	t.Cleanup(func() {
		// The alignment property is vacuous unless skipping engaged with
		// telemetry attached.
		if totalSkipped.Load() == 0 {
			t.Error("no case skipped any cycle; the epoch clamp was never exercised")
		}
	})
}

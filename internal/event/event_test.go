package event

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("zero-value queue should be empty")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue should report !ok")
	}
	if _, ok := q.RunNext(); ok {
		t.Fatal("RunNext on empty queue should report !ok")
	}
	if q.RunUntil(100) != 0 {
		t.Fatal("RunUntil on empty queue should fire nothing")
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	var order []int64
	for _, when := range []int64{50, 10, 30, 20, 40} {
		w := when
		q.Schedule(w, func(now int64) { order = append(order, now) })
	}
	q.RunUntil(100)
	want := []int64{10, 20, 30, 40, 50}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStableAtSameTime(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 20; i++ {
		id := i
		q.Schedule(7, func(int64) { order = append(order, id) })
	}
	q.RunUntil(7)
	for i, id := range order {
		if id != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	var q Queue
	fired := false
	q.Schedule(10, func(int64) { fired = true })
	q.RunUntil(9)
	if fired {
		t.Fatal("event at 10 fired at RunUntil(9)")
	}
	q.RunUntil(10)
	if !fired {
		t.Fatal("event at 10 did not fire at RunUntil(10)")
	}
}

func TestCallbackSchedulesMore(t *testing.T) {
	var q Queue
	var order []string
	q.Schedule(1, func(now int64) {
		order = append(order, "a")
		q.Schedule(now+1, func(int64) { order = append(order, "b") })
		q.Schedule(now+100, func(int64) { order = append(order, "late") })
	})
	n := q.RunUntil(10)
	if n != 2 {
		t.Fatalf("fired %d events, want 2 (cascaded event within horizon)", n)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if q.Len() != 1 {
		t.Fatalf("late event should remain queued, Len = %d", q.Len())
	}
}

func TestRunNext(t *testing.T) {
	var q Queue
	sum := 0
	q.Schedule(5, func(int64) { sum += 1 })
	q.Schedule(3, func(int64) { sum += 10 })
	when, ok := q.RunNext()
	if !ok || when != 3 || sum != 10 {
		t.Fatalf("first RunNext: when=%d ok=%v sum=%d", when, ok, sum)
	}
	when, ok = q.RunNext()
	if !ok || when != 5 || sum != 11 {
		t.Fatalf("second RunNext: when=%d ok=%v sum=%d", when, ok, sum)
	}
}

func TestHeapPropertyRandom(t *testing.T) {
	f := func(timesRaw []int16) bool {
		var q Queue
		times := make([]int64, len(timesRaw))
		for i, v := range timesRaw {
			times[i] = int64(v)
			if times[i] < 0 {
				times[i] = -times[i]
			}
		}
		var fired []int64
		for _, w := range times {
			q.Schedule(w, func(now int64) { fired = append(fired, now) })
		}
		q.RunUntil(1 << 30)
		if len(fired) != len(times) {
			return false
		}
		sorted := append([]int64(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	q.Schedule(42, func(int64) {})
	q.Schedule(17, func(int64) {})
	if when, ok := q.PeekTime(); !ok || when != 17 {
		t.Fatalf("PeekTime = %d,%v want 17,true", when, ok)
	}
	if q.Len() != 2 {
		t.Fatal("PeekTime should not consume events")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	var q Queue
	fn := func(int64) {}
	for i := 0; i < b.N; i++ {
		q.Schedule(int64(i^0x5555), fn)
		if q.Len() > 1024 {
			q.RunUntil(int64(i))
		}
	}
	q.RunUntil(1 << 62)
}

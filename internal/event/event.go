// Package event implements the discrete-event core used by parts of the
// simulator that are naturally event-driven (request completions, timeouts)
// rather than polled every cycle.
//
// The queue is a hand-rolled binary heap rather than container/heap to avoid
// the interface-call and allocation overhead on the simulator's hot path;
// events are stored by value.
package event

// Event is a callback scheduled for a simulation time. Events at the same
// time fire in insertion order (stable), which keeps the simulator
// deterministic regardless of heap internals.
type Event struct {
	When int64
	Fn   func(now int64)

	seq uint64
}

// Queue is a min-heap of events ordered by (When, insertion order).
// The zero value is ready to use.
type Queue struct {
	heap    []Event
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule enqueues fn to run at time when. Scheduling in the past is the
// caller's bug; the queue still accepts it and will fire it next.
func (q *Queue) Schedule(when int64, fn func(now int64)) {
	q.heap = append(q.heap, Event{When: when, Fn: fn, seq: q.nextSeq})
	q.nextSeq++
	q.up(len(q.heap) - 1)
}

// PeekTime returns the time of the earliest event, or ok=false if empty.
func (q *Queue) PeekTime() (when int64, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].When, true
}

// RunUntil fires every event with When <= now, in time order, and returns the
// number fired. Events scheduled by callbacks are eligible within the same
// call if their time is also <= now.
func (q *Queue) RunUntil(now int64) int {
	fired := 0
	for len(q.heap) > 0 && q.heap[0].When <= now {
		e := q.pop()
		e.Fn(e.When)
		fired++
	}
	return fired
}

// RunNext fires the single earliest event and returns its time, or ok=false
// if the queue is empty. Used by pure event-driven loops.
func (q *Queue) RunNext() (when int64, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	e := q.pop()
	e.Fn(e.When)
	return e.When, true
}

func (q *Queue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.When != b.When {
		return a.When < b.When
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

func (q *Queue) pop() Event {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = Event{} // release the closure for GC
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

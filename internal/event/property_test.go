package event_test

import (
	"strings"
	"testing"

	"memsched/internal/event"
	"memsched/internal/xrand"
)

// The golden-equivalence tests in internal/sim depend on one determinism
// guarantee above all: events scheduled for the same cycle fire in insertion
// order, no matter how Schedule, RunUntil, and RunNext interleave. These
// tests check that property against a brute-force reference model across
// thousands of randomized interleavings.

// modelEvent is one pending event in the reference model, which stores
// events in insertion order and fires them by (when, insertion position).
type modelEvent struct {
	when int64
	id   int
}

// modelPop removes and returns the earliest event (ties by insertion order),
// restricted to when <= bound unless bound < 0.
func modelPop(pending *[]modelEvent, bound int64) (modelEvent, bool) {
	best := -1
	for i, e := range *pending {
		if bound >= 0 && e.when > bound {
			continue
		}
		if best == -1 || e.when < (*pending)[best].when {
			best = i // strict <: the earliest-inserted among equal times wins
		}
	}
	if best == -1 {
		return modelEvent{}, false
	}
	e := (*pending)[best]
	*pending = append((*pending)[:best], (*pending)[best+1:]...)
	return e, true
}

func TestQueueMatchesModelAcrossRandomInterleavings(t *testing.T) {
	rng := xrand.New(0xE7E71)
	for trial := 0; trial < 3000; trial++ {
		var q event.Queue
		var pending []modelEvent
		var fired, want []int
		nextID := 0
		now := int64(0)

		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 6:
				// Schedule near the current time so same-cycle ties are common.
				when := now + int64(rng.Intn(4))
				id := nextID
				nextID++
				q.Schedule(when, func(int64) { fired = append(fired, id) })
				pending = append(pending, modelEvent{when: when, id: id})
			case r < 9:
				now += int64(rng.Intn(3))
				for {
					e, ok := modelPop(&pending, now)
					if !ok {
						break
					}
					want = append(want, e.id)
				}
				q.RunUntil(now)
			default:
				if e, ok := modelPop(&pending, -1); ok {
					want = append(want, e.id)
					when, ok2 := q.RunNext()
					if !ok2 || when != e.when {
						t.Fatalf("trial %d: RunNext = (%d,%v), model fired id %d at %d",
							trial, when, ok2, e.id, e.when)
					}
					// RunNext may advance time past `now`; later RunUntil calls
					// use max(now, when) implicitly since our now only grows.
					if when > now {
						now = when
					}
				}
			}
		}
		// Drain everything.
		for {
			e, ok := modelPop(&pending, -1)
			if !ok {
				break
			}
			want = append(want, e.id)
		}
		q.RunUntil(1 << 40)

		if q.Len() != 0 {
			t.Fatalf("trial %d: %d events left after drain", trial, q.Len())
		}
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, model fired %d", trial, len(fired), len(want))
		}
		for i := range fired {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: firing order diverged at %d: got %v, want %v",
					trial, i, fired, want)
			}
		}
	}
}

// TestQueueReentrantSchedulingOrder pins the in-callback scheduling
// semantics: events pushed during RunUntil join the same pass when due, and
// same-time events still fire in insertion order.
func TestQueueReentrantSchedulingOrder(t *testing.T) {
	var q event.Queue
	var fired []string
	mark := func(s string) func(int64) {
		return func(int64) { fired = append(fired, s) }
	}
	q.Schedule(5, func(int64) {
		fired = append(fired, "A")
		q.Schedule(5, mark("B")) // same time, inserted later -> fires after D
		q.Schedule(4, mark("C")) // in the past -> earliest time, fires next
	})
	q.Schedule(5, mark("D")) // inserted before B, same time
	q.RunUntil(5)
	got := strings.Join(fired, ",")
	if got != "A,C,D,B" {
		t.Fatalf("reentrant firing order = %s, want A,C,D,B", got)
	}
}

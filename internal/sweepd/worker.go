package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"memsched/internal/runner"
	"memsched/internal/sim"
)

// WorkerOptions configures a worker process (or in-process worker loop).
type WorkerOptions struct {
	// Coordinator is the coordinator address ("host:port" or http:// URL).
	Coordinator string
	// Name identifies the worker in outcomes and logs. "" derives one from
	// the hostname and PID.
	Name string
	// MinProcs and MaxProcs bound the executor pool. The worker sizes the
	// pool inside [MinProcs, MaxProcs] from the queue-depth hint carried on
	// every claim response: an empty coordinator queue lets the pool drain
	// down to MinProcs, a deep backlog grows it to MaxProcs. MinProcs 0
	// selects 1; MaxProcs 0 selects max(Slots, MinProcs, 1).
	MinProcs int
	MaxProcs int
	// Batch is the most job leases fetched per claim round trip and the most
	// completions reported per complete round trip. 0 selects MaxProcs;
	// 1 keeps the single-job wire forms.
	Batch int
	// Slots is the legacy fixed pool size: when MinProcs and MaxProcs are
	// both 0 it pins the pool to exactly Slots executors. 0 selects 1.
	Slots int
	// ParallelCores fills a claimed spec's ParallelCores when the spec
	// leaves it 0 (auto): intra-run parallelism over simulated cores,
	// resolved against this host.
	ParallelCores int
	// JobTimeout bounds each job's wall clock (0 = unbounded). A timed-out
	// job is reported as failed, exactly like the in-process pool.
	JobTimeout time.Duration
	// Poll is the idle wait between claim attempts when the queue is empty
	// or the coordinator is unreachable. 0 selects 500ms.
	Poll time.Duration
	// Logf receives per-job log lines (nil disables them).
	Logf func(format string, args ...any)
}

// desiredProcs sizes the executor pool: enough executors to cover the jobs
// this worker already holds plus the coordinator's reported backlog, clamped
// to [min, max]. It is a pure function so the autoscaling policy is testable
// without a coordinator.
func desiredProcs(inflight int, queueDepth int64, min, max int) int {
	want := inflight + int(queueDepth)
	if want < min {
		want = min
	}
	if want > max {
		want = max
	}
	return want
}

// worker is the runtime state behind RunWorker: one claim loop feeding an
// autoscaled executor pool, one batch heartbeater covering every held lease,
// and one completion batcher draining finished jobs back to the coordinator.
type worker struct {
	client *Client
	opts   WorkerOptions
	root   context.Context // RunWorker's ctx: cancelled on shutdown
	min    int
	max    int
	batch  int
	logf   func(string, ...any)

	jobs      chan LeaseV1           // claimed leases awaiting an executor
	comps     chan CompleteRequestV1 // finished jobs awaiting reporting
	hbMillis  atomic.Int64           // heartbeat cadence learned from claims
	hbChanged chan struct{}          // pokes the heartbeater out of a stale sleep

	mu       sync.Mutex
	active   map[string]*activeRun // leases held: claimed, queued, or running
	inflight int                   // len(active), tracked for desiredProcs
	procs    int                   // live executors
	target   int                   // pool size executors retire down to
	execWG   sync.WaitGroup
}

// activeRun tracks one held lease from claim to completion. The heartbeater
// cancels the run and sets lost when the coordinator revokes the lease.
type activeRun struct {
	mu     sync.Mutex
	cancel context.CancelFunc // nil until the run starts
	lost   bool
}

func (ar *activeRun) markLost() {
	ar.mu.Lock()
	ar.lost = true
	cancel := ar.cancel
	ar.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (ar *activeRun) isLost() bool {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.lost
}

func (ar *activeRun) setCancel(cancel context.CancelFunc) bool {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if ar.lost {
		return false
	}
	ar.cancel = cancel
	return true
}

// RunWorker claims and executes jobs until ctx is cancelled. Claims fetch up
// to Batch leases per round trip; every held lease is heartbeated in one
// batched beat; completed jobs are reported in batches sized by whatever has
// finished since the last report. If the coordinator revokes a lease mid-run
// (ErrLeaseLost), that simulation is cancelled and its result discarded. Jobs
// run through runner.Execute, so a panicking run is reported as that job's
// failure, never a worker crash. RunWorker returns nil after a clean shutdown.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	min, max := opts.MinProcs, opts.MaxProcs
	if min <= 0 {
		min = 1
	}
	if max <= 0 {
		// Legacy Slots pins a fixed pool when no autoscale bounds are given.
		if opts.MinProcs <= 0 && opts.Slots > 0 {
			min = opts.Slots
		}
		max = min
		if opts.Slots > max {
			max = opts.Slots
		}
	}
	if min > max {
		min = max
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = max
	}
	w := &worker{
		client:    NewClient(opts.Coordinator),
		opts:      opts,
		root:      ctx,
		min:       min,
		max:       max,
		batch:     batch,
		jobs:      make(chan LeaseV1, batch),
		comps:     make(chan CompleteRequestV1, batch),
		hbChanged: make(chan struct{}, 1),
		active:    map[string]*activeRun{},
		logf: func(format string, args ...any) {
			if opts.Logf != nil {
				opts.Logf(format, args...)
			}
		},
	}
	w.resize(min)

	var bgWG sync.WaitGroup
	bgWG.Add(2)
	go func() { defer bgWG.Done(); w.heartbeater(ctx) }()
	go func() { defer bgWG.Done(); w.completer(ctx) }()

	w.claimLoop(ctx)
	// Shutdown: close the handoff channel so executors drain any parked
	// leases (their runs cancel immediately under the dead root context and
	// report nothing, so the leases expire and re-queue) and exit.
	close(w.jobs)
	w.execWG.Wait()
	bgWG.Wait()
	return nil
}

// resize grows the pool to target immediately and records the size excess
// executors retire down to after their current job.
func (w *worker) resize(target int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.target = target
	for w.procs < target {
		w.procs++
		w.execWG.Add(1)
		go w.executor()
	}
}

// shouldRetire lets an idle-bound executor exit when the pool is above target.
func (w *worker) shouldRetire() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.procs > w.target && w.procs > w.min {
		w.procs--
		return true
	}
	return false
}

// claimLoop fetches lease batches and hands them to the executor pool. The
// jobs channel's bounded buffer is the backpressure: once the pool and the
// buffer are full, the loop blocks on the handoff (held leases stay
// heartbeated) instead of claiming further ahead.
func (w *worker) claimLoop(ctx context.Context) {
	idle := func() {
		select {
		case <-ctx.Done():
		case <-time.After(w.opts.Poll):
		}
	}
	for ctx.Err() == nil {
		resp, err := w.client.Claim(ctx, w.opts.Name, w.batch)
		if err != nil {
			if ctx.Err() == nil {
				w.logf("%s: claim: %v", w.opts.Name, err)
				idle()
			}
			continue
		}
		if resp.HeartbeatMillis > 0 && w.hbMillis.Swap(resp.HeartbeatMillis) != resp.HeartbeatMillis {
			// The coordinator's cadence differs from what the heartbeater is
			// sleeping on (always true for a worker's first claim, whose
			// default is a conservative 1s): wake it so a short lease TTL
			// isn't missed while the old sleep runs out.
			select {
			case w.hbChanged <- struct{}{}:
			default:
			}
		}
		leases := resp.Leases
		if len(leases) == 0 && resp.Found {
			// A pre-batching coordinator answers in the single-job form.
			leases = []LeaseV1{{LeaseID: resp.LeaseID, Job: resp.Job}}
		}
		w.resize(desiredProcs(w.holding()+len(leases), resp.QueueDepth, w.min, w.max))
		if len(leases) == 0 {
			idle()
			continue
		}
		for _, lv := range leases {
			w.mu.Lock()
			w.active[lv.LeaseID] = &activeRun{}
			w.inflight++
			w.mu.Unlock()
			select {
			case w.jobs <- lv:
			case <-ctx.Done():
				// Shutdown with leases in hand: drop them and let the TTL
				// re-queue the jobs.
				return
			}
		}
	}
}

func (w *worker) holding() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}

// release drops a lease from the active table once its run is resolved.
func (w *worker) release(leaseID string) {
	w.mu.Lock()
	delete(w.active, leaseID)
	w.inflight--
	w.mu.Unlock()
}

func (w *worker) executor() {
	defer w.execWG.Done()
	for lv := range w.jobs {
		w.runJob(lv)
		if w.shouldRetire() {
			return
		}
	}
}

// heartbeater extends every held lease in one batched round trip per beat.
// Revoked leases get their runs cancelled; a transport failure simply waits
// for the next beat (the lease TTL leaves slack for several misses).
func (w *worker) heartbeater(ctx context.Context) {
	for {
		interval := time.Duration(w.hbMillis.Load()) * time.Millisecond
		if interval <= 0 {
			interval = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-w.hbChanged:
			// Re-sleep on the new cadence, then beat.
			continue
		case <-time.After(interval):
		}
		w.mu.Lock()
		ids := make([]string, 0, len(w.active))
		for id := range w.active {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		var lost []string
		if len(ids) == 1 && w.batch == 1 {
			if err := w.client.Heartbeat(ctx, ids[0]); err == ErrLeaseLost {
				lost = ids
			}
		} else {
			resp, err := w.client.HeartbeatBatch(ctx, ids)
			if err != nil {
				continue
			}
			lost = resp.Lost
		}
		for _, id := range lost {
			w.mu.Lock()
			ar := w.active[id]
			w.mu.Unlock()
			if ar != nil {
				ar.markLost()
			}
		}
	}
}

// completer drains finished jobs and reports them in batches: it blocks for
// the first completion, then greedily folds in everything else already
// waiting, so batching amortizes round trips without delaying a lone result.
func (w *worker) completer(ctx context.Context) {
	for {
		var batch []CompleteRequestV1
		select {
		case <-ctx.Done():
			return
		case comp := <-w.comps:
			batch = append(batch, comp)
		}
	drain:
		for len(batch) < w.batch {
			select {
			case comp := <-w.comps:
				batch = append(batch, comp)
			default:
				break drain
			}
		}
		w.report(ctx, batch)
	}
}

func (w *worker) report(ctx context.Context, batch []CompleteRequestV1) {
	if len(batch) == 1 {
		err := w.client.Complete(ctx, batch[0])
		if err != nil && err != ErrLeaseLost && ctx.Err() == nil {
			w.logf("%s: reporting completion: %v", w.opts.Name, err)
		}
		return
	}
	resp, err := w.client.CompleteBatch(ctx, batch)
	if err != nil {
		if ctx.Err() == nil {
			w.logf("%s: reporting %d completions: %v", w.opts.Name, len(batch), err)
		}
		return
	}
	for _, id := range resp.Lost {
		w.logf("%s: lease %s revoked before completion; result discarded", w.opts.Name, id)
	}
}

// runJob executes one leased job with panic isolation and queues its outcome
// for the completion batcher. A worker killed mid-job simply stops
// heartbeating — the coordinator's reaper re-queues the job, which is the
// crash-recovery path the e2e tests exercise.
func (w *worker) runJob(lv LeaseV1) {
	w.mu.Lock()
	ar := w.active[lv.LeaseID]
	w.mu.Unlock()
	if ar == nil {
		return
	}
	jobCtx, cancel := context.WithCancel(w.root)
	defer cancel()
	if !ar.setCancel(cancel) {
		// Revoked while waiting for an executor.
		w.release(lv.LeaseID)
		w.logf("%s: job %q: lease revoked before start, skipped", w.opts.Name, lv.Job.Key)
		return
	}

	job := lv.Job
	t0 := time.Now()
	raw, err := runner.Execute(jobCtx, runner.Job{ID: job.ID, Key: job.Key},
		func(ctx context.Context, _ runner.Job) (json.RawMessage, error) {
			spec, err := job.Spec.RunSpec()
			if err != nil {
				return nil, err
			}
			if spec.ParallelCores == 0 {
				spec.ParallelCores = w.opts.ParallelCores
			}
			res, err := sim.Run(ctx, spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		}, w.opts.JobTimeout)
	elapsed := time.Since(t0)

	lost := ar.isLost()
	w.release(lv.LeaseID)
	switch {
	case lost:
		w.logf("%s: job %q: lease revoked mid-run, result discarded", w.opts.Name, job.Key)
		return
	case w.root.Err() != nil:
		// Worker shutdown mid-job: report nothing and let the lease expire,
		// so the job is re-queued rather than recorded as failed.
		return
	}
	comp := CompleteRequestV1{LeaseID: lv.LeaseID, ElapsedMillis: elapsed.Milliseconds()}
	if err != nil {
		comp.Err = err.Error()
		w.logf("%s: job %q failed in %s: %v", w.opts.Name, job.Key, elapsed.Round(time.Millisecond), err)
	} else {
		comp.Value = raw
		w.logf("%s: job %q done in %s", w.opts.Name, job.Key, elapsed.Round(time.Millisecond))
	}
	select {
	case w.comps <- comp:
	case <-w.root.Done():
	}
}

package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"memsched/internal/runner"
	"memsched/internal/sim"
)

// WorkerOptions configures a worker process (or in-process worker loop).
type WorkerOptions struct {
	// Coordinator is the coordinator address ("host:port" or http:// URL).
	Coordinator string
	// Name identifies the worker in outcomes and logs. "" derives one from
	// the hostname and PID.
	Name string
	// Slots is the number of jobs executed concurrently (the worker-side
	// analogue of the runner pool's Workers). 0 selects 1.
	Slots int
	// ParallelCores fills a claimed spec's ParallelCores when the spec
	// leaves it 0 (auto): intra-run parallelism over simulated cores,
	// resolved against this host.
	ParallelCores int
	// JobTimeout bounds each job's wall clock (0 = unbounded). A timed-out
	// job is reported as failed, exactly like the in-process pool.
	JobTimeout time.Duration
	// Poll is the idle wait between claim attempts when the queue is empty
	// or the coordinator is unreachable. 0 selects 500ms.
	Poll time.Duration
	// Logf receives per-job log lines (nil disables them).
	Logf func(format string, args ...any)
}

// RunWorker claims and executes jobs until ctx is cancelled. Each claimed
// lease is heartbeated for the duration of its run; if the coordinator
// revokes the lease mid-run (ErrLeaseLost), the simulation is cancelled and
// the result discarded. Jobs run through runner.Execute, so a panicking run
// is reported as that job's failure, never a worker crash. RunWorker returns
// nil after a clean shutdown.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := NewClient(opts.Coordinator)
	logf := func(format string, args ...any) {
		if opts.Logf != nil {
			opts.Logf(format, args...)
		}
	}
	var wg sync.WaitGroup
	for slot := 0; slot < opts.Slots; slot++ {
		wg.Add(1)
		name := opts.Name
		if opts.Slots > 1 {
			name = fmt.Sprintf("%s/%d", opts.Name, slot)
		}
		go func() {
			defer wg.Done()
			workerLoop(ctx, client, name, opts, logf)
		}()
	}
	wg.Wait()
	return nil
}

func workerLoop(ctx context.Context, client *Client, name string, opts WorkerOptions,
	logf func(string, ...any)) {
	idle := func() {
		select {
		case <-ctx.Done():
		case <-time.After(opts.Poll):
		}
	}
	for ctx.Err() == nil {
		claim, err := client.Claim(ctx, name)
		if err != nil {
			if ctx.Err() == nil {
				logf("%s: claim: %v", name, err)
				idle()
			}
			continue
		}
		if !claim.Found {
			idle()
			continue
		}
		runClaim(ctx, client, name, claim, opts, logf)
	}
}

// runClaim executes one leased job: heartbeats in the background, runs the
// simulation with panic isolation, and reports the outcome. A worker killed
// mid-job simply stops heartbeating — the coordinator's reaper re-queues the
// job, which is the crash-recovery path the e2e tests exercise.
func runClaim(ctx context.Context, client *Client, name string, claim ClaimResponseV1,
	opts WorkerOptions, logf func(string, ...any)) {
	job := claim.Job
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the run finishes. Losing the lease cancels the run;
	// transient errors are retried at the next beat (the TTL gives slack).
	hbDone := make(chan struct{})
	var leaseLost bool
	var leaseMu sync.Mutex
	go func() {
		defer close(hbDone)
		interval := time.Duration(claim.HeartbeatMillis) * time.Millisecond
		if interval <= 0 {
			interval = time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-tick.C:
			}
			if err := client.Heartbeat(jobCtx, claim.LeaseID); err == ErrLeaseLost {
				leaseMu.Lock()
				leaseLost = true
				leaseMu.Unlock()
				cancel()
				return
			}
		}
	}()

	t0 := time.Now()
	raw, err := runner.Execute(jobCtx, runner.Job{ID: job.ID, Key: job.Key},
		func(ctx context.Context, _ runner.Job) (json.RawMessage, error) {
			spec, err := job.Spec.RunSpec()
			if err != nil {
				return nil, err
			}
			if spec.ParallelCores == 0 {
				spec.ParallelCores = opts.ParallelCores
			}
			res, err := sim.Run(ctx, spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		}, opts.JobTimeout)
	elapsed := time.Since(t0)
	cancel()
	<-hbDone

	leaseMu.Lock()
	lost := leaseLost
	leaseMu.Unlock()
	switch {
	case lost:
		logf("%s: job %q: lease revoked mid-run, result discarded", name, job.Key)
		return
	case ctx.Err() != nil:
		// Worker shutdown mid-job: report nothing and let the lease expire,
		// so the job is re-queued rather than recorded as failed.
		return
	}
	comp := CompleteRequestV1{LeaseID: claim.LeaseID, ElapsedMillis: elapsed.Milliseconds()}
	if err != nil {
		comp.Err = err.Error()
		logf("%s: job %q failed in %s: %v", name, job.Key, elapsed.Round(time.Millisecond), err)
	} else {
		comp.Value = raw
		logf("%s: job %q done in %s", name, job.Key, elapsed.Round(time.Millisecond))
	}
	if err := client.Complete(ctx, comp); err != nil && err != ErrLeaseLost {
		logf("%s: reporting job %q: %v", name, job.Key, err)
	}
}

// Package sweepd turns the in-process experiment runner into a long-running
// distributed job system: a coordinator accepts RunSpec matrices over a
// versioned HTTP/JSON API, shards jobs to worker processes that claim work
// under a lease-with-heartbeat protocol (dead workers' jobs are re-queued),
// streams live per-job progress to clients, and fronts everything with a
// content-addressed result cache so repeated or overlapping sweeps are
// nearly free.
//
// The package is the service layer over internal/runner's engine: workers
// execute jobs through runner.Execute (the same panic isolation and timeout
// semantics the in-process pool has), and the coordinator's result cache is a
// runner.Checkpoint keyed by spec fingerprints instead of job keys. Outcomes
// are aggregated in admission order, so a remote sweep is byte-identical to
// the same matrix run in-process, regardless of which worker ran what.
//
// Wire protocol (all JSON, rooted at /v1/):
//
//	POST /v1/sweeps               SweepRequestV1  -> SubmitResponseV1
//	GET  /v1/sweeps/{id}                          -> SweepStatusV1
//	GET  /v1/sweeps/{id}/outcomes[?wait=1]        -> OutcomesResponseV1
//	GET  /v1/sweeps/{id}/events                   -> NDJSON stream of EventV1
//	POST /v1/claim                ClaimRequestV1  -> ClaimResponseV1
//	POST /v1/heartbeat            HeartbeatRequestV1 (204, or 410 Gone)
//	POST /v1/complete             CompleteRequestV1  (204, or 410 Gone)
//	POST /v1/heartbeats           HeartbeatBatchRequestV1 -> HeartbeatBatchResponseV1
//	POST /v1/completes            CompleteBatchRequestV1  -> CompleteBatchResponseV1
//	GET  /v1/stats                                -> StatsV1
//	GET  /v1/healthz                              -> 200 "ok"
//
// Claim is batched: ClaimRequestV1.Max asks for up to N leases in one round
// trip (0 keeps the single-job form), and every claim response carries the
// coordinator's queue depth so workers can size their executor pools against
// the backlog. The plural endpoints amortize heartbeat and completion traffic
// the same way; the singular forms stay for compatibility.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"memsched/internal/config"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// APIVersion is the wire-protocol version segment of every endpoint path.
// Breaking schema changes bump it; /v1/ types are frozen.
const APIVersion = "v1"

// JobSpecV1 is the canonical serializable description of one simulation run —
// the wire twin of sim.RunSpec, restricted to what can travel between
// processes (no callbacks, no custom policies, no telemetry sinks). Its
// fingerprint is the content address of the run's result.
type JobSpecV1 struct {
	// Mix names a Table 3 workload; Apps lists Table 2 code letters for an
	// ad-hoc application list. Exactly one must be set.
	Mix  string `json:"mix,omitempty"`
	Apps string `json:"apps,omitempty"`
	// Policy is the scheduling policy registry name (see package sched).
	Policy string `json:"policy"`
	// Instr is the per-core instruction slice; it must be positive.
	Instr uint64 `json:"instr"`
	// ME holds per-core memory-efficiency values from profiling; nil falls
	// back to the paper's Table 2 numbers.
	ME []float64 `json:"me,omitempty"`
	// Seed drives every random stream of the run.
	Seed uint64 `json:"seed"`
	// Config overrides the default Table 1 machine.
	Config *config.Config `json:"config,omitempty"`
	// OnlineME/OnlineEpoch enable the runtime ME estimator (see sim.RunSpec).
	OnlineME    bool  `json:"online_me,omitempty"`
	OnlineEpoch int64 `json:"online_epoch,omitempty"`
	// WarmupInstr/NoWarmup control the fast-forward phase (see sim.Options).
	WarmupInstr uint64 `json:"warmup_instr,omitempty"`
	NoWarmup    bool   `json:"no_warmup,omitempty"`
	// NoCycleSkip disables next-event time advance. It is part of the
	// fingerprint because Result.SkippedCycles depends on it.
	NoCycleSkip bool `json:"no_cycle_skip,omitempty"`
	// MaxCycles bounds the run (0 selects a generous default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Classes assigns a serving class per core, one letter each ('L' =
	// latency-critical, 'B' = best-effort), e.g. "LBBB". Empty means all
	// best-effort. It shapes scheduling under class-aware policies and the
	// per-class latency split in the Result, so it is part of the
	// fingerprint; omitempty keeps classless specs' fingerprints unchanged.
	Classes string `json:"classes,omitempty"`
	// ParallelCores is an execution hint — intra-run parallelism over
	// simulated cores, resolved on the worker host. It is excluded from the
	// fingerprint: parallel execution is result-preserving by design
	// (DESIGN.md §11), so it must not fragment the cache.
	ParallelCores int `json:"parallel_cores,omitempty"`
}

// Fingerprint returns the content address of the spec's result: a SHA-256
// over the canonical JSON encoding with execution-only hints zeroed. Two
// specs with equal fingerprints produce byte-identical Result JSON, so the
// coordinator serves one's cached outcome for the other.
func (s JobSpecV1) Fingerprint() string {
	s.ParallelCores = 0
	blob, err := json.Marshal(s)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail on this type.
		panic(fmt.Sprintf("sweepd: fingerprinting spec: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// RunSpec resolves the wire spec into an executable sim.RunSpec, validating
// the workload reference. It is called by workers before running and by the
// coordinator at submit time so malformed specs fail fast with a 400 instead
// of burning a worker slot.
func (s JobSpecV1) RunSpec() (sim.RunSpec, error) {
	spec := sim.RunSpec{
		Policy:        s.Policy,
		Instr:         s.Instr,
		ME:            s.ME,
		Seed:          s.Seed,
		Config:        s.Config,
		OnlineME:      s.OnlineME,
		OnlineEpoch:   s.OnlineEpoch,
		WarmupInstr:   s.WarmupInstr,
		NoWarmup:      s.NoWarmup,
		NoCycleSkip:   s.NoCycleSkip,
		MaxCycles:     s.MaxCycles,
		ParallelCores: s.ParallelCores,
	}
	switch {
	case s.Mix != "" && s.Apps != "":
		return sim.RunSpec{}, fmt.Errorf("sweepd: spec sets both mix %q and apps %q", s.Mix, s.Apps)
	case s.Mix != "":
		mix, err := workload.MixByName(s.Mix)
		if err != nil {
			return sim.RunSpec{}, err
		}
		spec.Mix = mix
	case s.Apps != "":
		apps := make([]workload.App, len(s.Apps))
		for i := 0; i < len(s.Apps); i++ {
			app, err := workload.ByCode(s.Apps[i])
			if err != nil {
				return sim.RunSpec{}, err
			}
			apps[i] = app
		}
		spec.Apps = apps
	default:
		return sim.RunSpec{}, fmt.Errorf("sweepd: spec names neither a mix nor apps")
	}
	if s.Instr == 0 {
		return sim.RunSpec{}, fmt.Errorf("sweepd: spec has zero instruction count")
	}
	// Validate the policy name here too, so a typo is a 400 at submit time —
	// with the registry listed in the message — rather than a failed job after
	// a worker claimed the lease.
	cores := len(spec.Apps)
	if spec.Mix.Name != "" {
		cores = len(spec.Mix.Codes)
	}
	if _, err := sched.New(s.Policy, cores); err != nil {
		return sim.RunSpec{}, fmt.Errorf("sweepd: %w", err)
	}
	classes, err := workload.ParseServiceClasses(s.Classes, cores)
	if err != nil {
		return sim.RunSpec{}, fmt.Errorf("sweepd: %w", err)
	}
	spec.Classes = classes
	return spec, nil
}

// JobV1 is one admitted unit of work: the admission ID that fixes its slot in
// the sweep's aggregated output, a human-readable key (unique within the
// sweep), and the spec to execute.
type JobV1 struct {
	ID   int       `json:"id"`
	Key  string    `json:"key"`
	Spec JobSpecV1 `json:"spec"`
}

// SweepRequestV1 submits a job matrix. Meta is a display label (it does not
// affect caching — results are content-addressed by spec fingerprint alone).
type SweepRequestV1 struct {
	Meta string  `json:"meta,omitempty"`
	Jobs []JobV1 `json:"jobs"`
}

// SubmitResponseV1 acknowledges a submitted sweep.
type SubmitResponseV1 struct {
	SweepID string `json:"sweep_id"`
	Jobs    int    `json:"jobs"`
	// CacheHits counts jobs satisfied immediately from the result cache;
	// Coalesced counts jobs attached to an identical in-flight job from an
	// overlapping sweep. Neither will be executed again.
	CacheHits int `json:"cache_hits"`
	Coalesced int `json:"coalesced"`
}

// OutcomeV1 is one job's result. Value holds the worker's canonical JSON
// encoding of sim.Result, stored and relayed verbatim — the bytes a client
// receives are the bytes the worker produced (or the cache recorded), which
// is what makes remote outcomes byte-comparable to local ones.
type OutcomeV1 struct {
	ID       int             `json:"id"`
	Key      string          `json:"key"`
	Value    json.RawMessage `json:"value,omitempty"`
	Err      string          `json:"err,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	// ElapsedMillis is the executing worker's wall clock (0 on cache hits).
	ElapsedMillis int64 `json:"elapsed_ms,omitempty"`
}

// done reports whether the outcome slot has been filled.
func (o *OutcomeV1) done() bool { return o.Value != nil || o.Err != "" }

// Result decodes the outcome's sim.Result.
func (o *OutcomeV1) Result() (sim.Result, error) {
	if o.Err != "" {
		return sim.Result{}, fmt.Errorf("sweepd: job %q failed remotely: %s", o.Key, o.Err)
	}
	var res sim.Result
	if err := json.Unmarshal(o.Value, &res); err != nil {
		return sim.Result{}, fmt.Errorf("sweepd: decoding outcome %q: %w", o.Key, err)
	}
	return res, nil
}

// SweepStatusV1 is a point-in-time progress summary.
type SweepStatusV1 struct {
	SweepID   string `json:"sweep_id"`
	Meta      string `json:"meta,omitempty"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"` // includes cache hits and failures
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	Done      bool   `json:"done"`
}

// OutcomesResponseV1 carries a sweep's outcomes in admission order. Slots of
// jobs still in flight are zero-valued unless the request waited for
// completion (?wait=1).
type OutcomesResponseV1 struct {
	SweepID  string      `json:"sweep_id"`
	Done     bool        `json:"done"`
	Outcomes []OutcomeV1 `json:"outcomes"`
}

// EventV1 is one line of a sweep's NDJSON progress stream. Type "job" marks a
// completed job (cached, succeeded, or failed); type "sweep" is the final
// summary line before the stream closes.
type EventV1 struct {
	Type     string `json:"type"`
	SweepID  string `json:"sweep_id"`
	ID       int    `json:"id,omitempty"`
	Key      string `json:"key,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Err      string `json:"err,omitempty"`
	Worker   string `json:"worker,omitempty"`
	// Completed/Total snapshot the sweep's progress after this event.
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// ClaimRequestV1 asks for job leases. Worker is a display name used in
// outcomes and logs; Max is the number of leases wanted in this round trip
// (0 or 1 selects the single-job form).
type ClaimRequestV1 struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// LeaseV1 is one granted lease: the ID the worker heartbeats and completes
// under, and the job it covers.
type LeaseV1 struct {
	LeaseID string `json:"lease_id"`
	Job     JobV1  `json:"job"`
}

// ClaimResponseV1 grants up to Max leases, or reports an empty queue
// (Found=false, no Leases). The worker must heartbeat each lease every
// HeartbeatMillis; a lease not heartbeated within LeaseTTLMillis is revoked
// and its job re-queued. Found/LeaseID/Job mirror the first lease for
// single-job clients. QueueDepth is the number of jobs still queued after
// this claim — the autoscaling hint workers size their pools against.
type ClaimResponseV1 struct {
	Found           bool      `json:"found"`
	LeaseID         string    `json:"lease_id,omitempty"`
	Job             JobV1     `json:"job,omitempty"`
	Leases          []LeaseV1 `json:"leases,omitempty"`
	QueueDepth      int64     `json:"queue_depth"`
	LeaseTTLMillis  int64     `json:"lease_ttl_ms,omitempty"`
	HeartbeatMillis int64     `json:"heartbeat_ms,omitempty"`
}

// HeartbeatRequestV1 extends a lease. A 410 Gone response means the lease was
// revoked (or its job finished elsewhere); the worker must abandon the run.
type HeartbeatRequestV1 struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequestV1 reports a finished job. Exactly one of Value (the
// canonical sim.Result JSON) and Err is set.
type CompleteRequestV1 struct {
	LeaseID       string          `json:"lease_id"`
	Value         json.RawMessage `json:"value,omitempty"`
	Err           string          `json:"err,omitempty"`
	ElapsedMillis int64           `json:"elapsed_ms,omitempty"`
}

// HeartbeatBatchRequestV1 extends several leases in one round trip.
type HeartbeatBatchRequestV1 struct {
	LeaseIDs []string `json:"lease_ids"`
}

// HeartbeatBatchResponseV1 lists the lease IDs that were already revoked
// (their runs must be abandoned); every other lease was extended. Unlike the
// singular endpoint, a partial revocation is a 200, not a 410 — the batch
// succeeds as a whole.
type HeartbeatBatchResponseV1 struct {
	Lost []string `json:"lost,omitempty"`
}

// CompleteBatchRequestV1 reports several finished jobs in one round trip.
type CompleteBatchRequestV1 struct {
	Completions []CompleteRequestV1 `json:"completions"`
}

// CompleteBatchResponseV1 lists the lease IDs whose results were discarded
// because the lease had been revoked (the job was re-queued or finished
// elsewhere — determinism makes the duplicate redundant). Every other
// completion was recorded.
type CompleteBatchResponseV1 struct {
	Lost []string `json:"lost,omitempty"`
}

// StatsV1 is the coordinator's operational counter snapshot.
type StatsV1 struct {
	Sweeps       int64 `json:"sweeps"`
	Executed     int64 `json:"executed"` // jobs completed by workers
	Failed       int64 `json:"failed"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"` // submitted jobs not served from cache
	Coalesced    int64 `json:"coalesced"`    // jobs merged into in-flight twins
	Requeues     int64 `json:"requeues"`     // jobs reclaimed from dead workers
	QueueDepth   int64 `json:"queue_depth"`
	ActiveLeases int64 `json:"active_leases"`
	CacheEntries int64 `json:"cache_entries"`
	Shards       int   `json:"shards"`
}

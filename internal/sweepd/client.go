package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ErrLeaseLost reports that the coordinator revoked the caller's lease (410
// Gone): the job was re-queued or finished elsewhere, and the worker must
// abandon the run.
var ErrLeaseLost = errors.New("sweepd: lease revoked by coordinator")

// Client speaks the /v1/ API. The zero HTTP client has no global timeout —
// outcome waits and event streams are long-lived by design; pass a context
// to bound individual calls.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at addr ("host:port" or a
// full http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// do issues one JSON round trip. in==nil sends no body; out==nil discards the
// response body. Error statuses surface the server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrLeaseLost
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("sweepd: %s %s: %s: %s", method, path, resp.Status,
			strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a sweep matrix and returns its acknowledgment.
func (c *Client) Submit(ctx context.Context, req SweepRequestV1) (SubmitResponseV1, error) {
	var resp SubmitResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/sweeps", req, &resp)
	return resp, err
}

// Status fetches a sweep's progress summary.
func (c *Client) Status(ctx context.Context, sweepID string) (SweepStatusV1, error) {
	var st SweepStatusV1
	err := c.do(ctx, http.MethodGet, "/"+APIVersion+"/sweeps/"+sweepID, nil, &st)
	return st, err
}

// Outcomes fetches a sweep's outcomes in admission order. With wait=true the
// call blocks until the sweep completes (bounded by ctx).
func (c *Client) Outcomes(ctx context.Context, sweepID string, wait bool) (OutcomesResponseV1, error) {
	path := "/" + APIVersion + "/sweeps/" + sweepID + "/outcomes"
	if wait {
		path += "?wait=1"
	}
	var resp OutcomesResponseV1
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Watch streams a sweep's progress events to fn, starting from the sweep's
// full history, and returns when the sweep completes (after the final "sweep"
// event), the stream fails, or ctx fires.
func (c *Client) Watch(ctx context.Context, sweepID string, fn func(EventV1)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/"+APIVersion+"/sweeps/"+sweepID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("sweepd: events: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev EventV1
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		fn(ev)
		if ev.Type == "sweep" {
			return nil
		}
	}
}

// Stats fetches the coordinator's counters.
func (c *Client) Stats(ctx context.Context) (StatsV1, error) {
	var st StatsV1
	err := c.do(ctx, http.MethodGet, "/"+APIVersion+"/stats", nil, &st)
	return st, err
}

// Claim asks for one job lease (worker side).
func (c *Client) Claim(ctx context.Context, worker string) (ClaimResponseV1, error) {
	var resp ClaimResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/claim", ClaimRequestV1{Worker: worker}, &resp)
	return resp, err
}

// Heartbeat extends a lease. ErrLeaseLost means the run must be abandoned.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/"+APIVersion+"/heartbeat",
		HeartbeatRequestV1{LeaseID: leaseID}, nil)
}

// Complete reports a finished job. ErrLeaseLost means the result was
// discarded (the job was re-queued or finished elsewhere).
func (c *Client) Complete(ctx context.Context, req CompleteRequestV1) error {
	return c.do(ctx, http.MethodPost, "/"+APIVersion+"/complete", req, nil)
}

package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"
)

// ErrLeaseLost reports that the coordinator revoked the caller's lease (410
// Gone): the job was re-queued or finished elsewhere, and the worker must
// abandon the run.
var ErrLeaseLost = errors.New("sweepd: lease revoked by coordinator")

// Client speaks the /v1/ API. The zero HTTP client has no global timeout —
// outcome waits and event streams are long-lived by design; pass a context
// to bound individual calls.
//
// Transient failures — connection errors, timeouts, 5xx responses — are
// retried with capped exponential backoff plus jitter. Every call is safe to
// retry: reads are idempotent, lease semantics make claim/heartbeat/complete
// replays harmless (a lost claim response leaves a lease that expires and
// re-queues; a replayed complete on a consumed lease is a 410 the caller
// already treats as ErrLeaseLost), and a duplicate submit coalesces onto the
// first submission's in-flight jobs. 4xx responses (including 410) are never
// retried.
type Client struct {
	base string
	hc   *http.Client

	// MaxRetries is the number of attempts after the first (0 disables
	// retrying). RetryBase is the first backoff delay, doubled per attempt
	// and capped at RetryMax; each delay is jittered to 50–100% of nominal.
	MaxRetries int
	RetryBase  time.Duration
	RetryMax   time.Duration
}

// NewClient returns a client for the coordinator at addr ("host:port" or a
// full http:// URL) with the default retry policy.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	c := &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
	c.defaults()
	return c
}

func (c *Client) defaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
}

// backoff sleeps out attempt's jittered exponential delay, or returns ctx's
// error if it fires first.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.RetryBase << attempt
	if d > c.RetryMax || d <= 0 {
		d = c.RetryMax
	}
	// Jitter to 50–100% so a fleet of workers retrying a restarted
	// coordinator doesn't arrive in lockstep.
	d = d/2 + rand.N(d/2+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transient reports whether an attempt's failure is worth retrying: any
// transport error (connection refused, reset, timeout) while the caller's
// context is still live, or a 5xx status. resp is nil for transport errors.
func transient(ctx context.Context, resp *http.Response, err error) bool {
	if err != nil {
		return ctx.Err() == nil
	}
	return resp.StatusCode >= 500
}

// do issues one JSON round trip with retries. in==nil sends no body; out==nil
// discards the response body. Error statuses surface the server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var blob []byte
	if in != nil {
		var err error
		blob, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	resp, err := c.roundTrip(ctx, func() (*http.Request, error) {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(blob)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return nil, err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrLeaseLost
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("sweepd: %s %s: %s: %s", method, path, resp.Status,
			strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// roundTrip sends a freshly built request per attempt (bodies cannot be
// replayed), retrying transient failures under the client's backoff policy.
// It returns the first non-transient response, or the last error once the
// budget is spent.
func (c *Client) roundTrip(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if !transient(ctx, resp, err) || attempt >= c.MaxRetries {
			return resp, err
		}
		if resp != nil {
			// Drain so the keep-alive connection is reusable.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
		}
		if err := c.backoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// Submit sends a sweep matrix and returns its acknowledgment.
func (c *Client) Submit(ctx context.Context, req SweepRequestV1) (SubmitResponseV1, error) {
	var resp SubmitResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/sweeps", req, &resp)
	return resp, err
}

// Status fetches a sweep's progress summary.
func (c *Client) Status(ctx context.Context, sweepID string) (SweepStatusV1, error) {
	var st SweepStatusV1
	err := c.do(ctx, http.MethodGet, "/"+APIVersion+"/sweeps/"+sweepID, nil, &st)
	return st, err
}

// Outcomes fetches a sweep's outcomes in admission order. With wait=true the
// call blocks until the sweep completes (bounded by ctx).
func (c *Client) Outcomes(ctx context.Context, sweepID string, wait bool) (OutcomesResponseV1, error) {
	path := "/" + APIVersion + "/sweeps/" + sweepID + "/outcomes"
	if wait {
		path += "?wait=1"
	}
	var resp OutcomesResponseV1
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Watch streams a sweep's progress events to fn, starting from the sweep's
// full history, and returns when the sweep completes (after the final "sweep"
// event), the stream fails, or ctx fires. Connection establishment is retried
// like any other call; a failure mid-stream is returned (re-subscribing
// replays history, so callers can simply Watch again).
func (c *Client) Watch(ctx context.Context, sweepID string, fn func(EventV1)) error {
	resp, err := c.roundTrip(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet,
			c.base+"/"+APIVersion+"/sweeps/"+sweepID+"/events", nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("sweepd: events: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev EventV1
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		fn(ev)
		if ev.Type == "sweep" {
			return nil
		}
	}
}

// Stats fetches the coordinator's counters.
func (c *Client) Stats(ctx context.Context) (StatsV1, error) {
	var st StatsV1
	err := c.do(ctx, http.MethodGet, "/"+APIVersion+"/stats", nil, &st)
	return st, err
}

// Claim asks for up to max job leases in one round trip (max < 1 asks for
// one). The response's QueueDepth is the backlog remaining after this claim.
func (c *Client) Claim(ctx context.Context, worker string, max int) (ClaimResponseV1, error) {
	var resp ClaimResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/claim",
		ClaimRequestV1{Worker: worker, Max: max}, &resp)
	return resp, err
}

// Heartbeat extends a lease. ErrLeaseLost means the run must be abandoned.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/"+APIVersion+"/heartbeat",
		HeartbeatRequestV1{LeaseID: leaseID}, nil)
}

// HeartbeatBatch extends several leases in one round trip and returns the
// IDs of leases that were already revoked (those runs must be abandoned).
func (c *Client) HeartbeatBatch(ctx context.Context, leaseIDs []string) (HeartbeatBatchResponseV1, error) {
	var resp HeartbeatBatchResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/heartbeats",
		HeartbeatBatchRequestV1{LeaseIDs: leaseIDs}, &resp)
	return resp, err
}

// Complete reports a finished job. ErrLeaseLost means the result was
// discarded (the job was re-queued or finished elsewhere).
func (c *Client) Complete(ctx context.Context, req CompleteRequestV1) error {
	return c.do(ctx, http.MethodPost, "/"+APIVersion+"/complete", req, nil)
}

// CompleteBatch reports several finished jobs in one round trip and returns
// the lease IDs whose results were discarded because the lease was revoked.
func (c *Client) CompleteBatch(ctx context.Context, comps []CompleteRequestV1) (CompleteBatchResponseV1, error) {
	var resp CompleteBatchResponseV1
	err := c.do(ctx, http.MethodPost, "/"+APIVersion+"/completes",
		CompleteBatchRequestV1{Completions: comps}, &resp)
	return resp, err
}

package sweepd

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Coordinator observability: an opt-in debug handler carrying net/http/pprof
// and an expvar-backed /debug/vars. The sweepd expvar publishes the live
// StatsV1 snapshot — queue depth, active leases, cache hits/misses, coalesced
// jobs — of the most recently created coordinator, so operational dashboards
// and `curl :PORT/debug/vars | jq .sweepd` see the same counters /v1/stats
// serves, alongside Go's standard memstats.
//
// The debug handler is deliberately not part of Handler(): profiling
// endpoints can stall a goroutine for seconds and expose process internals,
// so cmd/sweepd mounts DebugHandler on a separate listener only when
// -debugaddr is set.

// debugCoord is the coordinator the process-wide "sweepd" expvar reads from.
// expvar's registry is global and panics on duplicate names, so the var is
// published once and follows the newest coordinator (tests create several).
var debugCoord atomic.Pointer[Coordinator]

var debugPublishOnce sync.Once

// registerDebug points the process-wide sweepd expvar at c.
func registerDebug(c *Coordinator) {
	debugCoord.Store(c)
	debugPublishOnce.Do(func() {
		expvar.Publish("sweepd", expvar.Func(func() any {
			if c := debugCoord.Load(); c != nil {
				return c.Stats()
			}
			return nil
		}))
	})
}

// DebugHandler returns the opt-in debug mux: /debug/vars (expvar) and
// /debug/pprof/... (profiles, traces, goroutine dumps).
func (c *Coordinator) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

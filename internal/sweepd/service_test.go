package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memsched/internal/sim"
)

// TestDesiredProcs pins the autoscaling policy: cover held work plus the
// reported backlog, inside the configured bounds.
func TestDesiredProcs(t *testing.T) {
	cases := []struct {
		inflight int
		depth    int64
		min, max int
		want     int
	}{
		{0, 0, 1, 8, 1},   // idle: floor
		{0, 100, 1, 8, 8}, // deep backlog: ceiling
		{2, 1, 1, 8, 3},   // cover held + queued
		{5, 0, 1, 4, 4},   // holding more than the ceiling: clamp
		{0, 2, 3, 8, 3},   // floor dominates a shallow queue
		{1, 0, 2, 2, 2},   // fixed pool (min == max)
	}
	for _, tc := range cases {
		if got := desiredProcs(tc.inflight, tc.depth, tc.min, tc.max); got != tc.want {
			t.Errorf("desiredProcs(%d, %d, %d, %d) = %d, want %d",
				tc.inflight, tc.depth, tc.min, tc.max, got, tc.want)
		}
	}
}

// TestClientRetryFlakyServer pins the retry policy: transient 5xx responses
// are retried with backoff until the server recovers, while 4xx responses
// (including 410 lease revocations) fail immediately.
func TestClientRetryFlakyServer(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	var requests, failures atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= 3 {
			failures.Add(1)
			http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
			return
		}
		coord.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)

	client := NewClient(srv.URL)
	client.RetryBase = time.Millisecond
	client.RetryMax = 5 * time.Millisecond

	// The first three attempts hit the outage; the retry loop must ride it out.
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("stats did not survive a transient outage: %v", err)
	}
	if failures.Load() != 3 {
		t.Fatalf("outage consumed %d failures, want 3", failures.Load())
	}

	// 4xx must not be retried: a malformed submit is one request, no more.
	requests.Store(100) // past the outage window
	before := requests.Load()
	if _, err := client.Submit(context.Background(), SweepRequestV1{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if got := requests.Load() - before; got != 1 {
		t.Fatalf("bad request retried: %d requests, want 1", got)
	}

	// 410 maps to ErrLeaseLost without retries.
	before = requests.Load()
	if err := client.Heartbeat(context.Background(), "l0.999"); err != ErrLeaseLost {
		t.Fatalf("heartbeat on unknown lease = %v, want ErrLeaseLost", err)
	}
	if got := requests.Load() - before; got != 1 {
		t.Fatalf("410 retried: %d requests, want 1", got)
	}

	// The retry budget is finite: a permanent outage surfaces an error.
	requests.Store(-1 << 30)
	exhausted := NewClient(srv.URL)
	exhausted.MaxRetries = 2
	exhausted.RetryBase = time.Millisecond
	exhausted.RetryMax = 2 * time.Millisecond
	if _, err := exhausted.Stats(context.Background()); err == nil {
		t.Fatal("permanent outage reported success")
	}
}

// TestDebugHandler pins the observability surface: /debug/vars carries the
// coordinator's live counters under the "sweepd" key, and pprof answers.
func TestDebugHandler(t *testing.T) {
	coord, client := newTestService(t, CoordinatorConfig{Shards: 4})
	ctx := context.Background()

	// Two queued jobs, no workers: the counters have something to show.
	if _, err := client.Submit(ctx, SweepRequestV1{Jobs: []JobV1{
		{ID: 0, Key: "a", Spec: testSpec("hf-rf")},
		{ID: 1, Key: "b", Spec: testSpec("me")},
	}}); err != nil {
		t.Fatal(err)
	}

	dbg := httptest.NewServer(coord.DebugHandler())
	t.Cleanup(dbg.Close)

	resp, err := http.Get(dbg.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Sweepd StatsV1 `json:"sweepd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Sweepd.QueueDepth != 2 || vars.Sweepd.Sweeps != 1 || vars.Sweepd.Shards != 4 {
		t.Fatalf("expvar sweepd = %+v, want 2 queued in 1 sweep across 4 shards", vars.Sweepd)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, resp.Status)
		}
	}

	// The debug surface must not leak into the public API handler.
	pub, err := client.hc.Get(client.base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	pub.Body.Close()
	if pub.StatusCode == http.StatusOK {
		t.Fatal("public API serves /debug/vars")
	}
}

// TestBatchClaimComplete exercises the batched wire protocol directly: one
// claim pops several jobs, batch heartbeats and completes answer per lease,
// and revoked or malformed lease IDs surface in Lost instead of failing the
// batch.
func TestBatchClaimComplete(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{Shards: 4})
	ctx := context.Background()

	const jobs = 5
	req := SweepRequestV1{Meta: "batch"}
	for i := 0; i < jobs; i++ {
		spec := testSpec("hf-rf")
		spec.Seed = sim.EvalSeed + uint64(i)
		req.Jobs = append(req.Jobs, JobV1{ID: i, Key: fmt.Sprintf("j%d", i), Spec: spec})
	}
	sub, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	first, err := client.Claim(ctx, "batcher", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Leases) != 3 || !first.Found || first.QueueDepth != jobs-3 {
		t.Fatalf("first claim = %d leases, depth %d; want 3 and %d",
			len(first.Leases), first.QueueDepth, jobs-3)
	}
	if first.LeaseID != first.Leases[0].LeaseID {
		t.Fatal("single-job mirror fields diverge from the lease list")
	}
	second, err := client.Claim(ctx, "batcher", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Leases) != 2 || second.QueueDepth != 0 {
		t.Fatalf("second claim = %d leases, depth %d; want 2 and 0",
			len(second.Leases), second.QueueDepth)
	}

	leases := append(first.Leases, second.Leases...)
	ids := make([]string, 0, len(leases)+2)
	for _, lv := range leases {
		ids = append(ids, lv.LeaseID)
	}
	hb, err := client.HeartbeatBatch(ctx, append(ids, "l0.999", "garbage"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Lost) != 2 {
		t.Fatalf("heartbeat batch lost %v, want the 2 bogus ids", hb.Lost)
	}

	comps := []CompleteRequestV1{{LeaseID: "l1.777", Value: loadStubValue}}
	for _, lv := range leases {
		comps = append(comps, CompleteRequestV1{LeaseID: lv.LeaseID, Value: loadStubValue})
	}
	cresp, err := client.CompleteBatch(ctx, comps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cresp.Lost) != 1 || cresp.Lost[0] != "l1.777" {
		t.Fatalf("complete batch lost %v, want [l1.777]", cresp.Lost)
	}

	out, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out.Outcomes {
		if o.Err != "" || !bytes.Equal(o.Value, loadStubValue) || o.Worker != "batcher" {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != jobs || stats.ActiveLeases != 0 || stats.QueueDepth != 0 {
		t.Fatalf("stats after batch completion = %+v", stats)
	}
}

// TestConcurrentSubmitStress is the determinism acceptance test under load:
// overlapping sweeps submitted concurrently while two autoscaling workers
// drain the queue with batched claims, across every (batch width × shard
// count) combination — each outcome must be byte-identical to the serial
// in-process run of its spec, regardless of which worker ran it, in which
// batch, on which shard.
func TestConcurrentSubmitStress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Six distinct small specs, their expected bytes computed serially once.
	const distinct = 6
	specs := make([]JobSpecV1, distinct)
	want := make([][]byte, distinct)
	for i := range specs {
		specs[i] = JobSpecV1{Mix: "2MEM-1", Policy: "hf-rf", Instr: 3000,
			Seed: sim.EvalSeed + uint64(i)}
		want[i] = localBytes(t, specs[i])
	}

	for _, combo := range []struct{ batch, shards int }{
		{1, 1}, {1, 8}, {3, 1}, {3, 8},
	} {
		t.Run(fmt.Sprintf("batch%d-shards%d", combo.batch, combo.shards), func(t *testing.T) {
			_, client := newTestService(t, CoordinatorConfig{Shards: combo.shards})

			wctx, wcancel := context.WithCancel(ctx)
			defer wcancel()
			var workers sync.WaitGroup
			for w := 0; w < 2; w++ {
				workers.Add(1)
				go func(w int) {
					defer workers.Done()
					RunWorker(wctx, WorkerOptions{
						Coordinator: client.base,
						Name:        fmt.Sprintf("stress-w%d", w),
						MinProcs:    1,
						MaxProcs:    3,
						Batch:       combo.batch,
						Poll:        2 * time.Millisecond,
					})
				}(w)
			}

			// Four submitters race the same six specs in rotated admission
			// orders, so sweeps overlap (coalescing) and slot mapping is
			// exercised under every rotation.
			const submitters = 4
			var subs sync.WaitGroup
			errs := make(chan error, submitters)
			for s := 0; s < submitters; s++ {
				subs.Add(1)
				go func(s int) {
					defer subs.Done()
					req := SweepRequestV1{Meta: fmt.Sprintf("stress-%d", s)}
					for i := 0; i < distinct; i++ {
						spec := specs[(i+s)%distinct]
						req.Jobs = append(req.Jobs, JobV1{ID: i,
							Key: fmt.Sprintf("s%d-j%d", s, i), Spec: spec})
					}
					sub, err := client.Submit(ctx, req)
					if err != nil {
						errs <- err
						return
					}
					out, err := client.Outcomes(ctx, sub.SweepID, true)
					if err != nil {
						errs <- err
						return
					}
					for i, o := range out.Outcomes {
						if o.Err != "" {
							errs <- fmt.Errorf("submitter %d job %d failed: %s", s, i, o.Err)
							return
						}
						if !bytes.Equal(o.Value, want[(i+s)%distinct]) {
							errs <- fmt.Errorf("submitter %d job %d: bytes diverged from serial run", s, i)
							return
						}
					}
					errs <- nil
				}(s)
			}
			subs.Wait()
			for s := 0; s < submitters; s++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			wcancel()
			workers.Wait()

			// Coalescing and caching must cap executions at the distinct specs.
			stats, err := client.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Executed > distinct || stats.Failed != 0 {
				t.Fatalf("stats = %+v: %d distinct specs executed %d times",
					stats, distinct, stats.Executed)
			}
		})
	}
}

// TestLeaseExpiryUnderLoad crashes a batch mid-flight: a ghost claims several
// jobs and goes silent, the reaper re-queues them under load, and a live
// batching worker still drives every sweep to byte-correct completion.
func TestLeaseExpiryUnderLoad(t *testing.T) {
	// The TTL must be short enough that the ghost's leases expire promptly,
	// but long enough that the rescuer's heartbeats keep its own leases alive
	// under -race on a loaded single-CPU host — at 150ms the rescuer itself
	// lost leases to scheduler starvation and the test flaked.
	_, client := newTestService(t, CoordinatorConfig{
		Shards:       4,
		LeaseTTL:     500 * time.Millisecond,
		ReapInterval: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const jobs = 8
	req := SweepRequestV1{Meta: "expiry"}
	want := make([][]byte, jobs)
	for i := 0; i < jobs; i++ {
		spec := JobSpecV1{Mix: "2MEM-1", Policy: "hf-rf", Instr: 3000,
			Seed: sim.EvalSeed + 100 + uint64(i)}
		want[i] = localBytes(t, spec)
		req.Jobs = append(req.Jobs, JobV1{ID: i, Key: fmt.Sprintf("j%d", i), Spec: spec})
	}
	sub, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// The ghost grabs half the queue and vanishes without a heartbeat.
	ghost, err := client.Claim(ctx, "ghost", jobs/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ghost.Leases) != jobs/2 {
		t.Fatalf("ghost claimed %d leases, want %d", len(ghost.Leases), jobs/2)
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(wctx, WorkerOptions{
			Coordinator: client.base,
			Name:        "rescuer",
			MinProcs:    1,
			MaxProcs:    2,
			Batch:       3,
			Poll:        5 * time.Millisecond,
		})
	}()

	out, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out.Outcomes {
		if o.Err != "" {
			t.Fatalf("job %d failed after requeue: %s", i, o.Err)
		}
		if o.Worker != "rescuer" {
			t.Fatalf("job %d completed by %q", i, o.Worker)
		}
		if !bytes.Equal(o.Value, want[i]) {
			t.Fatalf("job %d: requeued result diverged from serial run", i)
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeues < int64(jobs/2) {
		t.Fatalf("requeues = %d, want >= %d", stats.Requeues, jobs/2)
	}
	wcancel()
	<-done
}

// TestLoadTestSmoke keeps the load harness honest in the ordinary test run:
// a small in-process configuration must push every job through and report
// coherent counters.
func TestLoadTestSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := LoadTest(ctx, LoadOptions{
		Jobs: 120, SweepSize: 50, Workers: 2, Batch: 8, Shards: 4, InProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 120 || rep.Sweeps != 3 || rep.JobsPerSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CompleteCalls >= 120 {
		t.Fatalf("batched harness used %d complete round trips for 120 jobs", rep.CompleteCalls)
	}
}

package sweepd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memsched/internal/runner"
)

// cacheMeta fingerprints the result-cache schema: entries are canonical
// sim.Result JSON keyed by JobSpecV1 fingerprints. Bump it when either
// encoding changes so a stale cache file is discarded, not misread.
const cacheMeta = "sweepd result cache v1"

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// CachePath is the persistent content-addressed result cache file
	// (a runner.Checkpoint). "" keeps the cache in memory only.
	CachePath string
	// LeaseTTL is how long a claimed job may go without a heartbeat before
	// it is revoked and re-queued. 0 selects 30s.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence workers are told to heartbeat at.
	// 0 selects LeaseTTL/3.
	HeartbeatInterval time.Duration
	// ReapInterval is the revocation scan cadence. 0 selects LeaseTTL/4.
	ReapInterval time.Duration
	// MaxAttempts bounds how many times a job is re-queued after lease
	// expiries before it is failed permanently. 0 selects 5.
	MaxAttempts int
	// Logf receives operational log lines (nil disables them).
	Logf func(format string, args ...any)
}

// Coordinator owns the job queue, the lease table, the result cache, and the
// HTTP API. Create one with NewCoordinator, expose Handler() on a server, and
// Close it on shutdown.
type Coordinator struct {
	cfg   CoordinatorConfig
	cache *runner.Checkpoint
	mux   *http.ServeMux

	mu      sync.Mutex
	sweeps  map[string]*sweepState
	queue   []*task          // pending jobs, FIFO; re-queued jobs go to the front
	pending map[string]*task // fingerprint -> queued or running task (dedup point)
	leases  map[string]*lease
	seq     int64
	stats   StatsV1

	closed    chan struct{}
	closeOnce sync.Once
	reapDone  chan struct{}
}

// task is one distinct simulation to run: every submitted job with the same
// spec fingerprint attaches to the same task, so overlapping sweeps coalesce
// into one execution.
type task struct {
	fp       string
	job      JobV1 // first submitter's job (the spec all waiters share)
	waiters  []waiter
	attempts int // lease expiries so far
	done     bool
}

// waiter is one (sweep, slot) awaiting a task's outcome, with the key that
// sweep labeled the job with.
type waiter struct {
	sw  *sweepState
	idx int
	key string
}

type lease struct {
	t        *task
	worker   string
	deadline time.Time
}

type sweepState struct {
	id        string
	meta      string
	outcomes  []OutcomeV1
	remaining int
	failed    int
	cacheHits int
	subs      map[int64]chan EventV1
	subSeq    int64
	done      chan struct{} // closed when remaining hits zero
}

// NewCoordinator initializes the coordinator and starts its lease reaper.
// The result cache at cfg.CachePath is loaded if present (a corrupt or
// incompatible file is moved aside, per runner.LoadCheckpoint).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.LeaseTTL / 3
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = cfg.LeaseTTL / 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	cache, err := runner.LoadCheckpoint(cfg.CachePath, cacheMeta, cfg.Logf)
	if err != nil {
		return nil, fmt.Errorf("sweepd: opening result cache: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		cache:    cache,
		sweeps:   map[string]*sweepState{},
		pending:  map[string]*task{},
		leases:   map[string]*lease{},
		closed:   make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /"+APIVersion+"/sweeps", c.handleSubmit)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}/outcomes", c.handleOutcomes)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}/events", c.handleEvents)
	c.mux.HandleFunc("POST /"+APIVersion+"/claim", c.handleClaim)
	c.mux.HandleFunc("POST /"+APIVersion+"/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /"+APIVersion+"/complete", c.handleComplete)
	c.mux.HandleFunc("GET /"+APIVersion+"/stats", c.handleStats)
	c.mux.HandleFunc("GET /"+APIVersion+"/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	go c.reap()
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the lease reaper. In-flight HTTP requests are the server's to
// drain; pending event streams end when their sweeps complete.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.reapDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "sweepd: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "sweepd: sweep has no jobs", http.StatusBadRequest)
		return
	}
	seen := make(map[string]bool, len(req.Jobs))
	for i, j := range req.Jobs {
		if j.Key == "" {
			http.Error(w, fmt.Sprintf("sweepd: job %d has an empty key", i), http.StatusBadRequest)
			return
		}
		if seen[j.Key] {
			http.Error(w, fmt.Sprintf("sweepd: duplicate job key %q", j.Key), http.StatusBadRequest)
			return
		}
		seen[j.Key] = true
		// Validate the spec now so a malformed matrix is a 400 at submit
		// time, not a failed outcome discovered by a worker.
		if _, err := j.Spec.RunSpec(); err != nil {
			http.Error(w, fmt.Sprintf("sweepd: job %q: %v", j.Key, err), http.StatusBadRequest)
			return
		}
	}

	c.mu.Lock()
	c.seq++
	sw := &sweepState{
		id:        fmt.Sprintf("s%d", c.seq),
		meta:      req.Meta,
		outcomes:  make([]OutcomeV1, len(req.Jobs)),
		remaining: len(req.Jobs),
		subs:      map[int64]chan EventV1{},
		done:      make(chan struct{}),
	}
	coalesced := 0
	for i, j := range req.Jobs {
		fp := j.Spec.Fingerprint()
		if raw, ok := c.cache.Lookup(fp); ok {
			sw.outcomes[i] = OutcomeV1{ID: i, Key: j.Key, Value: raw, CacheHit: true}
			sw.remaining--
			sw.cacheHits++
			c.stats.CacheHits++
			continue
		}
		if t, ok := c.pending[fp]; ok {
			t.waiters = append(t.waiters, waiter{sw: sw, idx: i, key: j.Key})
			coalesced++
			c.stats.Coalesced++
			continue
		}
		t := &task{fp: fp, job: JobV1{ID: i, Key: j.Key, Spec: j.Spec},
			waiters: []waiter{{sw: sw, idx: i, key: j.Key}}}
		c.pending[fp] = t
		c.queue = append(c.queue, t)
	}
	c.sweeps[sw.id] = sw
	c.stats.Sweeps++
	if sw.remaining == 0 {
		close(sw.done)
	}
	resp := SubmitResponseV1{SweepID: sw.id, Jobs: len(req.Jobs),
		CacheHits: sw.cacheHits, Coalesced: coalesced}
	c.mu.Unlock()

	c.logf("sweepd: sweep %s submitted: %d jobs (%d cached, %d coalesced) %s",
		resp.SweepID, resp.Jobs, resp.CacheHits, resp.Coalesced, req.Meta)
	writeJSON(w, resp)
}

// deliverLocked fills one outcome slot and notifies the sweep's subscribers.
// Callers hold c.mu.
func (c *Coordinator) deliverLocked(sw *sweepState, out OutcomeV1) {
	sw.outcomes[out.ID] = out
	sw.remaining--
	if out.Err != "" {
		sw.failed++
	}
	ev := EventV1{Type: "job", SweepID: sw.id, ID: out.ID, Key: out.Key,
		CacheHit: out.CacheHit, Err: out.Err, Worker: out.Worker,
		Completed: len(sw.outcomes) - sw.remaining, Total: len(sw.outcomes)}
	for _, sub := range sw.subs {
		select {
		case sub <- ev:
		default: // a stalled subscriber loses progress lines, never the sweep
		}
	}
	if sw.remaining == 0 {
		close(sw.done)
	}
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		writeJSON(w, ClaimResponseV1{Found: false})
		return
	}
	t := c.queue[0]
	c.queue = c.queue[1:]
	c.seq++
	id := fmt.Sprintf("l%d", c.seq)
	c.leases[id] = &lease{t: t, worker: req.Worker, deadline: time.Now().Add(c.cfg.LeaseTTL)}
	writeJSON(w, ClaimResponseV1{
		Found:           true,
		LeaseID:         id,
		Job:             t.job,
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.cfg.HeartbeatInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.LeaseID]
	if !ok || l.t.done {
		delete(c.leases, req.LeaseID)
		http.Error(w, "sweepd: lease revoked", http.StatusGone)
		return
	}
	l.deadline = time.Now().Add(c.cfg.LeaseTTL)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if (req.Value == nil) == (req.Err == "") {
		http.Error(w, "sweepd: completion must set exactly one of value and err", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.LeaseID]
	if !ok {
		// The lease expired and the job was re-queued (or finished elsewhere):
		// determinism makes the duplicate result redundant, so drop it.
		http.Error(w, "sweepd: lease revoked", http.StatusGone)
		return
	}
	delete(c.leases, req.LeaseID)
	t := l.t
	if t.done {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	t.done = true
	delete(c.pending, t.fp)
	if req.Err == "" {
		c.stats.Executed++
		if err := c.cache.Record(t.fp, req.Value); err != nil {
			// A cache write failure costs future hits, never this result.
			c.logf("sweepd: recording result %s: %v", t.fp[:12], err)
		}
	} else {
		c.stats.Failed++
	}
	for _, wt := range t.waiters {
		c.deliverLocked(wt.sw, OutcomeV1{ID: wt.idx, Key: wt.key,
			Value: req.Value, Err: req.Err, Worker: l.worker,
			ElapsedMillis: req.ElapsedMillis})
	}
	w.WriteHeader(http.StatusNoContent)
}

// reap periodically revokes expired leases. A revoked job returns to the
// front of the queue; one that has exhausted MaxAttempts fails permanently.
func (c *Coordinator) reap() {
	defer close(c.reapDone)
	tick := time.NewTicker(c.cfg.ReapInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		for id, l := range c.leases {
			if !l.deadline.Before(now) {
				continue
			}
			delete(c.leases, id)
			t := l.t
			if t.done {
				continue
			}
			t.attempts++
			if t.attempts >= c.cfg.MaxAttempts {
				t.done = true
				delete(c.pending, t.fp)
				c.stats.Failed++
				msg := fmt.Sprintf("abandoned after %d expired leases (last worker %q)",
					t.attempts, l.worker)
				c.logf("sweepd: job %q %s", t.job.Key, msg)
				for _, wt := range t.waiters {
					c.deliverLocked(wt.sw, OutcomeV1{ID: wt.idx, Key: wt.key, Err: msg})
				}
				continue
			}
			c.stats.Requeues++
			c.queue = append([]*task{t}, c.queue...)
			c.logf("sweepd: lease on %q expired (worker %q); re-queued (attempt %d)",
				t.job.Key, l.worker, t.attempts)
		}
		c.mu.Unlock()
	}
}

func (c *Coordinator) lookupSweep(w http.ResponseWriter, r *http.Request) *sweepState {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.sweeps[r.PathValue("id")]
	if sw == nil {
		http.Error(w, "sweepd: no such sweep", http.StatusNotFound)
	}
	return sw
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	c.mu.Lock()
	st := SweepStatusV1{SweepID: sw.id, Meta: sw.meta, Total: len(sw.outcomes),
		Completed: len(sw.outcomes) - sw.remaining, Failed: sw.failed,
		CacheHits: sw.cacheHits, Done: sw.remaining == 0}
	c.mu.Unlock()
	writeJSON(w, st)
}

func (c *Coordinator) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-sw.done:
		case <-r.Context().Done():
			return
		}
	}
	c.mu.Lock()
	resp := OutcomesResponseV1{SweepID: sw.id, Done: sw.remaining == 0,
		Outcomes: append([]OutcomeV1(nil), sw.outcomes...)}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// handleEvents streams a sweep's progress as NDJSON: one EventV1 per
// completed job (already-completed jobs replay first, so a late subscriber
// sees the full history), then a final "sweep" summary line.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "sweepd: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")

	// Snapshot history and subscribe atomically, so no event is lost between.
	c.mu.Lock()
	var replay []EventV1
	completed := 0
	for i := range sw.outcomes {
		o := &sw.outcomes[i]
		if !o.done() {
			continue
		}
		completed++
		replay = append(replay, EventV1{Type: "job", SweepID: sw.id, ID: o.ID,
			Key: o.Key, CacheHit: o.CacheHit, Err: o.Err, Worker: o.Worker,
			Completed: completed, Total: len(sw.outcomes)})
	}
	sw.subSeq++
	subID := sw.subSeq
	sub := make(chan EventV1, 4*len(sw.outcomes)+16)
	sw.subs[subID] = sub
	c.mu.Unlock()

	unsubscribe := func() {
		c.mu.Lock()
		delete(sw.subs, subID)
		c.mu.Unlock()
	}
	defer unsubscribe()

	enc := json.NewEncoder(w)
	emit := func(ev EventV1) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub:
			if !emit(ev) {
				return
			}
		case <-sw.done:
			// Events are buffered before done closes; drain, then summarize.
			for {
				select {
				case ev := <-sub:
					if !emit(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			c.mu.Lock()
			final := EventV1{Type: "sweep", SweepID: sw.id,
				Completed: len(sw.outcomes) - sw.remaining, Total: len(sw.outcomes)}
			c.mu.Unlock()
			emit(final)
			return
		}
	}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := c.stats
	st.QueueDepth = int64(len(c.queue))
	st.ActiveLeases = int64(len(c.leases))
	c.mu.Unlock()
	st.CacheEntries = int64(c.cache.Len())
	writeJSON(w, st)
}

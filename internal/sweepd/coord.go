package sweepd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memsched/internal/runner"
)

// cacheMeta fingerprints the result-cache schema: entries are canonical
// sim.Result JSON keyed by JobSpecV1 fingerprints. Bump it when either
// encoding changes so a stale cache file is discarded, not misread.
// v2: sim.Result gained the per-class latency split (ClassLat) and the
// per-core serving class and tail percentiles.
const cacheMeta = "sweepd result cache v2"

// DefaultShards is the coordinator state shard count selected by
// CoordinatorConfig.Shards == 0. Sharding is cheap (a mutex, three maps and a
// slice each), so the default leans toward concurrency headroom rather than
// host introspection.
const DefaultShards = 8

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// CachePath is the persistent content-addressed result cache file
	// (a runner.Checkpoint). "" keeps the cache in memory only. With more
	// than one shard the path fans out to CachePath+".s<i>-of-<K>", one
	// independent store per shard, so concurrent completions never
	// serialize on a single file flush.
	CachePath string
	// Shards is the number of independent state shards (queue + in-flight
	// table + lease table + result cache), keyed by fingerprint prefix.
	// 0 selects DefaultShards; 1 reproduces the single-mutex layout.
	Shards int
	// LeaseTTL is how long a claimed job may go without a heartbeat before
	// it is revoked and re-queued. 0 selects 30s.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence workers are told to heartbeat at.
	// 0 selects LeaseTTL/3.
	HeartbeatInterval time.Duration
	// ReapInterval is the revocation scan cadence. 0 selects LeaseTTL/4.
	ReapInterval time.Duration
	// MaxAttempts bounds how many times a job is re-queued after lease
	// expiries before it is failed permanently. 0 selects 5.
	MaxAttempts int
	// Logf receives operational log lines (nil disables them).
	Logf func(format string, args ...any)
}

// Coordinator owns the job queue, the lease table, the result cache, and the
// HTTP API. Create one with NewCoordinator, expose Handler() on a server, and
// Close it on shutdown.
//
// State is split into CoordinatorConfig.Shards independent shards keyed by
// spec fingerprint prefix: each shard has its own mutex, FIFO queue,
// in-flight (dedup) table, lease table, and runner.Checkpoint cache store, so
// concurrent submits, claims, and completes for different fingerprints never
// serialize on one lock. Per-sweep aggregation state has its own lock per
// sweep; operational counters are atomics.
type Coordinator struct {
	cfg    CoordinatorConfig
	shards []*shard
	mux    *http.ServeMux

	sweepMu  sync.Mutex
	sweeps   map[string]*sweepState
	sweepSeq int64

	claimCursor atomic.Int64 // rotates the shard a claim scan starts at

	stats coordStats

	closed    chan struct{}
	closeOnce sync.Once
	reapDone  chan struct{}
}

// coordStats is the coordinator's atomic counter set, snapshotted into
// StatsV1 by Stats(). queueDepth and activeLeases are maintained incrementally
// so claims can report the backlog without touching every shard lock.
type coordStats struct {
	sweeps, executed, failed atomic.Int64
	cacheHits, cacheMisses   atomic.Int64
	coalesced, requeues      atomic.Int64
	queueDepth, activeLeases atomic.Int64
}

// shard is one independent slice of coordinator state. All four structures
// are guarded by mu; the cache has its own internal lock but is only mutated
// under mu so the lookup→pending→enqueue admission sequence stays atomic.
type shard struct {
	idx   int
	cache *runner.Checkpoint

	mu      sync.Mutex
	queue   []*task          // pending jobs, FIFO; re-queued jobs go to the front
	pending map[string]*task // fingerprint -> queued or running task (dedup point)
	leases  map[string]*lease
	seq     int64
}

// task is one distinct simulation to run: every submitted job with the same
// spec fingerprint attaches to the same task, so overlapping sweeps coalesce
// into one execution.
type task struct {
	fp       string
	job      JobV1 // first submitter's job (the spec all waiters share)
	waiters  []waiter
	attempts int // lease expiries so far
	done     bool
}

// waiter is one (sweep, slot) awaiting a task's outcome, with the key that
// sweep labeled the job with.
type waiter struct {
	sw  *sweepState
	idx int
	key string
}

type lease struct {
	t        *task
	worker   string
	deadline time.Time
}

type sweepState struct {
	id   string
	meta string

	mu        sync.Mutex
	outcomes  []OutcomeV1
	remaining int
	failed    int
	cacheHits int
	subs      map[int64]chan EventV1
	subSeq    int64
	done      chan struct{} // closed when remaining hits zero
}

// NewCoordinator initializes the coordinator and starts its lease reaper.
// The result cache stores at cfg.CachePath are loaded if present (a corrupt
// or incompatible file is moved aside, per runner.LoadCheckpoint).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.LeaseTTL / 3
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = cfg.LeaseTTL / 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	c := &Coordinator{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		sweeps:   map[string]*sweepState{},
		closed:   make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	for i := range c.shards {
		path := cfg.CachePath
		if path != "" && cfg.Shards > 1 {
			path = fmt.Sprintf("%s.s%d-of-%d", cfg.CachePath, i, cfg.Shards)
		}
		cache, err := runner.LoadCheckpoint(path, cacheMeta, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("sweepd: opening result cache shard %d: %w", i, err)
		}
		c.shards[i] = &shard{
			idx:     i,
			cache:   cache,
			pending: map[string]*task{},
			leases:  map[string]*lease{},
		}
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /"+APIVersion+"/sweeps", c.handleSubmit)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}/outcomes", c.handleOutcomes)
	c.mux.HandleFunc("GET /"+APIVersion+"/sweeps/{id}/events", c.handleEvents)
	c.mux.HandleFunc("POST /"+APIVersion+"/claim", c.handleClaim)
	c.mux.HandleFunc("POST /"+APIVersion+"/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /"+APIVersion+"/complete", c.handleComplete)
	c.mux.HandleFunc("POST /"+APIVersion+"/heartbeats", c.handleHeartbeatBatch)
	c.mux.HandleFunc("POST /"+APIVersion+"/completes", c.handleCompleteBatch)
	c.mux.HandleFunc("GET /"+APIVersion+"/stats", c.handleStats)
	c.mux.HandleFunc("GET /"+APIVersion+"/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	registerDebug(c)
	go c.reap()
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the lease reaper. In-flight HTTP requests are the server's to
// drain; pending event streams end when their sweeps complete.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.reapDone
}

// Stats snapshots the coordinator's operational counters.
func (c *Coordinator) Stats() StatsV1 {
	st := StatsV1{
		Sweeps:       c.stats.sweeps.Load(),
		Executed:     c.stats.executed.Load(),
		Failed:       c.stats.failed.Load(),
		CacheHits:    c.stats.cacheHits.Load(),
		CacheMisses:  c.stats.cacheMisses.Load(),
		Coalesced:    c.stats.coalesced.Load(),
		Requeues:     c.stats.requeues.Load(),
		QueueDepth:   c.stats.queueDepth.Load(),
		ActiveLeases: c.stats.activeLeases.Load(),
		Shards:       len(c.shards),
	}
	for _, s := range c.shards {
		st.CacheEntries += int64(s.cache.Len())
	}
	return st
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// shardFor routes a fingerprint to its shard. Fingerprints are lower-case
// hex, so the first two characters decode to a uniform byte.
func (c *Coordinator) shardFor(fp string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	b, err := strconv.ParseUint(fp[:2], 16, 16)
	if err != nil {
		// Fingerprints are produced by JobSpecV1.Fingerprint; anything else
		// is a programming error, not an input error.
		panic(fmt.Sprintf("sweepd: malformed fingerprint %q", fp))
	}
	return c.shards[int(b)%len(c.shards)]
}

// leaseShard resolves a lease ID ("l<shard>.<seq>") back to its shard, or nil
// when the ID is malformed or names an out-of-range shard.
func (c *Coordinator) leaseShard(id string) *shard {
	rest, ok := strings.CutPrefix(id, "l")
	if !ok {
		return nil
	}
	idx, _, ok := strings.Cut(rest, ".")
	if !ok {
		return nil
	}
	n, err := strconv.Atoi(idx)
	if err != nil || n < 0 || n >= len(c.shards) {
		return nil
	}
	return c.shards[n]
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "sweepd: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "sweepd: sweep has no jobs", http.StatusBadRequest)
		return
	}
	seen := make(map[string]bool, len(req.Jobs))
	for i, j := range req.Jobs {
		if j.Key == "" {
			http.Error(w, fmt.Sprintf("sweepd: job %d has an empty key", i), http.StatusBadRequest)
			return
		}
		if seen[j.Key] {
			http.Error(w, fmt.Sprintf("sweepd: duplicate job key %q", j.Key), http.StatusBadRequest)
			return
		}
		seen[j.Key] = true
		// Validate the spec now so a malformed matrix is a 400 at submit
		// time, not a failed outcome discovered by a worker.
		if _, err := j.Spec.RunSpec(); err != nil {
			http.Error(w, fmt.Sprintf("sweepd: job %q: %v", j.Key, err), http.StatusBadRequest)
			return
		}
	}

	sw := &sweepState{
		id:        fmt.Sprintf("s%d", atomic.AddInt64(&c.sweepSeq, 1)),
		meta:      req.Meta,
		outcomes:  make([]OutcomeV1, len(req.Jobs)),
		remaining: len(req.Jobs),
		subs:      map[int64]chan EventV1{},
		done:      make(chan struct{}),
	}
	// Admission resolves each job against its shard: cache hit, coalesce
	// onto an in-flight twin, or enqueue. Jobs enqueued early can complete
	// (and deliver into sw) while later jobs are still being admitted, so
	// remaining was fixed at len(jobs) up front and every slot fill goes
	// through deliver's sweep lock.
	coalesced := 0
	enqueued := 0
	for i, j := range req.Jobs {
		fp := j.Spec.Fingerprint()
		s := c.shardFor(fp)
		s.mu.Lock()
		if raw, ok := s.cache.Lookup(fp); ok {
			s.mu.Unlock()
			c.stats.cacheHits.Add(1)
			sw.mu.Lock()
			sw.cacheHits++
			sw.mu.Unlock()
			c.deliver(sw, OutcomeV1{ID: i, Key: j.Key, Value: raw, CacheHit: true})
			continue
		}
		c.stats.cacheMisses.Add(1)
		if t, ok := s.pending[fp]; ok {
			t.waiters = append(t.waiters, waiter{sw: sw, idx: i, key: j.Key})
			s.mu.Unlock()
			coalesced++
			c.stats.coalesced.Add(1)
			continue
		}
		t := &task{fp: fp, job: JobV1{ID: i, Key: j.Key, Spec: j.Spec},
			waiters: []waiter{{sw: sw, idx: i, key: j.Key}}}
		s.pending[fp] = t
		s.queue = append(s.queue, t)
		s.mu.Unlock()
		enqueued++
		c.stats.queueDepth.Add(1)
	}

	c.sweepMu.Lock()
	c.sweeps[sw.id] = sw
	c.sweepMu.Unlock()
	c.stats.sweeps.Add(1)

	sw.mu.Lock()
	resp := SubmitResponseV1{SweepID: sw.id, Jobs: len(req.Jobs),
		CacheHits: sw.cacheHits, Coalesced: coalesced}
	sw.mu.Unlock()

	c.logf("sweepd: sweep %s submitted: %d jobs (%d cached, %d coalesced, %d enqueued) %s",
		resp.SweepID, resp.Jobs, resp.CacheHits, resp.Coalesced, enqueued, req.Meta)
	writeJSON(w, resp)
}

// deliver fills one outcome slot and notifies the sweep's subscribers. It
// takes the sweep lock; callers must not hold it (shard locks are fine —
// shard locks are never taken while a sweep lock is held, so the lock order
// shard→sweep is acyclic).
func (c *Coordinator) deliver(sw *sweepState, out OutcomeV1) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.outcomes[out.ID] = out
	sw.remaining--
	if out.Err != "" {
		sw.failed++
	}
	ev := EventV1{Type: "job", SweepID: sw.id, ID: out.ID, Key: out.Key,
		CacheHit: out.CacheHit, Err: out.Err, Worker: out.Worker,
		Completed: len(sw.outcomes) - sw.remaining, Total: len(sw.outcomes)}
	for _, sub := range sw.subs {
		select {
		case sub <- ev:
		default: // a stalled subscriber loses progress lines, never the sweep
		}
	}
	if sw.remaining == 0 {
		close(sw.done)
	}
}

// claimLeases pops up to max tasks across the shards — starting at a rotating
// cursor so load spreads — and grants one lease per task.
func (c *Coordinator) claimLeases(worker string, max int) []LeaseV1 {
	if max < 1 {
		max = 1
	}
	var leases []LeaseV1
	start := int(c.claimCursor.Add(1))
	for k := 0; k < len(c.shards) && len(leases) < max; k++ {
		s := c.shards[(start+k)%len(c.shards)]
		s.mu.Lock()
		for len(s.queue) > 0 && len(leases) < max {
			t := s.queue[0]
			s.queue = s.queue[1:]
			s.seq++
			id := fmt.Sprintf("l%d.%d", s.idx, s.seq)
			s.leases[id] = &lease{t: t, worker: worker, deadline: time.Now().Add(c.cfg.LeaseTTL)}
			leases = append(leases, LeaseV1{LeaseID: id, Job: t.job})
		}
		s.mu.Unlock()
	}
	c.stats.queueDepth.Add(-int64(len(leases)))
	c.stats.activeLeases.Add(int64(len(leases)))
	return leases
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	leases := c.claimLeases(req.Worker, req.Max)
	resp := ClaimResponseV1{
		Leases:     leases,
		QueueDepth: c.stats.queueDepth.Load(),
	}
	if len(leases) > 0 {
		resp.Found = true
		resp.LeaseID = leases[0].LeaseID
		resp.Job = leases[0].Job
		resp.LeaseTTLMillis = c.cfg.LeaseTTL.Milliseconds()
		resp.HeartbeatMillis = c.cfg.HeartbeatInterval.Milliseconds()
	}
	writeJSON(w, resp)
}

// heartbeatOne extends one lease, reporting whether it is still live.
func (c *Coordinator) heartbeatOne(id string) bool {
	s := c.leaseShard(id)
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok || l.t.done {
		if ok {
			delete(s.leases, id)
			c.stats.activeLeases.Add(-1)
		}
		return false
	}
	l.deadline = time.Now().Add(c.cfg.LeaseTTL)
	return true
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.heartbeatOne(req.LeaseID) {
		http.Error(w, "sweepd: lease revoked", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeatBatch(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatBatchRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp HeartbeatBatchResponseV1
	for _, id := range req.LeaseIDs {
		if !c.heartbeatOne(id) {
			resp.Lost = append(resp.Lost, id)
		}
	}
	writeJSON(w, resp)
}

// delivery is one task resolution ready to fan out to its waiters after the
// shard lock is released.
type delivery struct {
	t       *task
	out     OutcomeV1 // template: ID/Key filled per waiter
	worker  string
	elapsed int64
}

// fanOut delivers a resolved task to every waiter.
func (c *Coordinator) fanOut(d delivery) {
	for _, wt := range d.t.waiters {
		c.deliver(wt.sw, OutcomeV1{ID: wt.idx, Key: wt.key,
			Value: d.out.Value, Err: d.out.Err, Worker: d.worker,
			ElapsedMillis: d.elapsed})
	}
}

// completeOne resolves one completion under its shard lock and returns the
// delivery to fan out (nil when the lease was revoked — lost=true — or the
// task already finished). The cache write happens before the task leaves the
// pending table, so a concurrent submit sees either the in-flight task or the
// cached result, never a gap that would re-execute the spec.
func (c *Coordinator) completeOne(req CompleteRequestV1) (d *delivery, lost bool) {
	s := c.leaseShard(req.LeaseID)
	if s == nil {
		return nil, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[req.LeaseID]
	if !ok {
		// The lease expired and the job was re-queued (or finished elsewhere):
		// determinism makes the duplicate result redundant, so drop it.
		return nil, true
	}
	delete(s.leases, req.LeaseID)
	c.stats.activeLeases.Add(-1)
	t := l.t
	if t.done {
		return nil, false
	}
	t.done = true
	if req.Err == "" {
		c.stats.executed.Add(1)
		if err := s.cache.Record(t.fp, req.Value); err != nil {
			// A cache write failure costs future hits, never this result.
			c.logf("sweepd: recording result %s: %v", t.fp[:12], err)
		}
	} else {
		c.stats.failed.Add(1)
	}
	delete(s.pending, t.fp)
	return &delivery{t: t, out: OutcomeV1{Value: req.Value, Err: req.Err},
		worker: l.worker, elapsed: req.ElapsedMillis}, false
}

func validateCompletion(req CompleteRequestV1) error {
	if (req.Value == nil) == (req.Err == "") {
		return fmt.Errorf("sweepd: completion must set exactly one of value and err")
	}
	return nil
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := validateCompletion(req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, lost := c.completeOne(req)
	if lost {
		http.Error(w, "sweepd: lease revoked", http.StatusGone)
		return
	}
	if d != nil {
		c.fanOut(*d)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleCompleteBatch(w http.ResponseWriter, r *http.Request) {
	var req CompleteBatchRequestV1
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, comp := range req.Completions {
		if err := validateCompletion(comp); err != nil {
			http.Error(w, fmt.Sprintf("%v (lease %s)", err, comp.LeaseID), http.StatusBadRequest)
			return
		}
	}
	// Group by shard so each shard's lock is taken once and its cache store
	// is flushed once per batch, not once per job.
	var resp CompleteBatchResponseV1
	byShard := map[*shard][]CompleteRequestV1{}
	var order []*shard
	for _, comp := range req.Completions {
		s := c.leaseShard(comp.LeaseID)
		if s == nil {
			resp.Lost = append(resp.Lost, comp.LeaseID)
			continue
		}
		if _, ok := byShard[s]; !ok {
			order = append(order, s)
		}
		byShard[s] = append(byShard[s], comp)
	}
	var deliveries []delivery
	for _, s := range order {
		ds, lost := c.completeShardBatch(s, byShard[s])
		deliveries = append(deliveries, ds...)
		resp.Lost = append(resp.Lost, lost...)
	}
	for _, d := range deliveries {
		c.fanOut(d)
	}
	writeJSON(w, resp)
}

// completeShardBatch resolves a batch of completions that all belong to one
// shard under a single lock hold, with one cache flush for the whole batch.
func (c *Coordinator) completeShardBatch(s *shard, comps []CompleteRequestV1) (ds []delivery, lost []string) {
	var records []runner.BatchEntry
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, comp := range comps {
		l, ok := s.leases[comp.LeaseID]
		if !ok {
			lost = append(lost, comp.LeaseID)
			continue
		}
		delete(s.leases, comp.LeaseID)
		c.stats.activeLeases.Add(-1)
		t := l.t
		if t.done {
			continue
		}
		t.done = true
		if comp.Err == "" {
			c.stats.executed.Add(1)
			records = append(records, runner.BatchEntry{Key: t.fp, Value: comp.Value})
		} else {
			c.stats.failed.Add(1)
		}
		delete(s.pending, t.fp)
		ds = append(ds, delivery{t: t, out: OutcomeV1{Value: comp.Value, Err: comp.Err},
			worker: l.worker, elapsed: comp.ElapsedMillis})
	}
	if err := s.cache.RecordBatch(records); err != nil {
		// A cache write failure costs future hits, never these results.
		c.logf("sweepd: recording %d results on shard %d: %v", len(records), s.idx, err)
	}
	return ds, lost
}

// reap periodically revokes expired leases. A revoked job returns to the
// front of its shard's queue; one that has exhausted MaxAttempts fails
// permanently.
func (c *Coordinator) reap() {
	defer close(c.reapDone)
	tick := time.NewTicker(c.cfg.ReapInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		now := time.Now()
		var abandoned []delivery
		for _, s := range c.shards {
			s.mu.Lock()
			for id, l := range s.leases {
				if !l.deadline.Before(now) {
					continue
				}
				delete(s.leases, id)
				c.stats.activeLeases.Add(-1)
				t := l.t
				if t.done {
					continue
				}
				t.attempts++
				if t.attempts >= c.cfg.MaxAttempts {
					t.done = true
					delete(s.pending, t.fp)
					c.stats.failed.Add(1)
					msg := fmt.Sprintf("abandoned after %d expired leases (last worker %q)",
						t.attempts, l.worker)
					c.logf("sweepd: job %q %s", t.job.Key, msg)
					abandoned = append(abandoned, delivery{t: t, out: OutcomeV1{Err: msg}})
					continue
				}
				c.stats.requeues.Add(1)
				c.stats.queueDepth.Add(1)
				s.queue = append([]*task{t}, s.queue...)
				c.logf("sweepd: lease on %q expired (worker %q); re-queued (attempt %d)",
					t.job.Key, l.worker, t.attempts)
			}
			s.mu.Unlock()
		}
		for _, d := range abandoned {
			c.fanOut(d)
		}
	}
}

func (c *Coordinator) lookupSweep(w http.ResponseWriter, r *http.Request) *sweepState {
	c.sweepMu.Lock()
	sw := c.sweeps[r.PathValue("id")]
	c.sweepMu.Unlock()
	if sw == nil {
		http.Error(w, "sweepd: no such sweep", http.StatusNotFound)
	}
	return sw
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	sw.mu.Lock()
	st := SweepStatusV1{SweepID: sw.id, Meta: sw.meta, Total: len(sw.outcomes),
		Completed: len(sw.outcomes) - sw.remaining, Failed: sw.failed,
		CacheHits: sw.cacheHits, Done: sw.remaining == 0}
	sw.mu.Unlock()
	writeJSON(w, st)
}

func (c *Coordinator) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-sw.done:
		case <-r.Context().Done():
			return
		}
	}
	sw.mu.Lock()
	resp := OutcomesResponseV1{SweepID: sw.id, Done: sw.remaining == 0,
		Outcomes: append([]OutcomeV1(nil), sw.outcomes...)}
	sw.mu.Unlock()
	writeJSON(w, resp)
}

// handleEvents streams a sweep's progress as NDJSON: one EventV1 per
// completed job (already-completed jobs replay first, so a late subscriber
// sees the full history), then a final "sweep" summary line.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := c.lookupSweep(w, r)
	if sw == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "sweepd: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")

	// Snapshot history and subscribe atomically, so no event is lost between.
	sw.mu.Lock()
	var replay []EventV1
	completed := 0
	for i := range sw.outcomes {
		o := &sw.outcomes[i]
		if !o.done() {
			continue
		}
		completed++
		replay = append(replay, EventV1{Type: "job", SweepID: sw.id, ID: o.ID,
			Key: o.Key, CacheHit: o.CacheHit, Err: o.Err, Worker: o.Worker,
			Completed: completed, Total: len(sw.outcomes)})
	}
	sw.subSeq++
	subID := sw.subSeq
	sub := make(chan EventV1, 4*len(sw.outcomes)+16)
	sw.subs[subID] = sub
	sw.mu.Unlock()

	unsubscribe := func() {
		sw.mu.Lock()
		delete(sw.subs, subID)
		sw.mu.Unlock()
	}
	defer unsubscribe()

	enc := json.NewEncoder(w)
	emit := func(ev EventV1) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub:
			if !emit(ev) {
				return
			}
		case <-sw.done:
			// Events are buffered before done closes; drain, then summarize.
			for {
				select {
				case ev := <-sub:
					if !emit(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			sw.mu.Lock()
			final := EventV1{Type: "sweep", SweepID: sw.id,
				Completed: len(sw.outcomes) - sw.remaining, Total: len(sw.outcomes)}
			sw.mu.Unlock()
			emit(final)
			return
		}
	}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Stats())
}

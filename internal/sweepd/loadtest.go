package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service's load harness: an in-process transport that
// serves the coordinator's handler with no TCP in the path, and LoadTest,
// which drives thousands of tiny jobs through the full submit → claim →
// complete → aggregate pipeline with stub executors. Workers complete jobs
// instantly with a canned payload, so the numbers isolate coordination cost —
// round trips, JSON codec work, lock contention — from simulation time.
// cmd/sweepd's loadtest subcommand and BenchmarkSweepdThroughput both run it.

// handlerTransport is an http.RoundTripper that dispatches every request
// straight into a handler on the calling goroutine. Compared to a loopback
// TCP server it removes port allocation, connection pooling, and kernel
// buffering from measurements — and from tests' determinism.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &memResponse{header: http.Header{}, code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.buf.Bytes())),
		ContentLength: int64(rec.buf.Len()),
		Request:       req,
	}, nil
}

// memResponse is the minimal in-memory http.ResponseWriter behind
// handlerTransport. It deliberately omits http.Flusher: streaming endpoints
// buffer until the handler returns, which every harness caller accepts.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	code   int
	wrote  bool
}

func (r *memResponse) Header() http.Header { return r.header }

func (r *memResponse) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *memResponse) Write(p []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(p)
}

// NewInProcessClient returns a Client whose requests are served directly by
// the coordinator's handler — no listener, no ports. The client is a full
// peer of a remote one (same wire encoding, same status-code handling), which
// is what lets tests byte-compare in-process and remote sweep outcomes.
func NewInProcessClient(c *Coordinator) *Client {
	cl := &Client{
		base: "http://sweepd.inproc",
		hc:   &http.Client{Transport: handlerTransport{h: c.Handler()}},
	}
	cl.defaults()
	return cl
}

// LoadOptions sizes a LoadTest run.
type LoadOptions struct {
	// Jobs is the total number of distinct jobs pushed through the service.
	// 0 selects 1000.
	Jobs int
	// SweepSize is the number of jobs per submitted sweep. 0 selects 250.
	SweepSize int
	// Workers is the number of concurrent claiming worker loops. 0 selects 2.
	Workers int
	// Batch is the claim/complete batch width. 0 selects 32; 1 exercises the
	// single-job endpoints (the pre-batching wire protocol) as a baseline.
	Batch int
	// Shards is the coordinator shard count. 0 selects DefaultShards;
	// 1 reproduces the single-mutex coordinator as a baseline.
	Shards int
	// InProcess serves requests straight through the coordinator's handler
	// instead of a loopback TCP listener. The default (false) measures the
	// real service path — connection handling, kernel buffering, syscalls —
	// which is where batching pays; in-process mode isolates coordinator CPU
	// cost and keeps allocation counts deterministic for benchmarks.
	InProcess bool
	// Logf receives progress lines (nil disables them).
	Logf func(format string, args ...any)
}

// LoadReport is a LoadTest result.
type LoadReport struct {
	Jobs    int `json:"jobs"`
	Sweeps  int `json:"sweeps"`
	Workers int `json:"workers"`
	Batch   int `json:"batch"`
	Shards  int `json:"shards"`

	Elapsed    time.Duration `json:"elapsed_ns"`
	JobsPerSec float64       `json:"jobs_per_sec"`

	// ClaimCalls/CompleteCalls count round trips; with batching both sit far
	// below Jobs, which is where the throughput comes from.
	ClaimCalls    int64 `json:"claim_calls"`
	CompleteCalls int64 `json:"complete_calls"`

	ClaimP50 time.Duration `json:"claim_p50_ns"`
	ClaimP99 time.Duration `json:"claim_p99_ns"`
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%d jobs in %v: %.0f jobs/sec (%d workers, batch %d, %d shards; "+
		"%d claims, %d completes; claim p50 %v p99 %v)",
		r.Jobs, r.Elapsed.Round(time.Millisecond), r.JobsPerSec,
		r.Workers, r.Batch, r.Shards, r.ClaimCalls, r.CompleteCalls,
		r.ClaimP50.Round(time.Microsecond), r.ClaimP99.Round(time.Microsecond))
}

// loadStubValue is the canned result payload loadtest workers complete jobs
// with. It is valid JSON (the coordinator stores it verbatim) but never
// decoded as a sim.Result — the harness measures the scheduler, not the
// simulator.
var loadStubValue = json.RawMessage(`{"load_test_stub":true}`)

// LoadTest stands up a fresh in-memory coordinator, submits opts.Jobs tiny
// distinct RunSpec jobs in sweeps of opts.SweepSize, and drains them with
// opts.Workers stub worker loops claiming and completing in batches of
// opts.Batch. It returns once every sweep's outcomes are aggregated.
func LoadTest(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.Jobs <= 0 {
		opts.Jobs = 1000
	}
	if opts.SweepSize <= 0 {
		opts.SweepSize = 250
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Batch <= 0 {
		opts.Batch = 32
	}
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	logf := func(format string, args ...any) {
		if opts.Logf != nil {
			opts.Logf(format, args...)
		}
	}

	// A long TTL keeps the reaper out of the measurement: nothing here
	// crashes, so no lease should ever expire mid-run.
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards:   opts.Shards,
		LeaseTTL: time.Minute,
	})
	if err != nil {
		return LoadReport{}, err
	}
	defer coord.Close()
	var client *Client
	if opts.InProcess {
		client = NewInProcessClient(coord)
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return LoadReport{}, fmt.Errorf("sweepd: loadtest listener: %w", err)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		client = NewClient(ln.Addr().String())
	}

	// Distinct seeds give every job a distinct fingerprint: no cache hits, no
	// coalescing, so completions == Jobs and the pipeline is fully exercised.
	sweeps := 0
	var jobs []JobV1
	var sweepIDs []string
	for i := 0; i < opts.Jobs; i++ {
		jobs = append(jobs, JobV1{ID: len(jobs), Key: fmt.Sprintf("job-%d", i),
			Spec: JobSpecV1{Mix: "2MEM-1", Policy: "fcfs", Instr: 1000, Seed: uint64(i + 1)}})
		if len(jobs) == opts.SweepSize || i == opts.Jobs-1 {
			resp, err := client.Submit(ctx, SweepRequestV1{
				Meta: fmt.Sprintf("loadtest sweep %d", sweeps), Jobs: jobs})
			if err != nil {
				return LoadReport{}, fmt.Errorf("sweepd: loadtest submit: %w", err)
			}
			sweepIDs = append(sweepIDs, resp.SweepID)
			sweeps++
			jobs = nil
		}
	}
	t0 := time.Now()

	var completed atomic.Int64
	var claimCalls, completeCalls atomic.Int64
	latencies := make([][]time.Duration, opts.Workers)
	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	var wg sync.WaitGroup
	for wi := 0; wi < opts.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			name := fmt.Sprintf("loadworker-%d", wi)
			for wctx.Err() == nil && completed.Load() < int64(opts.Jobs) {
				c0 := time.Now()
				resp, err := client.Claim(wctx, name, opts.Batch)
				latencies[wi] = append(latencies[wi], time.Since(c0))
				claimCalls.Add(1)
				if err != nil {
					return
				}
				if len(resp.Leases) == 0 {
					// Queue momentarily empty: another worker holds the tail.
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if opts.Batch == 1 {
					for _, lv := range resp.Leases {
						err := client.Complete(wctx, CompleteRequestV1{
							LeaseID: lv.LeaseID, Value: loadStubValue})
						completeCalls.Add(1)
						if err == nil {
							completed.Add(1)
						}
					}
					continue
				}
				comps := make([]CompleteRequestV1, len(resp.Leases))
				for i, lv := range resp.Leases {
					comps[i] = CompleteRequestV1{LeaseID: lv.LeaseID, Value: loadStubValue}
				}
				bresp, err := client.CompleteBatch(wctx, comps)
				completeCalls.Add(1)
				if err == nil {
					completed.Add(int64(len(comps) - len(bresp.Lost)))
				}
			}
		}(wi)
	}

	// The run is over when every sweep's aggregation is done, not merely when
	// workers stop: outcome fan-out is part of the measured pipeline.
	for _, id := range sweepIDs {
		if _, err := client.Outcomes(ctx, id, true); err != nil {
			cancelWorkers()
			wg.Wait()
			return LoadReport{}, fmt.Errorf("sweepd: loadtest waiting on %s: %w", id, err)
		}
	}
	elapsed := time.Since(t0)
	cancelWorkers()
	wg.Wait()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	rep := LoadReport{
		Jobs:          opts.Jobs,
		Sweeps:        sweeps,
		Workers:       opts.Workers,
		Batch:         opts.Batch,
		Shards:        opts.Shards,
		Elapsed:       elapsed,
		JobsPerSec:    float64(opts.Jobs) / elapsed.Seconds(),
		ClaimCalls:    claimCalls.Load(),
		CompleteCalls: completeCalls.Load(),
		ClaimP50:      pct(0.50),
		ClaimP99:      pct(0.99),
	}
	logf("sweepd: loadtest: %s", rep)
	return rep, nil
}

package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memsched/internal/sim"
)

// testSpec is the small, fast job most tests share.
func testSpec(policy string) JobSpecV1 {
	return JobSpecV1{Mix: "2MEM-1", Policy: policy, Instr: 10_000, Seed: sim.EvalSeed}
}

// localBytes runs spec in-process and returns the canonical Result JSON — the
// bytes a remote outcome must match exactly.
func localBytes(t *testing.T, spec JobSpecV1) []byte {
	t.Helper()
	rs, err := spec.RunSpec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// newTestService starts a coordinator on an httptest server and returns a
// client for it. Cleanup stops both.
func newTestService(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *Client) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		coord.Close()
	})
	return coord, NewClient(srv.URL)
}

// startWorker runs an in-process worker until cancel; the returned done
// channel closes when its loops exit.
func startWorker(ctx context.Context, client *Client, name string) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, WorkerOptions{
			Coordinator: client.base,
			Name:        name,
			Poll:        10 * time.Millisecond,
			Logf:        nil,
		})
	}()
	return done
}

func TestFingerprint(t *testing.T) {
	base := testSpec("me-lreq")
	if got, want := base.Fingerprint(), base.Fingerprint(); got != want {
		t.Fatal("fingerprint not deterministic")
	}

	// Execution hints must not fragment the cache: parallel execution is
	// result-preserving (DESIGN.md §11), so width is excluded.
	par := base
	par.ParallelCores = 8
	if par.Fingerprint() != base.Fingerprint() {
		t.Error("ParallelCores changed the fingerprint")
	}

	// Everything that changes the Result must change the address.
	diffs := map[string]JobSpecV1{
		"policy":      {Mix: "2MEM-1", Policy: "hf-rf", Instr: 10_000, Seed: sim.EvalSeed},
		"seed":        {Mix: "2MEM-1", Policy: "me-lreq", Instr: 10_000, Seed: sim.EvalSeed + 1},
		"instr":       {Mix: "2MEM-1", Policy: "me-lreq", Instr: 20_000, Seed: sim.EvalSeed},
		"mix":         {Mix: "2MEM-2", Policy: "me-lreq", Instr: 10_000, Seed: sim.EvalSeed},
		"nocycleskip": {Mix: "2MEM-1", Policy: "me-lreq", Instr: 10_000, Seed: sim.EvalSeed, NoCycleSkip: true},
		"me":          {Mix: "2MEM-1", Policy: "me-lreq", Instr: 10_000, Seed: sim.EvalSeed, ME: []float64{0.5, 0.9}},
		"classes":     {Mix: "2MEM-1", Policy: "me-lreq", Instr: 10_000, Seed: sim.EvalSeed, Classes: "LB"},
	}
	for name, spec := range diffs {
		if spec.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s variant collided with the base fingerprint", name)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]JobSpecV1{
		"neither":        {Policy: "hf-rf", Instr: 1000},
		"both":           {Mix: "2MEM-1", Apps: "kk", Policy: "hf-rf", Instr: 1000},
		"zero instr":     {Mix: "2MEM-1", Policy: "hf-rf"},
		"unknown mix":    {Mix: "9MEM-9", Policy: "hf-rf", Instr: 1000},
		"bad code":       {Apps: "k?", Policy: "hf-rf", Instr: 1000},
		"unknown policy": {Mix: "2MEM-1", Policy: "lru", Instr: 1000},
		"bad fix order":  {Mix: "2MEM-1", Policy: "fix:012", Instr: 1000},
		"short classes":  {Mix: "2MEM-1", Policy: "hf-rf", Instr: 1000, Classes: "L"},
		"bad class":      {Mix: "2MEM-1", Policy: "hf-rf", Instr: 1000, Classes: "LX"},
	}
	for name, spec := range cases {
		if _, err := spec.RunSpec(); err == nil {
			t.Errorf("%s spec validated", name)
		}
	}
	// An unknown policy must fail listing the registry, so the 400 tells the
	// submitter what names exist.
	_, err := JobSpecV1{Mix: "2MEM-1", Policy: "lru", Instr: 1000}.RunSpec()
	if err == nil || !strings.Contains(err.Error(), "known:") ||
		!strings.Contains(err.Error(), "me-lreq") {
		t.Errorf("unknown-policy error %v does not list the registry", err)
	}
	if _, err := testSpec("me-lreq").RunSpec(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{})
	ctx := context.Background()
	bad := []SweepRequestV1{
		{},
		{Jobs: []JobV1{{Key: "", Spec: testSpec("hf-rf")}}},
		{Jobs: []JobV1{{Key: "a", Spec: testSpec("hf-rf")}, {Key: "a", Spec: testSpec("me")}}},
		{Jobs: []JobV1{{Key: "a", Spec: JobSpecV1{Mix: "nope", Policy: "hf-rf", Instr: 1}}}},
		{Jobs: []JobV1{{Key: "a", Spec: JobSpecV1{Mix: "2MEM-1", Policy: "lru", Instr: 1}}}},
	}
	for i, req := range bad {
		if _, err := client.Submit(ctx, req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if _, err := client.Status(ctx, "s999"); err == nil {
		t.Error("unknown sweep id served")
	}
}

// TestEndToEnd is the acceptance test: a coordinator and two workers complete
// a multi-policy matrix whose outcomes are byte-identical to in-process runs,
// and resubmitting the same matrix is served entirely from the cache with
// zero re-simulation.
func TestEndToEnd(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	policies := []string{"hf-rf", "me", "me-lreq"}
	req := SweepRequestV1{Meta: "e2e"}
	for i, pol := range policies {
		req.Jobs = append(req.Jobs, JobV1{ID: i, Key: pol, Spec: testSpec(pol)})
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	w1 := startWorker(wctx, client, "w1")
	w2 := startWorker(wctx, client, "w2")

	sub, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Jobs != len(policies) || sub.CacheHits != 0 {
		t.Fatalf("submit ack = %+v", sub)
	}

	// Watch the event stream while the sweep runs: every job must produce an
	// event, then the final "sweep" summary closes the stream.
	var events []EventV1
	if err := client.Watch(ctx, sub.SweepID, func(ev EventV1) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(policies)+1 {
		t.Fatalf("got %d events, want %d", len(events), len(policies)+1)
	}
	last := events[len(events)-1]
	if last.Type != "sweep" || last.Completed != len(policies) {
		t.Fatalf("final event = %+v", last)
	}

	out, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done || len(out.Outcomes) != len(policies) {
		t.Fatalf("outcomes = done %v, %d slots", out.Done, len(out.Outcomes))
	}
	for i, o := range out.Outcomes {
		if o.Err != "" {
			t.Fatalf("job %q failed: %s", o.Key, o.Err)
		}
		if o.ID != i || o.Key != policies[i] {
			t.Fatalf("outcome %d out of admission order: %+v", i, o)
		}
		if o.Worker != "w1" && o.Worker != "w2" {
			t.Fatalf("job %q attributed to %q", o.Key, o.Worker)
		}
		// The heart of the determinism contract: remote bytes == local bytes.
		if want := localBytes(t, req.Jobs[i].Spec); !bytes.Equal(o.Value, want) {
			t.Fatalf("job %q: remote result diverged from in-process run", o.Key)
		}
	}

	st, err := client.Status(ctx, sub.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != len(policies) || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != int64(len(policies)) {
		t.Fatalf("executed = %d, want %d", stats.Executed, len(policies))
	}

	// Resubmission: every job must be served from the cache at submit time —
	// no queueing, no worker involvement, byte-identical values.
	sub2, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != len(policies) {
		t.Fatalf("resubmit cache hits = %d, want %d", sub2.CacheHits, len(policies))
	}
	out2, err := client.Outcomes(ctx, sub2.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out2.Outcomes {
		if !o.CacheHit || o.Err != "" {
			t.Fatalf("resubmitted job %q not a clean cache hit: %+v", o.Key, o)
		}
		if !bytes.Equal(o.Value, out.Outcomes[i].Value) {
			t.Fatalf("cached value for %q diverged", o.Key)
		}
	}
	stats2, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Executed != stats.Executed {
		t.Fatalf("resubmission re-simulated: executed %d -> %d", stats.Executed, stats2.Executed)
	}

	wcancel()
	<-w1
	<-w2
}

// TestCoalescing submits two sweeps with identical specs before any worker
// exists: the second must attach to the first's in-flight jobs, and one
// execution must satisfy both.
func TestCoalescing(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	jobs := []JobV1{
		{ID: 0, Key: "a", Spec: testSpec("hf-rf")},
		{ID: 1, Key: "b", Spec: testSpec("me-lreq")},
	}
	subA, err := client.Submit(ctx, SweepRequestV1{Meta: "first", Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := client.Submit(ctx, SweepRequestV1{Meta: "second", Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if subB.Coalesced != len(jobs) || subB.CacheHits != 0 {
		t.Fatalf("second submit = %+v, want %d coalesced", subB, len(jobs))
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	<-startWorkerAfterSweeps(ctx, t, client, wctx, subA.SweepID, subB.SweepID)

	outA, err := client.Outcomes(ctx, subA.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := client.Outcomes(ctx, subB.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if outA.Outcomes[i].Err != "" || outB.Outcomes[i].Err != "" {
			t.Fatalf("job %d failed: %q / %q", i, outA.Outcomes[i].Err, outB.Outcomes[i].Err)
		}
		if !bytes.Equal(outA.Outcomes[i].Value, outB.Outcomes[i].Value) {
			t.Fatalf("coalesced job %d diverged between sweeps", i)
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != int64(len(jobs)) || stats.Coalesced != int64(len(jobs)) {
		t.Fatalf("stats = %+v, want %d executed and %d coalesced",
			stats, len(jobs), len(jobs))
	}
}

// startWorkerAfterSweeps starts one worker and returns a channel that closes
// once both sweeps are done (the worker keeps polling until wctx fires).
func startWorkerAfterSweeps(ctx context.Context, t *testing.T, client *Client,
	wctx context.Context, sweepIDs ...string) chan struct{} {
	t.Helper()
	startWorker(wctx, client, "w")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, id := range sweepIDs {
			client.Outcomes(ctx, id, true)
		}
	}()
	return done
}

// TestWorkerCrashRecovery kills a worker mid-job: its lease expires, the job
// returns to the queue, and a second worker completes the sweep.
func TestWorkerCrashRecovery(t *testing.T) {
	coord, client := newTestService(t, CoordinatorConfig{
		LeaseTTL:     150 * time.Millisecond,
		ReapInterval: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// One big job (~0.5s serial) so the first worker is reliably mid-run when
	// killed.
	spec := JobSpecV1{Mix: "2MEM-1", Policy: "me-lreq", Instr: 400_000, Seed: sim.EvalSeed}
	sub, err := client.Submit(ctx, SweepRequestV1{Jobs: []JobV1{{Key: "big", Spec: spec}}})
	if err != nil {
		t.Fatal(err)
	}

	victimCtx, killVictim := context.WithCancel(ctx)
	victimDone := startWorker(victimCtx, client, "victim")

	// Wait until the victim holds the lease, then kill it mid-job. The worker
	// reports nothing on shutdown, so only lease expiry can free the job.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if coord.Stats().ActiveLeases > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never claimed the job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killVictim()
	<-victimDone

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	startWorker(wctx, client, "rescuer")

	out, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	o := out.Outcomes[0]
	if o.Err != "" {
		t.Fatalf("job failed after requeue: %s", o.Err)
	}
	if o.Worker != "rescuer" {
		t.Fatalf("job completed by %q, want the rescuer", o.Worker)
	}
	if !bytes.Equal(o.Value, localBytes(t, spec)) {
		t.Fatal("requeued job's result diverged from in-process run")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1", stats.Requeues)
	}
}

// TestMaxAttemptsAbandon claims a job repeatedly without heartbeating: after
// MaxAttempts lease expiries the coordinator must fail it permanently instead
// of looping forever.
func TestMaxAttemptsAbandon(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{
		LeaseTTL:     40 * time.Millisecond,
		ReapInterval: 10 * time.Millisecond,
		MaxAttempts:  2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sub, err := client.Submit(ctx, SweepRequestV1{
		Jobs: []JobV1{{Key: "doomed", Spec: testSpec("hf-rf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Impersonate crashing workers: claim, never heartbeat, never complete.
	for i := 0; i < 2; i++ {
		deadline := time.Now().Add(30 * time.Second)
		for {
			claim, err := client.Claim(ctx, fmt.Sprintf("ghost%d", i), 1)
			if err != nil {
				t.Fatal(err)
			}
			if claim.Found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job never re-queued for ghost %d", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	out, err := client.Outcomes(ctx, sub.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcomes[0].Err == "" {
		t.Fatal("abandoned job reported success")
	}
}

// TestCachePersistence restarts the coordinator on the same cache file: the
// second instance must serve the matrix without any worker at all.
func TestCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	jobs := []JobV1{
		{ID: 0, Key: "a", Spec: testSpec("hf-rf")},
		{ID: 1, Key: "b", Spec: testSpec("me-lreq")},
	}

	coord1, err := NewCoordinator(CoordinatorConfig{CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())
	client1 := NewClient(srv1.URL)
	wctx, wcancel := context.WithCancel(ctx)
	wdone := startWorker(wctx, client1, "w")
	sub1, err := client1.Submit(ctx, SweepRequestV1{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	out1, err := client1.Outcomes(ctx, sub1.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	wcancel()
	<-wdone
	srv1.Close()
	coord1.Close()

	// Restart: no workers this time. Every job must be a submit-time hit.
	_, client2 := newTestService(t, CoordinatorConfig{CachePath: path})
	sub2, err := client2.Submit(ctx, SweepRequestV1{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != len(jobs) {
		t.Fatalf("after restart: cache hits = %d, want %d", sub2.CacheHits, len(jobs))
	}
	out2, err := client2.Outcomes(ctx, sub2.SweepID, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if out1.Outcomes[i].Err != "" || out2.Outcomes[i].Err != "" {
			t.Fatalf("job %d failed: %q / %q", i, out1.Outcomes[i].Err, out2.Outcomes[i].Err)
		}
		if !bytes.Equal(out1.Outcomes[i].Value, out2.Outcomes[i].Value) {
			t.Fatalf("job %d: cached bytes changed across restart", i)
		}
	}
}

// TestEventReplay subscribes to a finished sweep: the full history plus the
// final summary must replay immediately.
func TestEventReplay(t *testing.T) {
	_, client := newTestService(t, CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	startWorker(wctx, client, "w")

	sub, err := client.Submit(ctx, SweepRequestV1{
		Jobs: []JobV1{{Key: "only", Spec: testSpec("hf-rf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Outcomes(ctx, sub.SweepID, true); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []EventV1
	if err := client.Watch(ctx, sub.SweepID, func(ev EventV1) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != "job" || events[1].Type != "sweep" {
		t.Fatalf("replayed events = %+v", events)
	}
}

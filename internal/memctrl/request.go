// Package memctrl implements the memory controller of the paper's Figure 1:
// a request buffer shared by all cores, per-core outstanding-read counters,
// workload priority tables with quantized entries, read-bypass-write with
// drain watermarks, and a pluggable scheduling policy that picks the next
// transaction whenever a memory channel can accept one.
package memctrl

import (
	"fmt"

	"memsched/internal/addr"
	"memsched/internal/dram"
	"memsched/internal/xrand"
)

// Kind distinguishes reads (demand misses: the core stalls on them) from
// writes (dirty write-backs: fire-and-forget).
type Kind uint8

const (
	// Read is a demand read; its completion unblocks core progress.
	Read Kind = iota
	// Write is a write-back; it completes silently.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Request is one cache-line transaction queued at the controller.
type Request struct {
	// ID is unique per controller, in admission order.
	ID   uint64
	Kind Kind
	// Core identifies the requesting core; priority policies differentiate
	// requests by this field.
	Core int
	// Line is the cache-line address (byte address / line size).
	Line uint64
	// Coord is Line mapped onto DRAM geometry, precomputed at admission.
	Coord addr.Coord
	// Arrive is the cycle the request entered the controller buffer.
	Arrive int64
	// OnComplete, for reads, is invoked when data is returned to the core
	// side (including the controller overhead). Nil for writes.
	OnComplete func(now int64)

	// sink, when non-nil, receives the completion instead of OnComplete
	// (EnqueueReadSink). A persistent sink lets the caller avoid allocating
	// one closure per read.
	sink ReadSink

	// nextFree links retired slots into the controller's free-list; requests
	// are pooled so steady-state admission allocates nothing.
	nextFree *Request
}

// ReadSink receives read-data returns for requests admitted through
// EnqueueReadSink. Implementations are persistent objects (e.g. the cache
// hierarchy), so admission does not allocate a completion closure per read.
type ReadSink interface {
	// ReadReturned fires when the data for (core, line) reaches the core side,
	// at the same point OnComplete would have been invoked.
	ReadReturned(core int, line uint64, now int64)
}

// Candidate is a request that could be issued this cycle, annotated with the
// row-buffer outcome it would have. Policies rank candidates.
type Candidate struct {
	Req *Request
	// RowHit reports whether the access would hit the currently open row.
	RowHit bool
	// Class is the full access classification (hit / closed / conflict).
	Class dram.AccessClass
}

// Context carries the controller state a policy may consult when ranking
// candidates. Slices are indexed by core and must not be mutated by policies.
type Context struct {
	Now   int64
	Cores int
	// PendingReads is the number of outstanding read requests per core
	// currently tracked by the controller (queued or in flight).
	PendingReads []int
	// Scores is the priority-table output per core: the quantized
	// ME[i]/PendingRead[i] value (ME-based policies). Higher is better.
	Scores []float64
	// FixedME is the table output at PendingRead == 1, i.e. the quantized
	// memory-efficiency rank itself (used by the fixed-priority ME policy).
	FixedME []float64
	// LC flags latency-critical cores (serving-class experiments); indexed
	// by core, always non-nil when the controller built the context, and
	// all-false when no classes were assigned. Deadline-aware policies
	// combine it with Request.Arrive to compute remaining slack.
	LC []bool
	// RNG breaks ties deterministically; the paper specifies random
	// selection among equal-priority requests.
	RNG *xrand.Rand
	// SameRowQueued reports how many queued requests (including req itself)
	// target req's DRAM row — the burst-length signal used by
	// burst-scheduling policies [Shao & Davis, HPCA'07].
	SameRowQueued func(req *Request) int
}

// Policy selects which candidate to issue next. Implementations live in
// package sched; the controller calls Pick with a non-empty candidate list.
type Policy interface {
	// Name returns the policy's registry name (e.g. "me-lreq").
	Name() string
	// Pick returns the index into cands of the request to issue.
	Pick(cands []Candidate, ctx *Context) int
}

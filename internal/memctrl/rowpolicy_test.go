package memctrl_test

import (
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

func controllerWithPolicy(t *testing.T, rp config.RowPolicy) (*memctrl.Controller, *dram.System) {
	t.Helper()
	cfg := config.Default(1)
	cfg.Memory.RowPolicy = rp
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New("hf-rf", 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return mc, sys
}

func bankState(sys *dram.System, line uint64) dram.Bank {
	return sys.Channels[0].Bank(sys.Mapper.Map(line))
}

func TestOpenPageKeepsRowOpen(t *testing.T) {
	mc, sys := controllerWithPolicy(t, config.OpenPage)
	done := 0
	mc.EnqueueRead(0, 0, 0, func(int64) { done++ })
	runUntil(mc, 0, func() bool { return done == 1 }, 100_000)
	if b := bankState(sys, 0); b.State != dram.BankActive || b.OpenRow != 0 {
		t.Fatalf("open-page bank = %+v, want active row 0", b)
	}
	// A much later access to the same row must be a hit even though nothing
	// was queued meanwhile.
	done = 0
	mc.EnqueueRead(0, 16, 100_000, func(int64) { done++ })
	runUntil(mc, 100_000, func() bool { return done == 1 }, 100_000)
	if sys.Channels[0].Stats().Hits != 1 {
		t.Fatal("open page did not produce a row hit on re-reference")
	}
}

func TestStrictClosePageNeverHits(t *testing.T) {
	mc, sys := controllerWithPolicy(t, config.ClosePageStrict)
	done := 0
	// Two same-row requests queued together: hit-aware close page would keep
	// the row open; strict must precharge anyway.
	mc.EnqueueRead(0, 0, 0, func(int64) { done++ })
	mc.EnqueueRead(0, 16, 0, func(int64) { done++ })
	runUntil(mc, 0, func() bool { return done == 2 }, 100_000)
	st := sys.Channels[0].Stats()
	if st.Hits != 0 {
		t.Fatalf("strict close page produced %d hits", st.Hits)
	}
	if b := bankState(sys, 0); b.State != dram.BankPrecharged {
		t.Fatalf("strict close page left bank %v", b.State)
	}
}

func TestHitAwareBeatsStrictOnStreams(t *testing.T) {
	// Sanity: with queued same-row traffic, hit-aware close page must finish
	// no later than strict close page.
	run := func(rp config.RowPolicy) int64 {
		mc, _ := controllerWithPolicy(t, rp)
		done := 0
		for i := uint64(0); i < 8; i++ {
			mc.EnqueueRead(0, i*16, 0, func(int64) { done++ }) // same bank, same row
		}
		end := runUntil(mc, 0, func() bool { return done == 8 }, 1_000_000)
		if end < 0 {
			t.Fatal("requests never completed")
		}
		return end
	}
	if aware, strict := run(config.ClosePageHitAware), run(config.ClosePageStrict); aware > strict {
		t.Fatalf("hit-aware (%d cycles) slower than strict (%d cycles)", aware, strict)
	}
}

func TestRefreshEndToEnd(t *testing.T) {
	cfg := config.Default(1)
	cfg.Memory.EnableRefresh()
	sys := dram.NewSystem(&cfg)
	pol, _ := sched.New("hf-rf", 1)
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Trickle reads across several refresh intervals (injected as simulated
	// time actually passes, so issues interleave with refreshes); everything
	// must still complete and refreshes must be recorded.
	timing := cfg.DRAMCycles()
	done, injected := 0, 0
	now := int64(0)
	for done < 10 {
		if injected < 10 && now == int64(injected)*timing.TREFI/2 {
			if mc.EnqueueRead(0, uint64(injected*37), now, func(int64) { done++ }) {
				injected++
			}
		}
		mc.Tick(now)
		now++
		if now > timing.TREFI*20 {
			t.Fatalf("reads stalled under refresh: %d/10", done)
		}
	}
	total := sys.TotalStats()
	if total.Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
}

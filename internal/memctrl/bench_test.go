package memctrl_test

import (
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

// benchController builds a 4-core me-lreq controller with a priority table,
// the configuration the acceptance benchmarks run.
func benchController(b *testing.B) *memctrl.Controller {
	b.Helper()
	cfg := config.Default(4)
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New("me-lreq", 4)
	if err != nil {
		b.Fatal(err)
	}
	table, err := memctrl.NewPriorityTable([]float64{0.9, 0.7, 0.5, 0.3},
		cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	return mc
}

// BenchmarkControllerSteadyState measures the controller hot path in
// isolation: admission, per-channel scheduling scans, DRAM issue, and read
// completion, with the queues kept busy. The indexed layout keeps this loop
// allocation-free in steady state (allocs/op ~ 0 once the request pool and
// scratch buffers have warmed up) — versus one Request, one completion
// closure, and per-scan candidate slices per request before the rework.
func BenchmarkControllerSteadyState(b *testing.B) {
	mc := benchController(b)
	rng := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		// Keep a steady supply of traffic across cores, banks, and rows;
		// admission failures just mean the queues are already full.
		for core := 0; core < 4; core++ {
			line := rng.Uint64n(1 << 20)
			mc.EnqueueRead(core, line, now, nil)
			if i%4 == 0 {
				mc.EnqueueWrite(core, line+1, now)
			}
		}
		mc.Tick(now)
		now++
	}
}

// BenchmarkControllerDrain measures scheduling with deep queues and no new
// admissions: pure gather/pick/issue work.
func BenchmarkControllerDrain(b *testing.B) {
	mc := benchController(b)
	rng := xrand.New(11)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		if mc.ReadQueueLen() == 0 {
			b.StopTimer()
			for n := 0; n < 48; n++ {
				mc.EnqueueRead(n%4, rng.Uint64n(1<<20), now, nil)
			}
			b.StartTimer()
		}
		mc.Tick(now)
		now++
	}
}

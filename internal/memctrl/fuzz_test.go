package memctrl_test

import (
	"os"
	"path/filepath"
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/dramcheck"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

// fuzzPolicies is the policy pool the first input byte indexes into; every
// registry family is represented so the fuzzer exercises each pick path.
var fuzzPolicies = []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "fix:3210", "dash"}

// FuzzControllerTiming drives a 4-core controller with an arbitrary
// byte-stream-decoded sequence of read/write admissions and tick bursts while
// an independent dramcheck.Checker audits every transaction each channel
// issues. The property: no input sequence can make the controller violate
// DRAM timing (bank ready windows, bus reservation, row-state bookkeeping).
//
// Byte protocol: byte 0 selects the policy; each following byte's low 2 bits
// select an op (read, write, tick, tick burst) and the high 6 bits carry the
// operands, with one extension byte for address entropy on enqueues.
func FuzzControllerTiming(f *testing.F) {
	// Handwritten seeds: one of each op class, a drain-provoking write burst,
	// and a mixed stream long enough to fill bank queues.
	f.Add([]byte{0})
	f.Add([]byte{5, 0x00, 0x11, 0x42, 0x03, 0x07, 0xff})
	seed := make([]byte, 0, 512)
	seed = append(seed, 8)
	for i := 0; i < 120; i++ {
		seed = append(seed, byte(i*7+1), byte(i*13+5))
		if i%9 == 0 {
			seed = append(seed, 0x0b) // tick burst
		}
	}
	f.Add(seed)
	// Deadline-aware seed: byte 0x5f selects dash (0x5f % 12 == 11) with LC
	// flags on cores 0 and 2 (high nibble 0b0101), followed by a mixed
	// read/write stream so urgent LC picks interleave with BE row hits.
	dashSeed := make([]byte, 0, 256)
	dashSeed = append(dashSeed, 0x5f)
	for i := 0; i < 90; i++ {
		dashSeed = append(dashSeed, byte(i*11+3), byte(i*5+1))
		if i%7 == 0 {
			dashSeed = append(dashSeed, 0x1f) // tick burst
		}
	}
	f.Add(dashSeed)
	// Golden fixture bytes as found corpus: structured JSON exercises the
	// decoder with realistic-looking biased byte distributions.
	if paths, err := filepath.Glob(filepath.Join("..", "sim", "testdata", "golden", "*.json")); err == nil {
		for i, p := range paths {
			if i >= 4 {
				break
			}
			if blob, err := os.ReadFile(p); err == nil {
				if len(blob) > 1024 {
					blob = blob[:1024]
				}
				f.Add(blob)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const cores = 4
		cfg := config.Default(cores)
		pol, err := sched.New(fuzzPolicies[int(data[0])%len(fuzzPolicies)], cores)
		if err != nil {
			t.Fatal(err)
		}
		sys := dram.NewSystem(&cfg)
		checkers := make([]*dramcheck.Checker, len(sys.Channels))
		for i, ch := range sys.Channels {
			k := dramcheck.New(cfg.DRAMCycles(), cfg.Memory.RanksPerChan, cfg.Memory.BanksPerRank)
			k.Attach(ch)
			checkers[i] = k
		}
		table, err := memctrl.NewPriorityTable([]float64{2.0, 1.0, 0.5, 0.25},
			cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(uint64(len(data))))
		if err != nil {
			t.Fatal(err)
		}
		// The high nibble of byte 0 is a per-core latency-critical mask, so
		// arbitrary inputs drive mixed LC/BE streams through every policy
		// (class-blind ones must ignore the flags; dash reads them).
		lc := make([]bool, cores)
		for c := 0; c < cores; c++ {
			lc[c] = data[0]>>(4+c)&1 == 1
		}
		if err := mc.SetLatencyCritical(lc); err != nil {
			t.Fatal(err)
		}

		now := int64(0)
		mc.Tick(now)
		for i := 1; i < len(data); i++ {
			b := data[i]
			switch b & 3 {
			case 0, 1: // enqueue read (0) or write (1)
				line := uint64(b >> 2)
				if i+1 < len(data) {
					i++
					line |= uint64(data[i]) << 6
				}
				core := int(line) % cores
				if b&3 == 0 {
					mc.EnqueueRead(core, line, now, nil)
				} else {
					mc.EnqueueWrite(core, line, now)
				}
			case 2: // single tick
				now++
				mc.Tick(now)
			case 3: // tick burst of 1..64 cycles
				for k := int64(b>>2) + 1; k > 0; k-- {
					now++
					mc.Tick(now)
				}
			}
		}
		// Drain everything so in-flight work is audited end to end.
		for limit := now + 500_000; !mc.Quiescent(); {
			now++
			if now > limit {
				t.Fatalf("controller failed to drain: %d reads, %d writes queued",
					mc.ReadQueueLen(), mc.WriteQueueLen())
			}
			mc.Tick(now)
		}
		var audited uint64
		for ci, k := range checkers {
			for _, v := range k.Violations() {
				t.Errorf("channel %d: %s", ci, v)
			}
			audited += k.Transactions()
		}
		if issued := mc.ReadsIssued() + mc.WritesIssued(); audited != issued {
			t.Errorf("checker audited %d transactions, controller issued %d", audited, issued)
		}
	})
}

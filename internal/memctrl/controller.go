package memctrl

import (
	"fmt"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/stats"
	"memsched/internal/xrand"
)

// CoreStats aggregates per-core controller-side statistics.
type CoreStats struct {
	ReadsCompleted  uint64
	WritesRetired   uint64
	ReadLatency     stats.Running // controller admission -> data returned, cycles
	ReadLatencyHist stats.Histogram
	// LatHist is the deterministic log-spaced read-latency histogram: exact
	// integer counts, fixed preallocated buckets (the array is part of the
	// struct), observed once per read completion. Unlike ReadLatencyHist's
	// power-of-two buckets it reconstructs p50/p95/p99/p99.9 to within one
	// bucket width (<= 12.5% relative), and being all-integer it is bitwise
	// identical across naive, cycle-skipping and parallel run modes.
	LatHist stats.LatencyHist
	// QueueDelay is admission -> issue: the component scheduling policies
	// actually change. ServiceTime is issue -> data returned (DRAM timing
	// plus controller overhead).
	QueueDelay  stats.Running
	ServiceTime stats.Running
}

// bankQueues holds one (channel, bank)'s read and write FIFOs.
type bankQueues struct {
	rd, wr bankFIFO
}

// Controller is the shared memory controller. One instance manages every
// logic channel (the paper's Figure 1: an M-entry request buffer shared by N
// cores feeding multiple channels).
//
// Requests are indexed by (channel, bank): each bank owns a read FIFO and a
// write FIFO in admission order, so a scheduling scan touches only the banks
// of one channel — O(banks) readiness checks plus the requests of ready
// banks — instead of rescanning every queued request. Aggregate and
// per-channel occupancy counters are maintained incrementally on
// enqueue/dequeue, Request slots are recycled through a free-list, and read
// completions live in a typed heap, so the steady-state scheduling path
// performs no heap allocation.
type Controller struct {
	cfg    *config.Config
	sys    *dram.System
	policy Policy
	// indexed is non-nil when policy implements IndexedPolicy; set once at
	// construction so the hot path pays no type assertion.
	indexed IndexedPolicy
	table   *PriorityTable
	rng     *xrand.Rand

	// banks holds the per-(channel,bank) FIFOs, indexed by
	// channel*banksPerChan + rank*banksPerRank + bank.
	banks        []bankQueues
	banksPerChan int
	banksPerRank int
	readLen      int   // total queued (not yet issued) reads
	writeLen     int   // total queued writes
	chanReads    []int // per channel: queued reads
	chanWrites   []int

	pendingReads  []int // per core: queued + in-flight reads
	pendingWrites []int

	// lc flags latency-critical cores (all false unless SetLatencyCritical
	// was called); the slice backs ctx.LC, so policies always index a valid
	// vector.
	lc []bool

	draining     bool
	drainHigh    int
	drainLow     int
	ctrlOverhead int64

	// nextAttempt[ch] skips issue scans that cannot succeed before the
	// earliest bank-ready time observed at the last failed scan.
	nextAttempt []int64

	// comp holds scheduled read-data returns ordered by (time, seq).
	comp    compHeap
	compSeq uint64
	seq     uint64

	// free is the head of the Request slot free-list, linked via nextFree.
	free *Request

	core []CoreStats

	// aggregate counters
	readsIssued   stats.Counter
	writesIssued  stats.Counter
	drainEntries  stats.Counter
	enqueueFailRd stats.Counter
	enqueueFailWr stats.Counter
	bytesRead     uint64
	bytesWritten  uint64
	readQOcc      stats.Running // read-queue occupancy sampled per Tick
	writeQOcc     stats.Running

	// version counts mutations of the state NextEventAt derives from (the
	// completion heap, per-channel queue counts and issue-scan wake-ups), so
	// callers can cache the horizon and revalidate with one integer compare.
	version uint64

	// trace, when non-nil, records recent scheduling decisions.
	trace *decisionRing

	// drainObs, when non-nil, observes write-drain mode transitions
	// (telemetry); nil-checked on the two transition edges only, so the
	// steady-state Tick cost is unchanged.
	drainObs func(now int64, draining bool)

	// ctx and view are reused across picks; scratch buffers below likewise
	// avoid per-cycle allocation.
	ctx           Context
	view          CandidateView
	scratchCands  []Candidate
	scratchScores []float64
	scratchFixed  []float64
}

// New builds a controller over the given DRAM system. table may be nil for
// policies that do not consult memory efficiency; a policy that does consult
// Scores will then see zeros.
func New(cfg *config.Config, sys *dram.System, policy Policy, table *PriorityTable, rng *xrand.Rand) (*Controller, error) {
	if policy == nil {
		return nil, fmt.Errorf("memctrl: nil policy")
	}
	if rng == nil {
		return nil, fmt.Errorf("memctrl: nil rng")
	}
	banksPerChan := cfg.Memory.RanksPerChan * cfg.Memory.BanksPerRank
	mc := &Controller{
		cfg:           cfg,
		sys:           sys,
		policy:        policy,
		table:         table,
		rng:           rng,
		banks:         make([]bankQueues, cfg.Memory.Channels*banksPerChan),
		banksPerChan:  banksPerChan,
		banksPerRank:  cfg.Memory.BanksPerRank,
		chanReads:     make([]int, len(sys.Channels)),
		chanWrites:    make([]int, len(sys.Channels)),
		pendingReads:  make([]int, cfg.Cores),
		pendingWrites: make([]int, cfg.Cores),
		lc:            make([]bool, cfg.Cores),
		drainHigh:     int(cfg.Memory.DrainHigh * float64(cfg.Memory.WriteQueueCap)),
		drainLow:      int(cfg.Memory.DrainLow * float64(cfg.Memory.WriteQueueCap)),
		ctrlOverhead:  cfg.DRAMCycles().CtrlOverhead,
		nextAttempt:   make([]int64, len(sys.Channels)),
		core:          make([]CoreStats, cfg.Cores),
		scratchScores: make([]float64, cfg.Cores),
		scratchFixed:  make([]float64, cfg.Cores),
	}
	if mc.drainHigh < 1 {
		mc.drainHigh = 1
	}
	mc.indexed, _ = policy.(IndexedPolicy)
	mc.ctx = Context{
		Cores:         cfg.Cores,
		PendingReads:  mc.pendingReads,
		LC:            mc.lc,
		Scores:        mc.scratchScores,
		FixedME:       mc.scratchFixed,
		RNG:           mc.rng,
		SameRowQueued: mc.sameRowQueued, // bound once: no closure per pick
	}
	return mc, nil
}

// Policy returns the active scheduling policy.
func (mc *Controller) Policy() Policy { return mc.policy }

// Table returns the priority table (may be nil).
func (mc *Controller) Table() *PriorityTable { return mc.table }

// PendingReadsOf returns the outstanding read count for core (the
// controller-side counter the priority tables are indexed with).
func (mc *Controller) PendingReadsOf(core int) int { return mc.pendingReads[core] }

// ReadQueueLen returns the number of queued (not yet issued) reads.
func (mc *Controller) ReadQueueLen() int { return mc.readLen }

// WriteQueueLen returns the number of queued writes.
func (mc *Controller) WriteQueueLen() int { return mc.writeLen }

// Draining reports whether the controller is in write-drain mode.
func (mc *Controller) Draining() bool { return mc.draining }

// CoreStatsOf returns a pointer to the per-core statistics for core.
func (mc *Controller) CoreStatsOf(core int) *CoreStats { return &mc.core[core] }

// SetLatencyCritical assigns per-core latency-critical flags (serving-class
// experiments); lc must have one entry per core. The flags are copied into
// the controller's own vector (the one ctx.LC aliases), so later mutation of
// the argument has no effect. Flags only inform policies and per-class
// reporting — the controller's own mechanics (admission, drain, completion
// timing) never read them.
func (mc *Controller) SetLatencyCritical(lc []bool) error {
	if len(lc) != len(mc.lc) {
		return fmt.Errorf("memctrl: %d latency-critical flags for %d cores", len(lc), len(mc.lc))
	}
	copy(mc.lc, lc)
	return nil
}

// LatencyCritical reports whether core is flagged latency-critical.
func (mc *Controller) LatencyCritical(core int) bool { return mc.lc[core] }

// ReadsIssued returns the number of read transactions issued to DRAM.
func (mc *Controller) ReadsIssued() uint64 { return mc.readsIssued.Value() }

// WritesIssued returns the number of write transactions issued to DRAM.
func (mc *Controller) WritesIssued() uint64 { return mc.writesIssued.Value() }

// DrainEntries returns how many times write-drain mode was entered.
func (mc *Controller) DrainEntries() uint64 { return mc.drainEntries.Value() }

// RejectedReads returns how many read admissions failed on a full buffer.
func (mc *Controller) RejectedReads() uint64 { return mc.enqueueFailRd.Value() }

// RejectedWrites returns how many write admissions failed on a full buffer.
func (mc *Controller) RejectedWrites() uint64 { return mc.enqueueFailWr.Value() }

// QueueOccupancy returns the mean sampled (read, write) queue depths.
func (mc *Controller) QueueOccupancy() (read, write float64) {
	return mc.readQOcc.Mean(), mc.writeQOcc.Mean()
}

// BytesTransferred returns total (read, written) bytes moved on the buses.
func (mc *Controller) BytesTransferred() (read, written uint64) {
	return mc.bytesRead, mc.bytesWritten
}

// ResetStats zeroes every statistic (per-core and aggregate) while leaving
// queue and DRAM state untouched. Run loops call it at the boundary between
// warmup and measurement; requests in flight across the boundary are
// attributed to the measurement window.
func (mc *Controller) ResetStats() {
	for i := range mc.core {
		mc.core[i] = CoreStats{}
	}
	mc.readsIssued.Reset()
	mc.writesIssued.Reset()
	mc.drainEntries.Reset()
	mc.enqueueFailRd.Reset()
	mc.enqueueFailWr.Reset()
	mc.bytesRead, mc.bytesWritten = 0, 0
	mc.readQOcc.Reset()
	mc.writeQOcc.Reset()
}

// alloc takes a Request slot from the free-list, or grows the pool by one.
func (mc *Controller) alloc() *Request {
	if r := mc.free; r != nil {
		mc.free = r.nextFree
		r.nextFree = nil
		return r
	}
	return new(Request)
}

// release clears a retired Request (dropping its completion closure for GC)
// and returns its slot to the free-list.
func (mc *Controller) release(r *Request) {
	*r = Request{nextFree: mc.free}
	mc.free = r
}

// bankOf returns the dense index of req's (channel, bank) FIFO pair.
func (mc *Controller) bankOf(r *Request) int {
	c := r.Coord
	return c.Channel*mc.banksPerChan + c.Rank*mc.banksPerRank + c.Bank
}

// EnqueueRead admits a demand read. It returns false when the read buffer is
// full or the per-core pending bound is reached; the caller (L2 MSHR) must
// retry later. onComplete fires when data is delivered to the core side.
func (mc *Controller) EnqueueRead(core int, line uint64, now int64, onComplete func(int64)) bool {
	return mc.enqueueRead(core, line, now, onComplete, nil)
}

// EnqueueReadSink is EnqueueRead with a persistent completion sink in place
// of a per-read closure: sink.ReadReturned(core, line, t) fires where
// onComplete(t) would have.
func (mc *Controller) EnqueueReadSink(sink ReadSink, core int, line uint64, now int64) bool {
	return mc.enqueueRead(core, line, now, nil, sink)
}

func (mc *Controller) enqueueRead(core int, line uint64, now int64, onComplete func(int64), sink ReadSink) bool {
	if mc.readLen >= mc.cfg.Memory.ReadQueueCap ||
		mc.pendingReads[core] >= mc.cfg.Memory.MaxPendingPerCore {
		mc.enqueueFailRd.Inc()
		return false
	}
	r := mc.alloc()
	*r = Request{
		ID:         mc.nextID(),
		Kind:       Read,
		Core:       core,
		Line:       line,
		Coord:      mc.sys.Mapper.Map(line),
		Arrive:     now,
		OnComplete: onComplete,
		sink:       sink,
	}
	mc.banks[mc.bankOf(r)].rd.push(r)
	mc.readLen++
	mc.chanReads[r.Coord.Channel]++
	mc.pendingReads[core]++
	mc.wake(now)
	mc.version++
	return true
}

// EnqueueWrite admits a write-back. Returns false when the write buffer is
// full; the caller must retry.
func (mc *Controller) EnqueueWrite(core int, line uint64, now int64) bool {
	if mc.writeLen >= mc.cfg.Memory.WriteQueueCap {
		mc.enqueueFailWr.Inc()
		return false
	}
	r := mc.alloc()
	*r = Request{
		ID:     mc.nextID(),
		Kind:   Write,
		Core:   core,
		Line:   line,
		Coord:  mc.sys.Mapper.Map(line),
		Arrive: now,
	}
	mc.banks[mc.bankOf(r)].wr.push(r)
	mc.writeLen++
	mc.chanWrites[r.Coord.Channel]++
	mc.pendingWrites[core]++
	mc.wake(now)
	mc.version++
	return true
}

func (mc *Controller) nextID() uint64 {
	mc.seq++
	return mc.seq
}

// wake clears scan-skipping so the next Tick reconsiders every channel.
func (mc *Controller) wake(now int64) {
	for i := range mc.nextAttempt {
		if mc.nextAttempt[i] > now {
			mc.nextAttempt[i] = now
		}
	}
}

// Tick advances the controller by one cycle: fires due completions and
// attempts to issue at most one transaction per channel.
func (mc *Controller) Tick(now int64) {
	mc.runCompletions(now)
	mc.readQOcc.Observe(float64(mc.readLen))
	mc.writeQOcc.Observe(float64(mc.writeLen))
	mc.updateDrain(now)
	for chIdx := range mc.sys.Channels {
		if mc.nextAttempt[chIdx] > now {
			continue
		}
		mc.tryIssue(chIdx, now)
	}
}

// runCompletions fires every read-data return due at or before now, in
// (time, issue order) — the same stable order the event queue used.
func (mc *Controller) runCompletions(now int64) {
	for len(mc.comp) > 0 && mc.comp[0].at <= now {
		c := mc.comp.pop()
		mc.version++
		r := c.req
		mc.pendingReads[r.Core]--
		cs := &mc.core[r.Core]
		cs.ReadsCompleted++
		lat := c.at - r.Arrive
		cs.ReadLatency.Observe(float64(lat))
		cs.ReadLatencyHist.Observe(lat)
		cs.LatHist.Observe(lat)
		cs.ServiceTime.Observe(float64(c.at - c.issuedAt))
		cb, sink := r.OnComplete, r.sink
		core, line := r.Core, r.Line
		mc.release(r)
		if sink != nil {
			sink.ReadReturned(core, line, c.at)
		} else if cb != nil {
			cb(c.at)
		}
	}
}

// Quiescent reports whether the controller holds no queued requests and no
// in-flight completions, used by run loops to drain at end of simulation.
func (mc *Controller) Quiescent() bool {
	return mc.readLen == 0 && mc.writeLen == 0 && len(mc.comp) == 0
}

// farFuture is the NextEventAt value when no completion or issue is pending.
const farFuture = int64(1)<<62 - 1

// WriteQueueFull reports whether a write admission would be rejected right
// now; the cache hierarchy uses it to decide whether a parked write-back
// retry can succeed on the next Tick.
func (mc *Controller) WriteQueueFull() bool {
	return mc.writeLen >= mc.cfg.Memory.WriteQueueCap
}

// AbsorbRejectedWrites accounts k rejected write admissions at once, matching
// the k per-cycle EnqueueWrite failures a skipped quiescent stretch would
// have recorded.
func (mc *Controller) AbsorbRejectedWrites(k uint64) {
	mc.enqueueFailWr.Add(k)
}

// NextEventAt implements the simulator's next-event time-advance contract.
// Called after Tick(now), it returns the earliest cycle at which the
// controller can act: the completion-heap head (read data reaching the core
// side) or, per channel with queued work, the issue-scan wake-up time
// nextAttempt — which tryIssue derived from the DRAM banks' ReadyAt and the
// channel's in-flight window, so device timing is what ultimately bounds the
// skip. A channel with work whose scan is not suppressed may issue next
// cycle, so now+1 is returned. Channels without queued work are ignored:
// enqueues reset their nextAttempt through wake, and enqueues only happen
// while some other component is active.
func (mc *Controller) NextEventAt(now int64) int64 {
	next := farFuture
	if len(mc.comp) > 0 {
		next = mc.comp[0].at
	}
	for ch := range mc.nextAttempt {
		if mc.chanReads[ch] == 0 && mc.chanWrites[ch] == 0 {
			continue
		}
		t := mc.nextAttempt[ch]
		if t <= now {
			return now + 1
		}
		if t < next {
			next = t
		}
	}
	return next
}

// Version is a change counter over the state NextEventAt reads (completion
// heap, per-channel queue counts, issue-scan wake-ups). Equal versions across
// two calls guarantee the controller's horizon did not move in between,
// modulo the now-dependent "may issue next cycle" clause — callers must still
// discard cached values that are not strictly in their future.
func (mc *Controller) Version() uint64 { return mc.version }

// NextCompletionAt returns the cycle the earliest in-flight read's data
// reaches the core side (the completion-heap head), or farFuture when none is
// in flight. Unlike NextEventAt it ignores issue opportunities: the parallel
// window planner uses it to bound when the controller can next call back into
// the cache hierarchy, and issues never call back directly.
func (mc *Controller) NextCompletionAt() int64 {
	if len(mc.comp) > 0 {
		return mc.comp[0].at
	}
	return farFuture
}

// CtrlOverhead returns the controller's fixed cycles between DRAM data-done
// and core-side delivery; every completion scheduled at cycle t returns no
// earlier than t + CtrlOverhead, which caps how far cores may run ahead.
func (mc *Controller) CtrlOverhead() int64 { return mc.ctrlOverhead }

// AbsorbStall accounts k skipped Ticks' per-cycle queue-occupancy samples at
// the occupancies frozen over the skipped stretch (no admission, issue or
// completion happens while every component is quiescent, so the sampled
// depths are constant).
func (mc *Controller) AbsorbStall(k int64) {
	mc.readQOcc.ObserveN(float64(mc.readLen), uint64(k))
	mc.writeQOcc.ObserveN(float64(mc.writeLen), uint64(k))
}

func (mc *Controller) updateDrain(now int64) {
	if !mc.draining && mc.writeLen >= mc.drainHigh {
		mc.draining = true
		mc.drainEntries.Inc()
		if mc.drainObs != nil {
			mc.drainObs(now, true)
		}
	} else if mc.draining && mc.writeLen <= mc.drainLow {
		mc.draining = false
		if mc.drainObs != nil {
			mc.drainObs(now, false)
		}
	}
}

// SetDrainObserver installs an observer of write-drain mode transitions (nil
// removes it): obs(now, true) fires on the cycle drain mode is entered,
// obs(now, false) when it is left. Transitions only happen inside Tick, never
// during a skipped quiescent stretch (the write-queue depth is frozen then),
// so observers see every edge at its exact cycle.
func (mc *Controller) SetDrainObserver(obs func(now int64, draining bool)) {
	mc.drainObs = obs
}

// tryIssue attempts one issue on channel chIdx.
func (mc *Controller) tryIssue(chIdx int, now int64) {
	// Every path below moves the horizon: either a transaction issues (queues
	// and the completion heap change) or nextAttempt is pushed forward.
	mc.version++
	ch := mc.sys.Channels[chIdx]
	ch.Sync(now)

	// Read-bypass-write: reads first under normal conditions; writes first in
	// drain mode; writes opportunistically when no reads target this channel.
	primary, secondary := Read, Write
	if mc.draining {
		primary, secondary = Write, Read
	}

	cands, queuedEarliest, queuedAny := mc.gather(primary, ch, chIdx, now)
	if len(cands) == 0 && !queuedAny {
		cands, queuedEarliest, queuedAny = mc.gather(secondary, ch, chIdx, now)
	}
	if len(cands) == 0 {
		if queuedAny {
			// Nothing issuable now: sleep until the earliest bank-ready time.
			// With a full in-flight window the bus is the binding constraint,
			// so the wake-up is pushed to the first slot release — no scan
			// before max(bank ready, slot free) can succeed.
			if queuedEarliest <= now {
				queuedEarliest = now + 1
			}
			if free, full := ch.NextInflightFree(); full && free > queuedEarliest {
				queuedEarliest = free
			}
			mc.nextAttempt[chIdx] = queuedEarliest
		} else {
			// Channel has no queued work at all; wake() on enqueue resets this.
			mc.nextAttempt[chIdx] = now + 1<<30
		}
		return
	}

	pick := mc.pick(cands, now)
	req := cands[pick].Req
	res := ch.Issue(req.Coord, now, mc.autoPrecharge(req))
	if mc.trace != nil {
		mc.trace.add(Decision{
			Cycle:      now,
			Channel:    chIdx,
			Core:       req.Core,
			Kind:       req.Kind,
			Class:      res.Class,
			Line:       req.Line,
			WaitCycles: now - req.Arrive,
			Candidates: len(cands),
			QueueDepth: mc.readLen,
		})
	}
	mc.remove(req)

	lineBytes := uint64(mc.cfg.L2.LineBytes)
	if req.Kind == Read {
		mc.readsIssued.Inc()
		mc.bytesRead += lineBytes
		mc.core[req.Core].QueueDelay.Observe(float64(now - req.Arrive))
		mc.comp.push(completion{
			at:       res.DataDone + mc.ctrlOverhead,
			seq:      mc.compSeq,
			req:      req,
			issuedAt: now,
		})
		mc.compSeq++
	} else {
		mc.writesIssued.Inc()
		mc.bytesWritten += lineBytes
		mc.pendingWrites[req.Core]--
		mc.core[req.Core].WritesRetired++
		mc.release(req)
	}
}

// gather collects issuable candidates of the given kind on channel chIdx by
// scanning the channel's bank FIFOs: O(banks) readiness checks, then only
// the requests parked on ready banks. Candidates are returned in ascending
// request-ID order (identical to a scan of the old global queue). It also
// reports the earliest bank-ready time among the channel's non-issuable
// queued requests and whether any queued request targets the channel at all.
// The caller must ch.Sync(now) first.
func (mc *Controller) gather(kind Kind, ch *dram.Channel, chIdx int, now int64) ([]Candidate, int64, bool) {
	earliest := int64(1<<62 - 1)
	queued := mc.chanReads[chIdx]
	if kind == Write {
		queued = mc.chanWrites[chIdx]
	}
	if queued == 0 {
		return nil, earliest, false
	}
	cands := mc.scratchCands[:0]
	slot := ch.HasInflightSlot()
	base := chIdx * mc.banksPerChan
	runs := 0
	for b := 0; b < mc.banksPerChan; b++ {
		g := &mc.banks[base+b]
		q := &g.rd
		if kind == Write {
			q = &g.wr
		}
		n := q.len()
		if n == 0 {
			continue
		}
		bank := ch.BankAt(b)
		if !slot || bank.ReadyAt > now {
			// Every request on this bank is blocked; one ReadyAt stands in
			// for all of them (the old per-request scan computed the same
			// minimum, one request at a time).
			if bank.ReadyAt < earliest {
				earliest = bank.ReadyAt
			}
			continue
		}
		// Bank ready: every queued request is issuable. Classify against the
		// bank state once instead of per-request WouldHit/Classify calls.
		openRow := int64(-1)
		if bank.State == dram.BankActive {
			openRow = bank.OpenRow
		}
		for i := 0; i < n; i++ {
			r := q.at(i)
			hit := r.Coord.Row == openRow
			class := dram.AccessConflict
			if hit {
				class = dram.AccessHit
			} else if bank.State == dram.BankPrecharged {
				class = dram.AccessClosed
			}
			cands = append(cands, Candidate{Req: r, RowHit: hit, Class: class})
		}
		runs++
	}
	// Each bank contributed an ascending-ID run; merge the runs into global
	// admission order so policies see candidates exactly as the legacy
	// full-queue scan produced them. Insertion sort: candidate counts are
	// small and the input is piecewise sorted.
	if runs > 1 {
		sortCandidatesByID(cands)
	}
	mc.scratchCands = cands[:0]
	return cands, earliest, true
}

// sortCandidatesByID orders candidates by ascending request ID (admission
// order). IDs are unique, so the order is total and deterministic.
func sortCandidatesByID(c []Candidate) {
	for i := 1; i < len(c); i++ {
		x := c[i]
		j := i - 1
		for j >= 0 && c[j].Req.ID > x.Req.ID {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = x
	}
}

// pick builds the policy context and delegates candidate selection: indexed
// policies receive the CandidateView, slice-based policies the backing
// slice (the legacy adapter path). Context and view are reused across calls.
func (mc *Controller) pick(cands []Candidate, now int64) int {
	if len(cands) == 1 {
		return 0
	}
	mc.ctx.Now = now
	if mc.table != nil {
		for core := 0; core < mc.cfg.Cores; core++ {
			mc.ctx.Scores[core] = mc.table.Score(core, mc.pendingReads[core])
			mc.ctx.FixedME[core] = mc.table.Score(core, 1)
		}
	} else {
		for core := 0; core < mc.cfg.Cores; core++ {
			mc.ctx.Scores[core] = 0
			mc.ctx.FixedME[core] = 0
		}
	}
	var idx int
	if mc.indexed != nil {
		mc.view.cands = cands
		idx = mc.indexed.PickIndexed(&mc.view, &mc.ctx)
	} else {
		idx = mc.policy.Pick(cands, &mc.ctx)
	}
	if idx < 0 || idx >= len(cands) {
		panic(fmt.Sprintf("memctrl: policy %q picked out-of-range index %d of %d",
			mc.policy.Name(), idx, len(cands)))
	}
	return idx
}

// autoPrecharge decides row management for the transaction serving req,
// according to the configured row policy (paper default: close page, keeping
// the row open only while another queued request wants it).
func (mc *Controller) autoPrecharge(req *Request) bool {
	switch mc.cfg.Memory.RowPolicy {
	case config.OpenPage:
		return false
	case config.ClosePageStrict:
		return true
	default: // config.ClosePageHitAware
		return !mc.rowStillWanted(req)
	}
}

// rowStillWanted reports whether any other queued request targets the same
// (bank, row) as req — the close-page controller keeps the row open exactly
// in that case. Only req's own bank FIFOs can hold such a request, so the
// scan is O(bank queue depth), not O(all queued requests).
func (mc *Controller) rowStillWanted(req *Request) bool {
	g := &mc.banks[mc.bankOf(req)]
	row := req.Coord.Row
	for i := 0; i < g.rd.len(); i++ {
		if r := g.rd.at(i); r != req && r.Coord.Row == row {
			return true
		}
	}
	for i := 0; i < g.wr.len(); i++ {
		if r := g.wr.at(i); r != req && r.Coord.Row == row {
			return true
		}
	}
	return false
}

// sameRowQueued counts queued requests (including req itself) that target
// req's DRAM row; it backs Context.SameRowQueued for burst policies.
func (mc *Controller) sameRowQueued(req *Request) int {
	g := &mc.banks[mc.bankOf(req)]
	row := req.Coord.Row
	n := 1 // req itself
	for i := 0; i < g.rd.len(); i++ {
		if r := g.rd.at(i); r != req && r.Coord.Row == row {
			n++
		}
	}
	for i := 0; i < g.wr.len(); i++ {
		if r := g.wr.at(i); r != req && r.Coord.Row == row {
			n++
		}
	}
	return n
}

// remove deletes req from its bank FIFO (one splice, order preserved) and
// maintains the incremental occupancy counters.
func (mc *Controller) remove(req *Request) {
	g := &mc.banks[mc.bankOf(req)]
	q := &g.rd
	if req.Kind == Write {
		q = &g.wr
	}
	i := q.indexOf(req)
	if i < 0 {
		panic("memctrl: removing request not in queue")
	}
	q.removeAt(i)
	if req.Kind == Write {
		mc.writeLen--
		mc.chanWrites[req.Coord.Channel]--
	} else {
		mc.readLen--
		mc.chanReads[req.Coord.Channel]--
	}
}

// AverageReadLatency returns the mean read latency in cycles across all
// cores, weighted by request count.
func (mc *Controller) AverageReadLatency() float64 {
	var merged stats.Running
	for i := range mc.core {
		merged.Merge(&mc.core[i].ReadLatency)
	}
	return merged.Mean()
}

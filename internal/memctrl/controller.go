package memctrl

import (
	"fmt"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/event"
	"memsched/internal/stats"
	"memsched/internal/xrand"
)

// CoreStats aggregates per-core controller-side statistics.
type CoreStats struct {
	ReadsCompleted  uint64
	WritesRetired   uint64
	ReadLatency     stats.Running // controller admission -> data returned, cycles
	ReadLatencyHist stats.Histogram
	// QueueDelay is admission -> issue: the component scheduling policies
	// actually change. ServiceTime is issue -> data returned (DRAM timing
	// plus controller overhead).
	QueueDelay  stats.Running
	ServiceTime stats.Running
}

// Controller is the shared memory controller. One instance manages every
// logic channel (the paper's Figure 1: an M-entry request buffer shared by N
// cores feeding multiple channels).
type Controller struct {
	cfg    *config.Config
	sys    *dram.System
	policy Policy
	table  *PriorityTable
	rng    *xrand.Rand

	readQ  []*Request
	writeQ []*Request

	pendingReads  []int // per core: queued + in-flight reads
	pendingWrites []int

	draining     bool
	drainHigh    int
	drainLow     int
	ctrlOverhead int64

	// nextAttempt[ch] skips issue scans that cannot succeed before the
	// earliest bank-ready time observed at the last failed scan.
	nextAttempt []int64

	events event.Queue
	seq    uint64

	core []CoreStats

	// aggregate counters
	readsIssued   stats.Counter
	writesIssued  stats.Counter
	drainEntries  stats.Counter
	enqueueFailRd stats.Counter
	enqueueFailWr stats.Counter
	bytesRead     uint64
	bytesWritten  uint64
	readQOcc      stats.Running // read-queue occupancy sampled per Tick
	writeQOcc     stats.Running

	// trace, when non-nil, records recent scheduling decisions.
	trace *decisionRing

	// scratch buffers reused across Tick calls to avoid per-cycle allocation
	scratchCands  []Candidate
	scratchScores []float64
	scratchFixed  []float64
	scratchPend   []int
}

// New builds a controller over the given DRAM system. table may be nil for
// policies that do not consult memory efficiency; a policy that does consult
// Scores will then see zeros.
func New(cfg *config.Config, sys *dram.System, policy Policy, table *PriorityTable, rng *xrand.Rand) (*Controller, error) {
	if policy == nil {
		return nil, fmt.Errorf("memctrl: nil policy")
	}
	if rng == nil {
		return nil, fmt.Errorf("memctrl: nil rng")
	}
	mc := &Controller{
		cfg:           cfg,
		sys:           sys,
		policy:        policy,
		table:         table,
		rng:           rng,
		pendingReads:  make([]int, cfg.Cores),
		pendingWrites: make([]int, cfg.Cores),
		drainHigh:     int(cfg.Memory.DrainHigh * float64(cfg.Memory.WriteQueueCap)),
		drainLow:      int(cfg.Memory.DrainLow * float64(cfg.Memory.WriteQueueCap)),
		ctrlOverhead:  cfg.DRAMCycles().CtrlOverhead,
		nextAttempt:   make([]int64, len(sys.Channels)),
		core:          make([]CoreStats, cfg.Cores),
		scratchScores: make([]float64, cfg.Cores),
		scratchFixed:  make([]float64, cfg.Cores),
	}
	if mc.drainHigh < 1 {
		mc.drainHigh = 1
	}
	return mc, nil
}

// Policy returns the active scheduling policy.
func (mc *Controller) Policy() Policy { return mc.policy }

// Table returns the priority table (may be nil).
func (mc *Controller) Table() *PriorityTable { return mc.table }

// PendingReadsOf returns the outstanding read count for core (the
// controller-side counter the priority tables are indexed with).
func (mc *Controller) PendingReadsOf(core int) int { return mc.pendingReads[core] }

// ReadQueueLen returns the number of queued (not yet issued) reads.
func (mc *Controller) ReadQueueLen() int { return len(mc.readQ) }

// WriteQueueLen returns the number of queued writes.
func (mc *Controller) WriteQueueLen() int { return len(mc.writeQ) }

// Draining reports whether the controller is in write-drain mode.
func (mc *Controller) Draining() bool { return mc.draining }

// CoreStatsOf returns a pointer to the per-core statistics for core.
func (mc *Controller) CoreStatsOf(core int) *CoreStats { return &mc.core[core] }

// ReadsIssued returns the number of read transactions issued to DRAM.
func (mc *Controller) ReadsIssued() uint64 { return mc.readsIssued.Value() }

// WritesIssued returns the number of write transactions issued to DRAM.
func (mc *Controller) WritesIssued() uint64 { return mc.writesIssued.Value() }

// DrainEntries returns how many times write-drain mode was entered.
func (mc *Controller) DrainEntries() uint64 { return mc.drainEntries.Value() }

// RejectedReads returns how many read admissions failed on a full buffer.
func (mc *Controller) RejectedReads() uint64 { return mc.enqueueFailRd.Value() }

// RejectedWrites returns how many write admissions failed on a full buffer.
func (mc *Controller) RejectedWrites() uint64 { return mc.enqueueFailWr.Value() }

// QueueOccupancy returns the mean sampled (read, write) queue depths.
func (mc *Controller) QueueOccupancy() (read, write float64) {
	return mc.readQOcc.Mean(), mc.writeQOcc.Mean()
}

// BytesTransferred returns total (read, written) bytes moved on the buses.
func (mc *Controller) BytesTransferred() (read, written uint64) {
	return mc.bytesRead, mc.bytesWritten
}

// ResetStats zeroes every statistic (per-core and aggregate) while leaving
// queue and DRAM state untouched. Run loops call it at the boundary between
// warmup and measurement; requests in flight across the boundary are
// attributed to the measurement window.
func (mc *Controller) ResetStats() {
	for i := range mc.core {
		mc.core[i] = CoreStats{}
	}
	mc.readsIssued.Reset()
	mc.writesIssued.Reset()
	mc.drainEntries.Reset()
	mc.enqueueFailRd.Reset()
	mc.enqueueFailWr.Reset()
	mc.bytesRead, mc.bytesWritten = 0, 0
	mc.readQOcc.Reset()
	mc.writeQOcc.Reset()
}

// EnqueueRead admits a demand read. It returns false when the read buffer is
// full or the per-core pending bound is reached; the caller (L2 MSHR) must
// retry later. onComplete fires when data is delivered to the core side.
func (mc *Controller) EnqueueRead(core int, line uint64, now int64, onComplete func(int64)) bool {
	if len(mc.readQ) >= mc.cfg.Memory.ReadQueueCap ||
		mc.pendingReads[core] >= mc.cfg.Memory.MaxPendingPerCore {
		mc.enqueueFailRd.Inc()
		return false
	}
	mc.readQ = append(mc.readQ, &Request{
		ID:         mc.nextID(),
		Kind:       Read,
		Core:       core,
		Line:       line,
		Coord:      mc.sys.Mapper.Map(line),
		Arrive:     now,
		OnComplete: onComplete,
	})
	mc.pendingReads[core]++
	mc.wake(now)
	return true
}

// EnqueueWrite admits a write-back. Returns false when the write buffer is
// full; the caller must retry.
func (mc *Controller) EnqueueWrite(core int, line uint64, now int64) bool {
	if len(mc.writeQ) >= mc.cfg.Memory.WriteQueueCap {
		mc.enqueueFailWr.Inc()
		return false
	}
	mc.writeQ = append(mc.writeQ, &Request{
		ID:     mc.nextID(),
		Kind:   Write,
		Core:   core,
		Line:   line,
		Coord:  mc.sys.Mapper.Map(line),
		Arrive: now,
	})
	mc.pendingWrites[core]++
	mc.wake(now)
	return true
}

func (mc *Controller) nextID() uint64 {
	mc.seq++
	return mc.seq
}

// wake clears scan-skipping so the next Tick reconsiders every channel.
func (mc *Controller) wake(now int64) {
	for i := range mc.nextAttempt {
		if mc.nextAttempt[i] > now {
			mc.nextAttempt[i] = now
		}
	}
}

// Tick advances the controller by one cycle: fires due completions and
// attempts to issue at most one transaction per channel.
func (mc *Controller) Tick(now int64) {
	mc.events.RunUntil(now)
	mc.readQOcc.Observe(float64(len(mc.readQ)))
	mc.writeQOcc.Observe(float64(len(mc.writeQ)))
	mc.updateDrain()
	for chIdx := range mc.sys.Channels {
		if mc.nextAttempt[chIdx] > now {
			continue
		}
		mc.tryIssue(chIdx, now)
	}
}

// Quiescent reports whether the controller holds no queued requests and no
// in-flight completions, used by run loops to drain at end of simulation.
func (mc *Controller) Quiescent() bool {
	return len(mc.readQ) == 0 && len(mc.writeQ) == 0 && mc.events.Len() == 0
}

func (mc *Controller) updateDrain() {
	if !mc.draining && len(mc.writeQ) >= mc.drainHigh {
		mc.draining = true
		mc.drainEntries.Inc()
	} else if mc.draining && len(mc.writeQ) <= mc.drainLow {
		mc.draining = false
	}
}

// tryIssue attempts one issue on channel chIdx.
func (mc *Controller) tryIssue(chIdx int, now int64) {
	ch := mc.sys.Channels[chIdx]

	// Read-bypass-write: reads first under normal conditions; writes first in
	// drain mode; writes opportunistically when no reads target this channel.
	primary, secondary := mc.readQ, mc.writeQ
	if mc.draining {
		primary, secondary = mc.writeQ, mc.readQ
	}

	cands, queuedEarliest, queuedAny := mc.gather(primary, ch, chIdx, now)
	if len(cands) == 0 && !queuedAny {
		cands, queuedEarliest, queuedAny = mc.gather(secondary, ch, chIdx, now)
	}
	if len(cands) == 0 {
		if queuedAny {
			// Nothing issuable now: sleep until the earliest bank-ready time.
			if queuedEarliest <= now {
				queuedEarliest = now + 1
			}
			mc.nextAttempt[chIdx] = queuedEarliest
		} else {
			// Channel has no queued work at all; wake() on enqueue resets this.
			mc.nextAttempt[chIdx] = now + 1<<30
		}
		return
	}

	pick := mc.pick(cands, now)
	req := cands[pick].Req
	res := ch.Issue(req.Coord, now, mc.autoPrecharge(req))
	if mc.trace != nil {
		mc.trace.add(Decision{
			Cycle:      now,
			Channel:    chIdx,
			Core:       req.Core,
			Kind:       req.Kind,
			Class:      res.Class,
			Line:       req.Line,
			WaitCycles: now - req.Arrive,
			Candidates: len(cands),
			QueueDepth: len(mc.readQ),
		})
	}
	mc.remove(req)

	lineBytes := uint64(mc.cfg.L2.LineBytes)
	if req.Kind == Read {
		mc.readsIssued.Inc()
		mc.bytesRead += lineBytes
		mc.core[req.Core].QueueDelay.Observe(float64(now - req.Arrive))
		complete := res.DataDone + mc.ctrlOverhead
		issuedAt := now
		r := req
		mc.events.Schedule(complete, func(t int64) {
			mc.pendingReads[r.Core]--
			cs := &mc.core[r.Core]
			cs.ReadsCompleted++
			lat := t - r.Arrive
			cs.ReadLatency.Observe(float64(lat))
			cs.ReadLatencyHist.Observe(lat)
			cs.ServiceTime.Observe(float64(t - issuedAt))
			if r.OnComplete != nil {
				r.OnComplete(t)
			}
		})
	} else {
		mc.writesIssued.Inc()
		mc.bytesWritten += lineBytes
		mc.pendingWrites[req.Core]--
		mc.core[req.Core].WritesRetired++
	}
}

// gather collects issuable candidates on channel chIdx from queue q. It also
// reports the earliest bank-ready time among this channel's queued requests
// and whether any queued request targets the channel at all.
func (mc *Controller) gather(q []*Request, ch *dram.Channel, chIdx int, now int64) ([]Candidate, int64, bool) {
	cands := mc.scratchCands[:0]
	earliest := int64(1<<62 - 1)
	queuedAny := false
	for _, r := range q {
		if r.Coord.Channel != chIdx {
			continue
		}
		queuedAny = true
		if ch.CanIssue(r.Coord, now) {
			cands = append(cands, Candidate{
				Req:    r,
				RowHit: ch.WouldHit(r.Coord),
				Class:  ch.Classify(r.Coord),
			})
		} else if ready := ch.Bank(r.Coord).ReadyAt; ready < earliest {
			earliest = ready
		}
	}
	mc.scratchCands = cands[:0]
	return cands, earliest, queuedAny
}

// pick builds the policy context and delegates candidate selection.
func (mc *Controller) pick(cands []Candidate, now int64) int {
	if len(cands) == 1 {
		return 0
	}
	ctx := Context{
		Now:          now,
		Cores:        mc.cfg.Cores,
		PendingReads: mc.pendingReads,
		Scores:       mc.scratchScores,
		FixedME:      mc.scratchFixed,
		RNG:          mc.rng,
		SameRowQueued: func(req *Request) int {
			n := 1 // req itself
			for _, r := range mc.readQ {
				if r != req && sameRow(r, req) {
					n++
				}
			}
			for _, r := range mc.writeQ {
				if r != req && sameRow(r, req) {
					n++
				}
			}
			return n
		},
	}
	if mc.table != nil {
		for core := 0; core < mc.cfg.Cores; core++ {
			ctx.Scores[core] = mc.table.Score(core, mc.pendingReads[core])
			ctx.FixedME[core] = mc.table.Score(core, 1)
		}
	} else {
		for core := 0; core < mc.cfg.Cores; core++ {
			ctx.Scores[core] = 0
			ctx.FixedME[core] = 0
		}
	}
	idx := mc.policy.Pick(cands, &ctx)
	if idx < 0 || idx >= len(cands) {
		panic(fmt.Sprintf("memctrl: policy %q picked out-of-range index %d of %d",
			mc.policy.Name(), idx, len(cands)))
	}
	return idx
}

// autoPrecharge decides row management for the transaction serving req,
// according to the configured row policy (paper default: close page, keeping
// the row open only while another queued request wants it).
func (mc *Controller) autoPrecharge(req *Request) bool {
	switch mc.cfg.Memory.RowPolicy {
	case config.OpenPage:
		return false
	case config.ClosePageStrict:
		return true
	default: // config.ClosePageHitAware
		return !mc.rowStillWanted(req)
	}
}

// rowStillWanted reports whether any other queued request targets the same
// (bank, row) as req — the close-page controller keeps the row open exactly
// in that case.
func (mc *Controller) rowStillWanted(req *Request) bool {
	for _, r := range mc.readQ {
		if r != req && sameRow(r, req) {
			return true
		}
	}
	for _, r := range mc.writeQ {
		if r != req && sameRow(r, req) {
			return true
		}
	}
	return false
}

func sameRow(a, b *Request) bool {
	return a.Coord.Channel == b.Coord.Channel &&
		a.Coord.Rank == b.Coord.Rank &&
		a.Coord.Bank == b.Coord.Bank &&
		a.Coord.Row == b.Coord.Row
}

// remove deletes req from its queue, preserving arrival order.
func (mc *Controller) remove(req *Request) {
	q := &mc.readQ
	if req.Kind == Write {
		q = &mc.writeQ
	}
	for i, r := range *q {
		if r == req {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("memctrl: removing request not in queue")
}

// AverageReadLatency returns the mean read latency in cycles across all
// cores, weighted by request count.
func (mc *Controller) AverageReadLatency() float64 {
	var merged stats.Running
	for i := range mc.core {
		merged.Merge(&mc.core[i].ReadLatency)
	}
	return merged.Mean()
}

package memctrl

import (
	"fmt"
	"io"

	"memsched/internal/dram"
)

// Decision records one scheduling pick — which request the policy chose,
// out of how many schedulable candidates, and what it cost. A bounded ring
// of recent decisions is the primary debugging aid for policy authors.
type Decision struct {
	Cycle      int64
	Channel    int
	Core       int
	Kind       Kind
	Class      dram.AccessClass
	Line       uint64
	WaitCycles int64 // admission -> issue
	Candidates int   // schedulable candidates the policy chose among
	QueueDepth int   // reads queued at pick time
}

// String renders one decision compactly.
func (d Decision) String() string {
	return fmt.Sprintf("@%-8d ch%d core%d %-5s %-8s line=%#x wait=%d cands=%d depth=%d",
		d.Cycle, d.Channel, d.Core, d.Kind, d.Class, d.Line,
		d.WaitCycles, d.Candidates, d.QueueDepth)
}

// decisionRing is a fixed-capacity overwrite-oldest buffer.
type decisionRing struct {
	buf  []Decision
	next int
	full bool
}

func (r *decisionRing) add(d Decision) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns decisions oldest-first.
func (r *decisionRing) snapshot() []Decision {
	if len(r.buf) == 0 {
		return nil
	}
	var out []Decision
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// EnableDecisionTrace starts recording the last n scheduling decisions
// (n <= 0 disables tracing). Tracing is off by default and adds one struct
// copy per issued transaction when on.
func (mc *Controller) EnableDecisionTrace(n int) {
	if n <= 0 {
		mc.trace = nil
		return
	}
	mc.trace = &decisionRing{buf: make([]Decision, n)}
}

// Decisions returns the recorded decisions, oldest first.
func (mc *Controller) Decisions() []Decision {
	if mc.trace == nil {
		return nil
	}
	return mc.trace.snapshot()
}

// DumpDecisions writes the recorded decisions to w, one per line.
func (mc *Controller) DumpDecisions(w io.Writer) error {
	for _, d := range mc.Decisions() {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

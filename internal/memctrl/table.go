package memctrl

import (
	"fmt"
	"math"
)

// PriorityTable is the hardware structure of the paper's Figure 1: one row
// per core, one entry per possible outstanding-read count (1..MaxPending),
// each entry holding a quantized precomputed value of ME[i]/pending.
//
// The paper stores 10-bit entries (64 entries x 10 bits x N cores = 640N
// bits) but leaves the scaling function unspecified ("scaled approximately
// and then stored"). Measured ME values span four orders of magnitude
// (Table 2: lucas 1 vs eon 16276), so linear scaling would collapse every
// small-ME application onto the same code point. We therefore quantize in
// the log domain, which preserves the argmax ordering (log is monotonic)
// while spreading the code points usefully. Bits == 0 selects exact
// (non-quantized) priorities, used by the quantization ablation.
type PriorityTable struct {
	bits       int
	maxPending int
	me         []float64
	// entries[core][pending-1] is the stored hardware code point.
	entries [][]uint32
	// loMag/hiMag are the log2 magnitudes the quantizer was calibrated to.
	loMag, hiMag float64
}

// NewPriorityTable precomputes tables for the given per-core memory
// efficiencies. maxPending is the per-core outstanding-read bound (paper:
// 64); bits the entry width (paper: 10; 0 = exact).
func NewPriorityTable(me []float64, maxPending, bits int) (*PriorityTable, error) {
	if len(me) == 0 {
		return nil, fmt.Errorf("memctrl: priority table needs at least one core")
	}
	if maxPending < 1 {
		return nil, fmt.Errorf("memctrl: maxPending %d < 1", maxPending)
	}
	if bits < 0 || bits > 30 {
		return nil, fmt.Errorf("memctrl: priority bits %d out of [0,30]", bits)
	}
	for i, v := range me {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("memctrl: core %d has invalid memory efficiency %v", i, v)
		}
	}
	t := &PriorityTable{
		bits:       bits,
		maxPending: maxPending,
		me:         append([]float64(nil), me...),
		entries:    make([][]uint32, len(me)),
	}
	t.calibrate()
	for core := range me {
		t.entries[core] = make([]uint32, maxPending)
		t.fillRow(core)
	}
	return t, nil
}

// calibrate fixes the quantizer range from the current ME set: the smallest
// representable value is min(ME)/maxPending, the largest max(ME).
func (t *PriorityTable) calibrate() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t.me {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	t.loMag = math.Log2(lo / float64(t.maxPending))
	t.hiMag = math.Log2(hi)
	if t.hiMag <= t.loMag { // single core, single value
		t.hiMag = t.loMag + 1
	}
}

func (t *PriorityTable) fillRow(core int) {
	for p := 1; p <= t.maxPending; p++ {
		t.entries[core][p-1] = t.quantize(t.me[core] / float64(p))
	}
}

// quantize maps a raw priority onto the hardware code space [0, 2^bits-1].
func (t *PriorityTable) quantize(raw float64) uint32 {
	if t.bits == 0 {
		return 0 // unused in exact mode
	}
	maxCode := float64(uint32(1)<<uint(t.bits) - 1)
	mag := math.Log2(raw)
	frac := (mag - t.loMag) / (t.hiMag - t.loMag)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return uint32(frac*maxCode + 0.5)
}

// Score returns the priority of core with the given outstanding-read count,
// as the policy comparator sees it. pending is clamped to [1, maxPending],
// mirroring the hardware table's bounded index.
func (t *PriorityTable) Score(core, pending int) float64 {
	if pending < 1 {
		pending = 1
	}
	if pending > t.maxPending {
		pending = t.maxPending
	}
	if t.bits == 0 {
		return t.me[core] / float64(pending)
	}
	return float64(t.entries[core][pending-1])
}

// ME returns the memory efficiency currently loaded for core.
func (t *PriorityTable) ME(core int) float64 { return t.me[core] }

// SetME reloads one core's memory efficiency (the paper's "initialized by OS
// at program loading and context switching"; also used by the online-ME
// extension) and recomputes that core's table row. The quantizer calibration
// is kept unless the new value falls outside the calibrated range, in which
// case all rows are rebuilt.
func (t *PriorityTable) SetME(core int, me float64) error {
	if me <= 0 || math.IsInf(me, 0) || math.IsNaN(me) {
		return fmt.Errorf("memctrl: invalid memory efficiency %v", me)
	}
	t.me[core] = me
	mag := math.Log2(me)
	if mag > t.hiMag || mag-math.Log2(float64(t.maxPending)) < t.loMag {
		t.calibrate()
		for c := range t.entries {
			t.fillRow(c)
		}
		return nil
	}
	t.fillRow(core)
	return nil
}

// Bits returns the configured entry width (0 = exact mode).
func (t *PriorityTable) Bits() int { return t.bits }

// StorageBits returns the total hardware bit cost of the tables, the
// paper's 640N-bit figure for 64 entries x 10 bits x N cores.
func (t *PriorityTable) StorageBits() int {
	return len(t.me) * t.maxPending * t.bits
}

package memctrl

// bankFIFO is a growable ring buffer holding the queued requests of one
// (channel, bank, kind) in admission order. Scheduling policies may serve a
// request from any position (e.g. a row hit behind an older conflict), so
// the ring supports order-preserving interior removal; it splices by
// shifting whichever side of the ring is shorter, and the common case —
// serving at or near the head — is O(1).
type bankFIFO struct {
	buf  []*Request // len(buf) is a power of two; empty until first push
	head int        // index of the oldest element
	n    int
}

func (q *bankFIFO) len() int { return q.n }

// at returns the i-th oldest request, 0 <= i < len.
func (q *bankFIFO) at(i int) *Request {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

func (q *bankFIFO) push(r *Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

func (q *bankFIFO) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]*Request, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf, q.head = nb, 0
}

// indexOf returns r's position (0 = oldest), or -1 when absent.
func (q *bankFIFO) indexOf(r *Request) int {
	for i := 0; i < q.n; i++ {
		if q.at(i) == r {
			return i
		}
	}
	return -1
}

// removeAt deletes the i-th oldest element in a single splice, preserving
// the order of the survivors.
func (q *bankFIFO) removeAt(i int) {
	mask := len(q.buf) - 1
	if i <= q.n-1-i {
		// Closer to the head: shift predecessors forward one slot.
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
		}
		q.buf[q.head] = nil // release for GC
		q.head = (q.head + 1) & mask
	} else {
		// Closer to the tail: shift successors back one slot.
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
		}
		q.buf[(q.head+q.n-1)&mask] = nil
	}
	q.n--
}

package memctrl

import (
	"testing"

	"memsched/internal/xrand"
)

func reqWithID(id uint64) *Request { return &Request{ID: id} }

func fifoIDs(q *bankFIFO) []uint64 {
	ids := make([]uint64, 0, q.len())
	for i := 0; i < q.len(); i++ {
		ids = append(ids, q.at(i).ID)
	}
	return ids
}

func TestBankFIFOPushPreservesOrderAcrossGrowth(t *testing.T) {
	var q bankFIFO
	for id := uint64(0); id < 100; id++ {
		q.push(reqWithID(id))
	}
	if q.len() != 100 {
		t.Fatalf("len = %d, want 100", q.len())
	}
	for i, id := range fifoIDs(&q) {
		if id != uint64(i) {
			t.Fatalf("at(%d).ID = %d, want %d", i, id, i)
		}
	}
}

// TestBankFIFORemoveIsSingleSplice is the regression test for the old
// mid-slice deletion path: serving a request from any position must remove
// exactly that request in one operation, preserving the relative order of
// every survivor (admission order is what FCFS-style tie-breaks rank on).
func TestBankFIFORemoveIsSingleSplice(t *testing.T) {
	for _, pos := range []int{0, 1, 4, 8, 9} { // head, near-head, middle, near-tail, tail
		var q bankFIFO
		reqs := make([]*Request, 10)
		for i := range reqs {
			reqs[i] = reqWithID(uint64(i))
			q.push(reqs[i])
		}
		idx := q.indexOf(reqs[pos])
		if idx != pos {
			t.Fatalf("indexOf(req %d) = %d", pos, idx)
		}
		q.removeAt(idx)
		if q.len() != 9 {
			t.Fatalf("after removeAt(%d): len = %d, want 9", pos, q.len())
		}
		if q.indexOf(reqs[pos]) != -1 {
			t.Fatalf("request %d still present after removal", pos)
		}
		want := uint64(0)
		for i := 0; i < q.len(); i++ {
			if want == uint64(pos) {
				want++
			}
			if got := q.at(i).ID; got != want {
				t.Fatalf("after removeAt(%d): at(%d).ID = %d, want %d", pos, i, got, want)
			}
			want++
		}
	}
}

func TestBankFIFOWrapAround(t *testing.T) {
	var q bankFIFO
	id := uint64(0)
	// Cycle pushes and head-removals so head walks all the way around the
	// ring several times.
	for round := 0; round < 50; round++ {
		for k := 0; k < 3; k++ {
			q.push(reqWithID(id))
			id++
		}
		q.removeAt(0)
		q.removeAt(0)
	}
	// One survivor per round remains, in admission order.
	ids := fifoIDs(&q)
	if len(ids) != 50 {
		t.Fatalf("len = %d, want 50", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("order violated at %d: %v", i, ids)
		}
	}
}

// TestBankFIFORandomizedAgainstModel drives random push/remove sequences and
// checks the ring against a plain-slice reference model after every step.
func TestBankFIFORandomizedAgainstModel(t *testing.T) {
	rng := xrand.New(0xF1F0)
	var q bankFIFO
	var model []*Request
	nextID := uint64(0)
	for step := 0; step < 20_000; step++ {
		if len(model) == 0 || rng.Intn(2) == 0 {
			r := reqWithID(nextID)
			nextID++
			q.push(r)
			model = append(model, r)
		} else {
			i := rng.Intn(len(model))
			if got := q.indexOf(model[i]); got != i {
				t.Fatalf("step %d: indexOf = %d, want %d", step, got, i)
			}
			q.removeAt(i)
			model = append(model[:i], model[i+1:]...)
		}
		if q.len() != len(model) {
			t.Fatalf("step %d: len = %d, model %d", step, q.len(), len(model))
		}
		for i, r := range model {
			if q.at(i) != r {
				t.Fatalf("step %d: at(%d) = %v, want ID %d", step, i, q.at(i), r.ID)
			}
		}
	}
}

// TestBankFIFOReleasesRemovedSlots checks that removal nils the vacated ring
// slot: a retired Request pinned by a stale ring pointer would defeat the
// controller's free-list recycling.
func TestBankFIFOReleasesRemovedSlots(t *testing.T) {
	var q bankFIFO
	for id := uint64(0); id < 8; id++ {
		q.push(reqWithID(id))
	}
	for q.len() > 0 {
		q.removeAt(q.len() / 2)
	}
	for i, p := range q.buf {
		if p != nil {
			t.Fatalf("buf[%d] still holds a request after all removals", i)
		}
	}
}

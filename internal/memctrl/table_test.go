package memctrl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableValidation(t *testing.T) {
	if _, err := NewPriorityTable(nil, 64, 10); err == nil {
		t.Error("empty ME set accepted")
	}
	if _, err := NewPriorityTable([]float64{1}, 0, 10); err == nil {
		t.Error("zero maxPending accepted")
	}
	if _, err := NewPriorityTable([]float64{1}, 64, -1); err == nil {
		t.Error("negative bits accepted")
	}
	if _, err := NewPriorityTable([]float64{0}, 64, 10); err == nil {
		t.Error("zero ME accepted")
	}
	if _, err := NewPriorityTable([]float64{math.NaN()}, 64, 10); err == nil {
		t.Error("NaN ME accepted")
	}
}

func TestExactModeIsDivision(t *testing.T) {
	tab, err := NewPriorityTable([]float64{12, 3}, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Score(0, 4); got != 3 {
		t.Errorf("Score(0,4) = %v, want 3 (12/4)", got)
	}
	if got := tab.Score(1, 3); got != 1 {
		t.Errorf("Score(1,3) = %v, want 1", got)
	}
}

func TestScoreMonotonicInPending(t *testing.T) {
	tab, err := NewPriorityTable([]float64{15, 2, 40, 16276}, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		prev := tab.Score(core, 1)
		for p := 2; p <= 64; p++ {
			cur := tab.Score(core, p)
			if cur > prev {
				t.Fatalf("core %d: score increased with pending %d: %v > %v", core, p, cur, prev)
			}
			prev = cur
		}
	}
}

func TestScoreMonotonicInME(t *testing.T) {
	// At equal pending counts, a higher-ME core must never score lower.
	mes := []float64{1, 2, 4, 8, 40, 280, 16276}
	tab, err := NewPriorityTable(mes, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 64; p++ {
		for i := 1; i < len(mes); i++ {
			if tab.Score(i, p) < tab.Score(i-1, p) {
				t.Fatalf("pending %d: ME %v scored below ME %v", p, mes[i], mes[i-1])
			}
		}
	}
}

func TestQuantizationPreservesWideRangeOrdering(t *testing.T) {
	// The full Table 2 spread (ME 1 .. 16276) must stay distinguishable at
	// pending == 1 with 10-bit entries.
	mes := []float64{1, 2, 4, 8, 20, 40, 80, 280, 951, 2923, 16276}
	tab, err := NewPriorityTable(mes, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(mes); i++ {
		if tab.Score(i, 1) <= tab.Score(i-1, 1) {
			t.Fatalf("10-bit quantization collapsed ME %v and %v at pending=1",
				mes[i-1], mes[i])
		}
	}
}

func TestPendingClamped(t *testing.T) {
	tab, err := NewPriorityTable([]float64{8, 2}, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Score(0, 0) != tab.Score(0, 1) {
		t.Error("pending 0 should clamp to 1")
	}
	if tab.Score(0, 100) != tab.Score(0, 64) {
		t.Error("pending above max should clamp to max")
	}
}

func TestSetME(t *testing.T) {
	tab, err := NewPriorityTable([]float64{8, 2}, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	before := tab.Score(1, 1)
	if err := tab.SetME(1, 100); err != nil {
		t.Fatal(err)
	}
	if tab.ME(1) != 100 {
		t.Errorf("ME(1) = %v, want 100", tab.ME(1))
	}
	if tab.Score(1, 1) <= before {
		t.Error("raising ME should raise the score")
	}
	if tab.Score(1, 1) < tab.Score(0, 1) {
		t.Error("core with ME 100 should outrank core with ME 8")
	}
	if err := tab.SetME(0, -1); err == nil {
		t.Error("negative ME accepted by SetME")
	}
}

func TestSetMEOutsideRangeRecalibrates(t *testing.T) {
	tab, err := NewPriorityTable([]float64{8, 2}, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 is far above the calibrated range; ordering must still hold.
	if err := tab.SetME(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if tab.Score(0, 1) <= tab.Score(1, 1) {
		t.Error("recalibration lost ordering for out-of-range ME")
	}
}

func TestStorageBits(t *testing.T) {
	tab, err := NewPriorityTable(make640(4), 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 640N bits for an N-core system.
	if got := tab.StorageBits(); got != 640*4 {
		t.Errorf("StorageBits = %d, want %d", got, 640*4)
	}
	if tab.Bits() != 10 {
		t.Errorf("Bits = %d, want 10", tab.Bits())
	}
}

func make640(n int) []float64 {
	me := make([]float64, n)
	for i := range me {
		me[i] = float64(i + 1)
	}
	return me
}

func TestQuantizedTracksExactArgmax(t *testing.T) {
	// Property: for random ME sets and pending vectors, the core chosen by
	// the quantized table agrees with exact division in the overwhelming
	// majority of draws (quantization may merge near-equal scores, in which
	// case either winner is legitimate; what must never happen is a
	// systematic inversion).
	f := func(seed uint8) bool {
		mes := []float64{1, 4, 27, 192}
		exact, _ := NewPriorityTable(mes, 64, 0)
		quant, _ := NewPriorityTable(mes, 64, 10)
		agree, total := 0, 0
		s := int(seed) + 1
		for trial := 0; trial < 200; trial++ {
			pend := make([]int, 4)
			for i := range pend {
				s = s*1103515245 + 12345
				pend[i] = (s>>16)&63 + 1
			}
			bestE, bestQ := 0, 0
			for i := 1; i < 4; i++ {
				if exact.Score(i, pend[i]) > exact.Score(bestE, pend[bestE]) {
					bestE = i
				}
				if quant.Score(i, pend[i]) > quant.Score(bestQ, pend[bestQ]) {
					bestQ = i
				}
			}
			total++
			if bestE == bestQ || quant.Score(bestE, pend[bestE]) == quant.Score(bestQ, pend[bestQ]) {
				agree++
			}
		}
		return float64(agree)/float64(total) > 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package memctrl_test

import (
	"fmt"
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

// allPolicies lists every built-in policy for a 4-core system.
func allPolicies(t *testing.T) map[string]memctrl.Policy {
	t.Helper()
	out := map[string]memctrl.Policy{}
	for _, name := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "dash", "fix:3210", "fix:0123"} {
		p, err := sched.New(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = p
	}
	return out
}

// TestEveryPolicyConservesRequests floods the controller with pseudo-random
// traffic from four cores under every policy and checks the fundamental
// invariants: every admitted read completes exactly once, every admitted
// write is issued, pending counters return to zero, and nothing deadlocks.
func TestEveryPolicyConservesRequests(t *testing.T) {
	for name, pol := range allPolicies(t) {
		t.Run(name, func(t *testing.T) {
			cfg := config.Default(4)
			sys := dram.NewSystem(&cfg)
			table, err := memctrl.NewPriorityTable([]float64{1, 4, 27, 192}, 64, 10)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}

			rng := xrand.New(99)
			// Writes are bounded: an unbounded write flood exceeds the drain
			// rate and (correctly) locks the controller into drain mode,
			// which is not the scenario under test here.
			const wantReads, wantWrites = 400, 150
			admittedReads, completedReads, admittedWrites := 0, 0, 0
			now := int64(0)
			for completedReads < wantReads {
				if now > 4_000_000 {
					t.Fatalf("deadlock: %d/%d reads completed (admitted %d)",
						completedReads, wantReads, admittedReads)
				}
				// Bursty injection: a few requests per cycle from random cores.
				if admittedReads < wantReads {
					for k := 0; k < rng.Intn(3); k++ {
						core := rng.Intn(4)
						line := uint64(rng.Intn(1 << 20))
						if mc.EnqueueRead(core, line, now, func(int64) { completedReads++ }) {
							admittedReads++
						}
						if admittedWrites < wantWrites && rng.Bernoulli(0.4) {
							if mc.EnqueueWrite(core, uint64(rng.Intn(1<<20)), now) {
								admittedWrites++
							}
						}
					}
				}
				mc.Tick(now)
				now++
			}
			// Drain everything left.
			for !mc.Quiescent() {
				mc.Tick(now)
				now++
				if now > 4_000_000 {
					t.Fatal("controller failed to drain")
				}
			}
			if completedReads != admittedReads {
				t.Fatalf("reads: admitted %d, completed %d", admittedReads, completedReads)
			}
			if int(mc.WritesIssued()) != admittedWrites {
				t.Fatalf("writes: admitted %d, issued %d", admittedWrites, mc.WritesIssued())
			}
			for core := 0; core < 4; core++ {
				if p := mc.PendingReadsOf(core); p != 0 {
					t.Fatalf("core %d pending counter = %d after drain", core, p)
				}
			}
		})
	}
}

// TestNoReadStarvationUnderFixedPriority verifies that even the harshest
// fixed-priority scheme cannot starve a low-priority core indefinitely:
// the shared buffer fills with the starving core's requests, which throttles
// the high-priority cores' admission and forces progress.
func TestNoReadStarvationUnderFixedPriority(t *testing.T) {
	pol, err := sched.New("fix:0123", 4) // core 3 has the lowest priority
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(4)
	sys := dram.NewSystem(&cfg)
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	lowDone := 0
	admittedLow := 0
	now := int64(0)
	for lowDone < 20 {
		if now > 4_000_000 {
			t.Fatalf("low-priority core starved: %d/20 reads done", lowDone)
		}
		// High-priority cores flood; low-priority core trickles.
		if rng.Bernoulli(0.75) {
			for core := 0; core < 3; core++ {
				mc.EnqueueRead(core, uint64(rng.Intn(1<<20)), now, nil)
			}
		}
		if admittedLow < 20 {
			if mc.EnqueueRead(3, uint64(rng.Intn(1<<20)), now, func(int64) { lowDone++ }) {
				admittedLow++
			}
		}
		mc.Tick(now)
		now++
	}
}

// TestOpportunisticWriteIssue checks that a channel with no queued reads
// serves writes even outside drain mode.
func TestOpportunisticWriteIssue(t *testing.T) {
	mc, _, _ := newController(t, 1, "hf-rf", nil)
	if !mc.EnqueueWrite(0, lineFor(0, 3), 0) {
		t.Fatal("write rejected")
	}
	// One write, zero reads, far below the drain watermark.
	if mc.Draining() {
		t.Fatal("unexpectedly draining")
	}
	runUntil(mc, 0, func() bool { return mc.WritesIssued() == 1 }, 10_000)
	if mc.WritesIssued() != 1 {
		t.Fatal("idle channel never issued the lone write")
	}
}

// TestPoliciesDivergeOnSameTraffic feeds an identical canned request pattern
// to every policy and verifies that at least some produce different service
// orders — i.e. the policy hook actually steers the controller.
func TestPoliciesDivergeOnSameTraffic(t *testing.T) {
	order := func(pol memctrl.Policy) string {
		cfg := config.Default(4)
		sys := dram.NewSystem(&cfg)
		table, _ := memctrl.NewPriorityTable([]float64{1, 4, 27, 192}, 64, 10)
		mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		var served []int
		// Same channel, distinct banks/rows, four cores, staggered arrivals.
		for i := 0; i < 16; i++ {
			core := i % 4
			line := uint64(i) * 16 * 128 // same channel 0, different rows
			idx := core
			mc.EnqueueRead(core, line, int64(i), func(int64) { served = append(served, idx) })
		}
		now := int64(16)
		for !mc.Quiescent() {
			mc.Tick(now)
			now++
			if now > 1_000_000 {
				t.Fatal("drain timeout")
			}
		}
		return fmt.Sprint(served)
	}
	seen := map[string]bool{}
	for name, pol := range allPolicies(t) {
		seen[order(pol)] = true
		_ = name
	}
	if len(seen) < 3 {
		t.Fatalf("8 policies produced only %d distinct service orders", len(seen))
	}
}

package memctrl_test

import (
	"strings"
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

// lineFor builds a line address that maps to the given channel with a
// chosen bank stride multiple, exploiting the LSB-channel mapping.
func lineFor(channel int, n uint64) uint64 {
	return n*16 + uint64(channel) // 16 = bank stride for the default geometry
}

func newController(t *testing.T, cores int, policy string, mes []float64) (*memctrl.Controller, *dram.System, *config.Config) {
	t.Helper()
	cfg := config.Default(cores)
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New(policy, cores)
	if err != nil {
		t.Fatal(err)
	}
	var table *memctrl.PriorityTable
	if mes != nil {
		table, err = memctrl.NewPriorityTable(mes, cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
		if err != nil {
			t.Fatal(err)
		}
	}
	mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return mc, sys, &cfg
}

func runUntil(mc *memctrl.Controller, from int64, pred func() bool, limit int64) int64 {
	now := from
	for !pred() {
		mc.Tick(now)
		now++
		if now-from > limit {
			return -1
		}
	}
	return now
}

func TestReadCompletesWithExpectedLatency(t *testing.T) {
	mc, _, _ := newController(t, 1, "hf-rf", nil)
	var doneAt int64 = -1
	if !mc.EnqueueRead(0, lineFor(0, 1), 0, func(now int64) { doneAt = now }) {
		t.Fatal("enqueue rejected on empty controller")
	}
	if mc.PendingReadsOf(0) != 1 {
		t.Fatalf("pending = %d, want 1", mc.PendingReadsOf(0))
	}
	end := runUntil(mc, 0, func() bool { return doneAt >= 0 }, 10000)
	if end < 0 {
		t.Fatal("read never completed")
	}
	// Closed-bank access: tRCD+tCL (80) + burst (16) + controller overhead (48).
	if doneAt != 80+16+48 {
		t.Fatalf("completion at %d, want 144", doneAt)
	}
	if mc.PendingReadsOf(0) != 0 {
		t.Fatal("pending count not decremented on completion")
	}
	if mc.ReadsIssued() != 1 {
		t.Fatalf("ReadsIssued = %d", mc.ReadsIssued())
	}
	cs := mc.CoreStatsOf(0)
	if cs.ReadsCompleted != 1 || cs.ReadLatency.Mean() != 144 {
		t.Fatalf("core stats = %d completed, mean %v", cs.ReadsCompleted, cs.ReadLatency.Mean())
	}
}

func TestReadBypassesWrite(t *testing.T) {
	mc, _, _ := newController(t, 1, "hf-rf", nil)
	// Write arrives first, read second, same channel: the read must be
	// served first (read-bypass-write), so the write retires later.
	if !mc.EnqueueWrite(0, lineFor(0, 5), 0) {
		t.Fatal("write rejected")
	}
	var readDone int64 = -1
	mc.EnqueueRead(0, lineFor(0, 9), 0, func(now int64) { readDone = now })
	runUntil(mc, 0, func() bool { return mc.Quiescent() }, 10000)
	if readDone < 0 {
		t.Fatal("read never completed")
	}
	if mc.WritesIssued() != 1 {
		t.Fatal("write never issued")
	}
	// The read used the bus first: its data phase ended at 96, the write's
	// must have ended later. Read completion (with overhead) is 144; if the
	// write had gone first the read would finish no earlier than ~240.
	if readDone != 144 {
		t.Fatalf("read completed at %d; write was not bypassed", readDone)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	mc, _, cfg := newController(t, 1, "hf-rf", nil)
	high := int(cfg.Memory.DrainHigh * float64(cfg.Memory.WriteQueueCap))
	for i := 0; i < high; i++ {
		if !mc.EnqueueWrite(0, lineFor(0, uint64(i)+100), 0) {
			t.Fatalf("write %d rejected below capacity", i)
		}
	}
	mc.Tick(0)
	if !mc.Draining() {
		t.Fatalf("controller not draining at %d queued writes", high)
	}
	low := int(cfg.Memory.DrainLow * float64(cfg.Memory.WriteQueueCap))
	end := runUntil(mc, 1, func() bool { return !mc.Draining() }, 1_000_000)
	if end < 0 {
		t.Fatal("drain mode never exited")
	}
	if got := mc.WriteQueueLen(); got > low {
		t.Fatalf("exited drain at %d queued writes, want <= %d", got, low)
	}
	if mc.DrainEntries() != 1 {
		t.Fatalf("DrainEntries = %d, want 1", mc.DrainEntries())
	}
}

func TestDrainPrefersWritesOverReads(t *testing.T) {
	mc, _, cfg := newController(t, 1, "hf-rf", nil)
	high := int(cfg.Memory.DrainHigh * float64(cfg.Memory.WriteQueueCap))
	for i := 0; i < high; i++ {
		mc.EnqueueWrite(0, lineFor(0, uint64(i)+100), 0)
	}
	var readDone int64 = -1
	mc.EnqueueRead(0, lineFor(0, 1), 0, func(now int64) { readDone = now })
	mc.Tick(0) // enters drain mode and issues a write
	if !mc.Draining() {
		t.Fatal("expected drain mode")
	}
	if mc.WritesIssued() != 1 || mc.ReadsIssued() != 0 {
		t.Fatalf("in drain mode issued reads=%d writes=%d, want the write first",
			mc.ReadsIssued(), mc.WritesIssued())
	}
	runUntil(mc, 1, func() bool { return readDone >= 0 }, 1_000_000)
}

func TestReadQueueCapacity(t *testing.T) {
	mc, _, cfg := newController(t, 1, "hf-rf", nil)
	// The per-core pending bound equals the queue capacity here (64), so
	// fill to capacity without ticking (nothing issues).
	accepted := 0
	for i := 0; i < cfg.Memory.ReadQueueCap+10; i++ {
		if mc.EnqueueRead(0, lineFor(0, uint64(i)), 0, nil) {
			accepted++
		}
	}
	if accepted != cfg.Memory.ReadQueueCap {
		t.Fatalf("accepted %d reads, want %d", accepted, cfg.Memory.ReadQueueCap)
	}
	if mc.RejectedReads() != 10 {
		t.Fatalf("RejectedReads = %d, want 10", mc.RejectedReads())
	}
}

func TestPerCorePendingBound(t *testing.T) {
	cfg := config.Default(2)
	cfg.Memory.ReadQueueCap = 128 // above the per-core bound of 64
	sys := dram.NewSystem(&cfg)
	pol, _ := sched.New("hf-rf", 2)
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70; i++ {
		mc.EnqueueRead(0, lineFor(0, uint64(i)), 0, nil)
	}
	if mc.PendingReadsOf(0) != cfg.Memory.MaxPendingPerCore {
		t.Fatalf("core 0 pending = %d, want %d", mc.PendingReadsOf(0), cfg.Memory.MaxPendingPerCore)
	}
	// The other core must still be admissible.
	if !mc.EnqueueRead(1, lineFor(0, 1000), 0, nil) {
		t.Fatal("core 1 rejected although only core 0 is at its bound")
	}
}

func TestHitFirstOrdersQueue(t *testing.T) {
	mc, sys, _ := newController(t, 1, "hf-rf", nil)
	// Queue, at time 0: an access to row 0 (issues first by age), an OLDER
	// conflicting access to row 1 of the same bank, and a YOUNGER row-0
	// access. While the row-0 access is in flight the row stays open
	// (another row-0 request is queued), so the younger request becomes a
	// row hit and must bypass the older conflict.
	var hitDone, conflictDone int64 = -1, -1
	firstLine := uint64(0)           // bank 0, row 0, col 0
	conflictLine := uint64(16 * 128) // bank 0, row 1
	hitLine := uint64(16)            // bank 0, row 0, col 1
	if sys.Mapper.RowOf(conflictLine).GlobalBank != sys.Mapper.RowOf(hitLine).GlobalBank {
		t.Fatal("test setup: lines not in same bank")
	}
	mc.EnqueueRead(0, firstLine, 0, nil)
	mc.EnqueueRead(0, conflictLine, 0, func(t int64) { conflictDone = t }) // older
	mc.EnqueueRead(0, hitLine, 0, func(t int64) { hitDone = t })           // younger, row hit
	runUntil(mc, 0, func() bool { return hitDone >= 0 && conflictDone >= 0 }, 100000)
	if hitDone >= conflictDone {
		t.Fatalf("hit completed at %d, conflict at %d: hit-first violated", hitDone, conflictDone)
	}
}

func TestClosePageKeepsWantedRowOpen(t *testing.T) {
	mc, sys, _ := newController(t, 1, "hf-rf", nil)
	// Two queued reads to the same row: the first must leave the row open
	// (no auto-precharge), so the second is a row hit.
	done := 0
	mc.EnqueueRead(0, 0, 0, func(int64) { done++ })
	mc.EnqueueRead(0, 16, 0, func(int64) { done++ }) // same bank, same row, next column
	runUntil(mc, 0, func() bool { return done == 2 }, 100000)
	st := sys.Channels[0].Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (second access rides the open row)", st.Hits)
	}
}

func TestClosePageAutoPrechargesUnwantedRow(t *testing.T) {
	mc, sys, _ := newController(t, 1, "hf-rf", nil)
	done := 0
	mc.EnqueueRead(0, 0, 0, func(int64) { done++ })
	runUntil(mc, 0, func() bool { return done == 1 }, 100000)
	// No same-row request was queued: the bank must have auto-precharged.
	b := sys.Channels[0].Bank(sys.Mapper.Map(0))
	if b.State != dram.BankPrecharged {
		t.Fatalf("bank state = %v, want precharged (close page)", b.State)
	}
}

func TestRequestConservation(t *testing.T) {
	mc, _, _ := newController(t, 2, "hf-rf", nil)
	const n = 50
	completed := 0
	for i := 0; i < n; i++ {
		core := i % 2
		if !mc.EnqueueRead(core, uint64(i*7), int64(i), func(int64) { completed++ }) {
			t.Fatalf("read %d rejected", i)
		}
		mc.EnqueueWrite(1-core, uint64(100000+i*13), int64(i))
		mc.Tick(int64(i))
	}
	end := runUntil(mc, n, func() bool { return mc.Quiescent() }, 1_000_000)
	if end < 0 {
		t.Fatal("controller did not quiesce")
	}
	if completed != n {
		t.Fatalf("%d/%d reads completed: requests lost or duplicated", completed, n)
	}
	if mc.ReadsIssued() != n {
		t.Fatalf("ReadsIssued = %d, want %d", mc.ReadsIssued(), n)
	}
	if int(mc.WritesIssued()) != n {
		t.Fatalf("WritesIssued = %d, want %d", mc.WritesIssued(), n)
	}
	rd, wr := mc.BytesTransferred()
	if rd != n*64 || wr != n*64 {
		t.Fatalf("bytes = %d/%d, want %d/%d", rd, wr, n*64, n*64)
	}
}

func TestAverageReadLatencyWeighted(t *testing.T) {
	mc, _, _ := newController(t, 2, "hf-rf", nil)
	done := 0
	mc.EnqueueRead(0, lineFor(0, 1), 0, func(int64) { done++ })
	mc.EnqueueRead(1, lineFor(1, 2), 0, func(int64) { done++ })
	runUntil(mc, 0, func() bool { return done == 2 }, 100000)
	avg := mc.AverageReadLatency()
	if avg <= 0 {
		t.Fatalf("AverageReadLatency = %v", avg)
	}
	a := mc.CoreStatsOf(0).ReadLatency.Mean()
	b := mc.CoreStatsOf(1).ReadLatency.Mean()
	if avg < minF(a, b) || avg > maxF(a, b) {
		t.Fatalf("avg %v outside per-core means [%v, %v]", avg, minF(a, b), maxF(a, b))
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestMELREQPrefersHighEfficiencyCore(t *testing.T) {
	// Core 0: ME 100; core 1: ME 1. With equal pending counts, core 0's
	// requests must complete first under me-lreq when both target the same
	// bank (forced serialization).
	mc, _, _ := newController(t, 2, "me-lreq", []float64{100, 1})
	var doneLow, doneHigh int64 = -1, -1
	// Same channel, same bank, different rows: strictly serialized.
	mc.EnqueueRead(1, 0, 0, func(t int64) { doneLow = t })         // low-ME core enqueues FIRST
	mc.EnqueueRead(0, 16*128*3, 0, func(t int64) { doneHigh = t }) // high-ME core second
	runUntil(mc, 0, func() bool { return doneLow >= 0 && doneHigh >= 0 }, 100000)
	if doneHigh >= doneLow {
		t.Fatalf("high-ME core finished at %d, low-ME at %d: ME priority not applied",
			doneHigh, doneLow)
	}
}

func TestControllerAccessors(t *testing.T) {
	mc, _, _ := newController(t, 2, "me-lreq", []float64{1, 5})
	if mc.Policy().Name() != "me-lreq" {
		t.Fatalf("Policy() = %q", mc.Policy().Name())
	}
	if mc.Table() == nil || mc.Table().ME(1) != 5 {
		t.Fatal("Table() not wired")
	}
	if mc.AverageReadLatency() != 0 {
		t.Fatal("fresh controller has nonzero latency")
	}
	if rd, wr := mc.BytesTransferred(); rd != 0 || wr != 0 {
		t.Fatal("fresh controller moved bytes")
	}
	if mc.WriteQueueLen() != 0 || mc.ReadQueueLen() != 0 {
		t.Fatal("fresh controller has queued requests")
	}
}

func TestControllerResetStats(t *testing.T) {
	mc, _, _ := newController(t, 1, "hf-rf", nil)
	done := false
	mc.EnqueueRead(0, lineFor(0, 1), 0, func(int64) { done = true })
	runUntil(mc, 0, func() bool { return done }, 100000)
	if mc.ReadsIssued() != 1 {
		t.Fatal("setup failed")
	}
	mc.ResetStats()
	if mc.ReadsIssued() != 0 || mc.CoreStatsOf(0).ReadsCompleted != 0 {
		t.Fatal("ResetStats left counters")
	}
	if rd, _ := mc.BytesTransferred(); rd != 0 {
		t.Fatal("ResetStats left bytes")
	}
	// The controller still works after a reset.
	done = false
	mc.EnqueueRead(0, lineFor(0, 2), 1000, func(int64) { done = true })
	if runUntil(mc, 1000, func() bool { return done }, 100000) < 0 {
		t.Fatal("controller broken after ResetStats")
	}
}

func TestRejectedWritesCounted(t *testing.T) {
	mc, _, cfg := newController(t, 1, "hf-rf", nil)
	for i := 0; i < cfg.Memory.WriteQueueCap+5; i++ {
		mc.EnqueueWrite(0, lineFor(0, uint64(i)+10), 0)
	}
	if mc.RejectedWrites() != 5 {
		t.Fatalf("RejectedWrites = %d, want 5", mc.RejectedWrites())
	}
}

func TestDecisionTrace(t *testing.T) {
	mc, _, _ := newController(t, 2, "hf-rf", nil)
	if mc.Decisions() != nil {
		t.Fatal("trace on by default")
	}
	mc.EnableDecisionTrace(4)
	done := 0
	for i := 0; i < 8; i++ {
		mc.EnqueueRead(i%2, lineFor(0, uint64(i*137)), 0, func(int64) { done++ })
	}
	runUntil(mc, 0, func() bool { return done == 8 }, 1_000_000)
	ds := mc.Decisions()
	if len(ds) != 4 {
		t.Fatalf("trace holds %d decisions, want ring cap 4", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Cycle < ds[i-1].Cycle {
			t.Fatal("decisions not oldest-first")
		}
	}
	var sb strings.Builder
	if err := mc.DumpDecisions(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 4 {
		t.Fatalf("dump:\n%s", sb.String())
	}
	mc.EnableDecisionTrace(0)
	if mc.Decisions() != nil {
		t.Fatal("disable did not clear trace")
	}
}

func TestLatencyDecomposition(t *testing.T) {
	mc, _, _ := newController(t, 1, "hf-rf", nil)
	done := 0
	// Two same-bank different-row reads: the second queues behind the first.
	mc.EnqueueRead(0, 0, 0, func(int64) { done++ })
	mc.EnqueueRead(0, 16*128, 0, func(int64) { done++ })
	runUntil(mc, 0, func() bool { return done == 2 }, 100000)
	cs := mc.CoreStatsOf(0)
	if cs.QueueDelay.N() != 2 || cs.ServiceTime.N() != 2 {
		t.Fatalf("decomposition samples: %d/%d", cs.QueueDelay.N(), cs.ServiceTime.N())
	}
	// The second request waited; queue delay must be nonzero on average.
	if cs.QueueDelay.Max() <= 0 {
		t.Fatal("no queueing delay recorded for a blocked request")
	}
	// Queue + service ~= total latency (exact for each request).
	total := cs.ReadLatency.Mean()
	if sum := cs.QueueDelay.Mean() + cs.ServiceTime.Mean(); sum < total-0.01 || sum > total+0.01 {
		t.Fatalf("queue %.1f + service %.1f != latency %.1f",
			cs.QueueDelay.Mean(), cs.ServiceTime.Mean(), total)
	}
}

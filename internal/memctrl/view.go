package memctrl

// CandidateView gives a policy indexed access to one scheduling cycle's
// issuable candidates. The controller builds it straight from the per-bank
// request FIFOs; candidates appear in ascending request-ID order (global
// admission order), exactly the order the original full-queue scan produced,
// so tie-break RNG consumption — and therefore simulation results — are
// identical on both policy paths.
type CandidateView struct {
	cands []Candidate
}

// ViewOf wraps an existing candidate slice (used by the slice-path adapter
// and by tests). The view aliases the slice; it does not copy.
func ViewOf(cands []Candidate) CandidateView { return CandidateView{cands: cands} }

// Len returns the number of candidates.
func (v *CandidateView) Len() int { return len(v.cands) }

// At returns the i-th candidate in admission order. The pointer is valid
// only for the duration of the Pick call: the controller reuses the backing
// storage across cycles.
func (v *CandidateView) At(i int) *Candidate { return &v.cands[i] }

// Slice returns the backing candidate slice in admission order, for
// slice-based policies (the legacy Policy.Pick signature). Same lifetime
// caveat as At.
func (v *CandidateView) Slice() []Candidate { return v.cands }

// IndexedPolicy is an optional extension of Policy. Policies that implement
// it are handed the controller's CandidateView directly; policies that do
// not are served through the legacy slice adapter (Policy.Pick receives
// view.Slice()). All built-in policies in package sched implement both, with
// identical decisions either way.
type IndexedPolicy interface {
	Policy
	// PickIndexed returns the index (as in CandidateView.At) of the request
	// to issue.
	PickIndexed(view *CandidateView, ctx *Context) int
}

// completion is one in-flight read whose data return is scheduled. The
// controller keeps completions in a typed min-heap ordered by (at, seq) —
// the same stable order event.Queue guarantees — instead of scheduling
// closures, so the steady-state hot path allocates nothing per request.
type completion struct {
	at       int64
	seq      uint64
	req      *Request
	issuedAt int64
}

// compHeap is a binary min-heap of completions by (at, seq).
type compHeap []completion

func (h compHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *compHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *compHeap) pop() completion {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = completion{} // release the request pointer for GC
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

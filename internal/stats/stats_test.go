package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic data set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 || r.N() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestObserveNEquivalent(t *testing.T) {
	// ObserveN(x, k) must behave as k repeated Observe(x) calls: the count,
	// min and max exactly, the mean and variance to within float
	// reassociation error (the run loop relies on this when absorbing
	// skipped stall cycles into per-cycle statistics).
	check := func(x float64, k uint8, prefix []float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			x = 42.5
		}
		var bulk, loop Running
		for _, p := range prefix {
			if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > 1e9 {
				p = -3.25
			}
			bulk.Observe(p)
			loop.Observe(p)
		}
		bulk.ObserveN(x, uint64(k))
		for i := uint8(0); i < k; i++ {
			loop.Observe(x)
		}
		if bulk.N() != loop.N() {
			return false
		}
		if bulk.N() == 0 {
			return true
		}
		if bulk.Min() != loop.Min() || bulk.Max() != loop.Max() {
			return false
		}
		close := func(a, b float64) bool {
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			return math.Abs(a-b) <= 1e-9*scale
		}
		return close(bulk.Mean(), loop.Mean()) && close(bulk.Variance(), loop.Variance())
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	// k = 0 must be a no-op.
	var r Running
	r.Observe(3)
	r.ObserveN(9, 0)
	if r.N() != 1 || r.Mean() != 3 || r.Max() != 3 {
		t.Errorf("ObserveN(x, 0) mutated the accumulator: %+v", r)
	}
}

func TestRunningMergeEquivalent(t *testing.T) {
	// Clamp inputs to a realistic magnitude: simulator samples are cycle
	// counts and rates, and extreme doubles (~1e308) overflow any
	// sum-of-squares formulation including the reference computation.
	clamp := func(xs []float64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			out = append(out, math.Mod(x, 1e9))
		}
		return out
	}
	f := func(aRaw, bRaw []float64) bool {
		a, b := clamp(aRaw), clamp(bRaw)
		var whole, left, right Running
		for _, x := range a {
			whole.Observe(x)
			left.Observe(x)
		}
		for _, x := range b {
			whole.Observe(x)
			right.Observe(x)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if math.Abs(whole.Mean()-left.Mean()) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, whole.Variance())
		return math.Abs(whole.Variance()-left.Variance()) < 1e-6*vscale &&
			whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1000)
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != (0+1+2+3+1000)/5.0 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Mean() != 0 {
		t.Errorf("negative sample should clamp to 0, mean = %v", h.Mean())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	med := h.Quantile(0.5)
	if med < 500 || med > 1024 {
		t.Errorf("median bound %d outside [500, 1024]", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 2048 {
		t.Errorf("p99 bound %d outside [990, 2048]", p99)
	}
	if h.Quantile(0) == 0 && h.N() > 0 {
		t.Error("Quantile(0) with samples should return a bucket bound > 0")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := int64(1); i < 5000; i += 7 {
		h.Observe(i * i % 4096)
	}
	prev := int64(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone: q=%v gives %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Inc()
	s.Counter("a").Add(3)
	s.Counter("b").Inc()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	snap := s.Snapshot()
	if snap["a"] != 3 || snap["b"] != 2 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestSetSameCounterIdentity(t *testing.T) {
	s := NewSet()
	if s.Counter("x") != s.Counter("x") {
		t.Fatal("Counter should return the same instance per name")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Observe(5)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestRunningMergeIntoEmpty(t *testing.T) {
	var a, b Running
	b.Observe(3)
	b.Observe(5)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Running
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatal("merging empty changed state")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(100)
	s := h.String()
	if !strings.Contains(s, "n=2") {
		t.Fatalf("String() = %q, missing count", s)
	}
}

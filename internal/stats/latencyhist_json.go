package stats

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// latencyHistJSON is the wire form of LatencyHist: the scalar state plus a
// sparse map of occupied buckets, so an empty histogram costs a few bytes and
// a typical one costs tens of entries rather than LatencyBuckets zeros.
// encoding/json sorts map keys, so the encoding is canonical — equal
// histograms marshal to equal bytes, which content-addressed result caches
// rely on.
type latencyHistJSON struct {
	N      uint64            `json:"n"`
	Sum    uint64            `json:"sum"`
	Max    int64             `json:"max"`
	Counts map[string]uint64 `json:"counts,omitempty"`
}

// MarshalJSON encodes the histogram sparsely (occupied buckets only).
func (h LatencyHist) MarshalJSON() ([]byte, error) {
	out := latencyHistJSON{N: h.n, Sum: h.sum, Max: h.max}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if out.Counts == nil {
			out.Counts = make(map[string]uint64)
		}
		out.Counts[strconv.Itoa(i)] = c
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the sparse form, validating bucket indices and that
// the scalar count matches the bucket population, so a corrupted or
// schema-drifted payload fails loudly instead of yielding a silently
// inconsistent histogram.
func (h *LatencyHist) UnmarshalJSON(data []byte) error {
	var in latencyHistJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	var out LatencyHist
	out.n, out.sum, out.max = in.N, in.Sum, in.Max
	var total uint64
	for key, c := range in.Counts {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || i >= LatencyBuckets {
			return fmt.Errorf("stats: latency histogram bucket key %q out of range", key)
		}
		out.counts[i] = c
		total += c
	}
	if total != in.N {
		return fmt.Errorf("stats: latency histogram count mismatch: n=%d but buckets hold %d", in.N, total)
	}
	*h = out
	return nil
}

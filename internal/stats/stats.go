// Package stats provides the lightweight statistics primitives the simulator
// records results with: counters, running means, latency samplers with
// histograms, and per-core breakdowns.
//
// The hot path (one update per simulated event) must not allocate, so every
// type here is plain-struct based and updated in place.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Running accumulates a stream of float64 samples and reports mean, variance
// (Welford's algorithm, numerically stable), min and max.
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// ObserveN adds k identical samples of value x in one update, using the
// parallel-merge form of Welford's algorithm (a batch of k copies of x has
// mean x and zero within-batch variance). The count n is updated exactly; the
// floating-point mean and m2 agree with k sequential Observe(x) calls to
// within a few ulps — callers that batch per-cycle samples over a skipped
// quiescent stretch (see internal/sim) rely on this staying well inside 1e-9
// relative error.
func (r *Running) ObserveN(x float64, k uint64) {
	if k == 0 {
		return
	}
	if r.n == 0 {
		r.n = k
		r.mean = x
		r.min, r.max = x, x
		return
	}
	if x < r.min {
		r.min = x
	}
	if x > r.max {
		r.max = x
	}
	n := r.n + k
	d := x - r.mean
	r.m2 += d * d * float64(r.n) * float64(k) / float64(n)
	r.mean += d * float64(k) / float64(n)
	r.n = n
}

// N returns the number of samples observed.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance, or 0 with <2 samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset discards all samples.
func (r *Running) Reset() { *r = Running{} }

// Merge folds other into r as if all of other's samples had been observed
// by r (parallel-merge form of Welford).
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	r.m2 += other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	r.mean += d * float64(other.n) / float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n = n
}

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries: bucket i holds samples in [2^i, 2^(i+1)), bucket 0 holds [0,2).
type Histogram struct {
	buckets [40]uint64
	run     Running
}

// Observe records one non-negative sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := v; x >= 2 && b < len(h.buckets)-1; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.run.Observe(float64(v))
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.run.N() }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 { return h.run.Mean() }

// Max returns the largest sample value.
func (h *Histogram) Max() float64 { return h.run.Max() }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) computed
// from the bucket boundaries. With power-of-two buckets the bound is within
// 2x of the true value, which is enough for tail-latency reporting.
func (h *Histogram) Quantile(q float64) int64 {
	if h.run.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.run.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(1) << uint(i+1) // exclusive upper bound of bucket i
		}
	}
	return int64(1) << uint(len(h.buckets))
}

// String renders the non-empty buckets, for debugging.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f", h.N(), h.Mean())
	for i, c := range h.buckets {
		if c > 0 {
			fmt.Fprintf(&sb, " [%d,%d):%d", int64(1)<<uint(i)&^1, int64(1)<<uint(i+1), c)
		}
	}
	return sb.String()
}

// Set is a named collection of counters used for ad-hoc instrumentation and
// reporting. Lookup allocates only on first use of a name.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the counter with the given name, creating it if needed.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Names returns the sorted names of all counters in the set.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counter values keyed by name.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for n, c := range s.counters {
		out[n] = c.Value()
	}
	return out
}

package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// exactQuantile returns the rank-ceil(q*n) order statistic of vs (the same
// rank convention LatencyHist.Quantile uses), after clamping negatives the
// way Observe does.
func exactQuantile(vs []int64, q float64) int64 {
	s := make([]int64, len(vs))
	for i, v := range vs {
		if v < 0 {
			v = 0
		}
		s[i] = v
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(float64(len(s)) * q)
	if float64(rank) < float64(len(s))*q {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// bucketWidthAt returns the width of the bucket containing v.
func bucketWidthAt(v int64) int64 {
	lo, hi := latBucketBounds(latBucket(v))
	return hi - lo + 1
}

// latencyStream is a quick.Generator producing random latency streams with a
// mix of scales (quick's default int64 generator is uniform over the full
// range, which never exercises the small exact buckets).
type latencyStream []int64

func (latencyStream) Generate(r *rand.Rand, size int) (out []int64) {
	n := r.Intn(size*20) + 1
	vs := make([]int64, n)
	for i := range vs {
		// Scale spans unit latencies up to ~2^40 cycles.
		scale := uint(r.Intn(40))
		vs[i] = r.Int63n(int64(1)<<scale + 1)
	}
	return vs
}

// TestQuantileWithinOneBucket checks the histogram's quantile contract
// against exact sort-based order statistics: for every stream and every
// reported percentile, the bucketized value is at least the exact quantile
// and exceeds it by less than one bucket width.
func TestQuantileWithinOneBucket(t *testing.T) {
	property := func(stream latencyStream) bool {
		var h LatencyHist
		for _, v := range stream {
			h.Observe(v)
		}
		for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
			got := h.Quantile(q)
			exact := exactQuantile(stream, q)
			if got < exact || got-exact >= bucketWidthAt(exact) {
				t.Logf("q=%v: hist %d, exact %d (bucket width %d), n=%d",
					q, got, exact, bucketWidthAt(exact), len(stream))
				return false
			}
		}
		return true
	}
	// The generator replaces quick's default []int64 via the named type.
	cfg := &quick.Config{MaxCount: 300, Values: func(args []reflect.Value, r *rand.Rand) {
		args[0] = reflect.ValueOf(latencyStream{}.Generate(r, 50))
	}}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEqualsConcatenation checks that merging shard histograms is
// bitwise identical to one histogram of the concatenated stream — the
// guarantee the parallel replay merge builds on.
func TestMergeEqualsConcatenation(t *testing.T) {
	property := func(a, b, c latencyStream) bool {
		var whole LatencyHist
		for _, s := range [][]int64{a, b, c} {
			for _, v := range s {
				whole.Observe(v)
			}
		}
		var merged LatencyHist
		for _, s := range [][]int64{a, b, c} {
			var shard LatencyHist
			for _, v := range s {
				shard.Observe(v)
			}
			merged.Merge(&shard)
		}
		return merged == whole // struct equality: every count, n, sum, max
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(latencyStream{}.Generate(r, 30))
		}
	}}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSubInvertsMerge checks the delta operation telemetry uses: cumulative
// minus an earlier snapshot equals the histogram of the later samples alone
// (counts, n and sum; max stays cumulative by contract).
func TestSubInvertsMerge(t *testing.T) {
	property := func(early, late latencyStream) bool {
		var prev LatencyHist
		for _, v := range early {
			prev.Observe(v)
		}
		cum := prev
		var want LatencyHist
		for _, v := range late {
			cum.Observe(v)
			want.Observe(v)
		}
		delta := cum
		delta.Sub(&prev)
		if delta.n != want.n || delta.sum != want.sum {
			return false
		}
		return delta.counts == want.counts
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(latencyStream{}.Generate(r, 30))
		}
	}}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLatBucketEdges pins the index function at its boundary values: unit
// buckets, octave boundaries, negatives and the int64 extremes all map to
// in-range buckets whose bounds bracket the value.
func TestLatBucketEdges(t *testing.T) {
	values := []int64{0, 1, latSubBuckets - 1, latSubBuckets, latSubBuckets + 1,
		15, 16, 17, 1023, 1024, 1025, 1<<40 - 1, 1 << 40, 1<<62 - 1, 1 << 62, 1<<63 - 1}
	for _, v := range values {
		b := latBucket(v)
		if b < 0 || b >= LatencyBuckets {
			t.Fatalf("latBucket(%d) = %d out of range [0,%d)", v, b, LatencyBuckets)
		}
		lo, hi := latBucketBounds(b)
		if v < lo || v > hi {
			t.Errorf("latBucket(%d) = %d with bounds [%d,%d] not containing it", v, b, lo, hi)
		}
	}
	// Buckets tile the value axis: each bucket starts where the previous
	// ended, starting at zero.
	next := int64(0)
	for i := 0; i < LatencyBuckets; i++ {
		lo, hi := latBucketBounds(i)
		if lo != next {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, next)
		}
		if hi < lo {
			t.Fatalf("bucket %d has inverted bounds [%d,%d]", i, lo, hi)
		}
		next = hi + 1
		if next < 0 { // wrapped past int64 max on the final bucket
			break
		}
	}
}

// TestLatencyHistBasics pins clamping, mean, max and CountAtOrBelow.
func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []int64{-5, 0, 3, 7, 100} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if want := float64(0+0+3+7+100) / 5; h.Mean() != want {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d, want 100", h.Max())
	}
	if got := h.CountAtOrBelow(7); got != 4 {
		t.Fatalf("CountAtOrBelow(7) = %d, want 4 (unit buckets are exact)", got)
	}
	if got := h.CountAtOrBelow(-1); got != 0 {
		t.Fatalf("CountAtOrBelow(-1) = %d, want 0", got)
	}
	if got := h.CountAtOrBelow(1 << 50); got != 5 {
		t.Fatalf("CountAtOrBelow(big) = %d, want 5", got)
	}
	h.Reset()
	if h != (LatencyHist{}) {
		t.Fatal("Reset must zero the histogram")
	}
}

func TestLatencyHistJSONRoundTrip(t *testing.T) {
	var h LatencyHist
	for _, v := range []int64{0, 1, 7, 8, 100, 431, 5000, 1 << 40} {
		h.Observe(v)
	}
	blob, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyHist
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed the histogram:\n%s", blob)
	}
	// Canonical: equal histograms marshal to equal bytes.
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("encoding not canonical:\n%s\n%s", blob, blob2)
	}
	// Empty histograms stay tiny and round-trip too.
	var empty, emptyBack LatencyHist
	blob, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack != empty {
		t.Fatalf("empty round trip changed the histogram: %s", blob)
	}
}

func TestLatencyHistJSONRejectsCorruption(t *testing.T) {
	for name, blob := range map[string]string{
		"bad key":        `{"n":1,"sum":5,"max":5,"counts":{"x":1}}`,
		"key range":      `{"n":1,"sum":5,"max":5,"counts":{"9999":1}}`,
		"count mismatch": `{"n":2,"sum":5,"max":5,"counts":{"5":1}}`,
	} {
		var h LatencyHist
		if err := json.Unmarshal([]byte(blob), &h); err == nil {
			t.Errorf("%s: corrupted payload unmarshalled cleanly", name)
		}
	}
}

package stats

import (
	"math"
	"math/bits"
)

// LatencyHist is a deterministic fixed-bucket latency histogram with
// log-spaced (log-linear) boundaries: values below latSubBuckets get exact
// unit-width buckets, and every octave [2^k, 2^(k+1)) above that is split
// into latSubBuckets equal sub-buckets, so the bucket width never exceeds
// 1/latSubBuckets of the value (12.5% relative). All state is integer —
// counts, a sum for the mean, and a max — which makes two histograms of the
// same sample multiset bitwise equal regardless of observation order: the
// property the run-mode differential tests (naive vs cycle-skip vs parallel
// windows) and the parallel replay merge rely on. There is no streaming
// sketch and no floating-point accumulation anywhere on the observe path.
//
// The bucket array is part of the struct (no pointer, no allocation), so
// embedding a LatencyHist in per-core statistics keeps the read-completion
// hot path allocation-free, and struct equality (==) is a complete
// byte-level comparison.
type LatencyHist struct {
	n   uint64
	sum uint64
	max int64
	// counts[latBucket(v)] is the number of observed samples mapping to that
	// bucket; see latBucket for the index function.
	counts [LatencyBuckets]uint64
}

const (
	// latSubBits is log2 of the sub-buckets per octave.
	latSubBits = 3
	// latSubBuckets is the number of sub-buckets each octave is split into.
	latSubBuckets = 1 << latSubBits
	// LatencyBuckets is the total bucket count: indices 0..latSubBuckets-1
	// are the exact unit buckets, and each of the 62-latSubBits+1 octaves
	// [2^k, 2^(k+1)) for k in [latSubBits, 62] contributes latSubBuckets
	// more (every non-negative int64 maps to a bucket).
	LatencyBuckets = (62-latSubBits+1)*latSubBuckets + latSubBuckets
)

// latBucket maps a non-negative value to its bucket index: the identity for
// v < latSubBuckets, then (k-latSubBits)*latSubBuckets + (v >> (k-latSubBits))
// where k is the position of v's most significant bit — the classic
// log-linear (HDR-style) index, computed with one bits.Len64 and one shift.
func latBucket(v int64) int {
	if v < latSubBuckets {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1
	return (k-latSubBits)*latSubBuckets + int(v>>uint(k-latSubBits))
}

// latBucketBounds returns bucket i's inclusive [lo, hi] value range.
func latBucketBounds(i int) (lo, hi int64) {
	if i < latSubBuckets {
		return int64(i), int64(i)
	}
	g := i / latSubBuckets // octave group >= 1; bucket width is 2^(g-1)
	shift := uint(g - 1)
	lo = int64(i-(g-1)*latSubBuckets) << shift
	return lo, lo + (int64(1) << shift) - 1
}

// Observe records one sample; negative values clamp to zero.
func (h *LatencyHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[latBucket(v)]++
	h.n++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// N returns the number of samples observed.
func (h *LatencyHist) N() uint64 { return h.n }

// Mean returns the exact sample mean (integer sum over integer count), or 0
// with no samples.
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *LatencyHist) Max() int64 { return h.max }

// Quantile returns the inclusive upper bound of the bucket holding the
// sample of rank ceil(q*N) (rank 1 = smallest), or 0 with no samples. The
// true q-quantile lies inside that bucket, so the reported value is within
// one bucket width of it — at most 12.5% relative for values above
// latSubBuckets, exact below.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			_, hi := latBucketBounds(i)
			return hi
		}
	}
	return h.max // unreachable: cum reaches n
}

// CountAtOrBelow returns how many samples certainly have value <= v: the
// total count of buckets whose entire range lies at or below v. Samples in
// v's own bucket are included only when v is the bucket's upper bound, so
// the answer errs low by at most one bucket's population (the same
// one-bucket-width contract Quantile has).
func (h *LatencyHist) CountAtOrBelow(v int64) uint64 {
	if v < 0 {
		return 0
	}
	idx := latBucket(v)
	if _, hi := latBucketBounds(idx); hi > v {
		idx--
	}
	var cum uint64
	for i := 0; i <= idx; i++ {
		cum += h.counts[i]
	}
	return cum
}

// Merge folds other into h as if h had observed all of other's samples. A
// merge of shard histograms is bitwise equal to the histogram of the
// concatenated stream, which is what lets epoch-sharded parallel runs
// aggregate per-shard distributions exactly.
func (h *LatencyHist) Merge(other *LatencyHist) {
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Sub removes prev's samples from h, turning a cumulative histogram into the
// delta over an interval; prev must be an earlier snapshot of the same
// stream (every count monotonically <=). Max is left at the cumulative value
// — an upper bound for the interval, since the interval's own max is not
// recoverable from counts.
func (h *LatencyHist) Sub(prev *LatencyHist) {
	h.n -= prev.n
	h.sum -= prev.sum
	for i := range h.counts {
		h.counts[i] -= prev.counts[i]
	}
}

// Reset discards all samples.
func (h *LatencyHist) Reset() { *h = LatencyHist{} }

// Package cliflags registers the operational flags shared by every sweep
// surface — cmd/sweep, cmd/experiments, and cmd/sweepd — with one canonical
// name, default, and help string each, so "-parallel", "-simparallel",
// "-progress" and "-resume" mean exactly the same thing everywhere.
package cliflags

import (
	"flag"
	"time"
)

// Canonical defaults.
const (
	// DefaultProgress is the interval between progress lines.
	DefaultProgress = 10 * time.Second
)

// Parallel registers -parallel: the worker-pool width fanning independent
// jobs across goroutines (or, on a sweepd worker, concurrent job slots).
// Output is identical for every width.
func Parallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 1,
		"worker pool width for independent jobs (0 = GOMAXPROCS); results are identical for every width")
}

// SimParallel registers -simparallel: intra-run parallelism over simulated
// cores (DESIGN.md §11). Orthogonal to -parallel, which parallelizes across
// runs; results are identical either way.
func SimParallel(fs *flag.FlagSet) *int {
	return fs.Int("simparallel", 0,
		"intra-run parallelism over simulated cores (0 = auto, 1 = serial, >1 = worker count); results are identical either way")
}

// Progress registers -progress: the interval between progress lines on
// stderr (0 disables them).
func Progress(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("progress", DefaultProgress,
		"interval between progress lines (0 = off)")
}

// Resume registers -resume: the JSON checkpoint file persisting completed
// jobs; rerunning with the same file resumes instead of re-simulating. A
// corrupt or mismatched checkpoint is moved aside and the run starts clean.
func Resume(fs *flag.FlagSet) *string {
	return fs.String("resume", "",
		"checkpoint file: persist completed jobs, resume on rerun")
}

// Timeout registers -timeout: the per-job wall-clock budget.
func Timeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "per-job wall-clock budget (0 = unbounded)")
}

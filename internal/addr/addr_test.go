package addr

import (
	"testing"
	"testing/quick"
)

func defaultMapper(t *testing.T) *Mapper {
	t.Helper()
	m, err := NewMapper(2, 2, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometryValidation(t *testing.T) {
	bad := [][4]int{
		{3, 2, 4, 128},
		{2, 3, 4, 128},
		{2, 2, 5, 128},
		{2, 2, 4, 100},
		{0, 2, 4, 128},
	}
	for _, g := range bad {
		if _, err := NewMapper(g[0], g[1], g[2], g[3]); err == nil {
			t.Errorf("NewMapper(%v) accepted invalid geometry", g)
		}
	}
}

func TestMustMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMapper did not panic on bad geometry")
		}
	}()
	MustMapper(3, 2, 4, 128)
}

func TestChannelInterleaveIsLSB(t *testing.T) {
	m := defaultMapper(t)
	// Consecutive lines must alternate channels (cache-line interleaving).
	for line := uint64(0); line < 64; line++ {
		c := m.Map(line)
		if c.Channel != int(line%2) {
			t.Fatalf("line %d: channel %d, want %d", line, c.Channel, line%2)
		}
	}
}

func TestSequentialStreamRowLocality(t *testing.T) {
	m := defaultMapper(t)
	// Lines that are BankStride apart land in the same bank, consecutive
	// columns, same row — the property Hit-First scheduling exploits.
	stride := uint64(m.BankStride())
	base := uint64(12345) * stride
	first := m.Map(base)
	for i := uint64(1); i < 8; i++ {
		c := m.Map(base + i*stride)
		if c.Channel != first.Channel || c.Rank != first.Rank || c.Bank != first.Bank {
			t.Fatalf("stride step %d changed bank: %+v vs %+v", i, c, first)
		}
		if c.Row != first.Row {
			t.Fatalf("stride step %d changed row within a row's worth of lines", i)
		}
		if c.Col != first.Col+int(i) {
			t.Fatalf("stride step %d: col %d, want %d", i, c.Col, first.Col+int(i))
		}
	}
}

func TestRowAdvancesAfterFullRow(t *testing.T) {
	m := defaultMapper(t)
	stride := uint64(m.BankStride())
	base := uint64(0)
	last := m.Map(base + stride*uint64(m.LinesPerRow()-1))
	next := m.Map(base + stride*uint64(m.LinesPerRow()))
	if last.Row == next.Row {
		t.Fatal("row did not advance after exhausting the row's columns")
	}
	if next.Col != 0 {
		t.Fatalf("new row should start at column 0, got %d", next.Col)
	}
}

func TestMapUnmapRoundTrip(t *testing.T) {
	m := defaultMapper(t)
	f := func(lineRaw uint64) bool {
		line := lineRaw & ((1 << 40) - 1) // keep rows in a sane range
		return m.Unmap(m.Map(line)) == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapIsInjectiveOverWindow(t *testing.T) {
	m := defaultMapper(t)
	seen := make(map[Coord]uint64)
	for line := uint64(0); line < 1<<14; line++ {
		c := m.Map(line)
		if prev, dup := seen[c]; dup {
			t.Fatalf("lines %d and %d map to same coord %+v", prev, line, c)
		}
		seen[c] = line
	}
}

func TestCoordRangesValid(t *testing.T) {
	m := defaultMapper(t)
	f := func(line uint64) bool {
		c := m.Map(line)
		return c.Channel >= 0 && c.Channel < 2 &&
			c.Rank >= 0 && c.Rank < 2 &&
			c.Bank >= 0 && c.Bank < 4 &&
			c.Col >= 0 && c.Col < 128 &&
			c.Row >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalBankDense(t *testing.T) {
	m := defaultMapper(t)
	seen := make(map[int]bool)
	for line := uint64(0); line < uint64(m.TotalBanks()); line++ {
		c := m.Map(line)
		gb := c.GlobalBank(2, 4)
		if gb < 0 || gb >= m.TotalBanks() {
			t.Fatalf("GlobalBank %d out of range [0,%d)", gb, m.TotalBanks())
		}
		seen[gb] = true
	}
	if len(seen) != m.TotalBanks() {
		t.Fatalf("first %d lines touched %d distinct banks, want all %d",
			m.TotalBanks(), len(seen), m.TotalBanks())
	}
}

func TestRowOfMatchesMap(t *testing.T) {
	m := defaultMapper(t)
	for _, line := range []uint64{0, 1, 17, 1 << 20, 123456789} {
		c := m.Map(line)
		r := m.RowOf(line)
		if r.Row != c.Row || r.GlobalBank != c.GlobalBank(2, 4) {
			t.Errorf("RowOf(%d) = %+v inconsistent with Map", line, r)
		}
	}
}

func TestSingleChannelGeometry(t *testing.T) {
	m, err := NewMapper(1, 1, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Map(127)
	if c.Channel != 0 || c.Bank != 0 || c.Rank != 0 || c.Col != 127 || c.Row != 0 {
		t.Fatalf("degenerate geometry mapping wrong: %+v", c)
	}
	if m.Map(128).Row != 1 {
		t.Fatal("row should advance at line 128")
	}
}

func TestBankStride(t *testing.T) {
	m := defaultMapper(t)
	if m.BankStride() != 16 {
		t.Fatalf("BankStride = %d, want 16", m.BankStride())
	}
	if m.TotalBanks() != 16 || m.BanksPerChannel() != 8 {
		t.Fatalf("bank counts wrong: total %d per-chan %d", m.TotalBanks(), m.BanksPerChannel())
	}
}

func TestPageInterleaveColumnsFirst(t *testing.T) {
	m, err := NewMapperWith(2, 2, 4, 128, PageInterleave)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interleave() != PageInterleave {
		t.Fatal("interleave accessor wrong")
	}
	// Consecutive lines stay in the same bank and row for a full row.
	first := m.Map(0)
	for i := uint64(1); i < 128; i++ {
		c := m.Map(i)
		if c.Channel != first.Channel || c.Bank != first.Bank || c.Row != first.Row {
			t.Fatalf("line %d left the row: %+v vs %+v", i, c, first)
		}
		if c.Col != int(i) {
			t.Fatalf("line %d col = %d", i, c.Col)
		}
	}
	// Line 128 moves to the next channel (col bits exhausted).
	if c := m.Map(128); c.Channel == first.Channel && c.Bank == first.Bank {
		t.Fatalf("line 128 stayed in the same channel+bank: %+v", c)
	}
}

func TestPageInterleaveRoundTrip(t *testing.T) {
	m, err := NewMapperWith(2, 2, 4, 128, PageInterleave)
	if err != nil {
		t.Fatal(err)
	}
	f := func(lineRaw uint64) bool {
		line := lineRaw & ((1 << 40) - 1)
		return m.Unmap(m.Map(line)) == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveString(t *testing.T) {
	if LineInterleave.String() != "line" || PageInterleave.String() != "page" {
		t.Fatal("Interleave String() wrong")
	}
	if Interleave(7).String() != "Interleave(7)" {
		t.Fatal("unknown Interleave String() wrong")
	}
}

func TestUnknownInterleaveRejected(t *testing.T) {
	if _, err := NewMapperWith(2, 2, 4, 128, Interleave(9)); err == nil {
		t.Fatal("unknown interleave accepted")
	}
}

// Package addr maps physical cache-line addresses onto DRAM coordinates
// (channel, rank, bank, row, column).
//
// The paper's memory system uses close-page mode with cache-line
// interleaving: consecutive cache lines spread across channels first, then
// banks, so that independent requests enjoy channel- and bank-level
// parallelism, while a long sequential stream still revisits each bank's open
// row every (channels x banks) lines — which is what makes Hit-First
// scheduling matter. The default mapping therefore places, from least to most
// significant line-address bits: channel, bank, rank, column, row.
package addr

import "fmt"

// Coord identifies one cache-line-sized column in the DRAM system.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int64
	Col     int // in units of cache lines within a row
}

// GlobalBank returns a dense index for (Channel, Rank, Bank), usable as an
// array index across all banks in the system.
func (c Coord) GlobalBank(ranksPerChan, banksPerRank int) int {
	return (c.Channel*ranksPerChan+c.Rank)*banksPerRank + c.Bank
}

// Interleave selects how consecutive cache lines spread over the DRAM
// geometry.
type Interleave uint8

const (
	// LineInterleave (the paper's choice) places, from least to most
	// significant line-address bits: channel, bank, rank, column, row —
	// consecutive lines alternate channels and banks.
	LineInterleave Interleave = iota
	// PageInterleave places the column bits lowest: consecutive lines fill
	// one row before moving to the next channel/bank — the layout the paper
	// mentions pairing with open-page mode and deliberately does not use.
	PageInterleave
)

// String implements fmt.Stringer.
func (iv Interleave) String() string {
	switch iv {
	case LineInterleave:
		return "line"
	case PageInterleave:
		return "page"
	default:
		return fmt.Sprintf("Interleave(%d)", uint8(iv))
	}
}

// Mapper converts line addresses to coordinates and back. All geometry
// fields must be powers of two.
type Mapper struct {
	channels    int
	ranks       int
	banks       int
	linesPerRow int
	interleave  Interleave

	chanShift, chanMask uint64
	bankShift, bankMask uint64
	rankShift, rankMask uint64
	colShift, colMask   uint64
	rowShift            uint64
}

func log2(v int) uint64 {
	var n uint64
	for x := v; x > 1; x >>= 1 {
		n++
	}
	return n
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// NewMapper builds a line-interleaved mapper for the given geometry.
// linesPerRow is the number of cache lines per DRAM row
// (RowBytes / LineBytes).
func NewMapper(channels, ranksPerChan, banksPerRank, linesPerRow int) (*Mapper, error) {
	return NewMapperWith(channels, ranksPerChan, banksPerRank, linesPerRow, LineInterleave)
}

// NewMapperWith builds a mapper with an explicit interleaving scheme.
func NewMapperWith(channels, ranksPerChan, banksPerRank, linesPerRow int, iv Interleave) (*Mapper, error) {
	for _, g := range []struct {
		name string
		v    int
	}{
		{"channels", channels},
		{"ranksPerChan", ranksPerChan},
		{"banksPerRank", banksPerRank},
		{"linesPerRow", linesPerRow},
	} {
		if !isPow2(g.v) {
			return nil, fmt.Errorf("addr: %s = %d is not a power of two", g.name, g.v)
		}
	}
	if iv > PageInterleave {
		return nil, fmt.Errorf("addr: unknown interleave %d", iv)
	}
	m := &Mapper{
		channels:    channels,
		ranks:       ranksPerChan,
		banks:       banksPerRank,
		linesPerRow: linesPerRow,
		interleave:  iv,
	}
	cb, bb, rb, colb := log2(channels), log2(banksPerRank), log2(ranksPerChan), log2(linesPerRow)
	switch iv {
	case LineInterleave:
		m.chanShift, m.chanMask = 0, uint64(channels-1)
		m.bankShift, m.bankMask = cb, uint64(banksPerRank-1)
		m.rankShift, m.rankMask = cb+bb, uint64(ranksPerChan-1)
		m.colShift, m.colMask = cb+bb+rb, uint64(linesPerRow-1)
		m.rowShift = cb + bb + rb + colb
	case PageInterleave:
		// Column lowest: a row fills before the stream moves on.
		m.colShift, m.colMask = 0, uint64(linesPerRow-1)
		m.chanShift, m.chanMask = colb, uint64(channels-1)
		m.bankShift, m.bankMask = colb+cb, uint64(banksPerRank-1)
		m.rankShift, m.rankMask = colb+cb+bb, uint64(ranksPerChan-1)
		m.rowShift = colb + cb + bb + rb
	}
	return m, nil
}

// MustMapper is NewMapper but panics on invalid geometry; for use with
// validated configurations.
func MustMapper(channels, ranksPerChan, banksPerRank, linesPerRow int) *Mapper {
	m, err := NewMapper(channels, ranksPerChan, banksPerRank, linesPerRow)
	if err != nil {
		panic(err)
	}
	return m
}

// MustMapperWith is NewMapperWith but panics on invalid geometry.
func MustMapperWith(channels, ranksPerChan, banksPerRank, linesPerRow int, iv Interleave) *Mapper {
	m, err := NewMapperWith(channels, ranksPerChan, banksPerRank, linesPerRow, iv)
	if err != nil {
		panic(err)
	}
	return m
}

// Interleave returns the mapper's interleaving scheme.
func (m *Mapper) Interleave() Interleave { return m.interleave }

// Map converts a line address (byte address / line size) to its coordinate.
func (m *Mapper) Map(line uint64) Coord {
	return Coord{
		Channel: int((line >> m.chanShift) & m.chanMask),
		Bank:    int((line >> m.bankShift) & m.bankMask),
		Rank:    int((line >> m.rankShift) & m.rankMask),
		Col:     int((line >> m.colShift) & m.colMask),
		Row:     int64(line >> m.rowShift),
	}
}

// Unmap is the inverse of Map.
func (m *Mapper) Unmap(c Coord) uint64 {
	return uint64(c.Channel)<<m.chanShift |
		uint64(c.Bank)<<m.bankShift |
		uint64(c.Rank)<<m.rankShift |
		uint64(c.Col)<<m.colShift |
		uint64(c.Row)<<m.rowShift
}

// Channels returns the number of channels in the geometry.
func (m *Mapper) Channels() int { return m.channels }

// BanksPerChannel returns ranks x banks, the schedulable banks per channel.
func (m *Mapper) BanksPerChannel() int { return m.ranks * m.banks }

// TotalBanks returns the number of banks across all channels.
func (m *Mapper) TotalBanks() int { return m.channels * m.ranks * m.banks }

// LinesPerRow returns the row-buffer capacity in cache lines.
func (m *Mapper) LinesPerRow() int { return m.linesPerRow }

// BankStride returns how many consecutive line addresses separate two lines
// that fall in the same bank (channels x ranks x banks). A sequential stream
// touches the same bank every BankStride lines, advancing one column each
// time, so it stays in one row for BankStride x LinesPerRow lines.
func (m *Mapper) BankStride() int { return m.channels * m.ranks * m.banks }

// RowID is a compact identity for a (global bank, row) pair, used by queue
// scans that check for row-buffer hits.
type RowID struct {
	GlobalBank int
	Row        int64
}

// RowOf returns the RowID for a line address.
func (m *Mapper) RowOf(line uint64) RowID {
	c := m.Map(line)
	return RowID{GlobalBank: c.GlobalBank(m.ranks, m.banks), Row: c.Row}
}

package sched

import (
	"testing"

	"memsched/internal/memctrl"
	"memsched/internal/xrand"
)

// serveAt runs one contested pick at the given cycle with candidates from the
// listed cores (all misses, ages by position) and returns the core served.
func serveAt(t *testing.T, p memctrl.Policy, now int64, cores ...int) int {
	t.Helper()
	c := ctx(8)
	c.Now = now
	var cands []memctrl.Candidate
	for i, core := range cores {
		cands = append(cands, cand(core, now-int64(len(cores)-i), uint64(i+1), false))
	}
	return cands[p.Pick(cands, c)].Req.Core
}

func TestBLISSBlacklistsStreak(t *testing.T) {
	p, _ := New("bliss", 8)
	// Core 0's requests are always oldest, so without blacklisting it would
	// win forever. After blissThreshold consecutive services its blacklist
	// bit must flip and core 1 take over.
	for i := 0; i < blissThreshold; i++ {
		if got := serveAt(t, p, int64(10+i), 0, 1); got != 0 {
			t.Fatalf("pick %d served core %d, want 0 (oldest, not yet blacklisted)", i, got)
		}
	}
	if got := serveAt(t, p, 20, 0, 1); got != 1 {
		t.Fatalf("after %d-streak, served core %d, want 1 (core 0 blacklisted)", blissThreshold, got)
	}
}

func TestBLISSStreakBreaksOnOtherCore(t *testing.T) {
	p, _ := New("bliss", 8)
	// Alternate cores so no streak ever reaches the threshold: nothing may be
	// blacklisted and age order must keep winning.
	for i := 0; i < 4*blissThreshold; i++ {
		older := i % 2
		if got := serveAt(t, p, int64(10+i), older, 1-older); got != older {
			t.Fatalf("pick %d served core %d, want %d (alternation must not blacklist)", i, got, older)
		}
	}
}

func TestBLISSClearsAfterInterval(t *testing.T) {
	p, _ := New("bliss", 8)
	for i := 0; i <= blissThreshold; i++ {
		serveAt(t, p, int64(10+i), 0, 1) // blacklist core 0
	}
	b := p.(*bliss)
	if !b.black[0] {
		t.Fatal("core 0 not blacklisted after streak")
	}
	// First pick at/after the clearing boundary must see a cleared blacklist.
	if got := serveAt(t, p, blissClearInterval+5, 0, 1); got != 0 {
		t.Fatalf("after clearing interval served core %d, want 0 (blacklist cleared)", got)
	}
}

// TestBLISSNoStarvation drives an adversarial stream — core 0 always has the
// oldest request, trying to monopolize service — and checks BLISS's bound:
// every core is served within every clearing interval (once all cores have
// streaked onto the blacklist the scheme deliberately degenerates to age
// order until the next clearing, so the hog may still take the most slots —
// but it can never shut the others out of an interval).
func TestBLISSNoStarvation(t *testing.T) {
	p, _ := New("bliss", 4)
	const intervals = 3
	served := make([]map[int]int, intervals)
	for i := range served {
		served[i] = map[int]int{}
	}
	for now := int64(1); now < intervals*blissClearInterval; now += 7 {
		served[now/blissClearInterval][serveAt(t, p, now, 0, 1, 2, 3)]++
	}
	for i, byCore := range served {
		for core := 0; core < 4; core++ {
			if byCore[core] == 0 {
				t.Errorf("interval %d: core %d starved (service counts %v)", i, core, byCore)
			}
		}
	}
}

// TestBLISSBlacklistedNeverBeatsClean pins the priority inversion at the heart
// of the scheme: a blacklisted core's request loses to any non-blacklisted
// candidate, regardless of age or row-buffer state.
func TestBLISSBlacklistedNeverBeatsClean(t *testing.T) {
	p, _ := New("bliss", 2)
	for i := 0; i <= blissThreshold; i++ {
		serveAt(t, p, int64(10+i), 0, 1) // blacklist core 0
	}
	c := ctx(2)
	c.Now = 100
	cands := []memctrl.Candidate{
		cand(0, 1, 1, true), // much older AND a row hit, but blacklisted
		cand(1, 90, 2, false),
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("blacklisted row-hit beat clean miss (picked %d)", got)
	}
}

func TestBLISSDeterministic(t *testing.T) {
	run := func() []int {
		p, _ := New("bliss", 4)
		rng := xrand.New(42)
		var picks []int
		for now := int64(1); now < 2*blissClearInterval; now += 11 {
			c := ctx(4)
			c.Now = now
			cands := []memctrl.Candidate{
				cand(0, now-3, uint64(now), rng.Intn(2) == 0),
				cand(1, now-2, uint64(now)+1, rng.Intn(2) == 0),
				cand(2, now-1, uint64(now)+2, rng.Intn(2) == 0),
			}
			picks = append(picks, p.Pick(cands, c))
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

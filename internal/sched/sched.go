// Package sched implements every memory scheduling policy evaluated in the
// paper, plus the primitives of its Section 2, behind the memctrl.Policy
// interface:
//
//	fcfs      first-come first-serve (age order; read-bypass-write is
//	          enforced by the controller for every policy)
//	hf-rf     Hit-First with Read-First — the paper's baseline: row-buffer
//	          hits before misses, then age
//	rr        Round-Robin across cores; hit-first then age within a core
//	lreq      Least-Request: fewest pending reads first [Zhu & Zhang, HPCA'05]
//	me        fixed priority by memory efficiency alone
//	me-lreq   the paper's contribution: quantized ME[i]/PendingRead[i]
//	fq        fair queueing after Nesbit et al. [MICRO'06]: earliest per-core
//	          virtual time first (related.go)
//	burst     burst scheduling after Shao & Davis [HPCA'07]: longest same-row
//	          burst first (related.go)
//	bliss     the Blacklisting Memory Scheduler [Subramanian et al.,
//	          ICCD'14]: non-blacklisted sources first, streak-based
//	          blacklisting with periodic clearing (bliss.go)
//	cads      core-aware dynamic scheduling: per-core priorities learned
//	          online each epoch from observed row-hit rate and request
//	          intensity, no offline profiles (cads.go)
//	dash      deadline-aware LC/BE serving: latency-critical requests jump
//	          the queue only when their slack is nearly exhausted,
//	          best-effort requests fill the remaining bandwidth (dash.go)
//	fix:...   fixed priority by an explicit core order, e.g. fix:0123,
//	          fix:3210 (Section 5.2's FIX-0123 / FIX-3210)
//
// All policies receive candidates that are already restricted to one DRAM
// channel, one request class (read vs write), and banks that can accept a
// transaction this cycle; the controller also owns write-drain mode. What a
// policy decides is exactly what the paper varies: the order among
// schedulable requests.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"memsched/internal/memctrl"
)

// New constructs the policy with the given registry name. Fixed-order
// policies use the form "fix:<digits>", where digits list core IDs from
// highest to lowest priority (e.g. "fix:3210").
func New(name string, cores int) (memctrl.Policy, error) {
	switch name {
	case "fcfs":
		return fcfs{}, nil
	case "hf-rf":
		return hfrf{}, nil
	case "rr":
		return newRoundRobin(cores), nil
	case "lreq":
		return lreq{}, nil
	case "me":
		return me{}, nil
	case "me-lreq":
		return melreq{}, nil
	case "fq":
		return newFairQueue(cores), nil
	case "burst":
		return burst{}, nil
	case "bliss":
		return newBLISS(cores), nil
	case "cads":
		return newCADS(cores), nil
	case "dash":
		return dash{}, nil
	}
	if order, ok := strings.CutPrefix(name, "fix:"); ok {
		return newFixed(order, cores)
	}
	return nil, fmt.Errorf("sched: unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names returns the registry names of all built-in policies, sorted, with
// the fixed family's "fix:<order>" pattern kept last so CLI help and error
// messages read as a name list followed by the one pattern entry.
func Names() []string {
	n := []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "dash"}
	sort.Strings(n)
	return append(n, "fix:<order>")
}

// pickBest selects the best candidate under a lexicographic key supplied as
// a three-way comparator: better(a, b) > 0 means a is strictly better.
// Exact ties are broken by a uniform random draw, as the paper specifies
// ("a tie of equal priority may be broken by a random selection").
//
// It iterates the view in admission order, the same order the legacy slice
// path used, so RNG consumption — and therefore fixed-seed results — are
// identical whichever Policy entry point the controller calls.
func pickBest(view *memctrl.CandidateView, ctx *memctrl.Context,
	better func(a, b *memctrl.Candidate) int) int {
	best := 0
	ties := 1
	for i := 1; i < view.Len(); i++ {
		switch cmp := better(view.At(i), view.At(best)); {
		case cmp > 0:
			best = i
			ties = 1
		case cmp == 0:
			// Reservoir-sample among ties so each tied candidate is equally
			// likely without materializing the tie set.
			ties++
			if ctx.RNG.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// cmpBool converts a boolean preference into a comparator contribution.
func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case a:
		return 1
	default:
		return -1
	}
}

// cmpFloat prefers larger values.
func cmpFloat(a, b float64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	default:
		return 0
	}
}

// cmpAge prefers earlier arrival (and lower ID as a stable refinement for
// same-cycle arrivals).
func cmpAge(a, b *memctrl.Candidate) int {
	switch {
	case a.Req.Arrive < b.Req.Arrive:
		return 1
	case a.Req.Arrive > b.Req.Arrive:
		return -1
	case a.Req.ID < b.Req.ID:
		return 1
	case a.Req.ID > b.Req.ID:
		return -1
	default:
		return 0
	}
}

// fcfs serves strictly in arrival order.
type fcfs struct{}

func (fcfs) Name() string { return "fcfs" }

func (p fcfs) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (fcfs) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	return pickBest(view, ctx, cmpAge)
}

// hfrf is the paper's baseline: row-buffer hits first, then age.
type hfrf struct{}

func (hfrf) Name() string { return "hf-rf" }

func (p hfrf) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (hfrf) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

// roundRobin rotates service across cores. The pointer advances to the core
// that was just served, so the next selection starts from its successor.
type roundRobin struct {
	cores int
	last  int
}

func newRoundRobin(cores int) *roundRobin {
	return &roundRobin{cores: cores, last: cores - 1}
}

func (*roundRobin) Name() string { return "rr" }

func (p *roundRobin) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (p *roundRobin) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	// Rank cores by rotation distance from the last-served core; the
	// candidate whose core is soonest in rotation wins. Within one core,
	// hit-first then age.
	dist := func(core int) int {
		return (core - p.last - 1 + p.cores) % p.cores
	}
	best := pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if c := cmpFloat(float64(-dist(a.Req.Core)), float64(-dist(b.Req.Core))); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
	p.last = view.At(best).Req.Core
	return best
}

// lreq prioritizes the core with the fewest pending read requests.
type lreq struct{}

func (lreq) Name() string { return "lreq" }

func (p lreq) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (lreq) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if c := cmpFloat(float64(-ctx.PendingReads[a.Req.Core]),
			float64(-ctx.PendingReads[b.Req.Core])); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

// me applies a fixed priority equal to each core's memory efficiency.
type me struct{}

func (me) Name() string { return "me" }

func (p me) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (me) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	// ME is a pure fixed-priority scheme (paper Section 5.1): the core rank
	// dominates even row-buffer hits, which is exactly why it can destroy
	// locality and starve low-priority cores during high-priority bursts.
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpFloat(ctx.FixedME[a.Req.Core], ctx.FixedME[b.Req.Core]); c != 0 {
			return c
		}
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

// melreq is the paper's scheme: priority = quantized ME[i]/PendingRead[i]
// (delivered via ctx.Scores from the controller's priority tables), then
// row-buffer hits, then age.
type melreq struct{}

func (melreq) Name() string { return "me-lreq" }

func (p melreq) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (melreq) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if c := cmpFloat(ctx.Scores[a.Req.Core], ctx.Scores[b.Req.Core]); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

// fixed applies an arbitrary fixed core order (Section 5.2's FIX-3210 and
// FIX-0123).
type fixed struct {
	name string
	rank []int // rank[core] = priority, higher wins
}

func newFixed(order string, cores int) (*fixed, error) {
	if len(order) != cores {
		return nil, fmt.Errorf("sched: fix order %q names %d cores, system has %d",
			order, len(order), cores)
	}
	f := &fixed{name: "fix:" + order, rank: make([]int, cores)}
	seen := make([]bool, cores)
	for pos, ch := range order {
		core := int(ch - '0')
		if core < 0 || core >= cores || seen[core] {
			return nil, fmt.Errorf("sched: fix order %q is not a permutation of 0..%d",
				order, cores-1)
		}
		seen[core] = true
		f.rank[core] = len(order) - pos // first listed = highest rank
	}
	return f, nil
}

func (f *fixed) Name() string { return f.name }

func (f *fixed) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return f.PickIndexed(&v, ctx)
}

func (f *fixed) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	// Like ME, the FIX schemes are pure fixed priority: core rank first.
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpFloat(float64(f.rank[a.Req.Core]), float64(f.rank[b.Req.Core])); c != 0 {
			return c
		}
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

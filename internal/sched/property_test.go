package sched

import (
	"testing"
	"testing/quick"

	"memsched/internal/memctrl"
	"memsched/internal/xrand"
)

// lexKey reproduces each policy's documented ordering so the property test
// can verify Pick returns a maximal candidate. Higher tuple compares better.
type lexKey struct {
	a, b, c float64
}

func keyLess(x, y lexKey) bool {
	if x.a != y.a {
		return x.a < y.a
	}
	if x.b != y.b {
		return x.b < y.b
	}
	return x.c < y.c
}

// ageScore converts arrival (earlier better) into a bigger-is-better score.
func ageScore(c *memctrl.Candidate) float64 {
	return -float64(c.Req.Arrive)*1e6 - float64(c.Req.ID)
}

func boolScore(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// keyFor returns the documented sort key for a candidate under a policy.
func keyFor(policy string, cand *memctrl.Candidate, ctx *memctrl.Context) lexKey {
	switch policy {
	case "fcfs":
		return lexKey{ageScore(cand), 0, 0}
	case "hf-rf":
		return lexKey{boolScore(cand.RowHit), ageScore(cand), 0}
	case "lreq":
		return lexKey{boolScore(cand.RowHit), -float64(ctx.PendingReads[cand.Req.Core]), ageScore(cand)}
	case "me":
		return lexKey{ctx.FixedME[cand.Req.Core], boolScore(cand.RowHit), ageScore(cand)}
	case "me-lreq":
		return lexKey{boolScore(cand.RowHit), ctx.Scores[cand.Req.Core], ageScore(cand)}
	case "dash":
		lc := ctx.LC[cand.Req.Core]
		if lc && cand.Req.Arrive+dashSlack-ctx.Now <= dashUrgent {
			return lexKey{1, ageScore(cand), 0}
		}
		// LC-over-BE dominates age within equal hit status: weight it far
		// above ageScore's magnitude (|ageScore| <= ~1e8 at test arrivals).
		return lexKey{0, boolScore(cand.RowHit), boolScore(lc)*1e10 + ageScore(cand)}
	default:
		panic("unknown policy in test")
	}
}

// TestPickReturnsMaximalCandidate checks, for random candidate sets, that no
// other candidate strictly outranks the picked one under the policy's
// documented key (ties may go either way via the random tie-break).
func TestPickReturnsMaximalCandidate(t *testing.T) {
	for _, name := range []string{"fcfs", "hf-rf", "lreq", "me", "me-lreq", "dash"} {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed uint16, nRaw uint8) bool {
				rng := xrand.New(uint64(seed) + 1)
				n := int(nRaw%7) + 1
				ctx := &memctrl.Context{
					Cores:        4,
					PendingReads: make([]int, 4),
					Scores:       make([]float64, 4),
					FixedME:      make([]float64, 4),
					LC:           make([]bool, 4),
					RNG:          xrand.New(9),
					// Arrivals land in [0, 100); this Now range straddles the
					// dash urgency boundary (urgent iff Now >= Arrive+200), so
					// both branches of its comparator are exercised.
					Now: int64(rng.Intn(400)),
				}
				for i := 0; i < 4; i++ {
					ctx.PendingReads[i] = rng.Intn(64)
					ctx.Scores[i] = float64(rng.Intn(1024))
					ctx.FixedME[i] = float64(rng.Intn(1024))
					ctx.LC[i] = rng.Bernoulli(0.5)
				}
				cands := make([]memctrl.Candidate, n)
				for i := range cands {
					cands[i] = memctrl.Candidate{
						Req: &memctrl.Request{
							ID:     uint64(i),
							Core:   rng.Intn(4),
							Arrive: int64(rng.Intn(100)),
						},
						RowHit: rng.Bernoulli(0.4),
					}
				}
				p, err := New(name, 4)
				if err != nil {
					return false
				}
				got := p.Pick(cands, ctx)
				if got < 0 || got >= n {
					return false
				}
				gotKey := keyFor(name, &cands[got], ctx)
				for i := range cands {
					if i == got {
						continue
					}
					if keyLess(gotKey, keyFor(name, &cands[i], ctx)) {
						return false // a strictly better candidate was skipped
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPickIndexAlwaysValid fuzzes every registered policy, including the
// stateful ones, for in-range picks.
func TestPickIndexAlwaysValid(t *testing.T) {
	policies := []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "dash", "fix:3210"}
	for _, name := range policies {
		p, err := New(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(77)
		ctx := &memctrl.Context{
			Cores:        4,
			PendingReads: make([]int, 4),
			Scores:       make([]float64, 4),
			FixedME:      make([]float64, 4),
			RNG:          xrand.New(3),
			SameRowQueued: func(*memctrl.Request) int {
				return rng.Intn(8) + 1
			},
		}
		for round := 0; round < 500; round++ {
			n := rng.Intn(6) + 1
			cands := make([]memctrl.Candidate, n)
			for i := range cands {
				cands[i] = memctrl.Candidate{
					Req: &memctrl.Request{
						ID:     uint64(round*10 + i),
						Core:   rng.Intn(4),
						Arrive: int64(rng.Intn(1000)),
					},
					RowHit: rng.Bernoulli(0.3),
				}
			}
			for i := 0; i < 4; i++ {
				ctx.PendingReads[i] = rng.Intn(64)
			}
			if got := p.Pick(cands, ctx); got < 0 || got >= n {
				t.Fatalf("%s: pick %d of %d", name, got, n)
			}
		}
	}
}

package sched

import (
	"sort"
	"strings"
	"testing"

	"memsched/internal/memctrl"
	"memsched/internal/xrand"
)

func ctx(cores int) *memctrl.Context {
	return &memctrl.Context{
		Cores:        cores,
		PendingReads: make([]int, cores),
		Scores:       make([]float64, cores),
		FixedME:      make([]float64, cores),
		RNG:          xrand.New(1),
	}
}

func cand(core int, arrive int64, id uint64, hit bool) memctrl.Candidate {
	return memctrl.Candidate{
		Req:    &memctrl.Request{ID: id, Core: core, Arrive: arrive},
		RowHit: hit,
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "fix:3210"} {
		p, err := New(name, 4)
		if err != nil {
			t.Errorf("New(%q) failed: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := New("nope", 4); err == nil {
		t.Error("unknown policy accepted")
	}
	if !strings.Contains(strings.Join(Names(), " "), "me-lreq") {
		t.Error("Names() missing me-lreq")
	}
}

// TestNamesCompleteAndOrdered pins the registry listing: every constructible
// name appears, fq and burst included (a doc/name-list regression), and the
// "fix:<order>" pattern stays last so help text reads names-then-pattern.
func TestNamesCompleteAndOrdered(t *testing.T) {
	names := Names()
	if last := names[len(names)-1]; last != "fix:<order>" {
		t.Errorf("Names() ends with %q, want fix:<order> last", last)
	}
	listed := map[string]bool{}
	for _, n := range names {
		listed[n] = true
	}
	for _, want := range []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "bliss", "cads", "dash"} {
		if !listed[want] {
			t.Errorf("Names() missing %q", want)
		}
	}
	plain := names[:len(names)-1]
	if !sort.StringsAreSorted(plain) {
		t.Errorf("Names() plain section not sorted: %v", plain)
	}
	for _, n := range plain {
		if _, err := New(n, 4); err != nil {
			t.Errorf("listed name %q does not construct: %v", n, err)
		}
	}
}

func TestFixValidation(t *testing.T) {
	bad := []string{"fix:012", "fix:01234", "fix:0012", "fix:01a3", "fix:9876"}
	for _, name := range bad {
		if _, err := New(name, 4); err == nil {
			t.Errorf("New(%q) accepted invalid order", name)
		}
	}
}

func TestFCFSPicksOldest(t *testing.T) {
	p, _ := New("fcfs", 2)
	cands := []memctrl.Candidate{
		cand(0, 20, 3, true),
		cand(1, 10, 2, false), // oldest — wins even though it is a miss
		cand(0, 30, 4, true),
	}
	if got := p.Pick(cands, ctx(2)); got != 1 {
		t.Fatalf("fcfs picked %d, want 1", got)
	}
}

func TestFCFSSameCycleUsesID(t *testing.T) {
	p, _ := New("fcfs", 2)
	cands := []memctrl.Candidate{
		cand(0, 10, 7, false),
		cand(1, 10, 5, false), // same arrival, lower ID
	}
	if got := p.Pick(cands, ctx(2)); got != 1 {
		t.Fatalf("fcfs picked %d, want 1 (lower ID)", got)
	}
}

func TestHFRFPrefersHit(t *testing.T) {
	p, _ := New("hf-rf", 2)
	cands := []memctrl.Candidate{
		cand(0, 10, 1, false), // oldest miss
		cand(1, 20, 2, true),  // younger hit — wins
	}
	if got := p.Pick(cands, ctx(2)); got != 1 {
		t.Fatalf("hf-rf picked %d, want the row hit", got)
	}
}

func TestHFRFAgeBreaksHitTies(t *testing.T) {
	p, _ := New("hf-rf", 2)
	cands := []memctrl.Candidate{
		cand(0, 20, 2, true),
		cand(1, 10, 1, true), // older hit wins
	}
	if got := p.Pick(cands, ctx(2)); got != 1 {
		t.Fatalf("hf-rf picked %d, want older hit", got)
	}
}

func TestLREQPrefersFewestPending(t *testing.T) {
	p, _ := New("lreq", 2)
	c := ctx(2)
	c.PendingReads[0] = 10
	c.PendingReads[1] = 2
	cands := []memctrl.Candidate{
		cand(0, 5, 1, false),  // older, but core has many pending
		cand(1, 50, 2, false), // fewest pending — wins
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("lreq picked %d, want core with fewest pending", got)
	}
	// Hit-first operates at the command level (paper Section 4.1): a row
	// hit outranks the pending-count comparison for every policy.
	cands[0].RowHit = true
	if got := p.Pick(cands, c); got != 0 {
		t.Fatalf("lreq picked %d, want the row hit over the pending count", got)
	}
}

func TestLREQHitFirstWithinCore(t *testing.T) {
	p, _ := New("lreq", 2)
	c := ctx(2)
	c.PendingReads[0] = 3
	c.PendingReads[1] = 3
	cands := []memctrl.Candidate{
		cand(0, 5, 1, false),
		cand(1, 50, 2, true), // equal pending: hit wins
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("lreq picked %d, want hit at equal pending", got)
	}
}

func TestMEPicksHighestEfficiency(t *testing.T) {
	p, _ := New("me", 2)
	c := ctx(2)
	c.FixedME[0] = 1
	c.FixedME[1] = 100
	cands := []memctrl.Candidate{
		cand(0, 5, 1, false),
		cand(1, 50, 2, false), // higher fixed ME — wins
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("me picked %d, want high-ME core", got)
	}
	// ME is pure fixed priority: the core rank dominates even a row hit.
	cands[0].RowHit = true
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("me picked %d, want high-ME core over the hit", got)
	}
}

func TestMELREQUsesTableScores(t *testing.T) {
	p, _ := New("me-lreq", 2)
	c := ctx(2)
	c.Scores[0] = 30 // e.g. ME 60, 2 pending
	c.Scores[1] = 40 // e.g. ME 40, 1 pending
	cands := []memctrl.Candidate{
		cand(0, 5, 1, false),
		cand(1, 50, 2, false),
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("me-lreq picked %d, want higher ME/pending score", got)
	}
	// Hit-first dominates the table score (command-level hit-first).
	cands[0].RowHit = true
	if got := p.Pick(cands, c); got != 0 {
		t.Fatalf("me-lreq picked %d, want the row hit", got)
	}
}

func TestFixedOrder(t *testing.T) {
	p, _ := New("fix:3210", 4)
	c := ctx(4)
	cands := []memctrl.Candidate{
		cand(0, 1, 1, false),
		cand(2, 9, 2, false),
		cand(3, 9, 3, false), // core 3 has top fixed priority
	}
	if got := p.Pick(cands, c); got != 2 {
		t.Fatalf("fix:3210 picked %d, want core 3's request", got)
	}
	p2, _ := New("fix:0123", 4)
	if got := p2.Pick(cands, c); got != 0 {
		t.Fatalf("fix:0123 picked %d, want core 0's request", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p, _ := New("rr", 4)
	c := ctx(4)
	cands := []memctrl.Candidate{
		cand(0, 1, 1, false),
		cand(1, 1, 2, false),
		cand(2, 1, 3, false),
		cand(3, 1, 4, false),
	}
	var served []int
	for i := 0; i < 8; i++ {
		got := p.Pick(cands, c)
		served = append(served, cands[got].Req.Core)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("rr service order = %v, want %v", served, want)
		}
	}
}

func TestRoundRobinSkipsAbsentCores(t *testing.T) {
	p, _ := New("rr", 4)
	c := ctx(4)
	cands := []memctrl.Candidate{
		cand(1, 1, 1, false),
		cand(3, 1, 2, false),
	}
	first := cands[p.Pick(cands, c)].Req.Core
	second := cands[p.Pick(cands, c)].Req.Core
	if first == second {
		t.Fatalf("rr served core %d twice in a row with another core waiting", first)
	}
}

func TestRoundRobinHitFirstWithinCore(t *testing.T) {
	p, _ := New("rr", 2)
	c := ctx(2)
	cands := []memctrl.Candidate{
		cand(0, 1, 1, false),
		cand(0, 9, 2, true), // same core, younger but a hit
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("rr picked %d, want the hit within the core", got)
	}
}

func TestRandomTieBreakCoversAll(t *testing.T) {
	// With fully tied candidates, every candidate must be picked eventually
	// (the paper's random tie-break), and the draw must be deterministic for
	// a fixed RNG seed.
	p, _ := New("hf-rf", 4)
	seen := map[int]bool{}
	c := ctx(4)
	cands := []memctrl.Candidate{
		cand(0, 5, 1, false),
		cand(1, 5, 1, false),
		cand(2, 5, 1, false),
		cand(3, 5, 1, false),
	}
	// Same ID and arrival: full tie.
	for i := range cands {
		cands[i].Req.ID = 9
	}
	for i := 0; i < 200; i++ {
		seen[p.Pick(cands, c)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("tie break only ever chose %d of 4 tied candidates", len(seen))
	}
}

func TestPickDeterministicWithSeed(t *testing.T) {
	mk := func() (memctrl.Policy, *memctrl.Context, []memctrl.Candidate) {
		p, _ := New("hf-rf", 2)
		c := ctx(2)
		cands := []memctrl.Candidate{cand(0, 5, 7, false), cand(1, 5, 7, false)}
		return p, c, cands
	}
	p1, c1, k1 := mk()
	p2, c2, k2 := mk()
	for i := 0; i < 50; i++ {
		if p1.Pick(k1, c1) != p2.Pick(k2, c2) {
			t.Fatal("identical seeds produced different tie-break sequences")
		}
	}
}

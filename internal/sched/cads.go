package sched

import (
	"memsched/internal/memctrl"
)

// This file implements a core-aware dynamic scheduler in the spirit of
// Sanchez & Sun's CADS ("Core-Aware Dynamic Scheduler for Multicore Memory
// Controllers"): per-core priorities are learned online from the controller's
// own observations — no offline profiles, no OS-loaded tables — and adapted
// every epoch, the same measure-then-reload cadence the online-ME estimator
// uses (sim.OnlineEstimator), folded through the same EWMA smoothing.
//
// Two observables drive the priority of core i, both measured over the last
// epoch at the point of service:
//
//   - row-hit rate: the fraction of core i's served requests that hit the
//     open row. A high hit rate means the core uses DRAM efficiently (the
//     dynamic analogue of the paper's memory efficiency), so prioritizing it
//     buys more system throughput per serviced request.
//   - request intensity: how many of the epoch's services went to core i.
//     A light core is cheap to keep happy (the LREQ insight); a heavy core
//     backpressures itself through the shared buffer anyway.
//
// priority sample = (1 + hitRate) / (1 + served), smoothed with the online
// estimator's EWMA weight so one bursty epoch cannot whip the ordering
// around. Ranking: row-buffer hit first (command-level hit-first, as for
// every queue-aware policy here), then the learned priority, then age.
const (
	// cadsEpoch is the adaptation window in cycles: long enough for a
	// memory-bound core to be served hundreds of times, short enough for
	// several reloads within one evaluation slice.
	cadsEpoch int64 = 50_000
	// cadsAlpha is the EWMA weight of the newest epoch (matches the online-ME
	// estimator's ewmaAlpha).
	cadsAlpha = 0.25
)

// cads implements the cads policy. Like bliss, every state transition happens
// inside PickIndexed and the epoch grid is a pure function of ctx.Now, so the
// policy is exact under cycle skipping and parallel execution without any
// run-loop plumbing: epochs in which no contested pick happens simply merge
// into the next rollover, deterministically in every run mode.
type cads struct {
	next   int64
	served []uint64 // contested services per core, current epoch
	hits   []uint64 // row hits among them
	prio   []float64
}

func newCADS(cores int) *cads {
	c := &cads{
		next:   cadsEpoch,
		served: make([]uint64, cores),
		hits:   make([]uint64, cores),
		prio:   make([]float64, cores),
	}
	for i := range c.prio {
		c.prio[i] = 1 // neutral start: pure hit-first/age until data arrives
	}
	return c
}

func (*cads) Name() string { return "cads" }

func (p *cads) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (p *cads) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	if ctx.Now >= p.next {
		p.roll()
		p.next = (ctx.Now/cadsEpoch + 1) * cadsEpoch
	}
	best := pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if c := cmpFloat(p.prio[a.Req.Core], p.prio[b.Req.Core]); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
	c := view.At(best)
	p.served[c.Req.Core]++
	if c.RowHit {
		p.hits[c.Req.Core]++
	}
	return best
}

// roll folds the finished epoch's observations into the smoothed priorities
// and resets the counters. Cores that were never served keep a maximal
// intensity term (served = 0), so idle or light cores drift toward the top —
// when they do show up, they are serviced promptly.
func (p *cads) roll() {
	for i := range p.prio {
		hitRate := 0.0
		if p.served[i] > 0 {
			hitRate = float64(p.hits[i]) / float64(p.served[i])
		}
		sample := (1 + hitRate) / (1 + float64(p.served[i]))
		p.prio[i] = (1-cadsAlpha)*p.prio[i] + cadsAlpha*sample
		p.served[i] = 0
		p.hits[i] = 0
	}
}

package sched

import (
	"memsched/internal/memctrl"
)

// This file implements the Blacklisting Memory Scheduler after Subramanian
// et al., "The Blacklisting Memory Scheduler: Achieving High Performance and
// Fairness at Low Cost" (ICCD 2014). BLISS observes that interference-prone
// applications are exactly the ones whose requests get served in long
// consecutive runs, and that fair scheduling does not need per-application
// ranking: it is enough to *blacklist* the current hog for a short while.
//
// Mechanism (application-unaware — no profiles, no priority tables):
//
//   - track the source core of consecutively served requests; when one core
//     is served blissThreshold times in a row, set its blacklist bit;
//   - candidates from non-blacklisted cores beat candidates from blacklisted
//     cores; within each group, row-buffer hits first, then age;
//   - all blacklist bits are cleared every blissClearInterval cycles, so a
//     blacklisted core's penalty is bounded and no request starves.
//
// The hardware cost is one bit plus a tiny streak counter per core — the
// cheap end of the fairness-battleground complexity axis (see StateBits).
const (
	// blissThreshold is the consecutive-service streak that triggers
	// blacklisting (the paper's "Blacklisting Threshold" N = 4).
	blissThreshold = 4
	// blissClearInterval is the blacklist clearing interval in cycles (the
	// paper clears every 10 000 cycles).
	blissClearInterval int64 = 10_000
)

// bliss implements the bliss policy. All state updates happen inside
// PickIndexed — the policy has no per-cycle hook — and the clearing schedule
// is a pure function of ctx.Now, so runs with cycle skipping or epoch-sharded
// parallel execution reproduce the naive loop's decisions exactly (picks
// happen at identical cycles with identical candidate sets in all three run
// modes).
//
// Like the other stateful policies (rr, fq), bliss observes only contested
// picks: the controller short-circuits single-candidate scheduling rounds, so
// uncontested service does not extend a streak. A streak is a symptom of
// sustained contention, which by definition involves multiple candidates, so
// the signal survives intact.
type bliss struct {
	last      int // core of the most recently served request (-1 initially)
	streak    int // current consecutive-service run length
	black     []bool
	nextClear int64
}

func newBLISS(cores int) *bliss {
	return &bliss{
		last:      -1,
		black:     make([]bool, cores),
		nextClear: blissClearInterval,
	}
}

func (*bliss) Name() string { return "bliss" }

func (p *bliss) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (p *bliss) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	// Lazy clearing: the bits are conceptually cleared at every multiple of
	// blissClearInterval; applying that at the first pick afterwards is
	// equivalent, because the bits are only ever read here.
	if ctx.Now >= p.nextClear {
		for i := range p.black {
			p.black[i] = false
		}
		p.streak = 0
		p.last = -1
		p.nextClear = (ctx.Now/blissClearInterval + 1) * blissClearInterval
	}
	best := pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(!p.black[a.Req.Core], !p.black[b.Req.Core]); c != 0 {
			return c
		}
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
	core := view.At(best).Req.Core
	if core == p.last {
		p.streak++
		if p.streak >= blissThreshold {
			p.black[core] = true
		}
	} else {
		p.last = core
		p.streak = 1
	}
	return best
}

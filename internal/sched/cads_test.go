package sched

import (
	"testing"

	"memsched/internal/memctrl"
)

func TestCADSStartsNeutral(t *testing.T) {
	p, _ := New("cads", 4)
	// With neutral priorities the policy degenerates to hit-first/age.
	c := ctx(4)
	c.Now = 1
	cands := []memctrl.Candidate{
		cand(0, 10, 1, false),
		cand(1, 20, 2, true), // younger hit wins under hit-first
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("neutral cads picked %d, want the row hit", got)
	}
}

// TestCADSDeprioritizesHeavyCore: after an epoch in which core 0 absorbed far
// more service than core 1 at equal hit rates, the rollover must rank core 1
// above core 0 (the intensity term), so core 1 wins an age-equal contest.
func TestCADSDeprioritizesHeavyCore(t *testing.T) {
	p, _ := New("cads", 2)
	cc := p.(*cads)
	for i := 0; i < 100; i++ {
		c := ctx(2)
		c.Now = int64(10 + i)
		cands := []memctrl.Candidate{
			cand(0, c.Now-2, uint64(2*i+1), false), // always oldest: hogs service
			cand(1, c.Now-1, uint64(2*i+2), false),
		}
		p.Pick(cands, c)
	}
	if cc.served[0] <= cc.served[1] {
		t.Fatalf("setup failed: served %v, want core 0 dominant", cc.served)
	}
	// Cross the epoch boundary; the next pick rolls priorities first.
	c := ctx(2)
	c.Now = cadsEpoch + 1
	cands := []memctrl.Candidate{
		cand(0, c.Now-1, 1000, false), // older, but heavy last epoch
		cand(1, c.Now-1, 1001, false), // same arrival cycle, light core
	}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("post-epoch pick %d, want 1 (light core outranks heavy core)", got)
	}
	if cc.prio[1] <= cc.prio[0] {
		t.Fatalf("priorities %v, want core 1 above core 0", cc.prio)
	}
}

// TestCADSRewardsRowHits: equal service counts, but core 1 hit the row buffer
// every time while core 0 always missed — the next epoch must rank core 1
// higher (the efficiency term).
func TestCADSRewardsRowHits(t *testing.T) {
	p, _ := New("cads", 2)
	cc := p.(*cads)
	for i := 0; i < 50; i++ {
		core := i % 2
		c := ctx(2)
		c.Now = int64(10 + i)
		cands := []memctrl.Candidate{
			cand(core, c.Now-2, uint64(2*i+1), core == 1),
			cand(1-core, c.Now-1, uint64(2*i+2), false),
		}
		// Force alternating service by making the target core's request older.
		p.Pick(cands, c)
	}
	cc.roll()
	if cc.prio[1] <= cc.prio[0] {
		t.Fatalf("priorities %v, want hit-rich core 1 above miss-only core 0", cc.prio)
	}
}

func TestCADSEpochRolloverIsLazy(t *testing.T) {
	p, _ := New("cads", 2)
	cc := p.(*cads)
	c := ctx(2)
	// Jump far past several epoch boundaries in one go: the single rollover
	// must land next on the grid point after Now, a pure function of Now.
	c.Now = 7*cadsEpoch + 123
	cands := []memctrl.Candidate{cand(0, c.Now-1, 1, false), cand(1, c.Now-1, 2, false)}
	p.Pick(cands, c)
	if want := 8 * cadsEpoch; cc.next != want {
		t.Fatalf("next epoch boundary = %d, want %d", cc.next, want)
	}
}

func TestStateBits(t *testing.T) {
	const cores, maxPending, prioBits = 8, 64, 10
	cases := map[string]int{
		"fcfs":         0,
		"hf-rf":        0,
		"burst":        0,
		"rr":           3,
		"fix:01234567": 8 * 3,
		"lreq":         8 * 7, // log2(65) = 7
		"me":           8 * 10,
		"me-lreq":      8*64*10 + 8*7, // the paper's 640N tables + counters
		"fq":           8 * 32,
		"bliss":        8 + 3 + 2 + 14,
		"cads":         8*48 + 16,
		"dash":         8, // one LC flag per core
	}
	for name, want := range cases {
		got, err := StateBits(name, cores, maxPending, prioBits)
		if err != nil {
			t.Errorf("StateBits(%q) failed: %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("StateBits(%q) = %d, want %d", name, got, want)
		}
	}
	if _, err := StateBits("nope", cores, maxPending, prioBits); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := StateBits("bliss", 0, maxPending, prioBits); err == nil {
		t.Error("zero cores accepted")
	}
	// The complexity axis the experiment plots: the paper's table scheme costs
	// orders of magnitude more storage than the blacklisting scheme.
	mlq, _ := StateBits("me-lreq", cores, maxPending, prioBits)
	bl, _ := StateBits("bliss", cores, maxPending, prioBits)
	if mlq < 100*bl {
		t.Errorf("me-lreq (%d bits) not >100x bliss (%d bits)", mlq, bl)
	}
}

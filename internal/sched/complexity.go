package sched

import (
	"fmt"
	"math/bits"
	"strings"
)

// StateBits returns the hardware-complexity proxy of the fairness
// battleground: the total number of state bits a policy's scheduling logic
// needs for an N-core controller, beyond the request buffer every policy
// shares. maxPending is the per-core outstanding-read bound and priorityBits
// the priority-table entry width (both from config.MemoryConfig); they only
// matter for the policies that index tables with them.
//
// The inventory, per policy (log2 values rounded up):
//
//	fcfs, hf-rf, burst   0 — stateless; burst's same-row count is a scan of
//	                     the request buffer, not retained state
//	rr                   log2(N) — the rotation pointer
//	fix:<order>          N*log2(N) — the configured rank of each core
//	lreq                 N*log2(maxPending+1) — per-core pending-read counters
//	me                   N*priorityBits — one quantized ME rank per core
//	me-lreq              N*maxPending*priorityBits + N*log2(maxPending+1) —
//	                     the paper's priority tables (640N bits at the
//	                     default 64x10) plus the pending-read counters
//	fq                   N*32 — one virtual-clock register per core
//	bliss                N + log2(N) + 2 + 14 — blacklist bits, last-served
//	                     core id, streak counter (threshold 4) and the
//	                     clearing-interval countdown (10 000 cycles)
//	cads                 N*(16+16+16) — per-core served/hit epoch counters
//	                     and a smoothed priority register, plus 16 bits of
//	                     epoch countdown
//	dash                 N — one latency-critical flag per core; urgency
//	                     compares the buffered Arrive against a constant
//	                     slack, retaining nothing per request
//
// The point of the proxy is the orders-of-magnitude axis (me-lreq's tables
// against bliss's handful of bits), not the last bit of any one entry.
func StateBits(name string, cores, maxPending, priorityBits int) (int, error) {
	if cores < 1 {
		return 0, fmt.Errorf("sched: state bits for %d cores", cores)
	}
	log2Cores := ceilLog2(cores)
	log2Pending := ceilLog2(maxPending + 1)
	switch name {
	case "fcfs", "hf-rf", "burst":
		return 0, nil
	case "rr":
		return log2Cores, nil
	case "lreq":
		return cores * log2Pending, nil
	case "me":
		return cores * priorityBits, nil
	case "me-lreq":
		return cores*maxPending*priorityBits + cores*log2Pending, nil
	case "fq":
		return cores * 32, nil
	case "bliss":
		return cores + log2Cores + 2 + 14, nil
	case "cads":
		return cores*(16+16+16) + 16, nil
	case "dash":
		// One latency-critical flag per core; deadlines are Arrive (already
		// in the request buffer) plus a constant, so no per-request state.
		return cores, nil
	}
	if strings.HasPrefix(name, "fix:") {
		return cores * log2Cores, nil
	}
	return 0, fmt.Errorf("sched: no state-bit model for policy %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// ceilLog2 returns ceil(log2(n)) for n >= 1, with ceilLog2(1) == 1 (a
// one-entry register still costs a bit).
func ceilLog2(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

package sched

import (
	"testing"

	"memsched/internal/memctrl"
	"memsched/internal/xrand"
)

// dashCtx builds a 4-core context with the given LC flags at the given cycle.
func dashCtx(now int64, lc []bool) *memctrl.Context {
	return &memctrl.Context{
		Cores: 4,
		Now:   now,
		LC:    lc,
		RNG:   xrand.New(1),
	}
}

func dashCand(id uint64, core int, arrive int64, rowHit bool) memctrl.Candidate {
	return memctrl.Candidate{
		Req:    &memctrl.Request{ID: id, Core: core, Arrive: arrive},
		RowHit: rowHit,
	}
}

func TestDashUrgentBeatsRowHit(t *testing.T) {
	p, err := New("dash", 4)
	if err != nil {
		t.Fatal(err)
	}
	// LC core 0's request arrived long ago: slack exhausted, urgent. The BE
	// row hit must lose to it.
	now := int64(1000)
	cands := []memctrl.Candidate{
		dashCand(0, 1, now-10, true),               // BE, fresh row hit
		dashCand(1, 0, now-(dashSlack-100), false), // LC, 100 cycles of slack left
	}
	ctx := dashCtx(now, []bool{true, false, false, false})
	if got := p.Pick(cands, ctx); got != 1 {
		t.Fatalf("urgent LC miss lost to BE row hit (picked %d)", got)
	}

	// The same LC request with plenty of slack is not urgent: locality wins.
	cands[1] = dashCand(1, 0, now-10, false)
	if got := p.Pick(cands, ctx); got != 0 {
		t.Fatalf("non-urgent LC miss beat a row hit (picked %d)", got)
	}
}

func TestDashLCPreferenceAtEqualHitStatus(t *testing.T) {
	p, err := New("dash", 4)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(100)
	// Both misses, neither urgent, BE is older: LC still goes first — the
	// head start that costs no locality.
	cands := []memctrl.Candidate{
		dashCand(0, 1, now-50, false), // BE, older
		dashCand(1, 0, now-10, false), // LC, fresh
	}
	ctx := dashCtx(now, []bool{true, false, false, false})
	if got := p.Pick(cands, ctx); got != 1 {
		t.Fatalf("LC miss lost to older BE miss (picked %d)", got)
	}
}

func TestDashUrgentOrderedByDeadline(t *testing.T) {
	p, err := New("dash", 4)
	if err != nil {
		t.Fatal(err)
	}
	now := dashSlack + 500
	// Two urgent LC requests: the earlier arrival (earlier deadline) wins,
	// even against the other one's row hit.
	cands := []memctrl.Candidate{
		dashCand(0, 0, now-dashSlack+10, true),  // urgent, later deadline, row hit
		dashCand(1, 2, now-dashSlack-50, false), // urgent, earliest deadline
	}
	ctx := dashCtx(now, []bool{true, false, true, false})
	if got := p.Pick(cands, ctx); got != 1 {
		t.Fatalf("earliest-deadline urgent request lost (picked %d)", got)
	}
}

// TestDashDegeneratesToHFRF pins the zero-perturbation anchor: with no LC
// cores (or no LC vector at all) dash must agree with hf-rf on every pick,
// including the RNG draws consumed by tie-breaks.
func TestDashDegeneratesToHFRF(t *testing.T) {
	d, err := New("dash", 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New("hf-rf", 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	for round := 0; round < 300; round++ {
		n := rng.Intn(6) + 1
		cands := make([]memctrl.Candidate, n)
		for i := range cands {
			cands[i] = dashCand(uint64(round*10+i), rng.Intn(4), int64(rng.Intn(1000)), rng.Bernoulli(0.4))
		}
		now := int64(rng.Intn(2000))
		// Identical RNG state on both sides so tie-breaks stay comparable.
		dCtx := dashCtx(now, make([]bool, 4))
		dCtx.RNG = xrand.New(uint64(round))
		hCtx := dashCtx(now, nil)
		hCtx.RNG = xrand.New(uint64(round))
		if got, want := d.Pick(cands, dCtx), h.Pick(cands, hCtx); got != want {
			t.Fatalf("round %d: dash picked %d, hf-rf picked %d", round, got, want)
		}
	}
}

package sched

import (
	"memsched/internal/memctrl"
)

// This file implements simplified versions of two schedulers from the
// paper's related-work section, so the library can compare ME-LREQ against
// its contemporaries and not only against its own baselines:
//
//	fq     fair-queueing memory scheduling after Nesbit et al., "Fair
//	       Queuing CMP Memory Systems" (MICRO 2006) — reference [12] of the
//	       paper. Each core owns a virtual clock that advances by the
//	       service cost of its requests; the candidate whose core has the
//	       smallest virtual time wins, approximating the bandwidth share of
//	       a processor-sharing server.
//	burst  burst scheduling after Shao & Davis, "A Burst Scheduling Access
//	       Reordering Mechanism" (HPCA 2007) — reference [15]. Requests
//	       belonging to longer same-row bursts win, maximizing data-bus
//	       utilization by amortizing each row activation over more column
//	       accesses.
//
// Both are deliberately reduced to their core idea: the originals add
// mechanisms (priority inversion bounds, write batching) orthogonal to what
// the paper's evaluation isolates.

// Service costs in abstract units for the fair-queueing virtual clocks: a
// row miss occupies a bank roughly three times as long as a row hit.
const (
	fqHitCost  = 1.0
	fqMissCost = 3.0
)

// fairQueue implements the fq policy.
type fairQueue struct {
	vtime []float64
}

func newFairQueue(cores int) *fairQueue {
	return &fairQueue{vtime: make([]float64, cores)}
}

func (*fairQueue) Name() string { return "fq" }

func (p *fairQueue) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (p *fairQueue) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	best := pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		// Earliest virtual time first (note the sign: smaller is better).
		if c := cmpFloat(-p.vtime[a.Req.Core], -p.vtime[b.Req.Core]); c != 0 {
			return c
		}
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
	cost := fqMissCost
	if view.At(best).RowHit {
		cost = fqHitCost
	}
	core := view.At(best).Req.Core
	p.vtime[core] += cost

	// Keep the clocks bounded and idle-core-fair: a core that was idle must
	// not bank unbounded credit and then monopolize the bus. Raise every
	// clock to within one miss cost of the just-served core's clock, so a
	// returning core gets a brief advantage only.
	floor := p.vtime[core] - fqMissCost
	for i := range p.vtime {
		if p.vtime[i] < floor {
			p.vtime[i] = floor
		}
	}
	return best
}

// burst implements the burst policy: longest same-row burst first.
type burst struct{}

func (burst) Name() string { return "burst" }

func (p burst) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (burst) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if ctx.SameRowQueued != nil {
			if c := cmpFloat(float64(ctx.SameRowQueued(a.Req)),
				float64(ctx.SameRowQueued(b.Req))); c != 0 {
				return c
			}
		}
		return cmpAge(a, b)
	})
}

package sched

import (
	"memsched/internal/memctrl"
)

// This file implements a deadline-aware scheduler for latency-critical (LC)
// vs best-effort (BE) serving classes, in the spirit of Usui et al.'s DASH
// ("Deadline-Aware Memory Scheduler for Heterogeneous Systems"): agents with
// deadlines are scheduled lazily — as long as an LC request has slack left it
// competes on row-buffer locality like everyone else, and only when its slack
// is nearly exhausted does it jump the queue. That is the whole trick: a
// strict LC-first scheme wastes BE row hits servicing LC requests that were
// in no danger, while dash spends priority exactly where the tail SLO is
// earned, at the requests about to blow their deadline.
//
// Mechanism, per candidate:
//
//   - every LC read carries an implicit deadline Arrive + dashSlack;
//   - an LC candidate whose remaining slack is <= dashUrgent is *urgent*:
//     urgent candidates beat everything, oldest deadline first — even a
//     row-buffer hit loses to a read about to miss its SLO;
//   - everyone else is ranked row-buffer hit first (bandwidth preservation),
//     then LC before BE at equal hit status (a mild head start that costs no
//     locality), then age.
//
// BE cores therefore "fill the rest": they own the bandwidth whenever no LC
// request is at risk, which is what maximizes BE throughput at a fixed LC
// tail-latency SLO (the slo-pack battleground's score).
const (
	// dashSlack is the implicit LC read deadline in cycles past admission,
	// sized a little above the loaded average read latency (~400 cycles on
	// the Table 1 machine) so the urgency boost fires on the tail, not on
	// every request.
	dashSlack int64 = 500
	// dashUrgent is the remaining-slack threshold at which an LC request
	// becomes urgent. Requests younger than dashSlack-dashUrgent cycles
	// never preempt a row hit.
	dashUrgent int64 = 300
)

// dash implements the dash policy. It is stateless — urgency is a pure
// function of ctx.Now, ctx.LC and each candidate's Arrive — so it is
// deterministic-by-construction under cycle skipping and parallel execution
// for the same reason bliss and cads are: everything happens inside
// PickIndexed, and picks occur at identical cycles with identical candidate
// sets in every run mode. With no LC cores assigned (ctx.LC all false, the
// default) dash degenerates to hf-rf exactly.
type dash struct{}

func (dash) Name() string { return "dash" }

func (p dash) Pick(cands []memctrl.Candidate, ctx *memctrl.Context) int {
	v := memctrl.ViewOf(cands)
	return p.PickIndexed(&v, ctx)
}

func (dash) PickIndexed(view *memctrl.CandidateView, ctx *memctrl.Context) int {
	// lcOf is nil-safe so the policy can be driven by hand-built contexts in
	// tests; the controller always supplies a full LC vector.
	lcOf := func(core int) bool { return ctx.LC != nil && ctx.LC[core] }
	urgent := func(c *memctrl.Candidate) bool {
		return lcOf(c.Req.Core) && c.Req.Arrive+dashSlack-ctx.Now <= dashUrgent
	}
	return pickBest(view, ctx, func(a, b *memctrl.Candidate) int {
		ua, ub := urgent(a), urgent(b)
		if c := cmpBool(ua, ub); c != 0 {
			return c
		}
		if ua { // both urgent: earliest deadline (= earliest arrival) first
			return cmpAge(a, b)
		}
		if c := cmpBool(a.RowHit, b.RowHit); c != 0 {
			return c
		}
		if c := cmpBool(lcOf(a.Req.Core), lcOf(b.Req.Core)); c != 0 {
			return c
		}
		return cmpAge(a, b)
	})
}

package sched

import (
	"testing"

	"memsched/internal/memctrl"
)

func TestRelatedRegistered(t *testing.T) {
	for _, name := range []string{"fq", "burst"} {
		p, err := New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name = %q", p.Name())
		}
	}
}

func TestFQSharesServiceEqually(t *testing.T) {
	p, _ := New("fq", 2)
	c := ctx(2)
	cands := []memctrl.Candidate{
		cand(0, 1, 1, false),
		cand(1, 1, 2, false),
	}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		got := p.Pick(cands, c)
		counts[cands[got].Req.Core]++
	}
	if counts[0] < 40 || counts[1] < 40 {
		t.Fatalf("fq shares = %v, want roughly 50/50", counts)
	}
}

func TestFQPenalizesExpensiveService(t *testing.T) {
	// Core 0 always misses (cost 3), core 1 always hits (cost 1): core 1
	// should receive roughly three times the requests.
	p, _ := New("fq", 2)
	c := ctx(2)
	cands := []memctrl.Candidate{
		cand(0, 1, 1, false), // misses
		cand(1, 1, 2, true),  // hits
	}
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		got := p.Pick(cands, c)
		counts[cands[got].Req.Core]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("hit/miss service ratio = %.2f (%v), want ~3", ratio, counts)
	}
}

func TestFQIdleCoreDoesNotHoard(t *testing.T) {
	// Serve core 0 exclusively for a long stretch, then core 1 appears: core
	// 1 wins immediately but must not then monopolize for a matching
	// stretch (virtual clocks are clamped).
	p, _ := New("fq", 2)
	c := ctx(2)
	only0 := []memctrl.Candidate{cand(0, 1, 1, false)}
	for i := 0; i < 500; i++ {
		p.Pick(only0, c)
	}
	both := []memctrl.Candidate{
		cand(0, 1, 1, false),
		cand(1, 1, 2, false),
	}
	if got := p.Pick(both, c); both[got].Req.Core != 1 {
		t.Fatalf("newly active core did not win first pick")
	}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[both[p.Pick(both, c)].Req.Core]++
	}
	if counts[0] < 30 {
		t.Fatalf("core 0 starved by returning core: %v", counts)
	}
}

func TestBurstPrefersLongerChains(t *testing.T) {
	p, _ := New("burst", 2)
	c := ctx(2)
	chain := map[uint64]int{10: 5, 20: 1}
	c.SameRowQueued = func(r *memctrl.Request) int { return chain[r.Line] }
	a := cand(0, 1, 1, false)
	a.Req.Line = 20 // older, short chain
	b := cand(1, 9, 2, false)
	b.Req.Line = 10 // younger, long chain — wins
	if got := p.Pick([]memctrl.Candidate{a, b}, c); got != 1 {
		t.Fatalf("burst picked %d, want the longer chain", got)
	}
}

func TestBurstHitStillDominates(t *testing.T) {
	p, _ := New("burst", 2)
	c := ctx(2)
	c.SameRowQueued = func(r *memctrl.Request) int { return 1 }
	a := cand(0, 1, 1, true)
	b := cand(1, 9, 2, false)
	if got := p.Pick([]memctrl.Candidate{a, b}, c); got != 0 {
		t.Fatalf("burst picked %d, want the row hit", got)
	}
}

func TestBurstWorksWithoutCallback(t *testing.T) {
	p, _ := New("burst", 2)
	c := ctx(2)
	c.SameRowQueued = nil
	cands := []memctrl.Candidate{cand(0, 5, 1, false), cand(1, 1, 2, false)}
	if got := p.Pick(cands, c); got != 1 {
		t.Fatalf("burst without callback should fall back to age, picked %d", got)
	}
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSMTSpeedupIdeal(t *testing.T) {
	got, err := SMTSpeedup([]float64{1, 2, 0.5}, []float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("ideal 3-core speedup = %v, want 3", got)
	}
}

func TestSMTSpeedupPartial(t *testing.T) {
	got, err := SMTSpeedup([]float64{0.5, 1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("speedup = %v, want 1.0", got)
	}
}

func TestSMTSpeedupErrors(t *testing.T) {
	if _, err := SMTSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SMTSpeedup(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := SMTSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero single-core IPC accepted")
	}
}

func TestSlowdowns(t *testing.T) {
	sd, err := Slowdowns([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sd[0] != 2 || sd[1] != 1 {
		t.Fatalf("slowdowns = %v, want [2 1]", sd)
	}
	if _, err := Slowdowns([]float64{0}, []float64{1}); err == nil {
		t.Error("zero multi-core IPC accepted")
	}
}

func TestUnfairness(t *testing.T) {
	// Slowdowns 2 and 1 -> unfairness 2.
	u, err := Unfairness([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if u != 2 {
		t.Fatalf("unfairness = %v, want 2", u)
	}
	// Equal slowdowns -> perfectly fair.
	u, _ = Unfairness([]float64{0.5, 1}, []float64{1, 2})
	if u != 1 {
		t.Fatalf("uniform slowdown unfairness = %v, want 1", u)
	}
}

func TestUnfairnessAtLeastOne(t *testing.T) {
	f := func(m1, m2, s1, s2 float64) bool {
		norm := func(v float64) float64 {
			v = math.Abs(v)
			if v < 1e-3 || math.IsInf(v, 0) || math.IsNaN(v) {
				return 1
			}
			return math.Mod(v, 100) + 0.01
		}
		u, err := Unfairness([]float64{norm(m1), norm(m2)}, []float64{norm(s1), norm(s2)})
		return err == nil && u >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZeroIPCReturnsErrors pins the contract that a zero (or negative) IPC on
// either side of any fairness metric is a descriptive error, never an Inf or
// NaN smuggled into a result table. A fully stalled core produces exactly this
// input, and the failure must be diagnosable from the message.
func TestZeroIPCReturnsErrors(t *testing.T) {
	zeroMulti := []float64{0.8, 0, 0.5}
	zeroSingle := []float64{1, 1, 0}
	ok := []float64{1, 1, 1}
	type metricFn struct {
		name string
		call func(m, s []float64) (float64, error)
	}
	fns := []metricFn{
		{"Unfairness", Unfairness},
		{"MaxSlowdown", MaxSlowdown},
		{"HarmonicSpeedup", HarmonicSpeedup},
		{"SMTSpeedup", SMTSpeedup},
	}
	for _, fn := range fns {
		for _, tc := range []struct {
			desc     string
			multi, s []float64
		}{
			{"zero multi-core IPC", zeroMulti, ok},
			{"zero single-core IPC", ok, zeroSingle},
		} {
			v, err := fn.call(tc.multi, tc.s)
			if fn.name == "SMTSpeedup" && tc.desc == "zero multi-core IPC" {
				// SMTSpeedup only divides by single-core IPC; a zero
				// multi-core IPC is a legal (if sad) numerator.
				continue
			}
			if err == nil {
				t.Errorf("%s(%s) = %v, want error", fn.name, tc.desc, v)
				continue
			}
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("%s(%s) returned %v alongside error", fn.name, tc.desc, v)
			}
			if !strings.Contains(err.Error(), "non-positive") {
				t.Errorf("%s(%s) error %q does not name the bad IPC", fn.name, tc.desc, err)
			}
		}
	}
	if _, err := Slowdowns(zeroMulti, ok); err == nil {
		t.Error("Slowdowns accepted zero multi-core IPC")
	}
	if _, err := Slowdowns(ok, zeroSingle); err == nil {
		t.Error("Slowdowns accepted zero single-core IPC")
	}
}

func TestMaxSlowdown(t *testing.T) {
	// Slowdowns 2 and 1 -> max slowdown 2.
	ms, err := MaxSlowdown([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ms != 2 {
		t.Fatalf("max slowdown = %v, want 2", ms)
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	// Speedups 0.5 and 1 -> harmonic mean 2/(2+1) = 2/3.
	hs, err := HarmonicSpeedup([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hs-2.0/3.0) > 1e-12 {
		t.Fatalf("harmonic speedup = %v, want 2/3", hs)
	}
	// No slowdown anywhere -> harmonic speedup 1.
	hs, _ = HarmonicSpeedup([]float64{1, 2}, []float64{1, 2})
	if math.Abs(hs-1) > 1e-12 {
		t.Fatalf("ideal harmonic speedup = %v, want 1", hs)
	}
}

// TestHarmonicAtMostArithmetic checks the AM-HM inequality on random IPC
// vectors: the harmonic mean of per-app speedups never exceeds their
// arithmetic mean (SMTSpeedup / n).
func TestHarmonicAtMostArithmetic(t *testing.T) {
	f := func(m1, m2, m3, s1, s2, s3 float64) bool {
		norm := func(v float64) float64 {
			v = math.Abs(v)
			if v < 1e-3 || math.IsInf(v, 0) || math.IsNaN(v) {
				return 1
			}
			return math.Mod(v, 100) + 0.01
		}
		multi := []float64{norm(m1), norm(m2), norm(m3)}
		single := []float64{norm(s1), norm(s2), norm(s3)}
		hs, err1 := HarmonicSpeedup(multi, single)
		smt, err2 := SMTSpeedup(multi, single)
		if err1 != nil || err2 != nil {
			return false
		}
		return hs <= smt/3+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSlowdownAtLeastOneWhenSharingHurts: whenever sharing does not speed an
// app up (multi IPC <= single IPC per core), every slowdown is >= 1 and so is
// the maximum.
func TestSlowdownAtLeastOneWhenSharingHurts(t *testing.T) {
	f := func(s1, s2, f1, f2 float64) bool {
		norm := func(v float64) float64 {
			v = math.Abs(v)
			if v < 1e-3 || math.IsInf(v, 0) || math.IsNaN(v) {
				return 1
			}
			return math.Mod(v, 100) + 0.01
		}
		frac := func(v float64) float64 {
			v = math.Abs(v)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return 0.5
			}
			return math.Mod(v, 1)*0.99 + 0.005 // in (0, 1)
		}
		single := []float64{norm(s1), norm(s2)}
		multi := []float64{single[0] * frac(f1), single[1] * frac(f2)}
		sd, err := Slowdowns(multi, single)
		if err != nil {
			return false
		}
		for _, s := range sd {
			if s < 1 {
				return false
			}
		}
		ms, err := MaxSlowdown(multi, single)
		return err == nil && ms >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeGain(t *testing.T) {
	if g := RelativeGain(1.1, 1.0); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("gain = %v, want 0.1", g)
	}
	if g := RelativeGain(1, 0); g != 0 {
		t.Fatalf("gain with zero base = %v, want 0", g)
	}
	if g := RelativeGain(0.9, 1.0); math.Abs(g+0.1) > 1e-12 {
		t.Fatalf("negative gain = %v, want -0.1", g)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean input accepted")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		minV, maxV := xs[0], xs[0]
		for _, v := range xs {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		return g >= minV*(1-1e-9) && g <= maxV*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

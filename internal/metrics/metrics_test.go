package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSMTSpeedupIdeal(t *testing.T) {
	got, err := SMTSpeedup([]float64{1, 2, 0.5}, []float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("ideal 3-core speedup = %v, want 3", got)
	}
}

func TestSMTSpeedupPartial(t *testing.T) {
	got, err := SMTSpeedup([]float64{0.5, 1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Fatalf("speedup = %v, want 1.0", got)
	}
}

func TestSMTSpeedupErrors(t *testing.T) {
	if _, err := SMTSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SMTSpeedup(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := SMTSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero single-core IPC accepted")
	}
}

func TestSlowdowns(t *testing.T) {
	sd, err := Slowdowns([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sd[0] != 2 || sd[1] != 1 {
		t.Fatalf("slowdowns = %v, want [2 1]", sd)
	}
	if _, err := Slowdowns([]float64{0}, []float64{1}); err == nil {
		t.Error("zero multi-core IPC accepted")
	}
}

func TestUnfairness(t *testing.T) {
	// Slowdowns 2 and 1 -> unfairness 2.
	u, err := Unfairness([]float64{0.5, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if u != 2 {
		t.Fatalf("unfairness = %v, want 2", u)
	}
	// Equal slowdowns -> perfectly fair.
	u, _ = Unfairness([]float64{0.5, 1}, []float64{1, 2})
	if u != 1 {
		t.Fatalf("uniform slowdown unfairness = %v, want 1", u)
	}
}

func TestUnfairnessAtLeastOne(t *testing.T) {
	f := func(m1, m2, s1, s2 float64) bool {
		norm := func(v float64) float64 {
			v = math.Abs(v)
			if v < 1e-3 || math.IsInf(v, 0) || math.IsNaN(v) {
				return 1
			}
			return math.Mod(v, 100) + 0.01
		}
		u, err := Unfairness([]float64{norm(m1), norm(m2)}, []float64{norm(s1), norm(s2)})
		return err == nil && u >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeGain(t *testing.T) {
	if g := RelativeGain(1.1, 1.0); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("gain = %v, want 0.1", g)
	}
	if g := RelativeGain(1, 0); g != 0 {
		t.Fatalf("gain with zero base = %v, want 0", g)
	}
	if g := RelativeGain(0.9, 1.0); math.Abs(g+0.1) > 1e-12 {
		t.Fatalf("negative gain = %v, want -0.1", g)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean input accepted")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		minV, maxV := xs[0], xs[0]
		for _, v := range xs {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		return g >= minV*(1-1e-9) && g <= maxV*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package metrics

import (
	"fmt"

	"memsched/internal/stats"
	"memsched/internal/workload"
)

// This file scores latency-critical (LC) vs best-effort (BE) colocations the
// way serving systems are scored: an LC class carries a tail-latency SLO
// ("p99 read latency <= 800 cycles"), and a scheduler is judged by how much
// BE throughput it sustains while the LC SLO still holds. The inputs are the
// deterministic per-class latency histograms from internal/stats, so every
// number here is exact and identical across run modes.

// SLO is a tail-latency service-level objective for one serving class:
// the class's Percentile read latency must not exceed MaxLatency cycles.
type SLO struct {
	Class      workload.ServiceClass
	Percentile float64 // e.g. 0.99 for p99
	MaxLatency int64   // cycles
}

func (s SLO) String() string {
	return fmt.Sprintf("%s p%g <= %d", s.Class, s.Percentile*100, s.MaxLatency)
}

// Met reports whether the histogram satisfies the SLO. An empty histogram
// trivially meets any SLO (no request was ever late).
func (s SLO) Met(h *stats.LatencyHist) bool {
	if h.N() == 0 {
		return true
	}
	return h.Quantile(s.Percentile) <= s.MaxLatency
}

// Attainment returns the fraction of observations at or below maxLat — the
// serving-systems "SLO attainment" number (1.0 = every request in budget).
// An empty histogram returns 1.0 by the same convention as Met.
func Attainment(h *stats.LatencyHist, maxLat int64) float64 {
	if h.N() == 0 {
		return 1
	}
	return float64(h.CountAtOrBelow(maxLat)) / float64(h.N())
}

// SLOPoint is one colocation measurement: a scheduler run at some BE
// colocation density, scored by the LC tail and the aggregate BE throughput.
type SLOPoint struct {
	Policy  string
	BECores int     // colocation density: number of best-effort cores
	LCTail  int64   // the LC class's latency at the SLO percentile, cycles
	BEIPC   float64 // aggregate BE instructions per cycle
}

// MaxBEAtSLO returns the point with the highest BE throughput among those
// that still meet the SLO tail bound: "max BE IPC at fixed LC p99", the
// headline score of the slo-pack battleground. The boolean is false when no
// point meets the SLO, in which case the zero SLOPoint is returned.
//
// Ties on BE IPC break toward the lower LC tail, then the lower BE density,
// so the result is deterministic for any input order.
func MaxBEAtSLO(points []SLOPoint, maxLat int64) (SLOPoint, bool) {
	var best SLOPoint
	found := false
	for _, p := range points {
		if p.LCTail > maxLat {
			continue
		}
		if !found || p.BEIPC > best.BEIPC ||
			(p.BEIPC == best.BEIPC && (p.LCTail < best.LCTail ||
				(p.LCTail == best.LCTail && p.BECores < best.BECores))) {
			best = p
			found = true
		}
	}
	return best, found
}

package metrics

import (
	"testing"

	"memsched/internal/stats"
	"memsched/internal/workload"
)

func TestSLOMetAndAttainment(t *testing.T) {
	var h stats.LatencyHist
	// 90 fast reads, 10 slow ones: p99 lands in the slow mass.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000)
	}
	tight := SLO{Class: workload.LC, Percentile: 0.99, MaxLatency: 800}
	loose := SLO{Class: workload.LC, Percentile: 0.50, MaxLatency: 800}
	if tight.Met(&h) {
		t.Fatalf("p99 of bimodal stream is %d, should bust MaxLatency 800", h.Quantile(0.99))
	}
	if !loose.Met(&h) {
		t.Fatalf("p50 of bimodal stream is %d, should fit MaxLatency 800", h.Quantile(0.50))
	}
	if got := Attainment(&h, 800); got != 0.9 {
		t.Fatalf("Attainment(800) = %v, want 0.9", got)
	}
	// Quantile(1) is the upper bound of the last occupied bucket, so every
	// sample certainly lies at or below it.
	if got := Attainment(&h, h.Quantile(1)); got != 1 {
		t.Fatalf("Attainment(Quantile(1)) = %v, want 1", got)
	}
	var empty stats.LatencyHist
	if !tight.Met(&empty) || Attainment(&empty, 1) != 1 {
		t.Fatalf("empty histogram must trivially meet any SLO")
	}
}

func TestSLOString(t *testing.T) {
	s := SLO{Class: workload.LC, Percentile: 0.999, MaxLatency: 1200}
	if got, want := s.String(), "LC p99.9 <= 1200"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestMaxBEAtSLO(t *testing.T) {
	points := []SLOPoint{
		{Policy: "hf-rf", BECores: 3, LCTail: 1500, BEIPC: 2.0},  // busts SLO
		{Policy: "dash", BECores: 3, LCTail: 700, BEIPC: 1.8},    // best legal
		{Policy: "dash", BECores: 1, LCTail: 400, BEIPC: 0.9},    // legal, slower
		{Policy: "me-lreq", BECores: 3, LCTail: 800, BEIPC: 1.8}, // tie on IPC, worse tail
	}
	best, ok := MaxBEAtSLO(points, 800)
	if !ok {
		t.Fatalf("MaxBEAtSLO found no legal point")
	}
	if best.Policy != "dash" || best.BECores != 3 || best.LCTail != 700 {
		t.Fatalf("MaxBEAtSLO = %+v, want dash/3/700", best)
	}
	if _, ok := MaxBEAtSLO(points, 100); ok {
		t.Fatalf("MaxBEAtSLO with unmeetable bound should report no point")
	}
	if _, ok := MaxBEAtSLO(nil, 800); ok {
		t.Fatalf("MaxBEAtSLO of no points should report no point")
	}
}

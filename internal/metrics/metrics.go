// Package metrics computes the evaluation metrics of the paper's Section 4 —
// SMT speedup (Snavely et al.) and unfairness (maximum over minimum slowdown
// across the co-scheduled applications) — plus the metrics the follow-on
// fairness literature scores memory schedulers on: per-application slowdown
// vectors, maximum slowdown (Subramanian et al.) and harmonic speedup
// (Luo et al.).
//
// Every function validates both IPC vectors: a non-positive entry on either
// side returns a descriptive error instead of silently propagating Inf/NaN
// into result tables (a fully stalled core has IPC 0, and dividing by it must
// be a diagnosed failure, not a corrupted average).
package metrics

import (
	"fmt"
	"math"
)

// SMTSpeedup returns sum_i IPC_multi[i] / IPC_single[i]. A value of n on an
// n-core system means every application ran as fast as it did alone.
func SMTSpeedup(ipcMulti, ipcSingle []float64) (float64, error) {
	if len(ipcMulti) != len(ipcSingle) {
		return 0, fmt.Errorf("metrics: %d multi-core IPCs vs %d single-core IPCs",
			len(ipcMulti), len(ipcSingle))
	}
	if len(ipcMulti) == 0 {
		return 0, fmt.Errorf("metrics: empty IPC vectors")
	}
	sum := 0.0
	for i := range ipcMulti {
		if ipcSingle[i] <= 0 {
			return 0, fmt.Errorf("metrics: core %d has non-positive single-core IPC %v",
				i, ipcSingle[i])
		}
		sum += ipcMulti[i] / ipcSingle[i]
	}
	return sum, nil
}

// Slowdowns returns IPC_single[i] / IPC_multi[i] per core: how many times
// slower each application runs under sharing than alone.
func Slowdowns(ipcMulti, ipcSingle []float64) ([]float64, error) {
	if len(ipcMulti) != len(ipcSingle) || len(ipcMulti) == 0 {
		return nil, fmt.Errorf("metrics: bad IPC vectors (%d vs %d)",
			len(ipcMulti), len(ipcSingle))
	}
	out := make([]float64, len(ipcMulti))
	for i := range out {
		if ipcMulti[i] <= 0 || ipcSingle[i] <= 0 {
			return nil, fmt.Errorf("metrics: core %d has non-positive IPC (multi %v, single %v)",
				i, ipcMulti[i], ipcSingle[i])
		}
		out[i] = ipcSingle[i] / ipcMulti[i]
	}
	return out, nil
}

// Unfairness returns max slowdown / min slowdown (paper Section 5.3,
// following Gabor et al. and Mutlu & Moscibroda). 1.0 is perfectly fair;
// larger is less fair.
func Unfairness(ipcMulti, ipcSingle []float64) (float64, error) {
	sd, err := Slowdowns(ipcMulti, ipcSingle)
	if err != nil {
		return 0, err
	}
	minS, maxS := sd[0], sd[0]
	for _, s := range sd[1:] {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	return maxS / minS, nil
}

// MaxSlowdown returns the largest per-application slowdown — the
// fairness-literature headline metric (a scheduler is judged by how badly it
// treats its worst-off application). 1.0 means no application was hurt.
func MaxSlowdown(ipcMulti, ipcSingle []float64) (float64, error) {
	sd, err := Slowdowns(ipcMulti, ipcSingle)
	if err != nil {
		return 0, err
	}
	maxS := sd[0]
	for _, s := range sd[1:] {
		if s > maxS {
			maxS = s
		}
	}
	return maxS, nil
}

// HarmonicSpeedup returns n / sum_i(IPC_single[i]/IPC_multi[i]): the harmonic
// mean of the per-application speedups (Luo et al.), which balances
// throughput against fairness — a single badly slowed application drags the
// harmonic mean far more than it drags SMTSpeedup's arithmetic sum. It is
// bounded above by SMTSpeedup/n (the AM-HM inequality).
func HarmonicSpeedup(ipcMulti, ipcSingle []float64) (float64, error) {
	sd, err := Slowdowns(ipcMulti, ipcSingle)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range sd {
		sum += s
	}
	return float64(len(sd)) / sum, nil
}

// RelativeGain returns (a-b)/b: the fractional improvement of a over b.
func RelativeGain(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b
}

// GeoMean returns the geometric mean of positive values (handy for
// summarizing speedups across workloads); zero or negative inputs are an
// error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: geomean of empty slice")
	}
	// Sum logs rather than multiplying to avoid overflow on long inputs.
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: geomean input %v <= 0", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

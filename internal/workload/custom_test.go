package workload

import (
	"strings"
	"testing"
)

const validJSON = `[
  {"name": "streamer", "class": "MEM", "me": 2,
   "params": {"streamFrac": 0.5, "wordsPerLine": 4, "runLenLines": 256}},
  {"name": "chaser", "class": "MEM", "me": 1,
   "params": {"randomFrac": 0.2, "depProb": 0.7}},
  {"name": "cruncher", "me": 500, "params": {"fpFrac": 0.8}}
]`

func TestLoadAppsValid(t *testing.T) {
	apps, err := LoadApps(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("loaded %d apps", len(apps))
	}
	if apps[0].Name != "streamer" || apps[0].Class != MEM || apps[0].Code != 'A' {
		t.Fatalf("app 0 = %+v", apps[0])
	}
	if apps[2].Class != ILP { // class omitted defaults to ILP
		t.Fatalf("default class = %v", apps[2].Class)
	}
	// Defaults applied.
	if apps[0].Params.LoadFrac != 0.25 || apps[0].Params.HotLines != hotSet {
		t.Fatalf("defaults not applied: %+v", apps[0].Params)
	}
	if apps[0].Params.FootprintLines != memFootprint {
		t.Fatalf("MEM footprint default = %d", apps[0].Params.FootprintLines)
	}
	if apps[2].Params.FootprintLines != ilpFootprint {
		t.Fatalf("ILP footprint default = %d", apps[2].Params.FootprintLines)
	}
	// All loaded params validate.
	for _, a := range apps {
		if err := a.Params.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestLoadAppsExplicitZeroMix(t *testing.T) {
	// Pointer fields distinguish "omitted" from explicit zero.
	apps, err := LoadApps(strings.NewReader(
		`[{"name": "noload", "me": 5, "params": {"loadFrac": 0, "storeFrac": 0}}]`))
	if err != nil {
		t.Fatal(err)
	}
	if apps[0].Params.LoadFrac != 0 || apps[0].Params.StoreFrac != 0 {
		t.Fatalf("explicit zeros overridden: %+v", apps[0].Params)
	}
	if apps[0].Params.BranchFrac != 0.12 {
		t.Fatal("omitted branchFrac should default")
	}
}

func TestLoadAppsRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"empty":           "[]",
		"no name":         `[{"me": 1}]`,
		"bad class":       `[{"name": "x", "me": 1, "class": "FOO"}]`,
		"zero me":         `[{"name": "x", "me": 0}]`,
		"unknown field":   `[{"name": "x", "me": 1, "bogus": true}]`,
		"invalid params":  `[{"name": "x", "me": 1, "params": {"loadFrac": 0.9, "storeFrac": 0.9}}]`,
		"unknown p field": `[{"name": "x", "me": 1, "params": {"nope": 1}}]`,
	}
	for name, js := range cases {
		if _, err := LoadApps(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadAppsTooMany(t *testing.T) {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 27; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"name": "a", "me": 1}`)
	}
	sb.WriteByte(']')
	if _, err := LoadApps(strings.NewReader(sb.String())); err == nil {
		t.Fatal("27 apps accepted")
	}
}

package workload

import (
	"testing"

	"memsched/internal/trace"
)

func TestTwentySixApps(t *testing.T) {
	all := Apps()
	if len(all) != 26 {
		t.Fatalf("Apps() = %d entries, want 26", len(all))
	}
	seenCode := map[byte]bool{}
	seenName := map[string]bool{}
	for _, a := range all {
		if a.Code < 'a' || a.Code > 'z' {
			t.Errorf("%s: code %q outside a..z", a.Name, string(a.Code))
		}
		if seenCode[a.Code] {
			t.Errorf("duplicate code %q", string(a.Code))
		}
		if seenName[a.Name] {
			t.Errorf("duplicate name %q", a.Name)
		}
		seenCode[a.Code] = true
		seenName[a.Name] = true
	}
}

func TestAllParamsValid(t *testing.T) {
	for _, a := range Apps() {
		if err := a.Params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", a.Name, err)
		}
		if a.PaperME <= 0 {
			t.Errorf("%s: PaperME %v", a.Name, a.PaperME)
		}
	}
}

func TestClassCountsMatchPaper(t *testing.T) {
	// Paper Table 2: 14 MEM, 12 ILP applications.
	mem, ilp := 0, 0
	for _, a := range Apps() {
		if a.Class == MEM {
			mem++
		} else {
			ilp++
		}
	}
	if mem != 14 || ilp != 12 {
		t.Fatalf("classes = %d MEM / %d ILP, want 14/12", mem, ilp)
	}
}

func TestTable2Spots(t *testing.T) {
	cases := []struct {
		code  byte
		name  string
		class Class
		me    float64
	}{
		{'c', "swim", MEM, 2},
		{'k', "mcf", MEM, 1},
		{'t', "eon", ILP, 16276},
		{'n', "facerec", MEM, 40},
		{'r', "parser", ILP, 38},
		{'z', "apsi", ILP, 36},
	}
	for _, c := range cases {
		a, err := ByCode(c.code)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name != c.name || a.Class != c.class || a.PaperME != c.me {
			t.Errorf("code %q = %s/%v/ME %v, want %s/%v/ME %v",
				string(c.code), a.Name, a.Class, a.PaperME, c.name, c.class, c.me)
		}
	}
}

func TestCalibrationTargetsOrdering(t *testing.T) {
	// The engineered lines-per-instruction must be monotone non-increasing
	// in paper ME *within each class* (MEM and ILP are calibrated on
	// different traffic scales; see the calibration comment in workload.go).
	type appTraffic struct {
		name string
		me   float64
		tpi  float64 // target traffic lines per instruction
	}
	lists := map[Class][]appTraffic{}
	for _, a := range Apps() {
		p := a.Params
		tpi := (p.LoadFrac + p.StoreFrac) * (p.StreamFrac/float64(p.WordsPerLine) + p.RandomFrac)
		lists[a.Class] = append(lists[a.Class], appTraffic{a.Name, a.PaperME, tpi})
	}
	for class, list := range lists {
		for i := range list {
			for j := range list {
				if list[i].me < list[j].me && list[i].tpi < list[j].tpi*0.8 {
					t.Errorf("%v: %s (ME %v) generates less traffic than %s (ME %v): %v vs %v",
						class, list[i].name, list[i].me, list[j].name, list[j].me,
						list[i].tpi, list[j].tpi)
				}
			}
		}
	}
	// Across classes, the heaviest MEM app must still out-traffic every ILP
	// app, so MEM workloads dominate the memory system as in the paper.
	var maxILP, minMEMHeavy float64 = 0, 1
	for _, a := range Apps() {
		p := a.Params
		tpi := (p.LoadFrac + p.StoreFrac) * (p.StreamFrac/float64(p.WordsPerLine) + p.RandomFrac)
		if a.Class == ILP && tpi > maxILP {
			maxILP = tpi
		}
		if a.Class == MEM && tpi < minMEMHeavy {
			minMEMHeavy = tpi
		}
	}
	if maxILP >= minMEMHeavy {
		t.Errorf("heaviest ILP app (%v lines/instr) out-traffics lightest MEM app (%v)",
			maxILP, minMEMHeavy)
	}
}

func TestByCodeUnknown(t *testing.T) {
	if _, err := ByCode('!'); err == nil {
		t.Fatal("unknown code accepted")
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestThirtySixMixes(t *testing.T) {
	all := Mixes()
	if len(all) != 36 {
		t.Fatalf("Mixes() = %d, want 36", len(all))
	}
	for _, m := range all {
		apps, err := m.Apps()
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if len(apps) != m.Cores() {
			t.Errorf("%s: %d apps for %d cores", m.Name, len(apps), m.Cores())
		}
		switch m.Cores() {
		case 2, 4, 8:
		default:
			t.Errorf("%s: unexpected core count %d", m.Name, m.Cores())
		}
	}
}

func TestTable3Spots(t *testing.T) {
	cases := map[string]string{
		"2MEM-1": "bc",
		"2MIX-2": "cr",
		"4MEM-1": "bcde",
		"4MIX-2": "hzde",
		"8MEM-4": "bcdenpqv",
		"8MIX-3": "uxywnpqv",
	}
	for name, codes := range cases {
		m, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Codes != codes {
			t.Errorf("%s = %q, want %q", name, m.Codes, codes)
		}
	}
}

func TestMemMixesAreMemApps(t *testing.T) {
	// Every app in a *MEM workload must be class MEM, except the three rows
	// the published table prints with anomalies (kept verbatim).
	anomalies := map[string]bool{"8MEM-6": true}
	for _, m := range Mixes() {
		if !anomalies[m.Name] && len(m.Name) > 1 && m.Name[1:4] == "MEM" {
			apps, _ := m.Apps()
			for _, a := range apps {
				if a.Class != MEM {
					t.Errorf("%s contains ILP app %s", m.Name, a.Name)
				}
			}
		}
	}
}

func TestMixesFor(t *testing.T) {
	if got := len(MixesFor(4, "MEM")); got != 6 {
		t.Errorf("4-core MEM mixes = %d, want 6", got)
	}
	if got := len(MixesFor(8, "")); got != 12 {
		t.Errorf("8-core mixes = %d, want 12", got)
	}
	if got := len(MixesFor(2, "MIX")); got != 6 {
		t.Errorf("2-core MIX mixes = %d, want 6", got)
	}
	if got := len(MixesFor(3, "")); got != 0 {
		t.Errorf("3-core mixes = %d, want 0", got)
	}
}

func TestMixByNameCaseInsensitive(t *testing.T) {
	if _, err := MixByName("4mem-1"); err != nil {
		t.Fatal("lower-case mix name rejected")
	}
	if _, err := MixByName("9MEM-1"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	// Each core's region must hold any app's full address range without
	// overlapping the next core's region.
	var maxRegion uint64
	for _, a := range Apps() {
		if r := a.Params.RegionLines(); r > maxRegion {
			maxRegion = r
		}
	}
	if maxRegion > RegionStride {
		t.Fatalf("largest app region %d lines exceeds stride %d", maxRegion, RegionStride)
	}
	if BaseFor(1)-BaseFor(0) != RegionStride {
		t.Fatal("BaseFor stride mismatch")
	}
}

func TestProfilesGenerate(t *testing.T) {
	// Every profile must construct a generator and emit sane instructions.
	for _, a := range Apps() {
		g, err := trace.NewSynthetic(a.Params, BaseFor(3), 99)
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		var ins trace.Instr
		memSeen := false
		for i := 0; i < 5000; i++ {
			g.Next(&ins)
			if ins.Kind.IsMem() {
				memSeen = true
			}
		}
		if !memSeen {
			t.Errorf("%s: no memory instruction in 5000", a.Name)
		}
	}
}

func TestCodeFootprintsApplied(t *testing.T) {
	gcc, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if gcc.Params.CodeLines != 2048 {
		t.Fatalf("gcc code footprint = %d, want 2048", gcc.Params.CodeLines)
	}
	swim, _ := ByName("swim")
	if swim.Params.CodeLines != 0 {
		t.Fatalf("swim should use the default hot loop, got %d", swim.Params.CodeLines)
	}
	if swim.Params.EffectiveCodeLines() != 64 {
		t.Fatalf("EffectiveCodeLines default = %d", swim.Params.EffectiveCodeLines())
	}
}

func TestCodeRegionDisjointFromData(t *testing.T) {
	// The code region must not overlap any app's data region on any core.
	var maxData uint64
	for _, a := range Apps() {
		if r := a.Params.RegionLines(); r > maxData {
			maxData = r
		}
	}
	for core := 0; core < 8; core++ {
		dataEnd := BaseFor(core) + maxData
		codeStart := CodeBaseFor(core)
		if codeStart < dataEnd {
			t.Fatalf("core %d: code region %d overlaps data end %d", core, codeStart, dataEnd)
		}
		if core < 7 && CodeBaseFor(core)+(1<<20) > BaseFor(core+1) {
			t.Fatalf("core %d: code region reaches into core %d's region", core, core+1)
		}
	}
}

func TestMemAppsHavePhases(t *testing.T) {
	for _, a := range Apps() {
		hasPhases := a.Params.PhaseInstr > 0
		if (a.Class == MEM) != hasPhases {
			t.Errorf("%s (%v): PhaseInstr = %v", a.Name, a.Class, a.Params.PhaseInstr)
		}
	}
}

func TestStreamingMemAppsHaveStride(t *testing.T) {
	for _, a := range Apps() {
		if a.Class == MEM && a.Params.StreamFrac >= 0.1 {
			if a.Params.StrideLines != 4 {
				t.Errorf("%s: streaming MEM app stride = %d, want 4", a.Name, a.Params.StrideLines)
			}
		}
	}
}

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"memsched/internal/trace"
)

// customApp is the JSON schema for user-defined application profiles; see
// LoadApps.
type customApp struct {
	Name    string       `json:"name"`
	Class   string       `json:"class"` // "MEM" or "ILP"
	PaperME float64      `json:"me"`    // priority-table fallback value
	Params  customParams `json:"params"`
}

// customParams mirrors trace.Params with lower-camel JSON keys and the same
// defaults the built-in profiles use for omitted fields.
type customParams struct {
	LoadFrac       *float64 `json:"loadFrac"`
	StoreFrac      *float64 `json:"storeFrac"`
	BranchFrac     *float64 `json:"branchFrac"`
	FPFrac         float64  `json:"fpFrac"`
	MulFrac        *float64 `json:"mulFrac"`
	StreamFrac     float64  `json:"streamFrac"`
	RandomFrac     float64  `json:"randomFrac"`
	WordsPerLine   int      `json:"wordsPerLine"`
	RunLenLines    float64  `json:"runLenLines"`
	StrideLines    int      `json:"strideLines"`
	FootprintLines uint64   `json:"footprintLines"`
	HotLines       uint64   `json:"hotLines"`
	DepProb        float64  `json:"depProb"`
	PhaseInstr     float64  `json:"phaseInstr"`
	PhaseHotFrac   float64  `json:"phaseHotFrac"`
	PhaseGain      float64  `json:"phaseGain"`
	CodeLines      uint64   `json:"codeLines"`
	TakenProb      float64  `json:"takenProb"`
}

func orDefault(v *float64, def float64) float64 {
	if v == nil {
		return def
	}
	return *v
}

// LoadApps reads a JSON array of application profiles, applying the built-in
// defaults (instruction mix, footprints) to omitted fields. Loaded apps get
// code letters 'A', 'B', ... (upper case, so they never collide with the
// Table 2 suite).
//
// Minimal example:
//
//	[{"name": "mykernel", "class": "MEM", "me": 3,
//	  "params": {"streamFrac": 0.4, "wordsPerLine": 4,
//	             "footprintLines": 2097152, "hotLines": 512,
//	             "runLenLines": 256}}]
func LoadApps(r io.Reader) ([]App, error) {
	var raw []customApp
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: parsing app file: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: app file contains no applications")
	}
	if len(raw) > 26 {
		return nil, fmt.Errorf("workload: at most 26 custom applications supported, got %d", len(raw))
	}
	out := make([]App, 0, len(raw))
	for i, c := range raw {
		if c.Name == "" {
			return nil, fmt.Errorf("workload: app %d has no name", i)
		}
		var class Class
		switch strings.ToUpper(c.Class) {
		case "MEM":
			class = MEM
		case "ILP", "":
			class = ILP
		default:
			return nil, fmt.Errorf("workload: app %q: class %q is not MEM or ILP", c.Name, c.Class)
		}
		if c.PaperME <= 0 {
			return nil, fmt.Errorf("workload: app %q: me must be positive", c.Name)
		}
		p := c.Params
		foot := p.FootprintLines
		if foot == 0 {
			foot = ilpFootprint
			if class == MEM {
				foot = memFootprint
			}
		}
		hot := p.HotLines
		if hot == 0 {
			hot = hotSet
		}
		wpl := p.WordsPerLine
		if wpl == 0 {
			wpl = 8
		}
		run := p.RunLenLines
		if run == 0 {
			run = 4
		}
		app := App{
			Name:    c.Name,
			Code:    byte('A' + i),
			Class:   class,
			PaperME: c.PaperME,
			Params: trace.Params{
				LoadFrac:       orDefault(p.LoadFrac, 0.25),
				StoreFrac:      orDefault(p.StoreFrac, 0.10),
				BranchFrac:     orDefault(p.BranchFrac, 0.12),
				FPFrac:         p.FPFrac,
				MulFrac:        orDefault(p.MulFrac, 0.15),
				StreamFrac:     p.StreamFrac,
				RandomFrac:     p.RandomFrac,
				WordsPerLine:   wpl,
				RunLenLines:    run,
				StrideLines:    p.StrideLines,
				FootprintLines: foot,
				HotLines:       hot,
				DepProb:        p.DepProb,
				PhaseInstr:     p.PhaseInstr,
				PhaseHotFrac:   p.PhaseHotFrac,
				PhaseGain:      p.PhaseGain,
				CodeLines:      p.CodeLines,
				TakenProb:      p.TakenProb,
			},
		}
		if err := app.Params.Validate(); err != nil {
			return nil, fmt.Errorf("workload: app %q: %w", c.Name, err)
		}
		out = append(out, app)
	}
	return out, nil
}

package workload

import (
	"fmt"
	"strings"
)

// ServiceClass labels an application's serving tier in a colocation
// experiment: latency-critical (LC) applications carry a tail-latency SLO,
// best-effort (BE) applications are throughput packing. It is orthogonal to
// Class (the paper's MEM/ILP taxonomy): a latency-critical tenant is usually
// memory-intensive, but the two axes are assigned independently.
//
// The zero value is BE, so runs that never mention classes behave exactly as
// before: every core is best-effort and no policy or metric treats it
// specially.
type ServiceClass uint8

const (
	// BE marks best-effort applications (the default).
	BE ServiceClass = iota
	// LC marks latency-critical applications.
	LC
)

// String implements fmt.Stringer.
func (c ServiceClass) String() string {
	if c == LC {
		return "LC"
	}
	return "BE"
}

// MarshalText renders the class as "LC"/"BE" so JSON results and fixtures
// stay human-readable.
func (c ServiceClass) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses "LC"/"BE" (case-insensitive).
func (c *ServiceClass) UnmarshalText(b []byte) error {
	switch strings.ToUpper(string(b)) {
	case "LC":
		*c = LC
	case "BE", "":
		*c = BE
	default:
		return fmt.Errorf("workload: unknown service class %q (want LC or BE)", b)
	}
	return nil
}

// ParseServiceClasses parses a per-core class spec string: one letter per
// core, 'L' for latency-critical and 'B' for best-effort (case-insensitive),
// e.g. "LBBB" pins an LC tenant on core 0 of a 4-core machine. The empty
// string returns nil (all cores best-effort). cores < 0 skips the length
// check, for call sites that validate against the machine later.
func ParseServiceClasses(spec string, cores int) ([]ServiceClass, error) {
	if spec == "" {
		return nil, nil
	}
	if cores >= 0 && len(spec) != cores {
		return nil, fmt.Errorf("workload: class spec %q names %d cores, system has %d",
			spec, len(spec), cores)
	}
	out := make([]ServiceClass, len(spec))
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case 'L', 'l':
			out[i] = LC
		case 'B', 'b':
			out[i] = BE
		default:
			return nil, fmt.Errorf("workload: class spec %q: position %d is %q (want L or B)",
				spec, i, string(spec[i]))
		}
	}
	return out, nil
}

// FormatServiceClasses renders a class vector back into spec-string form
// ("LBBB"); nil renders as the empty string.
func FormatServiceClasses(classes []ServiceClass) string {
	if len(classes) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, c := range classes {
		if c == LC {
			sb.WriteByte('L')
		} else {
			sb.WriteByte('B')
		}
	}
	return sb.String()
}

package workload_test

import (
	"encoding/json"
	"testing"

	"memsched/internal/workload"
)

func TestParseServiceClasses(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		cores int
		want  string // re-rendered via FormatServiceClasses; "ERR" = must fail
	}{
		{spec: "", cores: 4, want: ""},
		{spec: "LBBB", cores: 4, want: "LBBB"},
		{spec: "lbLb", cores: 4, want: "LBLB"},
		{spec: "LL", cores: -1, want: "LL"}, // cores < 0 skips the length check
		{spec: "LB", cores: 4, want: "ERR"},
		{spec: "LBXB", cores: 4, want: "ERR"},
	} {
		got, err := workload.ParseServiceClasses(tc.spec, tc.cores)
		if tc.want == "ERR" {
			if err == nil {
				t.Errorf("ParseServiceClasses(%q, %d) accepted invalid spec", tc.spec, tc.cores)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseServiceClasses(%q, %d): %v", tc.spec, tc.cores, err)
			continue
		}
		if round := workload.FormatServiceClasses(got); round != tc.want {
			t.Errorf("ParseServiceClasses(%q, %d) round-trips to %q, want %q",
				tc.spec, tc.cores, round, tc.want)
		}
		if tc.spec == "" && got != nil {
			t.Error("empty spec must return nil, not an empty slice")
		}
	}
}

func TestServiceClassJSON(t *testing.T) {
	blob, err := json.Marshal([]workload.ServiceClass{workload.LC, workload.BE})
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `["LC","BE"]` {
		t.Errorf("marshal = %s", blob)
	}
	var back []workload.ServiceClass
	if err := json.Unmarshal([]byte(`["lc", "", "BE"]`), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != workload.LC || back[1] != workload.BE || back[2] != workload.BE {
		t.Errorf("unmarshal = %v", back)
	}
	if err := json.Unmarshal([]byte(`["HI"]`), &back); err == nil {
		t.Error("unmarshal accepted unknown class")
	}
	// The zero value is BE: the whole zero-perturbation design rests on it.
	var zero workload.ServiceClass
	if zero != workload.BE {
		t.Error("zero ServiceClass is not BE")
	}
}

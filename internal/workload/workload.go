// Package workload defines the 26 synthetic applications standing in for the
// SPEC CPU2000 suite (paper Table 2) and the 36 multiprogrammed mixes of
// paper Table 3.
//
// SPEC binaries and SimPoint traces are proprietary, so each benchmark is
// replaced by a synthetic trace.Params profile engineered to reproduce the
// property the paper's scheduler actually keys on: the *relative ordering*
// of memory-efficiency values in Table 2 (lucas/applu/mcf at the bottom, eon
// four orders of magnitude above them) and the MEM/ILP split (MEM = more
// than 15% faster under a perfect memory system).
//
// Calibration sketch: our measured ME is IPC/BW(GB/s), and since both terms
// share the IPC factor, ME reduces to 1/(204.8 x traffic-lines-per-
// instruction) at 3.2 GHz with 64-byte lines. Each profile's stream/random
// fractions are chosen so lines-per-instruction ~ 0.025 / ME_paper, which
// keeps the Table 2 ordering while making the MEM workloads heavy enough to
// contend for the two DDR2 channels on 4 and 8 cores. Dependence density
// (DepProb) sets latency sensitivity, which is what separates class M from
// class I at similar ME (facerec vs parser in the paper's table).
package workload

import (
	"fmt"
	"sort"
	"strings"

	"memsched/internal/trace"
)

// Class labels an application MEM (memory-intensive) or ILP
// (compute-intensive), following the paper's definition.
type Class uint8

const (
	// ILP marks compute-intensive applications (<15% perfect-memory gain).
	ILP Class = iota
	// MEM marks memory-intensive applications.
	MEM
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == MEM {
		return "MEM"
	}
	return "ILP"
}

// App is one synthetic application profile.
type App struct {
	Name string
	// Code is the single-letter identifier of paper Table 2 ('a'..'z').
	Code byte
	// Class is the paper's MEM/ILP classification.
	Class Class
	// PaperME is the memory-efficiency value reported in paper Table 2,
	// used to seed priority tables when profiling is skipped and as the
	// calibration target for the profile.
	PaperME float64
	// Params drives the synthetic trace generator.
	Params trace.Params
}

// footprints in cache lines (64 B each): MEM codes sweep 128 MiB, ILP codes
// 64 MiB; the hot set is L1-resident.
const (
	memFootprint = 1 << 21
	ilpFootprint = 1 << 20
	hotSet       = 512
)

// mk builds a profile with the shared instruction mix. stream and random are
// the fractions of memory accesses in each pattern; wpl the number of word
// accesses per cache line while streaming (small wpl = large stride = more
// traffic); dep is the load-dependence probability; run the mean sequential
// run length in lines; fp the floating-point share of compute.
func mk(name string, code byte, class Class, paperME float64,
	stream, random float64, wpl int, dep, run, fp float64) App {
	foot := uint64(ilpFootprint)
	if class == MEM {
		foot = memFootprint
	}
	p := trace.Params{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.12,
		FPFrac: fp, MulFrac: 0.15,
		StreamFrac: stream, RandomFrac: random,
		WordsPerLine: wpl, RunLenLines: run,
		FootprintLines: foot, HotLines: hotSet,
		DepProb: dep,
	}
	if class == MEM {
		// Memory-intensive codes alternate bursty and quiet phases (~30k
		// instructions); fixed-priority schemes fail exactly during the
		// bursts of high-priority threads (paper Section 5.1).
		p.PhaseInstr = 20_000
		p.PhaseHotFrac = 0.25
		p.PhaseGain = 2.4
		if stream >= 0.1 {
			// Large-stride array sweeps revisit each DRAM row while earlier
			// requests are still queued (stride 4 lines = 1/4 of the bank
			// stride), giving the streaming FP codes the row-buffer locality
			// that makes Hit-First meaningful.
			p.StrideLines = 4
		}
	}
	return App{Name: name, Code: code, Class: class, PaperME: paperME, Params: p}
}

// apps lists all 26 profiles in paper Table 2's order (codes a..z).
//
// Calibration: with LoadFrac+StoreFrac = 0.35, demand traffic is roughly
// 0.35 x (stream/wpl + random) lines per instruction. MEM profiles target
// lines/instr ~ 0.1 / ME_paper so that 4-core MEM workloads oversubscribe
// the two DDR2 channels (the regime where the paper's scheduling results
// live); ILP profiles target ~ 0.015 / ME_paper so that, like the paper's
// ILP codes, they lose under 15% to the memory system. The two scales
// preserve the Table 2 ME ordering within each class and across all pairs
// except the immediate class boundary (apsi/parser/facerec), a compromise
// documented in EXPERIMENTS.md. Streaming codes get long runs and low
// dependence (high memory-level parallelism); irregular codes get random
// patterns and high dependence (latency-sensitive, few pending requests —
// the LREQ beneficiaries).
var apps = []App{
	mk("gzip", 'a', ILP, 192, 0, 0.000223, 8, 0.20, 4, 0.02),
	mk("wupwise", 'b', MEM, 15, 0.3040, 0, 8, 0.05, 256, 0.60),
	mk("swim", 'c', MEM, 2, 0.5710, 0, 2, 0.02, 512, 0.70),
	mk("mgrid", 'd', MEM, 4, 0.5710, 0, 4, 0.02, 512, 0.70),
	mk("applu", 'e', MEM, 1, 0.5710, 0, 1, 0.02, 512, 0.70),
	mk("vpr", 'f', MEM, 27, 0, 0.0212, 8, 0.40, 4, 0.10),
	mk("gcc", 'g', MEM, 22, 0, 0.0180, 8, 0.30, 4, 0.05),
	mk("mesa", 'h', ILP, 78, 0.0044, 0, 8, 0.20, 64, 0.50),
	mk("galgel", 'i', MEM, 8, 0.2860, 0, 4, 0.05, 256, 0.70),
	mk("art", 'j', MEM, 20, 0, 0.0286, 8, 0.35, 4, 0.50),
	mk("mcf", 'k', MEM, 1, 0, 0.2860, 8, 0.50, 4, 0.02),
	mk("equake", 'l', MEM, 2, 0.5710, 0.0100, 2, 0.05, 256, 0.60),
	mk("crafty", 'm', ILP, 222, 0, 0.000193, 8, 0.20, 4, 0.02),
	mk("facerec", 'n', MEM, 40, 0.1142, 0, 8, 0.60, 128, 0.60),
	mk("ammp", 'o', ILP, 280, 0.00122, 0, 8, 0.20, 64, 0.60),
	mk("lucas", 'p', MEM, 1, 0.5500, 0.0200, 1, 0.02, 512, 0.70),
	mk("fma3d", 'q', MEM, 4, 0.5400, 0.0060, 4, 0.05, 256, 0.60),
	mk("parser", 'r', ILP, 38, 0, 0.00113, 8, 0.10, 4, 0.02),
	mk("sixtrack", 's', ILP, 80, 0.0043, 0, 8, 0.10, 256, 0.70),
	mk("eon", 't', ILP, 16276, 0, 0.0000026, 8, 0.10, 4, 0.30),
	mk("perlbmk", 'u', ILP, 2923, 0, 0.0000147, 8, 0.15, 4, 0.02),
	mk("gap", 'v', MEM, 7, 0, 0.0816, 8, 0.35, 4, 0.05),
	mk("vortex", 'w', ILP, 51, 0, 0.00084, 8, 0.12, 4, 0.02),
	mk("bzip2", 'x', ILP, 216, 0.00159, 0, 8, 0.20, 32, 0.02),
	mk("twolf", 'y', ILP, 951, 0, 0.000045, 8, 0.30, 4, 0.05),
	mk("apsi", 'z', ILP, 36, 0.0095, 0, 8, 0.15, 128, 0.60),
}

// codeFootprints gives the large integer codes instruction footprints that
// spill the 64 KiB (1024-line) L1I, as they do on real hardware; everything
// else keeps the default 4 KiB hot loop. Values are in cache lines.
// The extreme-ME codes (eon, perlbmk) keep L1I-resident footprints: their
// defining property in Table 2 is near-zero memory traffic, which even rare
// instruction-fetch DRAM misses would swamp.
var codeFootprints = map[string]uint64{
	"gcc": 2048, // 128 KiB — the classic I-cache stresser
	"gap": 1280,

	"crafty": 1024, // exactly the L1I: conflict misses only
	"parser": 640,
	"mesa":   768,
}

func init() {
	for i := range apps {
		if lines, ok := codeFootprints[apps[i].Name]; ok {
			apps[i].Params.CodeLines = lines
		}
	}
}

// Apps returns all 26 application profiles, ordered by code.
func Apps() []App {
	out := append([]App(nil), apps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// ByCode returns the application with the given Table 2 code letter.
func ByCode(code byte) (App, error) {
	for _, a := range apps {
		if a.Code == code {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: no application with code %q", string(code))
}

// ByName returns the application with the given SPEC name.
func ByName(name string) (App, error) {
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: no application named %q", name)
}

// Mix is one multiprogrammed workload of paper Table 3: Codes[i] runs on
// core i.
type Mix struct {
	Name  string
	Codes string
}

// Cores returns the number of cores the mix occupies.
func (m Mix) Cores() int { return len(m.Codes) }

// Apps resolves the mix's code letters to application profiles.
func (m Mix) Apps() ([]App, error) {
	out := make([]App, 0, len(m.Codes))
	for i := 0; i < len(m.Codes); i++ {
		a, err := ByCode(m.Codes[i])
		if err != nil {
			return nil, fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// mixes is paper Table 3 verbatim. Two 8-core rows ("8MEM-2", "8MEM-6",
// "8MIX-6") contain repeated code letters in the published table (e.g. v
// twice in npqvbdfv); we keep them as printed — two cores may run separate
// instances of the same program.
var mixes = []Mix{
	{"2MEM-1", "bc"}, {"2MEM-2", "de"}, {"2MEM-3", "fj"},
	{"2MEM-4", "kl"}, {"2MEM-5", "np"}, {"2MEM-6", "qv"},
	{"2MIX-1", "ab"}, {"2MIX-2", "cr"}, {"2MIX-3", "hd"},
	{"2MIX-4", "ez"}, {"2MIX-5", "mf"}, {"2MIX-6", "oj"},
	{"4MEM-1", "bcde"}, {"4MEM-2", "fgij"}, {"4MEM-3", "npqv"},
	{"4MEM-4", "bdkl"}, {"4MEM-5", "qvce"}, {"4MEM-6", "cjkq"},
	{"4MIX-1", "arbc"}, {"4MIX-2", "hzde"}, {"4MIX-3", "mofj"},
	{"4MIX-4", "stkl"}, {"4MIX-5", "uxnp"}, {"4MIX-6", "ywqv"},
	{"8MEM-1", "bcdefjkl"}, {"8MEM-2", "npqvbdfv"}, {"8MEM-3", "gicecjkq"},
	{"8MEM-4", "bcdenpqv"}, {"8MEM-5", "qvcefjkl"}, {"8MEM-6", "bygicipa"},
	{"8MIX-1", "arhzbcde"}, {"8MIX-2", "mostfjkl"}, {"8MIX-3", "uxywnpqv"},
	{"8MIX-4", "armobcfj"}, {"8MIX-5", "uxhznpde"}, {"8MIX-6", "stywayfk"},
}

// Mixes returns all 36 workloads of Table 3.
func Mixes() []Mix { return append([]Mix(nil), mixes...) }

// MixByName returns the named workload (e.g. "4MEM-1").
func MixByName(name string) (Mix, error) {
	for _, m := range mixes {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: no mix named %q", name)
}

// MixesFor filters Table 3 by core count (2, 4 or 8) and group ("MEM",
// "MIX", or "" for both).
func MixesFor(cores int, group string) []Mix {
	var out []Mix
	for _, m := range mixes {
		if m.Cores() != cores {
			continue
		}
		if group != "" && !strings.Contains(m.Name, strings.ToUpper(group)) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// RegionStride is the line-address spacing between consecutive cores'
// private regions: 16 Mi lines = 1 GiB, comfortably above every profile's
// footprint + hot set.
const RegionStride uint64 = 1 << 24

// BaseFor returns the first line address of core i's private region.
func BaseFor(core int) uint64 { return uint64(core) * RegionStride }

// CodeBaseFor returns the first line address of core i's code region, placed
// in the upper half of its private region, far above any data footprint.
func CodeBaseFor(core int) uint64 { return BaseFor(core) + RegionStride/2 }

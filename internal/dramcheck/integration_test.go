package dramcheck_test

import (
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/dramcheck"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

// TestModelObeysTimingUnderEveryPolicy drives the real controller + DRAM
// model with pseudo-random 4-core traffic under every scheduling policy and
// cross-validates every issued transaction against the independent protocol
// mirror. This is the strongest correctness statement the repository makes
// about its memory model.
func TestModelObeysTimingUnderEveryPolicy(t *testing.T) {
	policies := []string{"fcfs", "hf-rf", "rr", "lreq", "me", "me-lreq", "fq", "burst", "fix:3210"}
	for _, name := range policies {
		t.Run(name, func(t *testing.T) {
			cfg := config.Default(4)
			sys := dram.NewSystem(&cfg)
			timing := cfg.DRAMCycles()

			checkers := make([]*dramcheck.Checker, len(sys.Channels))
			for i, ch := range sys.Channels {
				checkers[i] = dramcheck.New(timing, cfg.Memory.RanksPerChan, cfg.Memory.BanksPerRank)
				checkers[i].Attach(ch)
			}

			pol, err := sched.New(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			table, err := memctrl.NewPriorityTable([]float64{1, 4, 27, 192}, 64, 10)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := memctrl.New(&cfg, sys, pol, table, xrand.New(11))
			if err != nil {
				t.Fatal(err)
			}

			rng := xrand.New(1234)
			completed, injected, writes := 0, 0, 0
			// Writes are bounded: an unbounded write flood exceeds the drain
			// rate and correctly locks the controller into drain mode.
			const target, writeCap = 600, 200
			now := int64(0)
			for completed < target {
				if injected < target && rng.Bernoulli(0.6) {
					core := rng.Intn(4)
					// Mix of streaming (row locality) and random lines.
					var line uint64
					if rng.Bernoulli(0.5) {
						line = uint64(injected * 4)
					} else {
						line = uint64(rng.Intn(1 << 22))
					}
					if mc.EnqueueRead(core, line, now, func(int64) { completed++ }) {
						injected++
					}
					if writes < writeCap && rng.Bernoulli(0.25) {
						if mc.EnqueueWrite(core, uint64(rng.Intn(1<<22)), now) {
							writes++
						}
					}
				}
				mc.Tick(now)
				now++
				if now > 5_000_000 {
					t.Fatalf("stalled: %d/%d reads", completed, target)
				}
			}

			var seen uint64
			for i, k := range checkers {
				seen += k.Transactions()
				for _, v := range k.Violations() {
					t.Errorf("channel %d: %s", i, v)
				}
			}
			if seen < target {
				t.Fatalf("checkers saw %d transactions, expected at least %d", seen, target)
			}
		})
	}
}

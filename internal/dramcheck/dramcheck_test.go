package dramcheck

import (
	"strings"
	"testing"

	"memsched/internal/addr"
	"memsched/internal/config"
	"memsched/internal/dram"
)

func checkerAndTiming() (*Checker, config.DRAMCycles) {
	cfg := config.Default(1)
	t := cfg.DRAMCycles()
	return New(t, 2, 4), t
}

func coord(rank, bank int, row int64) addr.Coord {
	return addr.Coord{Rank: rank, Bank: bank, Row: row}
}

func TestCleanStreamPasses(t *testing.T) {
	k, tm := checkerAndTiming()
	// Closed access then a row hit, correctly spaced.
	k.Observe(coord(0, 0, 5), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TRCD + tm.TCL, DataDone: tm.TRCD + tm.TCL + tm.Burst,
	}, false)
	start := tm.TRCD + tm.TCL + tm.Burst
	k.Observe(coord(0, 0, 5), dram.Result{
		Class: dram.AccessHit, Start: start,
		DataStart: start + tm.TCL, DataDone: start + tm.TCL + tm.Burst,
	}, true)
	if len(k.Violations()) != 0 {
		t.Fatalf("clean stream flagged: %v", k.Violations())
	}
	if k.Transactions() != 2 {
		t.Fatalf("Transactions = %d", k.Transactions())
	}
}

func TestDetectsBusyBank(t *testing.T) {
	k, tm := checkerAndTiming()
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TRCD + tm.TCL, DataDone: tm.TRCD + tm.TCL + tm.Burst,
	}, false)
	// Second access to the same bank starts before DataDone.
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessHit, Start: 10,
		DataStart: 10 + tm.TCL, DataDone: 10 + tm.TCL + tm.Burst,
	}, false)
	if !hasViolation(k, "busy") {
		t.Fatalf("busy-bank issue not flagged: %v", k.Violations())
	}
}

func TestDetectsWrongClass(t *testing.T) {
	k, tm := checkerAndTiming()
	// Claiming a hit on a precharged bank.
	k.Observe(coord(0, 1, 3), dram.Result{
		Class: dram.AccessHit, Start: 0,
		DataStart: tm.TCL, DataDone: tm.TCL + tm.Burst,
	}, false)
	if !hasViolation(k, "class") {
		t.Fatalf("wrong class not flagged: %v", k.Violations())
	}
}

func TestDetectsShortPrep(t *testing.T) {
	k, tm := checkerAndTiming()
	// Closed access delivering data after only tCL.
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TCL, DataDone: tm.TCL + tm.Burst,
	}, false)
	if !hasViolation(k, "needs >=") {
		t.Fatalf("short prep not flagged: %v", k.Violations())
	}
}

func TestDetectsBusOverlap(t *testing.T) {
	k, tm := checkerAndTiming()
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TRCD + tm.TCL, DataDone: tm.TRCD + tm.TCL + tm.Burst,
	}, false)
	// Different bank, but its burst starts inside the previous burst.
	k.Observe(coord(0, 1, 1), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TRCD + tm.TCL + 1, DataDone: tm.TRCD + tm.TCL + 1 + tm.Burst,
	}, false)
	if !hasViolation(k, "during previous burst") {
		t.Fatalf("bus overlap not flagged: %v", k.Violations())
	}
}

func TestDetectsWrongBurstLength(t *testing.T) {
	k, tm := checkerAndTiming()
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessClosed, Start: 0,
		DataStart: tm.TRCD + tm.TCL, DataDone: tm.TRCD + tm.TCL + tm.Burst - 1,
	}, false)
	if !hasViolation(k, "burst") {
		t.Fatalf("short burst not flagged: %v", k.Violations())
	}
}

func TestDetectsTimeTravel(t *testing.T) {
	k, tm := checkerAndTiming()
	k.Observe(coord(0, 0, 1), dram.Result{
		Class: dram.AccessClosed, Start: 100,
		DataStart: 100 + tm.TRCD + tm.TCL, DataDone: 100 + tm.TRCD + tm.TCL + tm.Burst,
	}, false)
	k.Observe(coord(0, 1, 1), dram.Result{
		Class: dram.AccessClosed, Start: 50,
		DataStart: 50 + tm.TRCD + tm.TCL, DataDone: 50 + tm.TRCD + tm.TCL + tm.Burst,
	}, false)
	if !hasViolation(k, "before previous start") {
		t.Fatalf("time travel not flagged: %v", k.Violations())
	}
}

func TestViolationListBounded(t *testing.T) {
	k, tm := checkerAndTiming()
	for i := 0; i < 100; i++ {
		// Same impossible transaction repeatedly.
		k.Observe(coord(0, 0, 1), dram.Result{
			Class: dram.AccessHit, Start: int64(i * 1000),
			DataStart: int64(i*1000) + 1, DataDone: int64(i*1000) + 1 + tm.Burst,
		}, true)
	}
	if len(k.Violations()) > 32 {
		t.Fatalf("violation list grew to %d", len(k.Violations()))
	}
}

func hasViolation(k *Checker, frag string) bool {
	for _, v := range k.Violations() {
		if strings.Contains(v, frag) {
			return true
		}
	}
	return false
}

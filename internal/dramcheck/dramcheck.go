// Package dramcheck is an independent DDR timing validator. It mirrors the
// protocol-level rules of the DDR2 model — bus occupancy, bank busy windows,
// row-buffer state, access-class latencies — from the timing parameters
// alone, without sharing any code with package dram's implementation, and
// verifies every issued transaction against them.
//
// Tests attach a Checker to a channel via dram.Channel.SetObserver and run
// real workloads through the controller; any divergence between the model
// and the rules is reported as a violation. Because the checker re-derives
// expected row-buffer outcomes itself, it catches state-machine bugs (a
// "hit" claimed on a closed bank) as well as arithmetic ones (overlapping
// bursts, too-short activate-to-data gaps).
package dramcheck

import (
	"fmt"

	"memsched/internal/addr"
	"memsched/internal/config"
	"memsched/internal/dram"
)

// bankMirror is the checker's independent copy of one bank's state.
type bankMirror struct {
	open    bool
	row     int64
	readyAt int64
}

// Checker validates one channel's transaction stream.
type Checker struct {
	timing       config.DRAMCycles
	banksPerRank int
	banks        []bankMirror
	busFreeAt    int64
	lastStart    int64

	transactions uint64
	violations   []string
	maxRecorded  int
}

// New builds a checker for a channel with the given geometry. The checker
// records at most 32 violations (enough to diagnose; avoids unbounded growth
// under a systematic failure).
func New(timing config.DRAMCycles, ranksPerChan, banksPerRank int) *Checker {
	return &Checker{
		timing:       timing,
		banksPerRank: banksPerRank,
		banks:        make([]bankMirror, ranksPerChan*banksPerRank),
		maxRecorded:  32,
	}
}

// Attach registers the checker on ch. Only one observer can be attached to a
// channel at a time.
func (k *Checker) Attach(ch *dram.Channel) {
	ch.SetObserver(k.Observe)
}

// Transactions returns how many transactions the checker has seen.
func (k *Checker) Transactions() uint64 { return k.transactions }

// Violations returns the recorded rule violations (empty = clean).
func (k *Checker) Violations() []string { return k.violations }

func (k *Checker) violate(format string, args ...any) {
	if len(k.violations) < k.maxRecorded {
		k.violations = append(k.violations, fmt.Sprintf(format, args...))
	}
}

// Observe validates one transaction; use as the channel observer.
func (k *Checker) Observe(c addr.Coord, res dram.Result, autoPrecharge bool) {
	k.transactions++
	b := &k.banks[c.Rank*k.banksPerRank+c.Bank]

	// Rule 0: issue order is non-decreasing in time (the controller is
	// cycle-driven; going backwards means broken bookkeeping).
	if res.Start < k.lastStart {
		k.violate("tx %d: start %d before previous start %d", k.transactions, res.Start, k.lastStart)
	}
	k.lastStart = res.Start

	// Rule 1: the bank must have been ready.
	if res.Start < b.readyAt {
		k.violate("tx %d: bank %d/%d started at %d while busy until %d",
			k.transactions, c.Rank, c.Bank, res.Start, b.readyAt)
	}

	// Rule 2: the claimed access class must match the mirrored row state.
	expected := dram.AccessConflict
	switch {
	case b.open && b.row == c.Row:
		expected = dram.AccessHit
	case !b.open:
		expected = dram.AccessClosed
	}
	if res.Class != expected {
		k.violate("tx %d: class %v claimed, mirror expects %v (bank %d/%d row %d)",
			k.transactions, res.Class, expected, c.Rank, c.Bank, c.Row)
	}

	// Rule 3: minimum command latency before data for the class.
	var prep int64
	switch expected {
	case dram.AccessHit:
		prep = k.timing.TCL
	case dram.AccessClosed:
		prep = k.timing.TRCD + k.timing.TCL
	default:
		prep = k.timing.TRP + k.timing.TRCD + k.timing.TCL
	}
	if res.DataStart < res.Start+prep {
		k.violate("tx %d: data after %d cycles, class %v needs >= %d",
			k.transactions, res.DataStart-res.Start, expected, prep)
	}

	// Rule 4: burst length is exact.
	if res.DataDone != res.DataStart+k.timing.Burst {
		k.violate("tx %d: burst %d cycles, want %d",
			k.transactions, res.DataDone-res.DataStart, k.timing.Burst)
	}

	// Rule 5: the data bus never carries two bursts at once.
	if res.DataStart < k.busFreeAt {
		k.violate("tx %d: burst starts at %d during previous burst (bus free at %d)",
			k.transactions, res.DataStart, k.busFreeAt)
	}
	k.busFreeAt = res.DataDone

	// Advance the mirror.
	if autoPrecharge {
		b.open = false
		b.readyAt = res.DataDone + k.timing.TRP
	} else {
		b.open = true
		b.row = c.Row
		b.readyAt = res.DataDone
	}
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"memsched/internal/xrand"
)

// FuzzReader ensures arbitrary bytes never panic the decoder: it must return
// a clean error or EOF. Seed corpus covers a valid header with garbage tails.
func FuzzReader(f *testing.F) {
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x05\x07garbage"))
	f.Add([]byte("not a trace at all"))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(&Instr{Kind: KindLoad, Line: 42})
	w.Write(&Instr{Kind: KindInt, DepOnLoad: true})
	w.Flush()
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var ins Instr
		for i := 0; i < 10000; i++ {
			if err := r.Read(&ins); err != nil {
				if !errors.Is(err, io.EOF) && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

// TestReaderNeverPanicsOnRandomBytes is the quick-check twin of FuzzReader,
// exercised on every `go test` run (the fuzz engine only runs its seeds).
func TestReaderNeverPanicsOnRandomBytes(t *testing.T) {
	rng := xrand.New(42)
	fn := func(n uint16, prependMagic bool) bool {
		data := make([]byte, int(n%4096))
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		if prependMagic {
			data = append([]byte(magic), data...)
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		var ins Instr
		for {
			if err := r.Read(&ins); err != nil {
				return true
			}
			if ins.Kind >= numKinds {
				return false // decoder let a corrupt kind through
			}
		}
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"io"
	"testing"
)

func BenchmarkSyntheticNext(b *testing.B) {
	g, err := NewSynthetic(validParams(), 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	var ins Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	g, _ := NewSynthetic(validParams(), 0, 1)
	w, err := NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	var ins Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
		if err := w.Write(&ins); err != nil {
			b.Fatal(err)
		}
	}
	w.Flush()
}

// Package trace produces the instruction streams the simulated cores
// execute.
//
// The paper drives its cores with SimPoint slices of SPEC CPU2000 binaries;
// those are not redistributable, so this package provides statistically
// stationary synthetic generators parameterized per application (package
// workload holds the 26 profiles). A generator is an infinite, deterministic
// stream: the same (params, seed) pair always produces the same
// instructions, and separate seeds model the paper's use of different
// SimPoint slices for profiling and for evaluation.
package trace

import (
	"fmt"

	"memsched/internal/xrand"
)

// Kind classifies one instruction for the core's timing model.
type Kind uint8

const (
	// KindInt is a single-cycle integer ALU operation.
	KindInt Kind = iota
	// KindIntMul is an integer multiply.
	KindIntMul
	// KindFP is a floating-point add/compare.
	KindFP
	// KindFPMul is a floating-point multiply.
	KindFPMul
	// KindBranch is a conditional branch (may mispredict).
	KindBranch
	// KindLoad reads one word; Line carries the cache-line address.
	KindLoad
	// KindStore writes one word; Line carries the cache-line address.
	KindStore

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindIntMul:
		return "intmul"
	case KindFP:
		return "fp"
	case KindFPMul:
		return "fpmul"
	case KindBranch:
		return "branch"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsMem reports whether the instruction accesses memory.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// Instr is one dynamic instruction.
type Instr struct {
	Kind Kind
	// Line is the cache-line address touched (loads and stores only).
	Line uint64
	// DepOnLoad marks an instruction whose input is produced by the most
	// recent older load; the core serializes it behind that load.
	DepOnLoad bool
}

// Generator produces an infinite instruction stream. Next must be
// allocation-free; the core calls it once per dispatched instruction.
type Generator interface {
	// Next overwrites ins with the next dynamic instruction.
	Next(ins *Instr)
}

// Params fully describes a synthetic application's statistical behavior.
// All fractions are in [0, 1].
type Params struct {
	// Instruction mix. LoadFrac + StoreFrac + BranchFrac <= 1; the remainder
	// is compute, split by FPFrac and MulFrac.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // fraction of compute that is floating point
	MulFrac    float64 // fraction of compute that is a multiply

	// Memory reference pattern: fractions of memory accesses that stream
	// sequentially / jump uniformly over the footprint; the remainder hits a
	// small hot set. StreamFrac + RandomFrac <= 1.
	StreamFrac float64
	RandomFrac float64

	// WordsPerLine is how many sequential word accesses fall on one cache
	// line while streaming (64-byte line / 8-byte word = 8): only every
	// WordsPerLine-th streaming access advances to a new line.
	WordsPerLine int
	// RunLenLines is the mean sequential run length in cache lines before
	// the stream jumps to a new random position (spatial locality knob: long
	// runs produce DRAM row-buffer hits).
	RunLenLines float64
	// StrideLines is the line-address step between consecutive streamed
	// lines (0 or 1 = unit stride). With cache-line interleaving, a stride
	// equal to a fraction of the bank stride makes a stream revisit the same
	// DRAM rows while its requests are still queued — the row-buffer
	// locality large-stride FP codes exhibit.
	StrideLines int
	// FootprintLines is the size of the streamed/random region in lines;
	// it should far exceed the L2 capacity for memory-intensive codes.
	FootprintLines uint64
	// HotLines is the size of the hot set in lines (L1/L2 resident).
	HotLines uint64

	// DepProb is the probability that a compute or branch instruction
	// depends on the most recent load (instruction-level-parallelism knob:
	// high values serialize execution behind memory).
	DepProb float64

	// CodeLines is the instruction-footprint size in cache lines (0 = 64,
	// a 4 KiB hot loop). Codes with footprints beyond the 64 KiB L1I (1024
	// lines) suffer instruction-fetch misses, as the large integer codes
	// (gcc, perlbmk, vortex) do on real hardware. The core's front end walks
	// this region sequentially and jumps on taken branches.
	CodeLines uint64
	// TakenProb is the probability a branch redirects fetch (0 = 0.5).
	TakenProb float64

	// Phase behavior: real programs alternate memory-intense and compute
	// phases; fixed-priority schemes fail exactly when a high-priority
	// thread bursts (paper Section 5.1). PhaseInstr is the phase period in
	// instructions (0 disables phases): within each period the first
	// PhaseHotFrac portion is a hot burst whose LoadFrac/StoreFrac are
	// multiplied by PhaseGain; the remainder is scaled down so the long-run
	// average instruction mix is unchanged. Phases are deterministic and
	// periodic (with a seed-derived start offset) so that short slices see a
	// representative number of bursts.
	PhaseInstr   float64
	PhaseHotFrac float64
	PhaseGain    float64
}

// coldGain returns the cold-phase memory-intensity multiplier that keeps the
// long-run average mix equal to the configured fractions.
func (p *Params) coldGain() float64 {
	if p.PhaseHotFrac >= 1 {
		return 1
	}
	return (1 - p.PhaseHotFrac*p.PhaseGain) / (1 - p.PhaseHotFrac)
}

// Validate reports the first structural problem with the parameters.
func (p *Params) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("trace: %s = %v out of [0,1]", name, v)
		}
		return nil
	}
	checks := []error{
		frac("LoadFrac", p.LoadFrac),
		frac("StoreFrac", p.StoreFrac),
		frac("BranchFrac", p.BranchFrac),
		frac("FPFrac", p.FPFrac),
		frac("MulFrac", p.MulFrac),
		frac("StreamFrac", p.StreamFrac),
		frac("RandomFrac", p.RandomFrac),
		frac("DepProb", p.DepProb),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if p.LoadFrac+p.StoreFrac+p.BranchFrac > 1 {
		return fmt.Errorf("trace: instruction mix fractions sum to %v > 1",
			p.LoadFrac+p.StoreFrac+p.BranchFrac)
	}
	if p.StreamFrac+p.RandomFrac > 1 {
		return fmt.Errorf("trace: access pattern fractions sum to %v > 1",
			p.StreamFrac+p.RandomFrac)
	}
	if p.WordsPerLine < 1 {
		return fmt.Errorf("trace: WordsPerLine %d < 1", p.WordsPerLine)
	}
	if p.RunLenLines < 1 {
		return fmt.Errorf("trace: RunLenLines %v < 1", p.RunLenLines)
	}
	if p.FootprintLines < 1 || p.HotLines < 1 {
		return fmt.Errorf("trace: footprint and hot set must be at least one line")
	}
	if p.StrideLines < 0 {
		return fmt.Errorf("trace: StrideLines %d < 0", p.StrideLines)
	}
	if p.CodeLines > 1<<20 {
		return fmt.Errorf("trace: CodeLines %d implausibly large (max 1Mi lines = 64 MiB)", p.CodeLines)
	}
	if err := frac("TakenProb", p.TakenProb); err != nil {
		return err
	}
	if p.PhaseInstr < 0 {
		return fmt.Errorf("trace: PhaseInstr %v < 0", p.PhaseInstr)
	}
	if p.PhaseInstr > 0 {
		if err := frac("PhaseHotFrac", p.PhaseHotFrac); err != nil {
			return err
		}
		if p.PhaseGain < 1 {
			return fmt.Errorf("trace: PhaseGain %v < 1", p.PhaseGain)
		}
		if p.PhaseHotFrac*p.PhaseGain > 1 {
			return fmt.Errorf("trace: PhaseHotFrac x PhaseGain = %v > 1 (cold phases would need negative intensity)",
				p.PhaseHotFrac*p.PhaseGain)
		}
		if (p.LoadFrac+p.StoreFrac)*p.PhaseGain+p.BranchFrac > 1 {
			return fmt.Errorf("trace: hot-phase memory fraction %v pushes the mix above 1",
				(p.LoadFrac+p.StoreFrac)*p.PhaseGain)
		}
	}
	return nil
}

// Synthetic is the profile-driven generator.
type Synthetic struct {
	p    Params
	rng  *xrand.Rand
	base uint64 // address-space offset isolating this core's region

	streamLine uint64
	wordInLine int
	runLeft    int

	phasePos    int // position within the current phase period
	phasePeriod int
	phaseHotLen int
}

// NewSynthetic builds a generator for the given parameters. base is the
// first line address of the generator's private region (cores get disjoint
// regions so multiprogrammed workloads share nothing, as in the paper).
func NewSynthetic(p Params, base uint64, seed uint64) (*Synthetic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Synthetic{p: p, rng: xrand.New(seed), base: base}
	g.jump()
	if p.PhaseInstr > 0 {
		g.phasePeriod = int(p.PhaseInstr)
		g.phaseHotLen = int(p.PhaseInstr * p.PhaseHotFrac)
		// Seed-derived start offset decorrelates co-running applications'
		// bursts while keeping the stream a pure function of (params, seed).
		g.phasePos = g.rng.Intn(g.phasePeriod)
	}
	return g, nil
}

// RegionLines returns the number of line addresses a Synthetic with these
// parameters can touch, for callers laying out disjoint per-core regions.
func (p *Params) RegionLines() uint64 { return p.FootprintLines + p.HotLines }

// EffectiveCodeLines resolves the CodeLines default (64 lines = a 4 KiB hot
// loop).
func (p *Params) EffectiveCodeLines() uint64 {
	if p.CodeLines == 0 {
		return 64
	}
	return p.CodeLines
}

// EffectiveTakenProb resolves the TakenProb default (0.5).
func (p *Params) EffectiveTakenProb() float64 {
	if p.TakenProb == 0 {
		return 0.5
	}
	return p.TakenProb
}

func (g *Synthetic) jump() {
	g.streamLine = g.rng.Uint64n(g.p.FootprintLines)
	g.wordInLine = 0
	g.runLeft = g.rng.Geometric(g.p.RunLenLines)
}

// Next implements Generator.
func (g *Synthetic) Next(ins *Instr) {
	loadFrac, storeFrac := g.p.LoadFrac, g.p.StoreFrac
	if g.phasePeriod > 0 {
		mul := g.p.coldGain()
		if g.phasePos < g.phaseHotLen {
			mul = g.p.PhaseGain
		}
		g.phasePos++
		if g.phasePos >= g.phasePeriod {
			g.phasePos = 0
		}
		loadFrac *= mul
		storeFrac *= mul
	}
	r := g.rng.Float64()
	switch {
	case r < loadFrac:
		ins.Kind = KindLoad
		ins.Line = g.memLine()
		// A dependent load models pointer chasing: its address comes from
		// the previous load, serializing the memory stream.
		ins.DepOnLoad = g.rng.Bernoulli(g.p.DepProb)
	case r < loadFrac+storeFrac:
		ins.Kind = KindStore
		ins.Line = g.memLine()
		ins.DepOnLoad = g.rng.Bernoulli(g.p.DepProb)
	case r < loadFrac+storeFrac+g.p.BranchFrac:
		ins.Kind = KindBranch
		ins.Line = 0
		ins.DepOnLoad = g.rng.Bernoulli(g.p.DepProb)
	default:
		ins.Line = 0
		ins.DepOnLoad = g.rng.Bernoulli(g.p.DepProb)
		fp := g.rng.Bernoulli(g.p.FPFrac)
		mul := g.rng.Bernoulli(g.p.MulFrac)
		switch {
		case fp && mul:
			ins.Kind = KindFPMul
		case fp:
			ins.Kind = KindFP
		case mul:
			ins.Kind = KindIntMul
		default:
			ins.Kind = KindInt
		}
	}
}

// memLine draws the next memory reference's cache-line address.
func (g *Synthetic) memLine() uint64 {
	r := g.rng.Float64()
	switch {
	case r < g.p.StreamFrac:
		// Sequential walk: advance a line every WordsPerLine accesses, jump
		// after the current run is exhausted.
		g.wordInLine++
		if g.wordInLine >= g.p.WordsPerLine {
			g.wordInLine = 0
			stride := uint64(g.p.StrideLines)
			if stride == 0 {
				stride = 1
			}
			g.streamLine += stride
			if g.streamLine >= g.p.FootprintLines {
				g.streamLine -= g.p.FootprintLines
			}
			g.runLeft--
			if g.runLeft <= 0 {
				g.jump()
			}
		}
		return g.base + g.streamLine
	case r < g.p.StreamFrac+g.p.RandomFrac:
		return g.base + g.rng.Uint64n(g.p.FootprintLines)
	default:
		return g.base + g.p.FootprintLines + g.rng.Uint64n(g.p.HotLines)
	}
}

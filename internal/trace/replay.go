package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: the magic header followed by one record per
// instruction. Each record is one kind byte (with bit 7 set when the
// instruction depends on the preceding load), followed, for memory
// instructions, by the line address delta from the previous memory access as
// a zig-zag varint. Delta encoding keeps streaming traces around two bytes
// per memory instruction.
const magic = "MSTR1\n"

const depFlag = 0x80

// Writer serializes an instruction stream.
type Writer struct {
	w        *bufio.Writer
	lastLine uint64
	count    uint64
	buf      [binary.MaxVarintLen64 + 1]byte
}

// NewWriter starts a trace on w and writes the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction to the trace.
func (w *Writer) Write(ins *Instr) error {
	b := byte(ins.Kind)
	if ins.DepOnLoad {
		b |= depFlag
	}
	w.buf[0] = b
	n := 1
	if ins.Kind.IsMem() {
		delta := int64(ins.Line) - int64(w.lastLine)
		n += binary.PutVarint(w.buf[1:], delta)
		w.lastLine = ins.Line
	}
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of instructions written.
func (w *Writer) Count() uint64 { return w.count }

// Flush completes the trace. The caller owns closing the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a recorded trace.
type Reader struct {
	r        *bufio.Reader
	lastLine uint64
	count    uint64
}

// NewReader opens a trace and validates its header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("trace: not a trace file (bad magic)")
	}
	return &Reader{r: br}, nil
}

// Read fills ins with the next instruction. It returns io.EOF at the clean
// end of the trace.
func (r *Reader) Read(ins *Instr) error {
	b, err := r.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trace: reading record: %w", err)
	}
	ins.DepOnLoad = b&depFlag != 0
	ins.Kind = Kind(b &^ depFlag)
	if ins.Kind >= numKinds {
		return fmt.Errorf("trace: corrupt record: kind %d", ins.Kind)
	}
	ins.Line = 0
	if ins.Kind.IsMem() {
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			return fmt.Errorf("trace: truncated memory record: %w", err)
		}
		r.lastLine = uint64(int64(r.lastLine) + delta)
		ins.Line = r.lastLine
	}
	r.count++
	return nil
}

// Count returns the number of instructions read so far.
func (r *Reader) Count() uint64 { return r.count }

// Looper adapts a finite recorded trace into an infinite Generator by
// replaying it in a loop, matching the paper's "reload the application and
// keep running" behavior for cores that finish their slice early.
type Looper struct {
	records []Instr
	pos     int
}

// NewLooper reads the whole trace from r into memory. The trace must hold at
// least one instruction.
func NewLooper(r io.Reader) (*Looper, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var l Looper
	for {
		var ins Instr
		if err := tr.Read(&ins); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		l.records = append(l.records, ins)
	}
	if len(l.records) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return &l, nil
}

// Len returns the number of instructions in one iteration of the loop.
func (l *Looper) Len() int { return len(l.records) }

// Next implements Generator.
func (l *Looper) Next(ins *Instr) {
	*ins = l.records[l.pos]
	l.pos++
	if l.pos == len(l.records) {
		l.pos = 0
	}
}

package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func validParams() Params {
	return Params{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.15,
		FPFrac: 0.5, MulFrac: 0.2,
		StreamFrac: 0.6, RandomFrac: 0.2,
		WordsPerLine: 8, RunLenLines: 64,
		FootprintLines: 1 << 20, HotLines: 256,
		DepProb: 0.3,
	}
}

func TestParamsValidate(t *testing.T) {
	p0 := validParams()
	if err := p0.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.LoadFrac = -0.1 },
		func(p *Params) { p.LoadFrac = 0.6; p.StoreFrac = 0.5 },
		func(p *Params) { p.StreamFrac = 0.8; p.RandomFrac = 0.3 },
		func(p *Params) { p.WordsPerLine = 0 },
		func(p *Params) { p.RunLenLines = 0 },
		func(p *Params) { p.FootprintLines = 0 },
		func(p *Params) { p.HotLines = 0 },
		func(p *Params) { p.DepProb = 1.5 },
	}
	for i, mut := range mutations {
		p := validParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeterministicStream(t *testing.T) {
	a, err := NewSynthetic(validParams(), 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSynthetic(validParams(), 0, 42)
	var x, y Instr
	for i := 0; i < 10000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestSeedsProduceDifferentStreams(t *testing.T) {
	a, _ := NewSynthetic(validParams(), 0, 1)
	b, _ := NewSynthetic(validParams(), 0, 2)
	var x, y Instr
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x == y {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds nearly identical: %d/1000 equal", same)
	}
}

func TestInstructionMixMatchesParams(t *testing.T) {
	p := validParams()
	g, _ := NewSynthetic(p, 0, 7)
	const n = 200000
	counts := map[Kind]int{}
	var ins Instr
	for i := 0; i < n; i++ {
		g.Next(&ins)
		counts[ins.Kind]++
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"loads", float64(counts[KindLoad]) / n, p.LoadFrac},
		{"stores", float64(counts[KindStore]) / n, p.StoreFrac},
		{"branches", float64(counts[KindBranch]) / n, p.BranchFrac},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("%s fraction = %.3f, want %.3f", c.name, c.got, c.want)
		}
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	p := validParams()
	const base = 1 << 40
	g, _ := NewSynthetic(p, base, 3)
	var ins Instr
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if !ins.Kind.IsMem() {
			continue
		}
		if ins.Line < base || ins.Line >= base+p.RegionLines() {
			t.Fatalf("address %#x outside region [%#x, %#x)", ins.Line, base, base+p.RegionLines())
		}
	}
}

func TestStreamingHasSpatialLocality(t *testing.T) {
	p := validParams()
	p.StreamFrac, p.RandomFrac = 1.0, 0.0 // pure streaming
	g, _ := NewSynthetic(p, 0, 5)
	var ins Instr
	var last uint64
	sequential, memAccesses := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if !ins.Kind.IsMem() {
			continue
		}
		memAccesses++
		if ins.Line == last || ins.Line == last+1 {
			sequential++
		}
		last = ins.Line
	}
	rate := float64(sequential) / float64(memAccesses)
	if rate < 0.95 {
		t.Fatalf("pure streaming produced only %.2f same/next-line rate", rate)
	}
}

func TestRandomPatternHasNoLocality(t *testing.T) {
	p := validParams()
	p.StreamFrac, p.RandomFrac = 0.0, 1.0
	g, _ := NewSynthetic(p, 0, 5)
	var ins Instr
	var last uint64
	sequential, memAccesses := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if !ins.Kind.IsMem() {
			continue
		}
		memAccesses++
		if ins.Line == last || ins.Line == last+1 {
			sequential++
		}
		last = ins.Line
	}
	if rate := float64(sequential) / float64(memAccesses); rate > 0.01 {
		t.Fatalf("random pattern produced %.3f sequential rate", rate)
	}
}

func TestHotSetIsSmall(t *testing.T) {
	p := validParams()
	p.StreamFrac, p.RandomFrac = 0, 0 // pure hot set
	g, _ := NewSynthetic(p, 0, 9)
	seen := map[uint64]bool{}
	var ins Instr
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if ins.Kind.IsMem() {
			seen[ins.Line] = true
		}
	}
	if uint64(len(seen)) > p.HotLines {
		t.Fatalf("hot set touched %d lines, parameter is %d", len(seen), p.HotLines)
	}
}

func TestDepProbExtremes(t *testing.T) {
	p := validParams()
	p.DepProb = 0
	g, _ := NewSynthetic(p, 0, 1)
	var ins Instr
	for i := 0; i < 10000; i++ {
		g.Next(&ins)
		if ins.DepOnLoad {
			t.Fatal("DepProb=0 produced a dependent instruction")
		}
	}
	p.DepProb = 1
	g, _ = NewSynthetic(p, 0, 1)
	for i := 0; i < 10000; i++ {
		g.Next(&ins)
		if !ins.Kind.IsMem() && !ins.DepOnLoad {
			t.Fatal("DepProb=1 produced an independent compute instruction")
		}
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	g, _ := NewSynthetic(validParams(), 123456, 11)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	original := make([]Instr, n)
	for i := range original {
		g.Next(&original[i])
		if err := w.Write(&original[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("writer count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ins Instr
	for i := 0; i < n; i++ {
		if err := r.Read(&ins); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ins != original[i] {
			t.Fatalf("record %d: %+v != %+v", i, ins, original[i])
		}
	}
	if err := r.Read(&ins); err == nil {
		t.Fatal("expected EOF after last record")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLooperWrapsAround(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	want := []Instr{
		{Kind: KindLoad, Line: 10},
		{Kind: KindInt, DepOnLoad: true},
		{Kind: KindStore, Line: 11},
	}
	for i := range want {
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	l, err := NewLooper(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	var ins Instr
	for i := 0; i < 10; i++ {
		l.Next(&ins)
		if ins != want[i%3] {
			t.Fatalf("loop position %d: %+v != %+v", i, ins, want[i%3])
		}
	}
}

func TestLooperRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := NewLooper(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("empty trace accepted by Looper")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any sequence of valid instructions survives encode/decode.
	f := func(kinds []uint8, lines []uint32, deps []bool) bool {
		n := len(kinds)
		if len(lines) < n {
			n = len(lines)
		}
		if len(deps) < n {
			n = len(deps)
		}
		if n == 0 {
			return true
		}
		in := make([]Instr, n)
		for i := 0; i < n; i++ {
			in[i].Kind = Kind(kinds[i] % uint8(numKinds))
			in[i].DepOnLoad = deps[i]
			if in[i].Kind.IsMem() {
				in[i].Line = uint64(lines[i])
			}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for i := range in {
			if err := w.Write(&in[i]); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		var ins Instr
		for i := range in {
			if err := r.Read(&ins); err != nil || ins != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

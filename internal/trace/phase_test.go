package trace

import (
	"math"
	"testing"
)

func phasedParams() Params {
	p := validParams()
	p.PhaseInstr = 10_000
	p.PhaseHotFrac = 0.25
	p.PhaseGain = 2.0
	return p
}

func TestPhaseValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"negative period", func(p *Params) { p.PhaseInstr = -1 }},
		{"hot frac above one", func(p *Params) { p.PhaseHotFrac = 1.5 }},
		{"gain below one", func(p *Params) { p.PhaseGain = 0.5 }},
		{"hot x gain above one", func(p *Params) { p.PhaseHotFrac = 0.6; p.PhaseGain = 2.0 }},
		{"hot mix above one", func(p *Params) {
			p.LoadFrac, p.StoreFrac = 0.4, 0.2
			p.PhaseHotFrac = 0.2
			p.PhaseGain = 2.0 // (0.6)*2 + 0.15 branch > 1
		}},
	}
	for _, c := range cases {
		p := phasedParams()
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPhaseAverageMixPreserved(t *testing.T) {
	// With phases on, the long-run load fraction must still match LoadFrac.
	p := phasedParams()
	g, err := NewSynthetic(p, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400_000
	loads := 0
	var ins Instr
	for i := 0; i < n; i++ {
		g.Next(&ins)
		if ins.Kind == KindLoad {
			loads++
		}
	}
	got := float64(loads) / n
	if math.Abs(got-p.LoadFrac) > 0.01 {
		t.Fatalf("long-run load fraction = %.3f, want %.3f", got, p.LoadFrac)
	}
}

func TestPhasesActuallyModulate(t *testing.T) {
	// Per-window memory intensity must vary far more with phases than
	// without them.
	variance := func(p Params, seed uint64) float64 {
		g, err := NewSynthetic(p, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		const windows, winLen = 60, 2_500
		var mean, m2 float64
		var ins Instr
		for w := 1; w <= windows; w++ {
			mem := 0
			for i := 0; i < winLen; i++ {
				g.Next(&ins)
				if ins.Kind.IsMem() {
					mem++
				}
			}
			x := float64(mem) / winLen
			d := x - mean
			mean += d / float64(w)
			m2 += d * (x - mean)
		}
		return m2 / float64(windows-1)
	}
	flat := validParams()
	phased := phasedParams()
	vFlat := variance(flat, 7)
	vPhased := variance(phased, 7)
	if vPhased < 4*vFlat {
		t.Fatalf("phase variance %.2e not well above flat variance %.2e", vPhased, vFlat)
	}
}

func TestPhaseDeterministicAcrossSeedsOnlyViaOffset(t *testing.T) {
	// Same seed: identical streams (already covered); different seeds must
	// yield different phase offsets eventually.
	p := phasedParams()
	a, _ := NewSynthetic(p, 0, 1)
	b, _ := NewSynthetic(p, 0, 2)
	var x, y Instr
	diff := false
	for i := 0; i < 50_000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical phased streams")
	}
}

func TestStrideValidation(t *testing.T) {
	p := validParams()
	p.StrideLines = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative stride accepted")
	}
}

func TestStrideWalk(t *testing.T) {
	p := validParams()
	p.StreamFrac, p.RandomFrac = 1, 0
	p.WordsPerLine = 1
	p.StrideLines = 4
	p.RunLenLines = 1e9 // never jump
	g, _ := NewSynthetic(p, 0, 3)
	var ins Instr
	var prev uint64
	first := true
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if !ins.Kind.IsMem() {
			continue
		}
		if !first {
			delta := (ins.Line - prev + p.FootprintLines) % p.FootprintLines
			if delta != 4 {
				t.Fatalf("stride step = %d, want 4", delta)
			}
		}
		first = false
		prev = ins.Line
	}
}

func TestStrideWrapsFootprint(t *testing.T) {
	p := validParams()
	p.StreamFrac, p.RandomFrac = 1, 0
	p.WordsPerLine = 1
	p.StrideLines = 4
	p.FootprintLines = 64
	p.RunLenLines = 1e9
	g, _ := NewSynthetic(p, 0, 3)
	var ins Instr
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if ins.Kind.IsMem() && ins.Line >= p.RegionLines() {
			t.Fatalf("strided address %d escaped region of %d lines", ins.Line, p.RegionLines())
		}
	}
}

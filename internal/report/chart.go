package report

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders a horizontal ASCII bar chart — the text analogue of the
// paper's figures. Bars are scaled to the maximum value.
type Chart struct {
	title  string
	width  int
	labels []string
	values []float64
}

// NewChart creates a chart whose longest bar spans width characters
// (minimum 10).
func NewChart(title string, width int) *Chart {
	if width < 10 {
		width = 10
	}
	return &Chart{title: title, width: width}
}

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Len returns the number of bars.
func (c *Chart) Len() int { return len(c.values) }

// WriteText renders the chart.
func (c *Chart) WriteText(w io.Writer) error {
	var max float64
	labelW := 0
	for i, v := range c.values {
		if v > max {
			max = v
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	var sb strings.Builder
	if c.title != "" {
		sb.WriteString(c.title)
		sb.WriteByte('\n')
	}
	for i, v := range c.values {
		bar := 0
		if max > 0 && v > 0 {
			bar = int(v/max*float64(c.width) + 0.5)
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.3f\n",
			labelW, c.labels[i],
			strings.Repeat("#", bar),
			strings.Repeat(" ", c.width-bar), v)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

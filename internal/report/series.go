package report

import (
	"fmt"
	"io"
	"strings"
)

// Series renders epoch-sampled time series as one sparkline row per label —
// the terminal rendering of the telemetry layer's per-core traces. All rows
// share one vertical scale so shapes are comparable across cores, and long
// series are downsampled (bucket means) to the configured width.
type Series struct {
	title  string
	width  int
	labels []string
	values [][]float64
}

// sparkLevels are the eighth-block glyphs a sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// NewSeries creates a sparkline chart width columns wide (minimum 10).
func NewSeries(title string, width int) *Series {
	if width < 10 {
		width = 10
	}
	return &Series{title: title, width: width}
}

// Add appends one labelled series.
func (s *Series) Add(label string, values []float64) {
	s.labels = append(s.labels, label)
	s.values = append(s.values, values)
}

// Len returns the number of series.
func (s *Series) Len() int { return len(s.values) }

// resample reduces values to at most width points by averaging equal-width
// buckets (returns values unchanged when they already fit).
func resample(values []float64, width int) []float64 {
	n := len(values)
	if n <= width {
		return values
	}
	out := make([]float64, width)
	for b := 0; b < width; b++ {
		lo, hi := b*n/width, (b+1)*n/width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[b] = sum / float64(hi-lo)
	}
	return out
}

// WriteText renders every series, one row per label, with the shared maximum
// appended so absolute magnitudes stay readable.
func (s *Series) WriteText(w io.Writer) error {
	var max float64
	labelW := 0
	for i, vs := range s.values {
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
		if len(s.labels[i]) > labelW {
			labelW = len(s.labels[i])
		}
	}
	var sb strings.Builder
	if s.title != "" {
		sb.WriteString(s.title)
		sb.WriteByte('\n')
	}
	for i, vs := range s.values {
		row := resample(vs, s.width)
		var last float64
		if len(row) > 0 {
			last = row[len(row)-1]
		}
		fmt.Fprintf(&sb, "%-*s |", labelW, s.labels[i])
		for _, v := range row {
			lvl := 0
			if max > 0 && v > 0 {
				lvl = int(v / max * float64(len(sparkLevels)))
				if lvl >= len(sparkLevels) {
					lvl = len(sparkLevels) - 1
				}
			}
			sb.WriteRune(sparkLevels[lvl])
		}
		fmt.Fprintf(&sb, "| last %.3f\n", last)
	}
	if max > 0 {
		fmt.Fprintf(&sb, "%-*s  (shared max %.3f)\n", labelW, "", max)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

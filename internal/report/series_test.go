package report

import (
	"strings"
	"testing"
)

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("ipc over epochs", 10)
	s.Add("core0", []float64{0, 0.5, 1.0, 0.5, 0})
	s.Add("core1", []float64{0.25, 0.25, 0.25, 0.25, 0.25})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ipc over epochs") {
		t.Error("title missing")
	}
	for _, want := range []string{"core0", "core1", "shared max 1.000", "last 0.000", "last 0.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The peak value must render as the tallest glyph, zeros as the lowest.
	if !strings.Contains(out, "█") || !strings.Contains(out, "▁") {
		t.Errorf("expected full-range glyphs:\n%s", out)
	}
}

func TestSeriesResample(t *testing.T) {
	// 100 points into 10 columns: each bucket averages 10 points.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	got := resample(vals, 10)
	if len(got) != 10 {
		t.Fatalf("resampled to %d points", len(got))
	}
	if got[0] != 4.5 || got[9] != 94.5 {
		t.Errorf("bucket means wrong: first %v last %v", got[0], got[9])
	}
	// Short series pass through untouched.
	short := []float64{1, 2, 3}
	if gotShort := resample(short, 10); &gotShort[0] != &short[0] {
		t.Error("short series was copied")
	}
}

func TestSeriesEmptyAndZero(t *testing.T) {
	s := NewSeries("", 10)
	s.Add("flat", []float64{0, 0, 0})
	s.Add("empty", nil)
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flat") {
		t.Error("zero series not rendered")
	}
}

package report

import (
	"strings"
	"testing"
)

func TestTextAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// The value column must start at the same offset in every data row.
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if h != r1 || h != r2 {
		t.Errorf("columns misaligned: header@%d row1@%d row2@%d\n%s", h, r1, r2, out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRowf(1.23456, 7)
	var sb strings.Builder
	tb.WriteText(&sb)
	if !strings.Contains(sb.String(), "1.235") {
		t.Errorf("float not rendered with 3 decimals:\n%s", sb.String())
	}
}

func TestRowWidthMismatchTolerated(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped") {
		t.Error("extra cell not dropped")
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored in csv", "name", "note")
	tb.AddRow("plain", "v")
	tb.AddRow("with,comma", `has "quote"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\nplain,v\n\"with,comma\",\"has \"\"quote\"\"\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.107); got != "+10.7%" {
		t.Errorf("Pct(0.107) = %q", got)
	}
	if got := Pct(-0.006); got != "-0.6%" {
		t.Errorf("Pct(-0.006) = %q", got)
	}
}

func TestChartScaling(t *testing.T) {
	c := NewChart("Speedups", 20)
	c.Add("hf-rf", 2.0)
	c.Add("me-lreq", 4.0)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	short := strings.Count(lines[1], "#")
	long := strings.Count(lines[2], "#")
	if long != 20 {
		t.Errorf("max bar = %d chars, want 20", long)
	}
	if short != 10 {
		t.Errorf("half bar = %d chars, want 10", short)
	}
	if !strings.Contains(lines[2], "4.000") {
		t.Errorf("value missing from bar line %q", lines[2])
	}
}

func TestChartZeroAndEmpty(t *testing.T) {
	c := NewChart("", 15)
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty chart rendered %q", sb.String())
	}
	c.Add("zero", 0)
	sb.Reset()
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#") {
		t.Errorf("zero value drew a bar: %q", sb.String())
	}
}

func TestChartMinWidth(t *testing.T) {
	c := NewChart("t", 1) // clamped to 10
	c.Add("x", 1)
	var sb strings.Builder
	c.WriteText(&sb)
	if got := strings.Count(sb.String(), "#"); got != 10 {
		t.Errorf("bar = %d chars, want clamped 10", got)
	}
}

// Package report renders experiment results as aligned text tables and CSV
// files, the two output formats of cmd/experiments.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := 0; i < len(row) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with %v,
// floats with 3 decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) * 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(cell))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Pct formats a fraction as a signed percentage with one decimal.
func Pct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		cfg := Default(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", n, err)
		}
	}
}

func TestDefaultMatchesTable1(t *testing.T) {
	cfg := Default(4)
	if cfg.Core.FreqGHz != 3.2 {
		t.Errorf("freq = %v, want 3.2", cfg.Core.FreqGHz)
	}
	if cfg.Core.IssueWidth != 4 || cfg.Core.PipelineDepth != 16 {
		t.Errorf("issue/pipeline = %d/%d, want 4/16", cfg.Core.IssueWidth, cfg.Core.PipelineDepth)
	}
	if cfg.Core.ROBSize != 196 || cfg.Core.IQSize != 64 || cfg.Core.LQSize != 32 || cfg.Core.SQSize != 32 {
		t.Errorf("ROB/IQ/LQ/SQ = %d/%d/%d/%d, want 196/64/32/32",
			cfg.Core.ROBSize, cfg.Core.IQSize, cfg.Core.LQSize, cfg.Core.SQSize)
	}
	if cfg.L1D.SizeBytes != 64<<10 || cfg.L1D.Assoc != 2 || cfg.L1D.HitLatency != 3 {
		t.Errorf("L1D = %+v, want 64KB 2-way 3-cycle", cfg.L1D)
	}
	if cfg.L1I.HitLatency != 1 {
		t.Errorf("L1I latency = %d, want 1", cfg.L1I.HitLatency)
	}
	if cfg.L2.SizeBytes != 4<<20 || cfg.L2.Assoc != 4 || cfg.L2.HitLatency != 15 {
		t.Errorf("L2 = %+v, want 4MB 4-way 15-cycle", cfg.L2)
	}
	if cfg.L1D.MSHRs != 32 || cfg.L1I.MSHRs != 8 || cfg.L2.MSHRs != 64 {
		t.Errorf("MSHRs = %d/%d/%d, want 32/8/64", cfg.L1D.MSHRs, cfg.L1I.MSHRs, cfg.L2.MSHRs)
	}
	if cfg.Memory.Channels != 2 || cfg.Memory.RanksPerChan != 2 || cfg.Memory.BanksPerRank != 4 {
		t.Errorf("memory geometry = %d/%d/%d, want 2/2/4",
			cfg.Memory.Channels, cfg.Memory.RanksPerChan, cfg.Memory.BanksPerRank)
	}
	if cfg.Memory.ReadQueueCap != 64 {
		t.Errorf("read queue = %d, want 64", cfg.Memory.ReadQueueCap)
	}
	if cfg.Memory.MaxPendingPerCore != 64 || cfg.Memory.PriorityBits != 10 {
		t.Errorf("table geometry = %d entries x %d bits, want 64 x 10",
			cfg.Memory.MaxPendingPerCore, cfg.Memory.PriorityBits)
	}
}

func TestNsToCycles(t *testing.T) {
	cfg := Default(1)
	cases := []struct {
		ns   float64
		want int64
	}{
		{12.5, 40}, // precharge / row / column access
		{15.0, 48}, // controller overhead
		{5.0, 16},  // 64B burst on 12.8 GB/s channel
		{0, 0},
	}
	for _, c := range cases {
		if got := cfg.NsToCycles(c.ns); got != c.want {
			t.Errorf("NsToCycles(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestDRAMCycles(t *testing.T) {
	cfg := Default(1)
	d := cfg.DRAMCycles()
	if d.TRP != 40 || d.TRCD != 40 || d.TCL != 40 {
		t.Errorf("tRP/tRCD/tCL = %d/%d/%d, want 40/40/40", d.TRP, d.TRCD, d.TCL)
	}
	if d.Burst != 16 {
		t.Errorf("burst = %d, want 16", d.Burst)
	}
	if d.CtrlOverhead != 48 {
		t.Errorf("ctrl overhead = %d, want 48", d.CtrlOverhead)
	}
}

func TestTotalBanks(t *testing.T) {
	cfg := Default(4)
	if got := cfg.Memory.TotalBanks(); got != 16 {
		t.Errorf("TotalBanks = %d, want 16 (2ch x 2rank x 4bank)", got)
	}
}

func TestLinesPerRow(t *testing.T) {
	cfg := Default(4)
	if got := cfg.Memory.LinesPerRow(64); got != 128 {
		t.Errorf("LinesPerRow = %d, want 128", got)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "cores"},
		{"too many cores", func(c *Config) { c.Cores = 100 }, "cores"},
		{"zero freq", func(c *Config) { c.Core.FreqGHz = 0 }, "frequency"},
		{"zero issue", func(c *Config) { c.Core.IssueWidth = 0 }, "issue"},
		{"tiny rob", func(c *Config) { c.Core.ROBSize = 1 }, "ROB"},
		{"bad branch rate", func(c *Config) { c.Core.BranchMissPct = 2 }, "mispred"},
		{"non-pow2 line", func(c *Config) { c.L1D.LineBytes = 48 }, "line"},
		{"line mismatch", func(c *Config) { c.L1D.LineBytes = 32; c.L1D.SizeBytes = 64 << 10 }, "line sizes differ"},
		{"zero assoc", func(c *Config) { c.L2.Assoc = 0 }, "assoc"},
		{"zero mshr", func(c *Config) { c.L2.MSHRs = 0 }, "MSHR"},
		{"non-pow2 channels", func(c *Config) { c.Memory.Channels = 3 }, "channels"},
		{"row too small", func(c *Config) { c.Memory.RowBytes = 32 }, "row"},
		{"queue zero", func(c *Config) { c.Memory.ReadQueueCap = 0 }, "read queue"},
		{"inverted drain", func(c *Config) { c.Memory.DrainHigh = 0.1; c.Memory.DrainLow = 0.5 }, "drain"},
		{"priority bits", func(c *Config) { c.Memory.PriorityBits = 99 }, "priority bits"},
	}
	for _, m := range mutations {
		cfg := Default(4)
		m.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(m.frag)) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.frag)
		}
	}
}

func TestPerfectMemoryFlagDefaultsOff(t *testing.T) {
	if Default(2).PerfectMemory {
		t.Fatal("PerfectMemory should default to false")
	}
}

func TestExactPriorityAllowed(t *testing.T) {
	cfg := Default(2)
	cfg.Memory.PriorityBits = 0 // exact mode
	if err := cfg.Validate(); err != nil {
		t.Fatalf("PriorityBits=0 (exact) should validate: %v", err)
	}
}

func TestRowPolicyString(t *testing.T) {
	cases := map[RowPolicy]string{
		ClosePageHitAware: "close-hit-aware",
		OpenPage:          "open",
		ClosePageStrict:   "close-strict",
		RowPolicy(9):      "RowPolicy(9)",
	}
	for rp, want := range cases {
		if got := rp.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", rp, got, want)
		}
	}
}

func TestRowPolicyValidation(t *testing.T) {
	cfg := Default(2)
	cfg.Memory.RowPolicy = RowPolicy(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown row policy accepted")
	}
	for _, rp := range []RowPolicy{ClosePageHitAware, OpenPage, ClosePageStrict} {
		cfg.Memory.RowPolicy = rp
		if err := cfg.Validate(); err != nil {
			t.Errorf("row policy %v rejected: %v", rp, err)
		}
	}
}

func TestEnableRefresh(t *testing.T) {
	cfg := Default(2)
	cfg.Memory.EnableRefresh()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := cfg.DRAMCycles()
	if d.TREFI != 24960 { // 7800 ns x 3.2 GHz
		t.Errorf("TREFI = %d cycles, want 24960", d.TREFI)
	}
	if d.TRFC != 408 { // 127.5 ns x 3.2
		t.Errorf("TRFC = %d cycles, want 408", d.TRFC)
	}
}

func TestRefreshValidation(t *testing.T) {
	cfg := Default(2)
	cfg.Memory.Timing.TREFIns = 1000
	cfg.Memory.Timing.TRFCns = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("tREFI without tRFC accepted")
	}
	cfg.Memory.Timing.TRFCns = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative tRFC accepted")
	}
}

func TestFunctionalUnitValidation(t *testing.T) {
	cfg := Default(2)
	cfg.Core.FPMults = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero FP multipliers accepted")
	}
}

func TestCyclesPerNs(t *testing.T) {
	cfg := Default(1)
	if got := cfg.CyclesPerNs(); got != 3.2 {
		t.Errorf("CyclesPerNs = %v, want 3.2", got)
	}
}

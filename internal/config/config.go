// Package config defines every tunable parameter of the simulated system and
// provides the defaults from Table 1 of the paper (ICPP 2008).
//
// All latencies are expressed in CPU cycles at the configured core frequency.
// Helpers convert the nanosecond figures the paper quotes (DDR2-800 5-5-5,
// 12.5 ns precharge / row access / column access, 15 ns controller overhead)
// into cycles so the rest of the simulator never deals with wall-clock time.
package config

import (
	"errors"
	"fmt"
)

// CoreConfig describes one out-of-order processor core (paper Table 1:
// 3.2 GHz, 4-issue, 16-stage pipeline, ROB 196, IQ 64, LQ 32, SQ 32).
type CoreConfig struct {
	FreqGHz       float64 // core clock; the global simulation clock
	IssueWidth    int     // instructions dispatched and retired per cycle
	PipelineDepth int     // front-end refill penalty after a branch mispredict
	ROBSize       int     // reorder buffer entries
	IQSize        int     // instruction queue entries (issue window)
	LQSize        int     // load queue entries
	SQSize        int     // store queue entries
	IntALULat     int     // integer ALU latency, cycles
	IntMultLat    int     // integer multiply latency, cycles
	FPALULat      int     // FP add latency, cycles
	FPMultLat     int     // FP multiply latency, cycles
	IntALUs       int     // integer ALU count (issue bandwidth per cycle)
	IntMults      int     // integer multiplier count
	FPALUs        int     // FP adder count
	FPMults       int     // FP multiplier count
	BranchMissPct float64 // fraction of branches mispredicted (hybrid predictor proxy)
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes  int // total capacity
	Assoc      int // ways per set
	LineBytes  int // block size
	HitLatency int // access latency in cycles
	MSHRs      int // outstanding misses supported
}

// DRAMTiming holds DDR2 timing parameters in nanoseconds; ToCycles converts
// them to CPU cycles for the simulator core.
type DRAMTiming struct {
	TRPns   float64 // precharge
	TRCDns  float64 // row activate to column command
	TCLns   float64 // column access (CAS) latency
	BurstNs float64 // data transfer time for one cache line on the channel
	// Refresh: every TREFIns one bank (round-robin) is blocked for TRFCns.
	// Zero TREFIns disables refresh (the paper's model omits it; enabling it
	// is an ablation).
	TREFIns float64
	TRFCns  float64
}

// RowPolicy selects the controller's row-buffer management.
type RowPolicy uint8

const (
	// ClosePageHitAware is the paper's policy: auto-precharge after an
	// access unless another queued request targets the same row.
	ClosePageHitAware RowPolicy = iota
	// OpenPage leaves the row open unconditionally; a later conflict pays
	// the precharge. The paper mentions (and rejects) this mode for its
	// cache-line-interleaved system; it is provided for the ablation.
	OpenPage
	// ClosePageStrict always auto-precharges, even with queued same-row
	// requests — the naive close-page baseline.
	ClosePageStrict
)

// String implements fmt.Stringer.
func (p RowPolicy) String() string {
	switch p {
	case ClosePageHitAware:
		return "close-hit-aware"
	case OpenPage:
		return "open"
	case ClosePageStrict:
		return "close-strict"
	default:
		return fmt.Sprintf("RowPolicy(%d)", uint8(p))
	}
}

// MemoryConfig describes the DRAM subsystem (paper Table 1: 2 logic channels,
// 2 DIMMs per physical channel, 4 banks per DIMM, 800 MT/s, 16 B per logic
// channel => 12.8 GB/s per logic channel, close page, cacheline interleave).
type MemoryConfig struct {
	Channels       int // logic channels, each independently scheduled
	RanksPerChan   int // DIMM pairs operating in lockstep per logic channel
	BanksPerRank   int
	RowBytes       int     // row buffer size per bank
	BusBytesPerNs  float64 // logic channel bandwidth: 12.8 GB/s = 12.8 B/ns
	Timing         DRAMTiming
	CtrlOverheadNs float64 // fixed memory-controller overhead per transaction
	ReadQueueCap   int     // controller read buffer entries (shared by cores)
	WriteQueueCap  int     // controller write buffer entries
	// Write drain watermarks, as fractions of WriteQueueCap. When the write
	// queue reaches HighWatermark the controller drains writes ahead of reads
	// until it falls to LowWatermark (paper: 1/2 and 1/4 of the buffer).
	DrainHigh float64
	DrainLow  float64
	// MaxPendingPerCore bounds the per-core outstanding read count tracked by
	// the priority tables (paper: 64, giving 64-entry tables per core).
	MaxPendingPerCore int
	// PriorityBits is the width of each quantized priority-table entry
	// (paper: 10 bits). 0 selects exact (non-quantized) priorities.
	PriorityBits int
	// RowPolicy selects row-buffer management (default: the paper's
	// hit-aware close page).
	RowPolicy RowPolicy
	// PageInterleave switches the address mapping from the paper's
	// cache-line interleaving to page interleaving (consecutive lines fill
	// a row before changing banks) — the layout the paper pairs with
	// open-page mode and deliberately rejects; provided for the ablation.
	PageInterleave bool
}

// Config is the full system configuration.
type Config struct {
	Cores           int
	Core            CoreConfig
	L1I             CacheConfig
	L1D             CacheConfig
	L2              CacheConfig // shared
	L2PortsPerCycle int         // simultaneous L2 accesses per cycle (contention proxy)
	Memory          MemoryConfig
	// PerfectMemory short-circuits the DRAM: every L2 miss completes in one
	// cycle. Used only to classify MEM vs ILP applications (paper Section 4.2).
	PerfectMemory bool
	// L2StreamPrefetch enables a simple next-line stream prefetcher at the
	// L2: each demand L2 miss also fetches the sequentially next line.
	// Off by default — the paper's system has no prefetcher — and provided
	// for the ablation (prefetching interacts with scheduling by adding
	// low-criticality traffic the policies must order).
	L2StreamPrefetch bool
}

// Default returns the configuration of paper Table 1 for n cores.
func Default(n int) Config {
	return Config{
		Cores: n,
		Core: CoreConfig{
			FreqGHz:       3.2,
			IssueWidth:    4,
			PipelineDepth: 16,
			ROBSize:       196,
			IQSize:        64,
			LQSize:        32,
			SQSize:        32,
			IntALULat:     1,
			IntMultLat:    3,
			FPALULat:      2,
			FPMultLat:     4,
			IntALUs:       4,
			IntMults:      2,
			FPALUs:        2,
			FPMults:       1,
			BranchMissPct: 0.03,
		},
		L1I:             CacheConfig{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, HitLatency: 1, MSHRs: 8},
		L1D:             CacheConfig{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, HitLatency: 3, MSHRs: 32},
		L2:              CacheConfig{SizeBytes: 4 << 20, Assoc: 4, LineBytes: 64, HitLatency: 15, MSHRs: 64},
		L2PortsPerCycle: 4,
		Memory: MemoryConfig{
			Channels:     2,
			RanksPerChan: 2,
			BanksPerRank: 4,
			RowBytes:     8 << 10,
			// 16 B / logic channel @ 800 MT/s => 12.8 GB/s = 12.8 B/ns.
			BusBytesPerNs: 12.8,
			Timing: DRAMTiming{
				TRPns:  12.5,
				TRCDns: 12.5,
				TCLns:  12.5,
				// 64 B line over 12.8 B/ns = 5 ns.
				BurstNs: 5.0,
			},
			CtrlOverheadNs:    15.0,
			ReadQueueCap:      64,
			WriteQueueCap:     64,
			DrainHigh:         0.5,
			DrainLow:          0.25,
			MaxPendingPerCore: 64,
			PriorityBits:      10,
		},
	}
}

// CyclesPerNs returns the number of CPU cycles per nanosecond.
func (c *Config) CyclesPerNs() float64 { return c.Core.FreqGHz }

// NsToCycles converts a nanosecond latency to an integer cycle count,
// rounding to nearest.
func (c *Config) NsToCycles(ns float64) int64 {
	return int64(ns*c.Core.FreqGHz + 0.5)
}

// DRAMCycles is the DRAM timing converted to CPU cycles.
type DRAMCycles struct {
	TRP, TRCD, TCL, Burst, CtrlOverhead int64
	// TREFI and TRFC are zero when refresh is disabled.
	TREFI, TRFC int64
}

// DRAMCycles converts the configured DRAM timing into CPU cycles.
func (c *Config) DRAMCycles() DRAMCycles {
	return DRAMCycles{
		TRP:          c.NsToCycles(c.Memory.Timing.TRPns),
		TRCD:         c.NsToCycles(c.Memory.Timing.TRCDns),
		TCL:          c.NsToCycles(c.Memory.Timing.TCLns),
		Burst:        c.NsToCycles(c.Memory.Timing.BurstNs),
		CtrlOverhead: c.NsToCycles(c.Memory.CtrlOverheadNs),
		TREFI:        c.NsToCycles(c.Memory.Timing.TREFIns),
		TRFC:         c.NsToCycles(c.Memory.Timing.TRFCns),
	}
}

// EnableRefresh turns on DDR2-typical auto-refresh timing (7.8 us average
// refresh interval, 127.5 ns refresh cycle for 1 Gb devices).
func (m *MemoryConfig) EnableRefresh() {
	m.Timing.TREFIns = 7800
	m.Timing.TRFCns = 127.5
}

// TotalBanks returns the number of independently schedulable banks.
func (m *MemoryConfig) TotalBanks() int {
	return m.Channels * m.RanksPerChan * m.BanksPerRank
}

// LinesPerRow returns cache lines per DRAM row for the given line size.
func (m *MemoryConfig) LinesPerRow(lineBytes int) int {
	return m.RowBytes / lineBytes
}

var errConfig = errors.New("config: invalid")

func check(ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return fmt.Errorf("%w: %s", errConfig, fmt.Sprintf(format, args...))
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks structural invariants the simulator relies on. It returns
// the first violation found.
func (c *Config) Validate() error {
	checks := []error{
		check(c.Cores >= 1 && c.Cores <= 64, "cores %d out of [1,64]", c.Cores),
		check(c.Core.FreqGHz > 0, "core frequency must be positive"),
		check(c.Core.IssueWidth >= 1, "issue width must be >= 1"),
		check(c.Core.ROBSize >= c.Core.IssueWidth, "ROB smaller than issue width"),
		check(c.Core.LQSize >= 1 && c.Core.SQSize >= 1, "LQ/SQ must be >= 1"),
		check(c.Core.IntALUs >= 1 && c.Core.IntMults >= 1 &&
			c.Core.FPALUs >= 1 && c.Core.FPMults >= 1,
			"functional unit counts must be >= 1"),
		check(c.Core.BranchMissPct >= 0 && c.Core.BranchMissPct <= 1,
			"branch misprediction rate %v out of [0,1]", c.Core.BranchMissPct),
		c.validateCache("L1I", c.L1I),
		c.validateCache("L1D", c.L1D),
		c.validateCache("L2", c.L2),
		check(c.L1D.LineBytes == c.L2.LineBytes, "L1D/L2 line sizes differ"),
		check(c.L2PortsPerCycle >= 1, "L2 ports must be >= 1"),
		check(isPow2(c.Memory.Channels), "channels %d not a power of two", c.Memory.Channels),
		check(isPow2(c.Memory.RanksPerChan), "ranks %d not a power of two", c.Memory.RanksPerChan),
		check(isPow2(c.Memory.BanksPerRank), "banks %d not a power of two", c.Memory.BanksPerRank),
		check(isPow2(c.Memory.RowBytes), "row bytes %d not a power of two", c.Memory.RowBytes),
		check(c.Memory.RowBytes >= c.L2.LineBytes, "row smaller than a cache line"),
		check(c.Memory.BusBytesPerNs > 0, "bus bandwidth must be positive"),
		check(c.Memory.Timing.TRPns >= 0 && c.Memory.Timing.TRCDns >= 0 &&
			c.Memory.Timing.TCLns >= 0, "DRAM timings must be non-negative"),
		check(c.Memory.Timing.BurstNs > 0, "burst time must be positive"),
		check(c.Memory.ReadQueueCap >= 1, "read queue capacity must be >= 1"),
		check(c.Memory.WriteQueueCap >= 1, "write queue capacity must be >= 1"),
		check(c.Memory.DrainHigh > c.Memory.DrainLow, "drain high watermark must exceed low"),
		check(c.Memory.DrainHigh <= 1 && c.Memory.DrainLow >= 0, "drain watermarks out of [0,1]"),
		check(c.Memory.MaxPendingPerCore >= 1, "max pending per core must be >= 1"),
		check(c.Memory.PriorityBits >= 0 && c.Memory.PriorityBits <= 30,
			"priority bits %d out of [0,30]", c.Memory.PriorityBits),
		check(c.Memory.RowPolicy <= ClosePageStrict,
			"unknown row policy %d", c.Memory.RowPolicy),
		check(c.Memory.Timing.TREFIns >= 0 && c.Memory.Timing.TRFCns >= 0,
			"refresh timings must be non-negative"),
		check(c.Memory.Timing.TREFIns == 0 || c.Memory.Timing.TRFCns > 0,
			"refresh enabled (tREFI > 0) requires tRFC > 0"),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) validateCache(name string, cc CacheConfig) error {
	sets := 0
	if cc.Assoc > 0 && cc.LineBytes > 0 {
		sets = cc.SizeBytes / (cc.Assoc * cc.LineBytes)
	}
	switch {
	case !isPow2(cc.LineBytes):
		return check(false, "%s line size %d not a power of two", name, cc.LineBytes)
	case cc.Assoc < 1:
		return check(false, "%s associativity %d < 1", name, cc.Assoc)
	case cc.SizeBytes < cc.Assoc*cc.LineBytes:
		return check(false, "%s size %d smaller than one set", name, cc.SizeBytes)
	case !isPow2(sets):
		return check(false, "%s set count %d not a power of two", name, sets)
	case cc.HitLatency < 1:
		return check(false, "%s hit latency %d < 1", name, cc.HitLatency)
	case cc.MSHRs < 1:
		return check(false, "%s MSHR count %d < 1", name, cc.MSHRs)
	}
	return nil
}

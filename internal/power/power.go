// Package power estimates DRAM energy from the event counts the simulator
// already collects, using the standard per-operation energy decomposition
// (activation + read burst + write burst + refresh + background). The
// default coefficients approximate a DDR2-800 1 Gb device as modeled by the
// Micron power calculators of the paper's era; they are deliberately coarse
// — the point is comparing scheduling policies, which shift the activation
// count (row hits avoid activations), not reproducing datasheet watts.
package power

import "fmt"

// Params holds per-operation energies in picojoules and the per-rank
// background power in milliwatts.
type Params struct {
	ActivatePJ float64 // one activate+precharge cycle of one bank
	ReadPJ     float64 // one 64-byte read burst
	WritePJ    float64 // one 64-byte write burst
	RefreshPJ  float64 // one per-bank refresh
	// BackgroundMWPerRank covers standby/idle current per rank.
	BackgroundMWPerRank float64
}

// DDR2 returns coefficients approximating a DDR2-800 1 Gb x16 device pair
// forming one 64-bit rank.
func DDR2() Params {
	return Params{
		ActivatePJ:          3500,
		ReadPJ:              2600,
		WritePJ:             2800,
		RefreshPJ:           28000,
		BackgroundMWPerRank: 180,
	}
}

// Counts are the event totals energy is computed from.
type Counts struct {
	Activations uint64 // row activations (closed + conflict accesses)
	Reads       uint64 // read bursts
	Writes      uint64 // write bursts
	Refreshes   uint64
	Ranks       int   // ranks across all channels (background power)
	Cycles      int64 // simulated CPU cycles
}

// Breakdown is the estimated energy split, in nanojoules, plus the implied
// average power.
type Breakdown struct {
	ActivateNJ   float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	BackgroundNJ float64
	TotalNJ      float64
	// AvgPowerMW is TotalNJ over the simulated wall-clock time.
	AvgPowerMW float64
	// EnergyPerBitPJ is dynamic (non-background) energy per transferred bit.
	EnergyPerBitPJ float64
}

// Estimate computes the energy breakdown. freqGHz converts cycles to time.
func Estimate(p Params, c Counts, freqGHz float64) (Breakdown, error) {
	if freqGHz <= 0 {
		return Breakdown{}, fmt.Errorf("power: frequency %v must be positive", freqGHz)
	}
	if c.Ranks < 0 || c.Cycles < 0 {
		return Breakdown{}, fmt.Errorf("power: negative ranks or cycles")
	}
	var b Breakdown
	b.ActivateNJ = float64(c.Activations) * p.ActivatePJ / 1e3
	b.ReadNJ = float64(c.Reads) * p.ReadPJ / 1e3
	b.WriteNJ = float64(c.Writes) * p.WritePJ / 1e3
	b.RefreshNJ = float64(c.Refreshes) * p.RefreshPJ / 1e3
	seconds := float64(c.Cycles) / (freqGHz * 1e9)
	b.BackgroundNJ = p.BackgroundMWPerRank * float64(c.Ranks) * seconds * 1e6 // mW*s = mJ = 1e6 nJ
	b.TotalNJ = b.ActivateNJ + b.ReadNJ + b.WriteNJ + b.RefreshNJ + b.BackgroundNJ
	if seconds > 0 {
		b.AvgPowerMW = b.TotalNJ / 1e6 / seconds
	}
	if bits := float64(c.Reads+c.Writes) * 64 * 8; bits > 0 {
		b.EnergyPerBitPJ = (b.TotalNJ - b.BackgroundNJ) * 1e3 / bits
	}
	return b, nil
}

package power

import (
	"math"
	"testing"
)

func TestEstimateHandNumbers(t *testing.T) {
	p := Params{ActivatePJ: 1000, ReadPJ: 500, WritePJ: 700, RefreshPJ: 2000,
		BackgroundMWPerRank: 100}
	c := Counts{Activations: 10, Reads: 4, Writes: 2, Refreshes: 1,
		Ranks: 2, Cycles: 3_200_000} // 1 ms at 3.2 GHz
	b, err := Estimate(p, c, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if b.ActivateNJ != 10 { // 10 x 1000 pJ = 10 nJ
		t.Errorf("ActivateNJ = %v, want 10", b.ActivateNJ)
	}
	if b.ReadNJ != 2 || b.WriteNJ != 1.4 || b.RefreshNJ != 2 {
		t.Errorf("read/write/refresh = %v/%v/%v", b.ReadNJ, b.WriteNJ, b.RefreshNJ)
	}
	// Background: 100 mW x 2 ranks x 1 ms = 0.2 mJ = 200000 nJ.
	if math.Abs(b.BackgroundNJ-200000) > 1e-6 {
		t.Errorf("BackgroundNJ = %v, want 200000", b.BackgroundNJ)
	}
	wantTotal := 10.0 + 2 + 1.4 + 2 + 200000
	if math.Abs(b.TotalNJ-wantTotal) > 1e-6 {
		t.Errorf("TotalNJ = %v, want %v", b.TotalNJ, wantTotal)
	}
	// Average power: 0.2000154 mJ over 1 ms ~ 200.0154 mW.
	if math.Abs(b.AvgPowerMW-wantTotal/1e6*1000) > 1e-6 {
		t.Errorf("AvgPowerMW = %v", b.AvgPowerMW)
	}
	// Dynamic energy per bit: 15.4 nJ over 6 x 512 bits.
	wantPerBit := 15.4 * 1e3 / (6 * 512)
	if math.Abs(b.EnergyPerBitPJ-wantPerBit) > 1e-9 {
		t.Errorf("EnergyPerBitPJ = %v, want %v", b.EnergyPerBitPJ, wantPerBit)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(DDR2(), Counts{}, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Estimate(DDR2(), Counts{Ranks: -1}, 3.2); err == nil {
		t.Error("negative ranks accepted")
	}
}

func TestEstimateZeroTraffic(t *testing.T) {
	b, err := Estimate(DDR2(), Counts{Ranks: 4, Cycles: 1000}, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if b.EnergyPerBitPJ != 0 {
		t.Errorf("per-bit energy with zero traffic = %v", b.EnergyPerBitPJ)
	}
	if b.BackgroundNJ <= 0 || b.TotalNJ != b.BackgroundNJ {
		t.Errorf("idle energy should be background only: %+v", b)
	}
}

func TestRowHitsSaveEnergy(t *testing.T) {
	// Same traffic, fewer activations (more row hits) must cost less.
	p := DDR2()
	hitHeavy := Counts{Activations: 100, Reads: 1000, Writes: 200, Ranks: 4, Cycles: 1 << 20}
	missHeavy := hitHeavy
	missHeavy.Activations = 1100
	a, err := Estimate(p, hitHeavy, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(p, missHeavy, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalNJ >= b.TotalNJ {
		t.Fatalf("hit-heavy %v nJ not below miss-heavy %v nJ", a.TotalNJ, b.TotalNJ)
	}
}

func TestDDR2Defaults(t *testing.T) {
	p := DDR2()
	if p.ActivatePJ <= 0 || p.ReadPJ <= 0 || p.WritePJ <= 0 ||
		p.RefreshPJ <= 0 || p.BackgroundMWPerRank <= 0 {
		t.Fatalf("non-positive defaults: %+v", p)
	}
}

// Package cache implements the processor cache hierarchy: set-associative
// write-back write-allocate caches with true-LRU replacement, miss status
// holding registers (MSHRs) with same-line merging, and the two-level
// L1D / shared-L2 hierarchy of the paper's Table 1.
package cache

import (
	"fmt"

	"memsched/internal/config"
)

// way is one cache block frame.
type way struct {
	valid   bool
	dirty   bool
	tag     uint64
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// MissRate returns misses / (hits + misses).
func (s *Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Cache is a single set-associative write-back cache operating on cache-line
// addresses. It models only the tag array: the simulator never moves data.
type Cache struct {
	sets     [][]way
	setMask  uint64
	assoc    int
	useClock uint64
	stats    Stats
}

// New builds a cache from a validated CacheConfig.
func New(cc config.CacheConfig) (*Cache, error) {
	if cc.Assoc < 1 || cc.LineBytes < 1 {
		return nil, fmt.Errorf("cache: invalid geometry %+v", cc)
	}
	nSets := cc.SizeBytes / (cc.Assoc * cc.LineBytes)
	if nSets < 1 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nSets)
	}
	c := &Cache{
		sets:    make([][]way, nSets),
		setMask: uint64(nSets - 1),
		assoc:   cc.Assoc,
	}
	ways := make([]way, nSets*cc.Assoc)
	for i := range c.sets {
		c.sets[i], ways = ways[:cc.Assoc], ways[cc.Assoc:]
	}
	return c, nil
}

// MustNew is New but panics on invalid geometry.
func MustNew(cc config.CacheConfig) *Cache {
	c, err := New(cc)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return len(c.sets) }

// Stats returns a copy of the cache's event counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counts; contents and LRU state are kept.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setOf(line uint64) []way { return c.sets[line&c.setMask] }

func (c *Cache) tagOf(line uint64) uint64 { return line >> 0 } // full line as tag; set bits redundant but harmless

// Lookup probes for line. On a hit it updates LRU state and, if write is
// set, marks the block dirty. It returns whether the access hit.
func (c *Cache) Lookup(line uint64, write bool) bool {
	set := c.setOf(line)
	tag := c.tagOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			c.useClock++
			w.lastUse = c.useClock
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// probe returns the way frame holding line, or nil on a miss. It records no
// statistics and touches no LRU state: in-package callers on the hot path use
// it to combine the hazard check and the tag lookup into one set scan,
// applying Lookup's hit side effects via touch (or counting the miss
// themselves) once the outcome is known. The scan order matches Lookup and
// Peek exactly.
func (c *Cache) probe(line uint64) *way {
	set := c.setOf(line)
	tag := c.tagOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			return w
		}
	}
	return nil
}

// touch applies Lookup's hit side effects to a frame returned by probe:
// LRU refresh, optional dirty marking, and the hit count. The pointer is only
// valid until the next Insert/Invalidate on this cache.
func (c *Cache) touch(w *way, write bool) {
	c.useClock++
	w.lastUse = c.useClock
	if write {
		w.dirty = true
	}
	c.stats.Hits++
}

// Peek probes for line without updating LRU, dirty bits, or statistics.
func (c *Cache) Peek(line uint64) bool {
	set := c.setOf(line)
	tag := c.tagOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a block evicted by Insert.
type Victim struct {
	Line  uint64
	Dirty bool
}

// Insert fills line into the cache (after a miss was serviced), evicting the
// LRU way if the set is full. dirty marks the incoming block dirty (e.g. a
// store that missed). It returns the evicted block, if any.
//
// Inserting a line that is already present just refreshes its state (this
// happens when two merged misses complete) and evicts nothing.
func (c *Cache) Insert(line uint64, dirty bool) (Victim, bool) {
	set := c.setOf(line)
	tag := c.tagOf(line)
	c.useClock++

	// Already present: refresh.
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.lastUse = c.useClock
			w.dirty = w.dirty || dirty
			return Victim{}, false
		}
	}
	// Free way?
	for i := range set {
		w := &set[i]
		if !w.valid {
			*w = way{valid: true, dirty: dirty, tag: tag, lastUse: c.useClock}
			return Victim{}, false
		}
	}
	// Evict LRU.
	lru := 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[lru].lastUse {
			lru = i
		}
	}
	victim := Victim{Line: set[lru].tag, Dirty: set[lru].dirty}
	set[lru] = way{valid: true, dirty: dirty, tag: tag, lastUse: c.useClock}
	c.stats.Evictions++
	if victim.Dirty {
		c.stats.Writebacks++
	}
	return victim, true
}

// Invalidate removes line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (wasPresent, wasDirty bool) {
	set := c.setOf(line)
	tag := c.tagOf(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			d := w.dirty
			*w = way{}
			return true, d
		}
	}
	return false, false
}

// NoCore marks a Waiter that wakes nobody on completion (e.g. a stream
// prefetch merged into the L2 MSHR file).
const NoCore = int32(-1)

// Waiter is one request merged into an MSHR entry. The fields are a union of
// what the two users of MSHRs need, so waiters are plain values and neither
// registration nor completion allocates a closure:
//
//	L1D/L1I files: Write (replay the access against the L1 on fill, which
//	re-establishes LRU order and the dirty bit) and Done (the core's
//	persistent callback, may be nil).
//	L2 file: Core and Instr route the fill to that core's L1D or L1I;
//	Core == NoCore wakes nobody.
type Waiter struct {
	Write bool
	Instr bool
	Core  int32
	Done  func(now int64)
}

// MSHR tracks outstanding misses, merging requests to the same line into one
// downstream fetch.
type MSHR struct {
	cap     int
	pending map[uint64][]Waiter
	// pool recycles waiter slices between entries so steady-state allocation
	// registers nothing.
	pool [][]Waiter
}

// NewMSHR builds an MSHR file with n entries.
func NewMSHR(n int) *MSHR {
	return &MSHR{cap: n, pending: make(map[uint64][]Waiter, n)}
}

// Len returns the number of allocated entries (distinct outstanding lines).
func (m *MSHR) Len() int { return len(m.pending) }

// Full reports whether a new (non-mergeable) allocation would fail.
func (m *MSHR) Full() bool { return len(m.pending) >= m.cap }

// Outstanding reports whether line already has an entry.
func (m *MSHR) Outstanding(line uint64) bool {
	_, ok := m.pending[line]
	return ok
}

// Allocate registers a waiter for line. It returns:
//
//	merged=true  if the line was already outstanding (no new fetch needed),
//	ok=false     if a new entry was required but the file is full.
func (m *MSHR) Allocate(line uint64, w Waiter) (merged, ok bool) {
	if ws, exists := m.pending[line]; exists {
		m.pending[line] = append(ws, w)
		return true, true
	}
	if m.Full() {
		return false, false
	}
	var ws []Waiter
	if n := len(m.pool); n > 0 {
		ws, m.pool = m.pool[n-1], m.pool[:n-1]
	} else {
		ws = make([]Waiter, 0, 4)
	}
	m.pending[line] = append(ws, w)
	return false, true
}

// Take frees the entry for line and returns its waiters in registration
// order. The caller services them and then must hand the slice back via
// Recycle. Taking a line with no entry is a bug in the caller and panics.
func (m *MSHR) Take(line uint64) []Waiter {
	ws, ok := m.pending[line]
	if !ok {
		panic(fmt.Sprintf("cache: MSHR completion for line %#x with no entry", line))
	}
	delete(m.pending, line)
	return ws
}

// Recycle returns a slice obtained from Take to the entry pool, dropping the
// waiters' callbacks for GC.
func (m *MSHR) Recycle(ws []Waiter) {
	for i := range ws {
		ws[i] = Waiter{}
	}
	m.pool = append(m.pool, ws[:0])
}

package cache

import (
	"memsched/internal/config"
	"memsched/internal/memctrl"
	"memsched/internal/stats"
)

// CoreAccessStats counts the data accesses one core made at each level.
type CoreAccessStats struct {
	Loads      stats.Counter
	Stores     stats.Counter
	L1Hits     stats.Counter
	L1Misses   stats.Counter
	L2Hits     stats.Counter
	L2Misses   stats.Counter
	MemReads   stats.Counter // demand fetches this core sent to DRAM
	IFetches   stats.Counter // instruction-line fetches issued by the front end
	L1IMisses  stats.Counter
	Prefetches stats.Counter // L2 stream-prefetch fetches issued on this core's behalf
}

// Hierarchy wires per-core L1 data caches and the shared L2 to the memory
// controller. It is single-threaded and driven by Tick from the simulation
// loop; internal latencies are sequenced on a private event queue.
//
// Modeling notes (documented simplifications):
//   - Instruction fetch goes through per-core L1I caches (AccessInstr) and
//     shares the L2; most profiles use hot loops that fit the L1I, matching
//     SPEC CPU2000 FP codes, while the large integer codes are given
//     footprints that spill.
//   - The hierarchy is non-inclusive: an L2 eviction does not back-invalidate
//     L1 copies. Workloads are multiprogrammed (no sharing), so this only
//     affects rare dirty-victim ordering, not correctness of the statistics.
//   - A dirty L1 victim whose line is absent from L2 is written straight to
//     memory rather than re-allocated in L2.
type Hierarchy struct {
	cfg *config.Config
	mc  *memctrl.Controller

	l1d  []*Cache
	l1m  []*MSHR
	l1i  []*Cache
	l1im []*MSHR
	l2   *Cache
	l2m  *MSHR
	core []CoreAccessStats

	// events sequences internal latencies as typed values; eventSeq preserves
	// same-cycle insertion order (see hq.go).
	events   heventHeap
	eventSeq uint64

	l2PortCycle int64
	l2PortUsed  int

	// wbRetry holds write-backs rejected by a full controller write queue.
	wbRetry []wbEntry

	l1HitLat int64
	l2HitLat int64

	// version counts mutations of the state NextEventAt derives from (the
	// event heap and the write-back retry list), so callers can cache the
	// horizon and revalidate with one integer compare instead of rescanning.
	version uint64

	// staging redirects core-originated L2 requests into per-core buffers
	// instead of the shared event heap, so cores can run concurrently over a
	// window of cycles (see internal/sim parallel windows). MergeStaged folds
	// the buffers back in core-index order, reproducing the serial heap
	// sequence numbers exactly.
	staging   bool
	staged    [][]stagedReq
	stagedCur []int
}

// stagedReq is one core-originated L2 request captured while staging: the
// cycle the core issued it (gen) and the heap event it stands for.
type stagedReq struct {
	gen   int64
	due   int64
	line  uint64
	instr bool
}

type wbEntry struct {
	core int
	line uint64
}

// NewHierarchy builds the cache hierarchy for cfg, bound to mc.
func NewHierarchy(cfg *config.Config, mc *memctrl.Controller) *Hierarchy {
	h := &Hierarchy{
		cfg:      cfg,
		mc:       mc,
		l2:       MustNew(cfg.L2),
		l2m:      NewMSHR(cfg.L2.MSHRs),
		core:     make([]CoreAccessStats, cfg.Cores),
		l1HitLat: int64(cfg.L1D.HitLatency),
		l2HitLat: int64(cfg.L2.HitLatency),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1d = append(h.l1d, MustNew(cfg.L1D))
		h.l1m = append(h.l1m, NewMSHR(cfg.L1D.MSHRs))
		h.l1i = append(h.l1i, MustNew(cfg.L1I))
		h.l1im = append(h.l1im, NewMSHR(cfg.L1I.MSHRs))
	}
	return h
}

// CoreStats returns the per-core access counters for core.
func (h *Hierarchy) CoreStats(core int) *CoreAccessStats { return &h.core[core] }

// L1D returns core's L1 data cache (for inspection).
func (h *Hierarchy) L1D(core int) *Cache { return h.l1d[core] }

// L1I returns core's L1 instruction cache (for inspection).
func (h *Hierarchy) L1I(core int) *Cache { return h.l1i[core] }

// L2 returns the shared L2 cache (for inspection).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// ResetStats zeroes per-core counters and cache event counts at a
// measurement-window boundary. Cache contents and in-flight misses persist.
func (h *Hierarchy) ResetStats() {
	for i := range h.core {
		h.core[i] = CoreAccessStats{}
	}
	for _, c := range h.l1d {
		c.ResetStats()
	}
	for _, c := range h.l1i {
		c.ResetStats()
	}
	h.l2.ResetStats()
}

// schedule enqueues a typed hierarchy event for cycle when.
func (h *Hierarchy) schedule(when int64, kind uint8, core int, line uint64, instr bool) {
	h.events.push(hevent{when: when, seq: h.eventSeq, kind: kind, instr: instr, core: int32(core), line: line})
	h.eventSeq++
	h.version++
}

// runEvents fires every event due at or before now, in (time, insertion)
// order; events pushed by handlers at a time <= now fire in the same call.
func (h *Hierarchy) runEvents(now int64) {
	for len(h.events) > 0 && h.events[0].when <= now {
		e := h.events.pop()
		h.version++
		switch e.kind {
		case hkL2Req:
			h.l2Request(int(e.core), e.line, e.when, e.instr)
		case hkFill:
			if e.instr {
				h.fillL1I(int(e.core), e.line, e.when)
			} else {
				h.fillL1(int(e.core), e.line, e.when)
			}
		case hkFillL2:
			h.fillL2(int(e.core), e.line, e.when)
		case hkMemRead:
			if h.mc.EnqueueReadSink(h, int(e.core), e.line, e.when) {
				h.core[e.core].MemReads.Inc()
			} else {
				h.schedule(e.when+1, hkMemRead, int(e.core), e.line, false)
			}
		}
	}
}

// ReadReturned implements memctrl.ReadSink: DRAM data for (core, line) has
// reached the controller's core-side boundary.
func (h *Hierarchy) ReadReturned(core int, line uint64, now int64) {
	h.fillL2(core, line, now)
}

// Tick advances internal latency events to cycle now and retries queued
// write-backs. Served retries are compacted to the front of wbRetry's backing
// array (not sliced off it) so the array is reused instead of growing a
// stranded head on every drain.
func (h *Hierarchy) Tick(now int64) {
	h.runEvents(now)
	served := 0
	for served < len(h.wbRetry) {
		wb := h.wbRetry[served]
		if !h.mc.EnqueueWrite(wb.core, wb.line, now) {
			break
		}
		served++
	}
	if served > 0 {
		n := copy(h.wbRetry, h.wbRetry[served:])
		h.wbRetry = h.wbRetry[:n]
		h.version++
	}
}

// Version is a change counter over the state NextEventAt reads (event heap,
// write-back retry list). Equal versions across two calls guarantee the
// hierarchy's horizon did not move in between, modulo the now-dependent
// write-back clause — callers must still discard cached values that are not
// strictly in their future.
func (h *Hierarchy) Version() uint64 { return h.version }

// FillHorizon returns the earliest cycle at which a pending internal event
// could wake a core (an L1/L1I fill firing MSHR waiter callbacks). Pending
// L2 requests cannot produce a fill before the L2 hit latency elapses, and
// memory reads return through the controller, whose completion heap bounds
// them separately (Controller.NextCompletionAt). The parallel window planner
// uses this to run cores ahead of the hierarchy without missing a wake-up.
func (h *Hierarchy) FillHorizon() int64 {
	horizon := farFuture
	for i := range h.events {
		e := &h.events[i]
		var t int64
		switch e.kind {
		case hkFill, hkFillL2:
			t = e.when
		case hkL2Req:
			t = e.when + h.l2HitLat
		default: // hkMemRead: returns via the controller's completion heap
			continue
		}
		if t < horizon {
			horizon = t
		}
	}
	return horizon
}

// BeginStaging switches Access/AccessInstr to buffer their L2 requests per
// core instead of pushing the shared event heap, making core Ticks mutually
// independent for the duration of a parallel window. The caller must pair it
// with EndStaging and then MergeStaged every window cycle in order.
func (h *Hierarchy) BeginStaging() {
	if h.staged == nil {
		h.staged = make([][]stagedReq, len(h.l1d))
		h.stagedCur = make([]int, len(h.l1d))
	}
	h.staging = true
}

// EndStaging returns Access/AccessInstr to direct heap scheduling.
func (h *Hierarchy) EndStaging() { h.staging = false }

// MergeStaged replays the staged L2 requests issued at cycle now into the
// event heap, iterating cores in index order. Each core's buffer is in
// issue-cycle order, so the combined push order — core 0's cycle-now
// requests, then core 1's, ... — is exactly the order the serial loop's
// per-cycle core iteration would have produced, and the events receive the
// same heap sequence numbers. Buffers reset once fully drained.
func (h *Hierarchy) MergeStaged(now int64) {
	drained := true
	for i := range h.staged {
		buf, cur := h.staged[i], h.stagedCur[i]
		for cur < len(buf) && buf[cur].gen == now {
			r := &buf[cur]
			h.schedule(r.due, hkL2Req, i, r.line, r.instr)
			cur++
		}
		h.stagedCur[i] = cur
		if cur < len(buf) {
			drained = false
		}
	}
	if drained {
		for i := range h.staged {
			h.staged[i] = h.staged[i][:0]
			h.stagedCur[i] = 0
		}
	}
}

// NextEventAt implements the simulator's next-event time-advance contract.
// Called after Tick(now), it returns the cycle of the earliest pending
// internal event — every due event already fired, so the heap head is strictly
// in the future — or now+1 when a parked write-back would be accepted by the
// controller on the next Tick. A write-back parked against a full write queue
// contributes no wake-up time of its own: the queue only drains when the
// controller issues a write, and the controller's own NextEventAt bounds the
// skip until then (AbsorbStall accounts the failed retry each skipped cycle
// would have recorded). cpu.FarFuture means no internal work is pending.
func (h *Hierarchy) NextEventAt(now int64) int64 {
	next := farFuture
	if len(h.events) > 0 {
		next = h.events[0].when
	}
	if len(h.wbRetry) > 0 && !h.mc.WriteQueueFull() {
		return now + 1
	}
	return next
}

// AbsorbStall accounts k skipped Ticks: each would have retried the head
// write-back against a still-full controller write queue and recorded one
// rejected-write admission.
func (h *Hierarchy) AbsorbStall(k int64) {
	if len(h.wbRetry) > 0 {
		h.mc.AbsorbRejectedWrites(uint64(k))
	}
}

const farFuture = int64(1)<<62 - 1

// WouldRejectData reports whether Access(core, line, ...) would fail on a
// structural hazard (L1D MSHR file full with no mergeable entry). It is
// read-only: cores use it to prove a dispatch or store-retirement stall will
// repeat identically until a fill frees an entry.
func (h *Hierarchy) WouldRejectData(core int, line uint64) bool {
	m := h.l1m[core]
	return h.l1d[core].probe(line) == nil && !m.Outstanding(line) && m.Full()
}

// WouldRejectInstr is WouldRejectData for the instruction-fetch path
// (AccessInstr against the L1I and its MSHR file).
func (h *Hierarchy) WouldRejectInstr(core int, line uint64) bool {
	m := h.l1im[core]
	return h.l1i[core].probe(line) == nil && !m.Outstanding(line) && m.Full()
}

// L1DMSHRLen returns the occupied entries of core's L1D miss file
// (telemetry sampling).
func (h *Hierarchy) L1DMSHRLen(core int) int { return h.l1m[core].Len() }

// L2MSHRLen returns the occupied entries of the shared L2 miss file.
func (h *Hierarchy) L2MSHRLen() int { return h.l2m.Len() }

// Quiescent reports whether no cache-side work is pending.
func (h *Hierarchy) Quiescent() bool {
	if len(h.events) > 0 || len(h.wbRetry) > 0 || h.l2m.Len() > 0 {
		return false
	}
	for _, m := range h.l1m {
		if m.Len() > 0 {
			return false
		}
	}
	for _, m := range h.l1im {
		if m.Len() > 0 {
			return false
		}
	}
	return true
}

// Access issues a data access for core to cache line `line` at cycle now.
//
//	ok == false:  a structural hazard (full L1 MSHR) blocked the access;
//	              the caller must retry on a later cycle. done is NOT kept.
//	async == false: the access hits in L1D and completes at now + lat.
//	async == true:  done(t) fires when the data is available at the core.
func (h *Hierarchy) Access(core int, line uint64, write bool, now int64, done func(int64)) (lat int64, async, ok bool) {
	cs := &h.core[core]
	l1, mshr := h.l1d[core], h.l1m[core]

	// One tag scan resolves both the structural-hazard check and the lookup.
	// The hazard check comes first, before any statistics are recorded, so a
	// rejected access leaves no trace and is simply retried by the core.
	w := l1.probe(line)
	if w == nil && !mshr.Outstanding(line) && mshr.Full() {
		return 0, false, false
	}

	if write {
		cs.Stores.Inc()
	} else {
		cs.Loads.Inc()
	}
	if w != nil {
		l1.touch(w, write)
		cs.L1Hits.Inc()
		return h.l1HitLat, false, true
	}
	l1.stats.Misses++
	cs.L1Misses.Inc()

	// L1 miss: reserve an MSHR entry (merging outstanding fetches of the
	// same line). The waiter replays the access against L1 after the fill,
	// which re-establishes LRU order and the dirty bit for stores.
	merged, _ := mshr.Allocate(line, Waiter{Write: write, Done: done})
	if !merged {
		// First miss for this line: start the L2 access after the L1 tag
		// check latency.
		if h.staging {
			h.staged[core] = append(h.staged[core], stagedReq{gen: now, due: now + h.l1HitLat, line: line})
		} else {
			h.schedule(now+h.l1HitLat, hkL2Req, core, line, false)
		}
	}
	return 0, true, true
}

// AccessInstr performs an instruction-line fetch for core's front end. The
// contract matches Access: ok=false on a structural hazard (full L1I MSHR),
// async=false completes in lat cycles, async=true invokes done on fill.
func (h *Hierarchy) AccessInstr(core int, line uint64, now int64, done func(int64)) (lat int64, async, ok bool) {
	cs := &h.core[core]
	l1, mshr := h.l1i[core], h.l1im[core]
	w := l1.probe(line)
	if w == nil && !mshr.Outstanding(line) && mshr.Full() {
		return 0, false, false
	}
	cs.IFetches.Inc()
	if w != nil {
		l1.touch(w, false)
		return int64(h.cfg.L1I.HitLatency), false, true
	}
	l1.stats.Misses++
	cs.L1IMisses.Inc()
	merged, _ := mshr.Allocate(line, Waiter{Done: done})
	if !merged {
		if h.staging {
			h.staged[core] = append(h.staged[core], stagedReq{gen: now, due: now + int64(h.cfg.L1I.HitLatency), line: line, instr: true})
		} else {
			h.schedule(now+int64(h.cfg.L1I.HitLatency), hkL2Req, core, line, true)
		}
	}
	return 0, true, true
}

// l2Request arbitrates for an L2 port and performs the L2 lookup. instr
// routes the eventual fill to the requesting core's L1I instead of its L1D.
func (h *Hierarchy) l2Request(core int, line uint64, now int64, instr bool) {
	if now > h.l2PortCycle {
		h.l2PortCycle = now
		h.l2PortUsed = 0
	}
	if h.l2PortUsed >= h.cfg.L2PortsPerCycle {
		h.schedule(now+1, hkL2Req, core, line, instr)
		return
	}
	// A miss needing a fresh MSHR entry while the file is full retries next
	// cycle without touching any state (the port it consumed is released
	// implicitly by not being counted yet).
	w := h.l2.probe(line)
	if w == nil && !h.l2m.Outstanding(line) && h.l2m.Full() {
		h.schedule(now+1, hkL2Req, core, line, instr)
		return
	}
	h.l2PortUsed++

	cs := &h.core[core]
	if w != nil {
		h.l2.touch(w, false)
		cs.L2Hits.Inc()
		h.schedule(now+h.l2HitLat, hkFill, core, line, instr)
		return
	}
	h.l2.stats.Misses++
	cs.L2Misses.Inc()

	// L2 miss: the waiter delivers the line to this core's L1 once DRAM
	// returns it and the L2 is filled.
	merged, _ := h.l2m.Allocate(line, Waiter{Core: int32(core), Instr: instr})
	if merged {
		return
	}
	h.issueMemRead(core, line, now+h.l2HitLat) // tag-check latency before the request leaves

	// Optional stream prefetch: pull the next sequential line into L2 too.
	// The prefetch shares the demand path (same MSHR file and controller
	// queue) but wakes nobody on completion.
	if h.cfg.L2StreamPrefetch {
		next := line + 1
		if !h.l2.Peek(next) && !h.l2m.Outstanding(next) && !h.l2m.Full() {
			if merged, _ := h.l2m.Allocate(next, Waiter{Core: NoCore}); !merged {
				h.core[core].Prefetches.Inc()
				h.issueMemRead(core, next, now+h.l2HitLat)
			}
		}
	}
}

// fillL1I installs an instruction line into core's L1I and wakes the front
// end. Instruction lines are never dirty, so eviction is silent.
func (h *Hierarchy) fillL1I(core int, line uint64, now int64) {
	h.l1i[core].Insert(line, false)
	h.completeL1(h.l1i[core], h.l1im[core], line, now)
}

// completeL1 services an L1 (data or instruction) MSHR entry: each waiter
// replays its access against the cache — re-establishing LRU order and the
// dirty bit for stores — and then wakes its core callback, in registration
// order.
func (h *Hierarchy) completeL1(l1 *Cache, mshr *MSHR, line uint64, now int64) {
	ws := mshr.Take(line)
	for i := range ws {
		l1.Lookup(line, ws[i].Write)
		if ws[i].Done != nil {
			ws[i].Done(now)
		}
	}
	mshr.Recycle(ws)
}

// issueMemRead sends the demand fetch to the memory controller, retrying
// while the controller buffer is full. Under PerfectMemory (used only to
// classify MEM vs ILP applications) the fetch completes in one cycle and
// never touches the controller.
func (h *Hierarchy) issueMemRead(core int, line uint64, now int64) {
	if h.cfg.PerfectMemory {
		h.core[core].MemReads.Inc()
		h.schedule(now+1, hkFillL2, core, line, false)
		return
	}
	h.schedule(now, hkMemRead, core, line, false)
}

// fillL2 installs a returned line into L2 and releases all merged waiters.
func (h *Hierarchy) fillL2(core int, line uint64, now int64) {
	victim, evicted := h.l2.Insert(line, false)
	if evicted && victim.Dirty {
		h.writeToMemory(core, victim.Line, now)
	}
	ws := h.l2m.Take(line)
	for i := range ws {
		w := ws[i]
		if w.Core == NoCore {
			continue // prefetch: nobody to wake
		}
		if w.Instr {
			h.fillL1I(int(w.Core), line, now)
		} else {
			h.fillL1(int(w.Core), line, now)
		}
	}
	h.l2m.Recycle(ws)
}

// fillL1 installs a line into core's L1 and completes all merged waiters.
func (h *Hierarchy) fillL1(core int, line uint64, now int64) {
	victim, evicted := h.l1d[core].Insert(line, false)
	if evicted && victim.Dirty {
		// Write the dirty victim back into L2 (or to memory if L2 no longer
		// holds it — non-inclusive hierarchy).
		if w := h.l2.probe(victim.Line); w != nil {
			h.l2.touch(w, true)
		} else {
			h.writeToMemory(core, victim.Line, now)
		}
	}
	h.completeL1(h.l1d[core], h.l1m[core], line, now)
}

// writeToMemory enqueues a dirty-victim write-back, parking it on the retry
// list when the controller's write buffer is full. PerfectMemory absorbs
// writes instantly.
func (h *Hierarchy) writeToMemory(core int, line uint64, now int64) {
	if h.cfg.PerfectMemory {
		return
	}
	if !h.mc.EnqueueWrite(core, line, now) {
		h.wbRetry = append(h.wbRetry, wbEntry{core: core, line: line})
		h.version++
	}
}

package cache

import (
	"memsched/internal/config"
	"memsched/internal/event"
	"memsched/internal/memctrl"
	"memsched/internal/stats"
)

// CoreAccessStats counts the data accesses one core made at each level.
type CoreAccessStats struct {
	Loads      stats.Counter
	Stores     stats.Counter
	L1Hits     stats.Counter
	L1Misses   stats.Counter
	L2Hits     stats.Counter
	L2Misses   stats.Counter
	MemReads   stats.Counter // demand fetches this core sent to DRAM
	IFetches   stats.Counter // instruction-line fetches issued by the front end
	L1IMisses  stats.Counter
	Prefetches stats.Counter // L2 stream-prefetch fetches issued on this core's behalf
}

// Hierarchy wires per-core L1 data caches and the shared L2 to the memory
// controller. It is single-threaded and driven by Tick from the simulation
// loop; internal latencies are sequenced on a private event queue.
//
// Modeling notes (documented simplifications):
//   - Instruction fetch goes through per-core L1I caches (AccessInstr) and
//     shares the L2; most profiles use hot loops that fit the L1I, matching
//     SPEC CPU2000 FP codes, while the large integer codes are given
//     footprints that spill.
//   - The hierarchy is non-inclusive: an L2 eviction does not back-invalidate
//     L1 copies. Workloads are multiprogrammed (no sharing), so this only
//     affects rare dirty-victim ordering, not correctness of the statistics.
//   - A dirty L1 victim whose line is absent from L2 is written straight to
//     memory rather than re-allocated in L2.
type Hierarchy struct {
	cfg *config.Config
	mc  *memctrl.Controller

	l1d  []*Cache
	l1m  []*MSHR
	l1i  []*Cache
	l1im []*MSHR
	l2   *Cache
	l2m  *MSHR
	core []CoreAccessStats

	events event.Queue

	l2PortCycle int64
	l2PortUsed  int

	// wbRetry holds write-backs rejected by a full controller write queue.
	wbRetry []wbEntry

	l1HitLat int64
	l2HitLat int64
}

type wbEntry struct {
	core int
	line uint64
}

// NewHierarchy builds the cache hierarchy for cfg, bound to mc.
func NewHierarchy(cfg *config.Config, mc *memctrl.Controller) *Hierarchy {
	h := &Hierarchy{
		cfg:      cfg,
		mc:       mc,
		l2:       MustNew(cfg.L2),
		l2m:      NewMSHR(cfg.L2.MSHRs),
		core:     make([]CoreAccessStats, cfg.Cores),
		l1HitLat: int64(cfg.L1D.HitLatency),
		l2HitLat: int64(cfg.L2.HitLatency),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1d = append(h.l1d, MustNew(cfg.L1D))
		h.l1m = append(h.l1m, NewMSHR(cfg.L1D.MSHRs))
		h.l1i = append(h.l1i, MustNew(cfg.L1I))
		h.l1im = append(h.l1im, NewMSHR(cfg.L1I.MSHRs))
	}
	return h
}

// CoreStats returns the per-core access counters for core.
func (h *Hierarchy) CoreStats(core int) *CoreAccessStats { return &h.core[core] }

// L1D returns core's L1 data cache (for inspection).
func (h *Hierarchy) L1D(core int) *Cache { return h.l1d[core] }

// L1I returns core's L1 instruction cache (for inspection).
func (h *Hierarchy) L1I(core int) *Cache { return h.l1i[core] }

// L2 returns the shared L2 cache (for inspection).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// ResetStats zeroes per-core counters and cache event counts at a
// measurement-window boundary. Cache contents and in-flight misses persist.
func (h *Hierarchy) ResetStats() {
	for i := range h.core {
		h.core[i] = CoreAccessStats{}
	}
	for _, c := range h.l1d {
		c.ResetStats()
	}
	for _, c := range h.l1i {
		c.ResetStats()
	}
	h.l2.ResetStats()
}

// Tick advances internal latency events to cycle now and retries queued
// write-backs.
func (h *Hierarchy) Tick(now int64) {
	h.events.RunUntil(now)
	for len(h.wbRetry) > 0 {
		wb := h.wbRetry[0]
		if !h.mc.EnqueueWrite(wb.core, wb.line, now) {
			break
		}
		h.wbRetry = h.wbRetry[1:]
	}
}

// Quiescent reports whether no cache-side work is pending.
func (h *Hierarchy) Quiescent() bool {
	if h.events.Len() > 0 || len(h.wbRetry) > 0 || h.l2m.Len() > 0 {
		return false
	}
	for _, m := range h.l1m {
		if m.Len() > 0 {
			return false
		}
	}
	for _, m := range h.l1im {
		if m.Len() > 0 {
			return false
		}
	}
	return true
}

// Access issues a data access for core to cache line `line` at cycle now.
//
//	ok == false:  a structural hazard (full L1 MSHR) blocked the access;
//	              the caller must retry on a later cycle. done is NOT kept.
//	async == false: the access hits in L1D and completes at now + lat.
//	async == true:  done(t) fires when the data is available at the core.
func (h *Hierarchy) Access(core int, line uint64, write bool, now int64, done func(int64)) (lat int64, async, ok bool) {
	cs := &h.core[core]
	l1, mshr := h.l1d[core], h.l1m[core]

	// Structural-hazard check first, before any statistics are recorded, so
	// a rejected access leaves no trace and is simply retried by the core.
	if !l1.Peek(line) && !mshr.Outstanding(line) && mshr.Full() {
		return 0, false, false
	}

	if write {
		cs.Stores.Inc()
	} else {
		cs.Loads.Inc()
	}
	if l1.Lookup(line, write) {
		cs.L1Hits.Inc()
		return h.l1HitLat, false, true
	}
	cs.L1Misses.Inc()

	// L1 miss: reserve an MSHR entry (merging outstanding fetches of the
	// same line). The waiter replays the access against L1 after the fill,
	// which re-establishes LRU order and the dirty bit for stores.
	waiter := func(t int64) {
		l1.Lookup(line, write)
		if done != nil {
			done(t)
		}
	}
	merged, _ := mshr.Allocate(line, waiter)
	if !merged {
		// First miss for this line: start the L2 access after the L1 tag
		// check latency.
		h.events.Schedule(now+h.l1HitLat, func(t int64) {
			h.l2Request(core, line, t, false)
		})
	}
	return 0, true, true
}

// AccessInstr performs an instruction-line fetch for core's front end. The
// contract matches Access: ok=false on a structural hazard (full L1I MSHR),
// async=false completes in lat cycles, async=true invokes done on fill.
func (h *Hierarchy) AccessInstr(core int, line uint64, now int64, done func(int64)) (lat int64, async, ok bool) {
	cs := &h.core[core]
	l1, mshr := h.l1i[core], h.l1im[core]
	if !l1.Peek(line) && !mshr.Outstanding(line) && mshr.Full() {
		return 0, false, false
	}
	cs.IFetches.Inc()
	if l1.Lookup(line, false) {
		return int64(h.cfg.L1I.HitLatency), false, true
	}
	cs.L1IMisses.Inc()
	waiter := func(t int64) {
		l1.Lookup(line, false)
		if done != nil {
			done(t)
		}
	}
	merged, _ := mshr.Allocate(line, waiter)
	if !merged {
		h.events.Schedule(now+int64(h.cfg.L1I.HitLatency), func(t int64) {
			h.l2Request(core, line, t, true)
		})
	}
	return 0, true, true
}

// l2Request arbitrates for an L2 port and performs the L2 lookup. instr
// routes the eventual fill to the requesting core's L1I instead of its L1D.
func (h *Hierarchy) l2Request(core int, line uint64, now int64, instr bool) {
	if now > h.l2PortCycle {
		h.l2PortCycle = now
		h.l2PortUsed = 0
	}
	if h.l2PortUsed >= h.cfg.L2PortsPerCycle {
		h.events.Schedule(now+1, func(t int64) { h.l2Request(core, line, t, instr) })
		return
	}
	// A miss needing a fresh MSHR entry while the file is full retries next
	// cycle without touching any state (the port it consumed is released
	// implicitly by not being counted yet).
	if !h.l2.Peek(line) && !h.l2m.Outstanding(line) && h.l2m.Full() {
		h.events.Schedule(now+1, func(t int64) { h.l2Request(core, line, t, instr) })
		return
	}
	h.l2PortUsed++

	fill := func(t int64) { h.fillL1(core, line, t) }
	if instr {
		fill = func(t int64) { h.fillL1I(core, line, t) }
	}

	cs := &h.core[core]
	if h.l2.Lookup(line, false) {
		cs.L2Hits.Inc()
		h.events.Schedule(now+h.l2HitLat, fill)
		return
	}
	cs.L2Misses.Inc()

	// L2 miss: the waiter delivers the line to this core's L1 once DRAM
	// returns it and the L2 is filled.
	merged, _ := h.l2m.Allocate(line, fill)
	if merged {
		return
	}
	h.issueMemRead(core, line, now+h.l2HitLat) // tag-check latency before the request leaves

	// Optional stream prefetch: pull the next sequential line into L2 too.
	// The prefetch shares the demand path (same MSHR file and controller
	// queue) but wakes nobody on completion.
	if h.cfg.L2StreamPrefetch {
		next := line + 1
		if !h.l2.Peek(next) && !h.l2m.Outstanding(next) && !h.l2m.Full() {
			if merged, _ := h.l2m.Allocate(next, nil); !merged {
				h.core[core].Prefetches.Inc()
				h.issueMemRead(core, next, now+h.l2HitLat)
			}
		}
	}
}

// fillL1I installs an instruction line into core's L1I and wakes the front
// end. Instruction lines are never dirty, so eviction is silent.
func (h *Hierarchy) fillL1I(core int, line uint64, now int64) {
	h.l1i[core].Insert(line, false)
	h.l1im[core].Complete(line, now)
}

// issueMemRead sends the demand fetch to the memory controller, retrying
// while the controller buffer is full. Under PerfectMemory (used only to
// classify MEM vs ILP applications) the fetch completes in one cycle and
// never touches the controller.
func (h *Hierarchy) issueMemRead(core int, line uint64, now int64) {
	if h.cfg.PerfectMemory {
		h.core[core].MemReads.Inc()
		h.events.Schedule(now+1, func(t int64) { h.fillL2(core, line, t) })
		return
	}
	h.events.Schedule(now, func(t int64) {
		ok := h.mc.EnqueueRead(core, line, t, func(doneAt int64) {
			h.fillL2(core, line, doneAt)
		})
		if ok {
			h.core[core].MemReads.Inc()
			return
		}
		h.issueMemRead(core, line, t+1)
	})
}

// fillL2 installs a returned line into L2 and releases all merged waiters.
func (h *Hierarchy) fillL2(core int, line uint64, now int64) {
	victim, evicted := h.l2.Insert(line, false)
	if evicted && victim.Dirty {
		h.writeToMemory(core, victim.Line, now)
	}
	h.l2m.Complete(line, now)
}

// fillL1 installs a line into core's L1 and completes all merged waiters.
func (h *Hierarchy) fillL1(core int, line uint64, now int64) {
	victim, evicted := h.l1d[core].Insert(line, false)
	if evicted && victim.Dirty {
		// Write the dirty victim back into L2 (or to memory if L2 no longer
		// holds it — non-inclusive hierarchy).
		if h.l2.Peek(victim.Line) {
			h.l2.Lookup(victim.Line, true)
		} else {
			h.writeToMemory(core, victim.Line, now)
		}
	}
	h.l1m[core].Complete(line, now)
}

// writeToMemory enqueues a dirty-victim write-back, parking it on the retry
// list when the controller's write buffer is full. PerfectMemory absorbs
// writes instantly.
func (h *Hierarchy) writeToMemory(core int, line uint64, now int64) {
	if h.cfg.PerfectMemory {
		return
	}
	if !h.mc.EnqueueWrite(core, line, now) {
		h.wbRetry = append(h.wbRetry, wbEntry{core: core, line: line})
	}
}

package cache

import (
	"testing"
	"testing/quick"

	"memsched/internal/config"
)

func smallCache(t *testing.T, assoc int) *Cache {
	t.Helper()
	c, err := New(config.CacheConfig{
		SizeBytes: 4 * assoc * 64, LineBytes: 64, Assoc: assoc, HitLatency: 1, MSHRs: 4,
	}) // 4 sets
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(config.CacheConfig{SizeBytes: 100, LineBytes: 64, Assoc: 2}); err == nil {
		t.Error("non-pow2 set count accepted")
	}
	if _, err := New(config.CacheConfig{SizeBytes: 128, LineBytes: 64, Assoc: 0}); err == nil {
		t.Error("zero associativity accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(config.CacheConfig{SizeBytes: 100, LineBytes: 64, Assoc: 3})
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(t, 2)
	if c.Lookup(42, false) {
		t.Fatal("cold cache hit")
	}
	c.Insert(42, false)
	if !c.Lookup(42, false) {
		t.Fatal("miss after insert")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t, 2) // 4 sets, lines mapping to set 0: multiples of 4
	c.Insert(0, false)
	c.Insert(4, false)
	c.Lookup(0, false) // touch 0: 4 becomes LRU
	victim, evicted := c.Insert(8, false)
	if !evicted || victim.Line != 4 {
		t.Fatalf("evicted %+v (%v), want line 4", victim, evicted)
	}
	if !c.Peek(0) || !c.Peek(8) || c.Peek(4) {
		t.Fatal("cache contents wrong after LRU eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0, false)
	c.Lookup(0, true) // dirty it
	c.Insert(4, false)
	victim, evicted := c.Insert(8, false)
	if !evicted || victim.Line != 0 || !victim.Dirty {
		t.Fatalf("victim = %+v (%v), want dirty line 0", victim, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInsertDirtyFlag(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0, true)
	c.Insert(4, false)
	victim, _ := c.Insert(8, false)
	if victim.Line != 0 || !victim.Dirty {
		t.Fatalf("store-allocated line should evict dirty, got %+v", victim)
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0, false)
	c.Insert(4, false)
	if _, evicted := c.Insert(0, true); evicted {
		t.Fatal("re-inserting a present line must not evict")
	}
	// 0 was refreshed and dirtied; inserting 8 should evict 4.
	victim, _ := c.Insert(8, false)
	if victim.Line != 4 {
		t.Fatalf("evicted %d, want 4", victim.Line)
	}
}

func TestPeekDoesNotDisturb(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0, false)
	c.Insert(4, false)
	for i := 0; i < 10; i++ {
		c.Peek(4) // must NOT refresh LRU
	}
	before := c.Stats()
	victim, _ := c.Insert(8, false)
	if victim.Line != 0 {
		t.Fatalf("Peek disturbed LRU: evicted %d, want 0", victim.Line)
	}
	if c.Stats().Hits != before.Hits || c.Stats().Misses != before.Misses {
		t.Fatal("Peek changed statistics")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0, false)
	c.Lookup(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v want true,true", present, dirty)
	}
	if c.Peek(0) {
		t.Fatal("line still present after Invalidate")
	}
	if present, _ := c.Invalidate(0); present {
		t.Fatal("double Invalidate reported present")
	}
}

func TestSetIsolation(t *testing.T) {
	// Filling one set must not evict lines in other sets.
	c := smallCache(t, 2)
	c.Insert(1, false) // set 1
	for i := uint64(0); i < 16; i += 4 {
		c.Insert(i, false) // set 0
	}
	if !c.Peek(1) {
		t.Fatal("set-0 traffic evicted a set-1 line")
	}
}

func TestCapacityProperty(t *testing.T) {
	// Property: after inserting distinct lines into one set, at most assoc of
	// them survive, and the survivors are the most recently inserted.
	f := func(assocRaw, nRaw uint8) bool {
		assoc := int(assocRaw%4) + 1
		n := int(nRaw%20) + 1
		c := MustNew(config.CacheConfig{
			SizeBytes: 2 * assoc * 64, LineBytes: 64, Assoc: assoc, HitLatency: 1, MSHRs: 1,
		}) // 2 sets
		for i := 0; i < n; i++ {
			c.Insert(uint64(i*2), false) // all in set 0
		}
		survivors := 0
		for i := 0; i < n; i++ {
			if c.Peek(uint64(i * 2)) {
				survivors++
				if n-i > assoc {
					return false // an old line outlived newer ones
				}
			}
		}
		want := n
		if want > assoc {
			want = assoc
		}
		return survivors == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRMergeAndComplete(t *testing.T) {
	m := NewMSHR(2)
	calls := []int{}
	merged, ok := m.Allocate(10, Waiter{Done: func(int64) { calls = append(calls, 1) }})
	if merged || !ok {
		t.Fatalf("first Allocate = merged %v ok %v", merged, ok)
	}
	merged, ok = m.Allocate(10, Waiter{Done: func(int64) { calls = append(calls, 2) }})
	if !merged || !ok {
		t.Fatalf("second Allocate = merged %v ok %v, want merge", merged, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", m.Len())
	}
	ws := m.Take(10)
	for _, w := range ws {
		w.Done(99)
	}
	if len(ws) != 2 || len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Fatalf("Take released %d waiters in order %v", len(ws), calls)
	}
	m.Recycle(ws)
	if m.Len() != 0 {
		t.Fatal("entry not freed")
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, Waiter{})
	if !m.Full() {
		t.Fatal("MSHR with 1 entry should be full")
	}
	if _, ok := m.Allocate(2, Waiter{}); ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Merging is still allowed when full.
	if merged, ok := m.Allocate(1, Waiter{}); !merged || !ok {
		t.Fatal("merge rejected on full MSHR")
	}
}

func TestMSHRTakeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Take of unknown line should panic")
		}
	}()
	NewMSHR(1).Take(7)
}

func TestMSHROutstanding(t *testing.T) {
	m := NewMSHR(2)
	if m.Outstanding(5) {
		t.Fatal("empty MSHR reports outstanding")
	}
	m.Allocate(5, Waiter{})
	if !m.Outstanding(5) {
		t.Fatal("allocated line not outstanding")
	}
}

func TestMSHRRecycleReusesEntrySlices(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, Waiter{Write: true})
	m.Recycle(m.Take(1))
	// The recycled slice must come back empty: stale waiters leaking into a
	// fresh entry would replay phantom accesses.
	m.Allocate(2, Waiter{})
	ws := m.Take(2)
	if len(ws) != 1 || ws[0].Write {
		t.Fatalf("recycled entry carried stale waiters: %+v", ws)
	}
	m.Recycle(ws)
}

package cache

import (
	"testing"

	"memsched/internal/config"
)

func BenchmarkLookupHit(b *testing.B) {
	c := MustNew(config.Default(1).L1D)
	for i := uint64(0); i < 256; i++ {
		c.Insert(i, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i)&255, false)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := MustNew(config.Default(1).L1D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i), i&1 == 0)
	}
}

func BenchmarkMSHRAllocateComplete(b *testing.B) {
	m := NewMSHR(32)
	fn := func(int64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i % 16)
		if merged, ok := m.Allocate(line, Waiter{Done: fn}); ok && !merged {
			ws := m.Take(line)
			for _, w := range ws {
				w.Done(int64(i))
			}
			m.Recycle(ws)
		}
	}
}

package cache

import "testing"

// TestWriteBackRetryReusesBacking is the regression test for the wbRetry
// storage leak: the old Tick sliced served retries off the front
// (h.wbRetry = h.wbRetry[1:]), stranding the backing array's head slots so
// every fill/drain round re-allocated the list from scratch. The compacting
// Tick must keep reusing one backing array across many rounds.
func TestWriteBackRetryReusesBacking(t *testing.T) {
	h, mc, cfg := newHierarchy(t, 1, false)
	const parkTarget = 8
	now := int64(0)
	line := uint64(0)
	var base *wbEntry
	var baseCap int
	for round := 0; round < 50; round++ {
		// Fill the controller's write queue to capacity, then park
		// parkTarget write-backs on the retry list.
		for len(h.wbRetry) < parkTarget {
			h.writeToMemory(0, line, now)
			line++
			if int(line) > 10*(cfg.Memory.WriteQueueCap+parkTarget)*(round+1) {
				t.Fatalf("round %d: write queue never filled", round)
			}
		}
		if round == 0 {
			base = &h.wbRetry[0]
			baseCap = cap(h.wbRetry)
		} else {
			if &h.wbRetry[0] != base {
				t.Fatalf("round %d: wbRetry backing array was reallocated", round)
			}
			if cap(h.wbRetry) != baseCap {
				t.Fatalf("round %d: cap = %d, want %d (backing array grew)", round, cap(h.wbRetry), baseCap)
			}
		}
		// Drain: the controller issues parked writes as DRAM frees up, and
		// Tick moves retries into the freed queue slots.
		next := drive(h, mc, now, func() bool { return len(h.wbRetry) == 0 }, 1_000_000)
		if next < 0 {
			t.Fatalf("round %d: retry list never drained", round)
		}
		now = next
	}
}

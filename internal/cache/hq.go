package cache

// The hierarchy's internal latency events all carry the same tiny payload —
// a core, a line, and a destination — so they are stored as plain values in a
// typed min-heap instead of closures on a generic event queue. Ordering is
// (when, insertion seq), identical to event.Queue, which keeps simulation
// results byte-for-byte the same while making the steady-state miss path
// allocation-free.

// hevent kinds.
const (
	hkL2Req   uint8 = iota // run l2Request(core, line, when, instr)
	hkFill                 // deliver an L2 hit to core's L1D (or L1I if instr)
	hkFillL2               // PerfectMemory: install line into L2 directly
	hkMemRead              // try EnqueueRead; retry next cycle while full
)

// hevent is one scheduled hierarchy event.
type hevent struct {
	when  int64
	seq   uint64
	kind  uint8
	instr bool
	core  int32
	line  uint64
}

// heventHeap is a binary min-heap of hevents by (when, seq).
type heventHeap []hevent

func (h heventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h *heventHeap) push(e hevent) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *heventHeap) pop() hevent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

package cache

import (
	"testing"

	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/xrand"
)

func newHierarchy(t *testing.T, cores int, perfect bool) (*Hierarchy, *memctrl.Controller, *config.Config) {
	t.Helper()
	cfg := config.Default(cores)
	cfg.PerfectMemory = perfect
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New("hf-rf", cores)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return NewHierarchy(&cfg, mc), mc, &cfg
}

// drive ticks hierarchy and controller together until pred or limit cycles.
func drive(h *Hierarchy, mc *memctrl.Controller, from int64, pred func() bool, limit int64) int64 {
	now := from
	for !pred() {
		h.Tick(now)
		mc.Tick(now)
		now++
		if now-from > limit {
			return -1
		}
	}
	return now
}

func TestL1HitIsSynchronous(t *testing.T) {
	h, mc, cfg := newHierarchy(t, 1, false)
	// Warm the line.
	done := false
	_, async, ok := h.Access(0, 5, false, 0, func(int64) { done = true })
	if !ok || !async {
		t.Fatalf("cold access: async=%v ok=%v, want async miss", async, ok)
	}
	if drive(h, mc, 0, func() bool { return done }, 100000) < 0 {
		t.Fatal("miss never completed")
	}
	lat, async, ok := h.Access(0, 5, false, 1000, nil)
	if !ok || async {
		t.Fatalf("warm access should hit synchronously (async=%v ok=%v)", async, ok)
	}
	if lat != int64(cfg.L1D.HitLatency) {
		t.Fatalf("hit latency = %d, want %d", lat, cfg.L1D.HitLatency)
	}
	cs := h.CoreStats(0)
	if cs.Loads.Value() != 2 || cs.L1Hits.Value() != 1 || cs.L1Misses.Value() != 1 {
		t.Fatalf("counters: loads=%d hits=%d misses=%d", cs.Loads.Value(), cs.L1Hits.Value(), cs.L1Misses.Value())
	}
}

func TestMissGoesToMemoryOnce(t *testing.T) {
	h, mc, _ := newHierarchy(t, 1, false)
	done := 0
	h.Access(0, 77, false, 0, func(int64) { done++ })
	if drive(h, mc, 0, func() bool { return done == 1 }, 100000) < 0 {
		t.Fatal("miss never completed")
	}
	if mc.ReadsIssued() != 1 {
		t.Fatalf("DRAM reads = %d, want 1", mc.ReadsIssued())
	}
	cs := h.CoreStats(0)
	if cs.L2Misses.Value() != 1 || cs.MemReads.Value() != 1 {
		t.Fatalf("L2Misses=%d MemReads=%d", cs.L2Misses.Value(), cs.MemReads.Value())
	}
	// L2 now holds the line: another core... same core after L1 eviction
	// would hit L2. Simulate by invalidating L1 directly.
	h.L1D(0).Invalidate(77)
	done = 0
	h.Access(0, 77, false, 5000, func(int64) { done++ })
	if drive(h, mc, 5000, func() bool { return done == 1 }, 100000) < 0 {
		t.Fatal("L2 hit never completed")
	}
	if mc.ReadsIssued() != 1 {
		t.Fatalf("L2 hit went to memory: reads = %d", mc.ReadsIssued())
	}
	if cs.L2Hits.Value() != 1 {
		t.Fatalf("L2Hits = %d, want 1", cs.L2Hits.Value())
	}
}

func TestMergedMissesSingleFetch(t *testing.T) {
	h, mc, _ := newHierarchy(t, 2, false)
	// Two cores miss on the same line: L2 MSHR must merge into one DRAM read.
	done := 0
	h.Access(0, 99, false, 0, func(int64) { done++ })
	h.Access(1, 99, false, 0, func(int64) { done++ })
	if drive(h, mc, 0, func() bool { return done == 2 }, 100000) < 0 {
		t.Fatal("merged misses never completed")
	}
	if mc.ReadsIssued() != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (merged)", mc.ReadsIssued())
	}
}

func TestSameCoreMergeAtL1(t *testing.T) {
	h, mc, _ := newHierarchy(t, 1, false)
	done := 0
	h.Access(0, 42, false, 0, func(int64) { done++ })
	h.Access(0, 42, true, 0, func(int64) { done++ }) // store to same line merges
	if drive(h, mc, 0, func() bool { return done == 2 }, 100000) < 0 {
		t.Fatal("merged L1 misses never completed")
	}
	if mc.ReadsIssued() != 1 {
		t.Fatalf("DRAM reads = %d, want 1", mc.ReadsIssued())
	}
	// The merged store must have dirtied the L1 line.
	victimProducesWriteback(t, h, mc)
}

// victimProducesWriteback evicts line 42 from L1 (2-way sets) by filling its
// set and checks a write-back reaches L2 (dirty state) or memory.
func victimProducesWriteback(t *testing.T, h *Hierarchy, mc *memctrl.Controller) {
	t.Helper()
	sets := h.L1D(0).Sets()
	done := 0
	for i := 1; i <= 2; i++ {
		h.Access(0, 42+uint64(i*sets), false, 10000, func(int64) { done++ })
	}
	if drive(h, mc, 10000, func() bool { return done == 2 }, 1000000) < 0 {
		t.Fatal("evicting accesses never completed")
	}
	if h.L1D(0).Peek(42) {
		t.Fatal("line 42 still in L1; eviction did not happen")
	}
	// L2 holds 42 (it was filled there) and must now be dirty: evicting it
	// from L2 would produce a memory write. Cheap check: L2 Lookup(42,false)
	// hits.
	if !h.L2().Peek(42) {
		t.Fatal("dirty L1 victim vanished: not in L2")
	}
}

func TestMSHRStructuralHazard(t *testing.T) {
	h, _, cfg := newHierarchy(t, 1, false)
	// Exhaust the 32 L1D MSHRs with distinct lines (no ticking: nothing
	// completes). Use large strides to avoid set conflicts mattering.
	accepted := 0
	for i := 0; i < cfg.L1D.MSHRs+5; i++ {
		_, _, ok := h.Access(0, uint64(i*1000), false, 0, nil)
		if ok {
			accepted++
		}
	}
	if accepted != cfg.L1D.MSHRs {
		t.Fatalf("accepted %d misses, want %d (MSHR bound)", accepted, cfg.L1D.MSHRs)
	}
	// A hit must still be serviceable... no lines are resident, so check a
	// merge is still allowed instead.
	if _, _, ok := h.Access(0, 0, false, 0, nil); !ok {
		t.Fatal("merge to outstanding line rejected while MSHRs full")
	}
}

func TestPerfectMemoryNeverTouchesDRAM(t *testing.T) {
	h, mc, _ := newHierarchy(t, 1, true)
	done := 0
	for i := 0; i < 20; i++ {
		h.Access(0, uint64(i*500), false, int64(i), func(int64) { done++ })
	}
	if drive(h, mc, 20, func() bool { return done == 20 }, 100000) < 0 {
		t.Fatal("perfect-memory accesses never completed")
	}
	if mc.ReadsIssued() != 0 || mc.WritesIssued() != 0 {
		t.Fatalf("perfect memory issued DRAM traffic: %d reads %d writes",
			mc.ReadsIssued(), mc.WritesIssued())
	}
}

func TestPerfectMemoryIsFaster(t *testing.T) {
	run := func(perfect bool) int64 {
		h, mc, _ := newHierarchy(t, 1, perfect)
		done := 0
		const n = 50
		issued := 0
		now := int64(0)
		for done < n {
			// Issue as many as the MSHRs accept, retrying each cycle.
			for issued < n {
				if _, _, ok := h.Access(0, uint64(issued*100), false, now, func(int64) { done++ }); !ok {
					break
				}
				issued++
			}
			h.Tick(now)
			mc.Tick(now)
			now++
			if now > 10_000_000 {
				t.Fatal("accesses never completed")
			}
		}
		return now
	}
	slow := run(false)
	fast := run(true)
	if fast >= slow {
		t.Fatalf("perfect memory (%d cycles) not faster than DDR2 (%d cycles)", fast, slow)
	}
}

func TestQuiescent(t *testing.T) {
	h, mc, _ := newHierarchy(t, 1, false)
	if !h.Quiescent() {
		t.Fatal("fresh hierarchy not quiescent")
	}
	done := false
	h.Access(0, 1, false, 0, func(int64) { done = true })
	if h.Quiescent() {
		t.Fatal("hierarchy with outstanding miss reports quiescent")
	}
	drive(h, mc, 0, func() bool { return done && h.Quiescent() && mc.Quiescent() }, 100000)
}

func TestAccessInstrPath(t *testing.T) {
	h, mc, cfg := newHierarchy(t, 1, false)
	done := 0
	_, async, ok := h.AccessInstr(0, 42, 0, func(int64) { done++ })
	if !ok || !async {
		t.Fatalf("cold I-fetch: async=%v ok=%v", async, ok)
	}
	if drive(h, mc, 0, func() bool { return done == 1 }, 100000) < 0 {
		t.Fatal("I-fetch never completed")
	}
	// Warm: synchronous L1I hit at the configured latency.
	lat, async, ok := h.AccessInstr(0, 42, 5000, nil)
	if !ok || async || lat != int64(cfg.L1I.HitLatency) {
		t.Fatalf("warm I-fetch: lat=%d async=%v ok=%v", lat, async, ok)
	}
	cs := h.CoreStats(0)
	if cs.IFetches.Value() != 2 || cs.L1IMisses.Value() != 1 {
		t.Fatalf("counters: fetches=%d misses=%d", cs.IFetches.Value(), cs.L1IMisses.Value())
	}
	if !h.L1I(0).Peek(42) {
		t.Fatal("line not in L1I")
	}
}

func TestInstrAndDataShareL2(t *testing.T) {
	h, mc, _ := newHierarchy(t, 1, false)
	// Fetch a line as data first; an instruction fetch of the same line must
	// then hit in L2 (no second DRAM read).
	done := 0
	h.Access(0, 7, false, 0, func(int64) { done++ })
	drive(h, mc, 0, func() bool { return done == 1 }, 100000)
	h.AccessInstr(0, 7, 5000, func(int64) { done++ })
	drive(h, mc, 5000, func() bool { return done == 2 }, 100000)
	if mc.ReadsIssued() != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (I-fetch should hit L2)", mc.ReadsIssued())
	}
}

func TestL2StreamPrefetch(t *testing.T) {
	mk := func(prefetch bool) (*Hierarchy, *memctrl.Controller) {
		cfg := config.Default(1)
		cfg.L2StreamPrefetch = prefetch
		sys := dram.NewSystem(&cfg)
		pol, _ := sched.New("hf-rf", 1)
		mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		return NewHierarchy(&cfg, mc), mc
	}
	// Without prefetch: a miss on line 100 fetches only line 100.
	h, mc := mk(false)
	done := 0
	h.Access(0, 100, false, 0, func(int64) { done++ })
	drive(h, mc, 0, func() bool { return done == 1 }, 100000)
	if mc.ReadsIssued() != 1 {
		t.Fatalf("no-prefetch reads = %d", mc.ReadsIssued())
	}
	// With prefetch: line 101 is fetched too, so a subsequent access to 101
	// hits in L2 without another DRAM read for it... total reads stay 2.
	h, mc = mk(true)
	done = 0
	h.Access(0, 100, false, 0, func(int64) { done++ })
	drive(h, mc, 0, func() bool { return done == 1 && h.Quiescent() }, 100000)
	if mc.ReadsIssued() != 2 {
		t.Fatalf("prefetch reads = %d, want 2 (demand + prefetch)", mc.ReadsIssued())
	}
	if h.CoreStats(0).Prefetches.Value() != 1 {
		t.Fatalf("Prefetches = %d", h.CoreStats(0).Prefetches.Value())
	}
	if !h.L2().Peek(101) {
		t.Fatal("prefetched line not in L2")
	}
	// The prefetched line services a demand access from L2: it is an L2 hit,
	// so no further DRAM traffic (misses, not hits, trigger prefetches).
	done = 0
	h.Access(0, 101, false, 50_000, func(int64) { done++ })
	drive(h, mc, 50_000, func() bool { return done == 1 }, 100000)
	if mc.ReadsIssued() != 2 {
		t.Fatalf("reads after L2-hit access = %d, want 2", mc.ReadsIssued())
	}
	if h.CoreStats(0).L2Hits.Value() == 0 {
		t.Fatal("prefetched line did not produce an L2 hit")
	}
}

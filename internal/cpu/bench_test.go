package cpu

import (
	"testing"

	"memsched/internal/trace"
)

func BenchmarkCoreTickComputeBound(b *testing.B) {
	r := newRigB(b, &scriptGen{script: computeOnly(1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.core.Tick(r.now)
		r.now++
	}
}

func BenchmarkCoreTickMemoryBound(b *testing.B) {
	p := trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		FPFrac: 0.5, MulFrac: 0.1,
		StreamFrac: 0.6, RandomFrac: 0.2,
		WordsPerLine: 2, RunLenLines: 256,
		FootprintLines: 1 << 20, HotLines: 512, DepProb: 0.1,
	}
	gen, err := trace.NewSynthetic(p, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := newRigB(b, gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.core.Tick(r.now)
		r.hier.Tick(r.now)
		r.mc.Tick(r.now)
		r.now++
	}
}

// Package cpu implements the simplified out-of-order core timing model.
//
// The model keeps exactly the mechanisms that determine how memory scheduling
// affects performance — which is what the paper's evaluation measures:
//
//   - in-order retirement bounded by a finite ROB: a long-latency load at the
//     ROB head stalls the core once the window fills;
//   - bounded load/store queues and L1 MSHRs: memory-level parallelism is
//     finite, so per-core pending-request counts carry information (LREQ);
//   - explicit load-use dependences from the trace: low-ILP codes serialize
//     behind memory while high-ILP codes keep retiring;
//   - branch mispredictions flush-and-refill the front end, bounding the IPC
//     of compute-heavy codes below the issue width.
//
// Deliberately not modeled (documented simplifications): register renaming,
// functional-unit structural hazards beyond latency, instruction fetch
// misses, and speculative wrong-path memory accesses. The IQ bound is
// approximated by capping the number of load-dependent instructions waiting
// in the window.
package cpu

import (
	"fmt"

	"memsched/internal/cache"
	"memsched/internal/config"
	"memsched/internal/stats"
	"memsched/internal/trace"
	"memsched/internal/xrand"
)

const waiting = int64(-1) // readyAt sentinel: blocked on a load completion

type robEntry struct {
	readyAt  int64
	isLoad   bool
	isStore  bool
	mispred  bool // mispredicted branch: resolving it restarts the front end
	depLat   int64
	firstDep int32 // head of the dependent chain (absolute ROB index), -1
	nextDep  int32
	line     uint64 // memory address for loads/stores
}

// Stats holds one core's execution counters.
type Stats struct {
	Retired      uint64
	Cycles       int64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	RetireStalls uint64 // cycles with zero retirement while the ROB was non-empty
	ROBOccupancy stats.Running
	DispatchHaz  uint64 // dispatch attempts blocked by LQ/SQ/MSHR/FU hazards
	IFetchStalls uint64 // front-end stalls waiting for an instruction line
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Core is one simulated processor core.
type Core struct {
	id   int
	cfg  *config.Config
	gen  trace.Generator
	hier *cache.Hierarchy
	rng  *xrand.Rand

	rob        []robEntry
	head, tail int64 // absolute indices; occupancy = tail - head

	lqUsed, sqUsed int
	iqWaiting      int // load-dependent instructions parked in the window

	fetchBlockedUntil int64

	pendingIns  trace.Instr
	havePending bool

	// fuUsed counts per-cycle functional-unit issue (Table 1: 4 IntALU,
	// 2 IntMult, 2 FPALU, 1 FPMult); fuCycle tags the cycle the counters
	// belong to.
	fuUsed   [4]int
	fuLimits [4]int // per-class pool sizes, copied out of cfg once
	fuCycle  int64

	// Instruction-fetch model (ConfigureFetch): the front end walks a code
	// region sequentially, instrsPerLine instructions per cache line, and
	// jumps on taken branches. A line missing from the L1I stalls dispatch.
	codeLines   uint64
	codeBase    uint64
	takenProb   float64
	fetchLine   uint64
	fetchOffset int
	iLineReady  bool
	iFetchBusy  bool // an asynchronous I-fetch is outstanding

	lastLoad int64 // absolute index of youngest in-flight load, -1 if none
	idle     bool  // last Tick retired and dispatched nothing (see IdleLastTick)

	// Quiescent fast path: when an idle Tick proves (via stallInfo) that every
	// cycle before quietUntil can only repeat the same stall, later Ticks take
	// a counters-only path instead of re-scanning retire and dispatch.
	// quietHaz is the DispatchHaz increment each such cycle records. Any
	// completion callback from the cache hierarchy clears quietUntil, since
	// fills, drains and frees are exactly the external events that can change
	// the stall conditions. noQuiesce disables the fast path (with cycle
	// skipping off, the core becomes a strict cycle-by-cycle reference).
	quietUntil int64
	quietHaz   uint64
	noQuiesce  bool
	prefetchCB func(int64) // invalidation-only callback for L1I prefetches

	// Completion callbacks handed to the cache hierarchy, bound once at
	// construction so the dispatch/retire hot paths allocate no closures:
	// loadCB[i] wakes the load occupying ROB slot i, storeDrainCB frees the
	// SQ entry of a drained store, iFetchDoneCB publishes a fetched I-line.
	loadCB       []func(int64)
	storeDrainCB func(int64)
	iFetchDoneCB func(int64)

	stats Stats
}

// NewCore builds core id executing gen against hier.
func NewCore(id int, cfg *config.Config, gen trace.Generator, hier *cache.Hierarchy, rng *xrand.Rand) *Core {
	if gen == nil || hier == nil || rng == nil {
		panic("cpu: nil dependency")
	}
	c := &Core{
		id:       id,
		cfg:      cfg,
		gen:      gen,
		hier:     hier,
		rng:      rng,
		rob:      make([]robEntry, cfg.Core.ROBSize),
		lastLoad: -1,
	}
	c.fuLimits = [4]int{cfg.Core.IntALUs, cfg.Core.IntMults, cfg.Core.FPALUs, cfg.Core.FPMults}
	c.loadCB = make([]func(int64), len(c.rob))
	for i := range c.loadCB {
		slot := int64(i)
		c.loadCB[i] = func(t int64) { c.loadComplete(slot, t) }
	}
	c.storeDrainCB = func(int64) {
		c.sqUsed--
		c.quietUntil = 0
	}
	c.iFetchDoneCB = func(int64) {
		c.iFetchBusy = false
		c.iLineReady = true
		c.quietUntil = 0
	}
	// Prefetch fills carry no architectural effect, but they free L1I MSHR
	// entries, which can end a WouldRejectInstr stall — so they must still
	// invalidate the quiescent fast path.
	c.prefetchCB = func(int64) { c.quietUntil = 0 }
	return c
}

// SetNoQuiesce disables (or re-enables) the core's quiescent fast path, so a
// run with cycle skipping off is a strict cycle-by-cycle reference for
// differential testing.
func (c *Core) SetNoQuiesce(v bool) {
	c.noQuiesce = v
	c.quietUntil = 0
}

// instrsPerLine is how many instructions one 64-byte cache line holds at a
// fixed 4-byte encoding.
const instrsPerLine = 16

// ConfigureFetch enables instruction-fetch modeling: the front end streams
// through a code region of codeLines cache lines starting at line address
// base, redirecting to a random line on a taken branch (probability
// takenProb). Without this call, instruction supply is ideal.
func (c *Core) ConfigureFetch(codeLines uint64, takenProb float64, base uint64) {
	if codeLines == 0 {
		c.codeLines = 0
		return
	}
	c.codeLines = codeLines
	c.codeBase = base
	c.takenProb = takenProb
	c.fetchLine = 0
	c.fetchOffset = 0
	c.iLineReady = false
	c.iFetchBusy = false
}

// ensureFetchLine returns true when the current instruction line is
// available to dispatch from, starting an L1I fetch if needed.
func (c *Core) ensureFetchLine(now int64) bool {
	if c.codeLines == 0 || c.iLineReady {
		return true
	}
	if c.iFetchBusy {
		return false
	}
	line := c.codeBase + c.fetchLine
	_, async, ok := c.hier.AccessInstr(c.id, line, now, c.iFetchDoneCB)
	if !ok {
		c.stats.DispatchHaz++
		return false
	}
	// Sequential prefetch, four lines deep: straight-line code consumes a
	// line every ~4 cycles at full width, so the prefetcher needs enough
	// lead to cover an L2 round trip. Only branch targets and cold first
	// passes stall the front end.
	for d := uint64(1); d <= 4; d++ {
		next := c.codeBase + (c.fetchLine+d)%c.codeLines
		if !c.hier.L1I(c.id).Peek(next) {
			c.hier.AccessInstr(c.id, next, now, c.prefetchCB)
		}
	}
	if async {
		c.iFetchBusy = true
		c.stats.IFetchStalls++
		return false
	}
	// L1I hit: the 1-cycle fetch latency is hidden by the pipeline.
	c.iLineReady = true
	return true
}

// Branch-target locality: most taken branches stay within a small window
// (loops, if/else); a minority are far calls that move the front end to a
// cold part of the code region.
const (
	farJumpProb   = 0.1
	localJumpSpan = 8 // lines either side of the current fetch line
)

// consumeFetch advances the fetch stream past one dispatched instruction;
// taken reports whether the instruction redirected fetch.
func (c *Core) consumeFetch(taken bool) {
	if c.codeLines == 0 {
		return
	}
	if taken {
		if c.rng.Bernoulli(farJumpProb) {
			c.fetchLine = c.rng.Uint64n(c.codeLines)
		} else {
			span := uint64(2*localJumpSpan + 1)
			if span > c.codeLines {
				span = c.codeLines
			}
			delta := c.rng.Uint64n(span)
			c.fetchLine = (c.fetchLine + c.codeLines + delta - span/2) % c.codeLines
		}
		c.fetchOffset = 0
		c.iLineReady = false
		return
	}
	c.fetchOffset++
	if c.fetchOffset >= instrsPerLine {
		c.fetchOffset = 0
		c.fetchLine++
		if c.fetchLine >= c.codeLines {
			c.fetchLine = 0
		}
		c.iLineReady = false
	}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns a pointer to the core's counters.
func (c *Core) Stats() *Stats { return &c.stats }

// Retired returns the number of retired instructions.
func (c *Core) Retired() uint64 { return c.stats.Retired }

// MinCyclesToRetire returns a lower bound on the cycles this core needs to
// reach `target` retired instructions: retirement is capped at the issue
// width per cycle, so the bound is exact when the pipeline never stalls. The
// parallel window planner uses it to guarantee commit-target crossings can
// only land on a window's final cycle, keeping freeze points cycle-exact.
// Returns 0 when the target is already reached.
func (c *Core) MinCyclesToRetire(target uint64) int64 {
	if c.stats.Retired >= target {
		return 0
	}
	rem := int64(target - c.stats.Retired)
	width := int64(c.cfg.Core.IssueWidth)
	return (rem + width - 1) / width
}

// ROBOccupancy returns the instantaneous number of in-flight instructions in
// the reorder buffer (telemetry sampling; the run-average lives in Stats).
func (c *Core) ROBOccupancy() int { return int(c.tail - c.head) }

func (c *Core) slot(abs int64) *robEntry { return &c.rob[abs%int64(len(c.rob))] }

func (c *Core) robFull() bool { return c.tail-c.head >= int64(len(c.rob)) }

// Tick advances the core by one cycle: retire then dispatch, both bounded by
// the issue width.
func (c *Core) Tick(now int64) {
	c.stats.Cycles++
	c.stats.ROBOccupancy.Observe(float64(c.tail - c.head))
	if now < c.quietUntil {
		// Quiescent fast path: this cycle provably repeats the last stall,
		// so apply its exact per-cycle accounting without re-scanning.
		if c.head < c.tail {
			c.stats.RetireStalls++
		}
		c.stats.DispatchHaz += c.quietHaz
		c.idle = true
		return
	}
	r0, t0 := c.stats.Retired, c.tail
	c.retire(now)
	c.dispatch(now)
	c.idle = c.stats.Retired == r0 && c.tail == t0
	if c.idle && !c.noQuiesce {
		if next, haz := c.stallInfo(now); next > now+1 {
			c.quietUntil, c.quietHaz = next, haz
		}
	}
}

// IdleLastTick reports whether the most recent Tick neither retired nor
// dispatched anything. It is the run loop's cheap pre-filter for next-event
// time advance: a cycle-skip is only possible when every core was idle, so
// the full NextEventAt scan is not even attempted while any core makes
// progress.
func (c *Core) IdleLastTick() bool { return c.idle }

func (c *Core) retire(now int64) {
	width := c.cfg.Core.IssueWidth
	retiredNow := 0
	for retiredNow < width && c.head < c.tail {
		e := c.slot(c.head)
		if e.readyAt == waiting || e.readyAt > now {
			break
		}
		if e.isStore {
			// The retiring store drains to the cache in the background but
			// holds its SQ entry until the write completes.
			_, async, ok := c.hier.Access(c.id, e.line, true, now, c.storeDrainCB)
			if !ok {
				c.stats.DispatchHaz++
				break // structural hazard: retry retirement next cycle
			}
			if !async {
				c.sqUsed--
			}
		}
		if e.isLoad {
			c.lqUsed--
		}
		c.head++
		c.stats.Retired++
		retiredNow++
	}
	if retiredNow == 0 && c.head < c.tail {
		c.stats.RetireStalls++
	}
}

func (c *Core) dispatch(now int64) {
	if now < c.fetchBlockedUntil {
		return
	}
	width := c.cfg.Core.IssueWidth
	for n := 0; n < width; n++ {
		if c.robFull() {
			return
		}
		if !c.ensureFetchLine(now) {
			return
		}
		if !c.havePending {
			c.gen.Next(&c.pendingIns)
			c.havePending = true
		}
		if !c.dispatchOne(now, &c.pendingIns) {
			return
		}
		c.consumeFetch(c.pendingIns.Kind == trace.KindBranch && c.rng.Bernoulli(c.takenProb))
		c.havePending = false
		if now < c.fetchBlockedUntil {
			// The instruction just dispatched was a resolved mispredicted
			// branch: everything younger is squashed until refill.
			return
		}
	}
}

// dispatchOne places ins into the ROB. It returns false when a structural
// hazard prevents dispatch this cycle (the instruction stays pending).
func (c *Core) dispatchOne(now int64, ins *trace.Instr) bool {
	cc := &c.cfg.Core
	// Address dependence: a load or store whose address is produced by the
	// youngest in-flight load cannot issue until that load returns. This is
	// the pointer-chase serializer that destroys memory-level parallelism in
	// codes like mcf. Dispatch stalls in place and retries each cycle.
	if ins.Kind.IsMem() && ins.DepOnLoad && c.lastLoadInFlight() {
		c.stats.DispatchHaz++
		return false
	}
	switch ins.Kind {
	case trace.KindLoad:
		if c.lqUsed >= cc.LQSize {
			c.stats.DispatchHaz++
			return false
		}
		abs := c.tail
		lat, async, ok := c.hier.Access(c.id, ins.Line, false, now,
			c.loadCB[abs%int64(len(c.rob))])
		if !ok {
			c.stats.DispatchHaz++
			return false
		}
		e := c.slot(abs)
		*e = robEntry{isLoad: true, firstDep: -1, line: ins.Line}
		if async {
			e.readyAt = waiting
		} else {
			e.readyAt = now + lat
		}
		c.lqUsed++
		c.lastLoad = abs
		c.tail++
		c.stats.Loads++
		return true

	case trace.KindStore:
		if c.sqUsed >= cc.SQSize {
			c.stats.DispatchHaz++
			return false
		}
		e := c.slot(c.tail)
		*e = robEntry{isStore: true, firstDep: -1, line: ins.Line, readyAt: now + 1}
		c.sqUsed++
		c.tail++
		c.stats.Stores++
		return true

	default:
		if !c.reserveFU(now, ins.Kind) {
			c.stats.DispatchHaz++
			return false
		}
		lat := c.computeLatency(ins.Kind)
		e := c.slot(c.tail)
		*e = robEntry{firstDep: -1}
		isBranch := ins.Kind == trace.KindBranch
		if isBranch {
			c.stats.Branches++
			if c.rng.Bernoulli(cc.BranchMissPct) {
				e.mispred = true
				c.stats.Mispredicts++
			}
		}
		if ins.DepOnLoad && c.lastLoadInFlight() {
			if c.iqWaiting >= cc.IQSize {
				c.stats.DispatchHaz++
				return false
			}
			// Park behind the youngest in-flight load.
			load := c.slot(c.lastLoad)
			e.readyAt = waiting
			e.depLat = lat
			e.nextDep = load.firstDep
			load.firstDep = int32(c.tail % int64(len(c.rob)))
			c.iqWaiting++
		} else {
			e.readyAt = now + lat
			if e.mispred {
				c.redirectFrontEnd(e.readyAt)
			}
		}
		c.tail++
		return true
	}
}

func (c *Core) lastLoadInFlight() bool {
	if c.lastLoad < c.head {
		return false
	}
	e := c.slot(c.lastLoad)
	return e.isLoad && e.readyAt == waiting
}

// fuClass maps an instruction kind onto its functional unit pool.
func fuClass(k trace.Kind) int {
	switch k {
	case trace.KindIntMul:
		return 1
	case trace.KindFP:
		return 2
	case trace.KindFPMul:
		return 3
	default: // KindInt, KindBranch share the integer ALUs
		return 0
	}
}

// reserveFU claims a functional unit for this cycle, returning false when
// the pool (Table 1: 4/2/2/1) is exhausted — a structural dispatch hazard.
func (c *Core) reserveFU(now int64, k trace.Kind) bool {
	if now != c.fuCycle {
		c.fuCycle = now
		c.fuUsed = [4]int{}
	}
	cls := fuClass(k)
	if c.fuUsed[cls] >= c.fuLimits[cls] {
		return false
	}
	c.fuUsed[cls]++
	return true
}

func (c *Core) computeLatency(k trace.Kind) int64 {
	cc := &c.cfg.Core
	switch k {
	case trace.KindIntMul:
		return int64(cc.IntMultLat)
	case trace.KindFP:
		return int64(cc.FPALULat)
	case trace.KindFPMul:
		return int64(cc.FPMultLat)
	default: // KindInt, KindBranch
		return int64(cc.IntALULat)
	}
}

// loadComplete fires when a load's data arrives: it wakes the load occupying
// ROB slot `slot` and every instruction chained behind it. A load holds its
// slot until it completes (in-order retirement cannot pass a waiting load),
// so the occupant is always the load the callback was issued for; the guard
// below is defensive, mirroring the old absolute-index check.
func (c *Core) loadComplete(slot int64, now int64) {
	c.quietUntil = 0
	e := &c.rob[slot]
	if !e.isLoad || e.readyAt != waiting {
		return // already retired (cannot happen in-order, but guard)
	}
	e.readyAt = now
	dep := e.firstDep
	e.firstDep = -1
	for dep >= 0 {
		d := &c.rob[dep]
		next := d.nextDep
		d.nextDep = -1
		d.readyAt = now + d.depLat
		c.iqWaiting--
		if d.mispred {
			c.redirectFrontEnd(d.readyAt)
		}
		dep = next
	}
}

// FarFuture is the NextEventAt value of a component whose next progress
// depends purely on an external completion (another component's event).
const FarFuture = int64(1)<<62 - 1

// NextEventAt implements the simulator's next-event time-advance contract.
// Called after Tick(now), it returns the earliest cycle t > now at which
// Tick(t) could do anything beyond the pure stall pattern that AbsorbStall
// accounts for: now+1 when the core may retire, dispatch, or start a fetch
// next cycle (the caller must then not skip), the core's own wake-up time
// (ROB-head readyAt, front-end refill) when it is provably stalled until
// then, or FarFuture when progress requires an external completion — a load
// return, an MSHR fill or a store drain, all of which arrive through cache or
// controller events that bound the global skip.
func (c *Core) NextEventAt(now int64) int64 {
	if now < c.quietUntil {
		return c.quietUntil
	}
	next, _ := c.stallInfo(now)
	return next
}

// AbsorbStall accounts k skipped Ticks (cycles now+1 .. now+k) during which
// the core provably only stalled: the per-cycle counters advance exactly as k
// naive Ticks would have advanced them (Cycles, ROBOccupancy at the frozen
// occupancy, RetireStalls while the ROB is non-empty, and the deterministic
// per-cycle DispatchHaz increments of retrying a blocked store retirement or
// a rejected dispatch).
func (c *Core) AbsorbStall(now, k int64) {
	haz := c.quietHaz
	if now >= c.quietUntil {
		_, haz = c.stallInfo(now)
	}
	c.stats.Cycles += k
	c.stats.ROBOccupancy.ObserveN(float64(c.tail-c.head), uint64(k))
	if c.head < c.tail {
		c.stats.RetireStalls += uint64(k)
	}
	c.stats.DispatchHaz += uint64(k) * haz
}

// stallInfo performs a read-only replay of what Tick(now+1) would do. It
// returns (now+1, 0) whenever the core might make progress — retire an
// instruction, dispatch one, park a dependent, draw a new instruction from
// the generator, or start an instruction fetch — since any of those mutate
// state or consume randomness and therefore cannot be skipped. Otherwise it
// returns the earliest self-scheduled wake-up time (FarFuture when the stall
// only external events can end) and the DispatchHaz increments one stalled
// cycle records. Every condition consulted here is frozen between events:
// MSHR and queue occupancy only change through cache/controller events, and
// ROB/LQ/SQ/IQ state only changes through the core's own progress.
func (c *Core) stallInfo(now int64) (next int64, haz uint64) {
	next = FarFuture
	// Retire side: only the ROB head can unblock retirement.
	if c.head < c.tail {
		e := c.slot(c.head)
		switch {
		case e.readyAt == waiting:
			// Blocked on a load completion (external).
		case e.readyAt > now:
			next = e.readyAt
		case e.isStore && c.hier.WouldRejectData(c.id, e.line):
			// A ready store retried against a full L1 MSHR each cycle: one
			// DispatchHaz per cycle, unblocked by a fill (external).
			haz++
		default:
			return now + 1, 0 // head would retire next cycle
		}
	}
	// Dispatch side, mirroring dispatch()'s early-outs in order.
	if c.fetchBlockedUntil > now {
		// Mispredict refill: dispatch returns silently until the restart time.
		if c.fetchBlockedUntil < next {
			next = c.fetchBlockedUntil
		}
		return next, haz
	}
	if c.robFull() {
		return next, haz // silent; unblocked only by the head retiring
	}
	if c.codeLines != 0 && !c.iLineReady {
		if c.iFetchBusy {
			return next, haz // waiting for the I-line fill (external)
		}
		if c.hier.WouldRejectInstr(c.id, c.codeBase+c.fetchLine) {
			return next, haz + 1 // rejected fetch start retried each cycle
		}
		return now + 1, 0 // would start an I-fetch
	}
	if !c.havePending {
		return now + 1, 0 // would draw from the generator
	}
	ins := &c.pendingIns
	if ins.Kind.IsMem() && ins.DepOnLoad && c.lastLoadInFlight() {
		return next, haz + 1 // address dependence on an in-flight load
	}
	switch ins.Kind {
	case trace.KindLoad:
		if c.lqUsed >= c.cfg.Core.LQSize {
			return next, haz + 1 // LQ full until a load retires
		}
		if c.hier.WouldRejectData(c.id, ins.Line) {
			return next, haz + 1 // L1D MSHR full until a fill (external)
		}
		return now + 1, 0
	case trace.KindStore:
		if c.sqUsed >= c.cfg.Core.SQSize {
			return next, haz + 1 // SQ full until a drain completes (external)
		}
		return now + 1, 0
	default:
		if ins.DepOnLoad && c.lastLoadInFlight() && c.iqWaiting >= c.cfg.Core.IQSize {
			return next, haz + 1 // window full of parked dependents
		}
		// Compute: FU pools reset every cycle, so dispatch succeeds next cycle.
		return now + 1, 0
	}
}

func (c *Core) redirectFrontEnd(resolveAt int64) {
	restart := resolveAt + int64(c.cfg.Core.PipelineDepth)
	if restart > c.fetchBlockedUntil {
		c.fetchBlockedUntil = restart
	}
}

// String summarizes the core state for debugging.
func (c *Core) String() string {
	return fmt.Sprintf("core%d{retired=%d rob=%d lq=%d sq=%d}",
		c.id, c.stats.Retired, c.tail-c.head, c.lqUsed, c.sqUsed)
}

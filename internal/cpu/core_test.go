package cpu

import (
	"testing"

	"memsched/internal/cache"
	"memsched/internal/config"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/sched"
	"memsched/internal/trace"
	"memsched/internal/xrand"
)

// scriptGen replays a fixed instruction slice, then repeats the last
// instruction forever.
type scriptGen struct {
	script []trace.Instr
	pos    int
}

func (g *scriptGen) Next(ins *trace.Instr) {
	if g.pos < len(g.script) {
		*ins = g.script[g.pos]
		g.pos++
		return
	}
	*ins = g.script[len(g.script)-1]
}

// rig wires a single core to a real hierarchy and controller.
type rig struct {
	cfg  config.Config
	core *Core
	hier *cache.Hierarchy
	mc   *memctrl.Controller
	now  int64
}

func newRig(t *testing.T, gen trace.Generator, mut func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default(1)
	if mut != nil {
		mut(&cfg)
	}
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New("hf-rf", 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	hier := cache.NewHierarchy(&cfg, mc)
	r := &rig{cfg: cfg, mc: mc, hier: hier}
	r.core = NewCore(0, &r.cfg, gen, hier, xrand.New(3))
	return r
}

func (r *rig) run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		r.core.Tick(r.now)
		r.hier.Tick(r.now)
		r.mc.Tick(r.now)
		r.now++
	}
}

func computeOnly(n int) []trace.Instr {
	s := make([]trace.Instr, n)
	for i := range s {
		s[i] = trace.Instr{Kind: trace.KindInt}
	}
	return s
}

func TestPureComputeReachesIssueWidth(t *testing.T) {
	r := newRig(t, &scriptGen{script: computeOnly(1)}, func(c *config.Config) {
		c.Core.BranchMissPct = 0
	})
	r.run(2000)
	ipc := r.core.Stats().IPC()
	// Single-cycle independent ints should sustain the full width of 4.
	if ipc < 3.8 {
		t.Fatalf("compute-only IPC = %.2f, want ~4", ipc)
	}
}

func TestBranchMispredictsLowerIPC(t *testing.T) {
	mk := func(missPct float64) float64 {
		script := []trace.Instr{
			{Kind: trace.KindBranch},
			{Kind: trace.KindInt},
			{Kind: trace.KindInt},
			{Kind: trace.KindInt},
		}
		r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
			c.Core.BranchMissPct = missPct
		})
		// Loop the 4-instruction pattern.
		g := r.core.gen.(*scriptGen)
		g.script = append(g.script, script...)
		for len(g.script) < 4000 {
			g.script = append(g.script, script...)
		}
		r.run(5000)
		return r.core.Stats().IPC()
	}
	perfect := mk(0)
	noisy := mk(0.2)
	if noisy >= perfect {
		t.Fatalf("mispredicting IPC %.2f not below perfect-predictor IPC %.2f", noisy, perfect)
	}
	if perfect < 3.5 {
		t.Fatalf("perfect-predictor branchy IPC = %.2f, want near 4", perfect)
	}
}

func TestLoadMissStallsROB(t *testing.T) {
	// One cold load followed by compute: the core should retire the compute
	// only after the memory round trip.
	script := append([]trace.Instr{{Kind: trace.KindLoad, Line: 1 << 30}}, computeOnly(10000)...)
	r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
		c.Core.BranchMissPct = 0
	})
	r.run(100)
	// At cycle 100 the load (≈150-cycle round trip) has not returned: only
	// instructions that fit in the ROB behind it can have dispatched, none
	// retired beyond the window.
	if got := r.core.Retired(); got != 0 {
		t.Fatalf("retired %d instructions while head load outstanding", got)
	}
	r.run(10000)
	if r.core.Retired() == 0 {
		t.Fatal("core never recovered after load returned")
	}
	if r.core.Stats().RetireStalls == 0 {
		t.Fatal("no retire stalls recorded despite a memory stall")
	}
}

func TestDependentLoadSerializes(t *testing.T) {
	// Pointer-chase analogue: every other instruction depends on the load.
	// IPC must be far below an independent-stream run.
	dep := []trace.Instr{
		{Kind: trace.KindLoad, Line: 0, DepOnLoad: true}, // pointer chase
		{Kind: trace.KindInt, DepOnLoad: true},
	}
	indep := []trace.Instr{
		{Kind: trace.KindLoad, Line: 0},
		{Kind: trace.KindInt},
	}
	mkScript := func(pattern []trace.Instr, n int) []trace.Instr {
		var s []trace.Instr
		line := uint64(0)
		for len(s) < n {
			p := make([]trace.Instr, len(pattern))
			copy(p, pattern)
			p[0].Line = line * 977 // spread lines: mostly L1 misses
			line++
			s = append(s, p...)
		}
		return s
	}
	run := func(pattern []trace.Instr) float64 {
		r := newRig(t, &scriptGen{script: mkScript(pattern, 60000)}, func(c *config.Config) {
			c.Core.BranchMissPct = 0
		})
		r.run(30000)
		return r.core.Stats().IPC()
	}
	depIPC := run(dep)
	indepIPC := run(indep)
	if depIPC >= indepIPC {
		t.Fatalf("dependent IPC %.3f not below independent IPC %.3f", depIPC, indepIPC)
	}
}

func TestLQBoundsMemoryParallelism(t *testing.T) {
	// All-load stream to distinct lines: outstanding loads must never exceed
	// the LQ size.
	script := make([]trace.Instr, 4000)
	for i := range script {
		script[i] = trace.Instr{Kind: trace.KindLoad, Line: uint64(i * 977)}
	}
	r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
		c.Core.LQSize = 4
	})
	maxPending := 0
	for i := int64(0); i < 3000; i++ {
		r.core.Tick(r.now)
		r.hier.Tick(r.now)
		r.mc.Tick(r.now)
		r.now++
		if p := r.core.lqUsed; p > maxPending {
			maxPending = p
		}
	}
	if maxPending > 4 {
		t.Fatalf("LQ occupancy reached %d with LQSize 4", maxPending)
	}
	if r.core.Stats().DispatchHaz == 0 {
		t.Fatal("no dispatch hazards recorded despite tiny LQ")
	}
}

func TestStoresRetireAndDrain(t *testing.T) {
	script := make([]trace.Instr, 2000)
	for i := range script {
		script[i] = trace.Instr{Kind: trace.KindStore, Line: uint64(i % 8)}
	}
	r := newRig(t, &scriptGen{script: script}, nil)
	r.run(20000)
	st := r.core.Stats()
	if st.Retired == 0 {
		t.Fatal("stores never retired")
	}
	if st.Stores == 0 {
		t.Fatal("no stores counted")
	}
	// The dirty lines eventually reach the cache: the L1 must contain them.
	if !r.hier.L1D(0).Peek(0) {
		t.Fatal("stored line not present in L1D")
	}
	if r.core.sqUsed < 0 {
		t.Fatalf("SQ underflow: %d", r.core.sqUsed)
	}
}

func TestROBOccupancyBounded(t *testing.T) {
	script := []trace.Instr{{Kind: trace.KindLoad, Line: 1 << 25}}
	r := newRig(t, &scriptGen{script: computeOnly(1)}, nil)
	_ = script
	r.run(500)
	occ := r.core.Stats().ROBOccupancy
	if occ.Max() > float64(r.cfg.Core.ROBSize) {
		t.Fatalf("ROB occupancy %v exceeded capacity %d", occ.Max(), r.cfg.Core.ROBSize)
	}
}

func TestRetiredMonotonicAndConserved(t *testing.T) {
	// Mixed workload: retired count must be monotone and every dispatched
	// instruction retires in order.
	p := trace.Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		FPFrac: 0.3, MulFrac: 0.1,
		StreamFrac: 0.5, RandomFrac: 0.3,
		WordsPerLine: 8, RunLenLines: 32,
		FootprintLines: 1 << 18, HotLines: 128, DepProb: 0.4,
	}
	gen, err := trace.NewSynthetic(p, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, gen, nil)
	var last uint64
	for i := 0; i < 20000; i++ {
		r.core.Tick(r.now)
		r.hier.Tick(r.now)
		r.mc.Tick(r.now)
		r.now++
		if got := r.core.Retired(); got < last {
			t.Fatalf("retired count went backwards: %d -> %d", last, got)
		} else {
			last = got
		}
	}
	if last == 0 {
		t.Fatal("mixed workload retired nothing in 20k cycles")
	}
	st := r.core.Stats()
	if st.Loads+st.Stores+st.Branches > st.Retired+uint64(r.cfg.Core.ROBSize) {
		t.Fatalf("dispatched counts inconsistent with retirement: %+v", st)
	}
}

func TestDeterministicExecution(t *testing.T) {
	mk := func() uint64 {
		p := trace.Params{
			LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.12,
			FPFrac: 0.4, MulFrac: 0.15,
			StreamFrac: 0.6, RandomFrac: 0.2,
			WordsPerLine: 8, RunLenLines: 64,
			FootprintLines: 1 << 18, HotLines: 256, DepProb: 0.3,
		}
		gen, _ := trace.NewSynthetic(p, 0, 5)
		r := newRig(t, gen, nil)
		r.run(15000)
		return r.core.Retired()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("identical runs retired %d vs %d instructions", a, b)
	}
}

func TestFPMultiplierBottleneck(t *testing.T) {
	// A pure FP-multiply stream is limited by the single FP multiplier to
	// IPC ~1 despite the 4-wide front end.
	script := make([]trace.Instr, 1)
	script[0] = trace.Instr{Kind: trace.KindFPMul}
	r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
		c.Core.BranchMissPct = 0
	})
	r.run(3000)
	ipc := r.core.Stats().IPC()
	if ipc > 1.1 {
		t.Fatalf("FP-mult IPC = %.2f, want <= ~1 (single FP multiplier)", ipc)
	}
	if ipc < 0.8 {
		t.Fatalf("FP-mult IPC = %.2f, want ~1", ipc)
	}
}

func TestWiderFPMultRemovesBottleneck(t *testing.T) {
	script := []trace.Instr{{Kind: trace.KindFPMul}}
	run := func(units int) float64 {
		r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
			c.Core.BranchMissPct = 0
			c.Core.FPMults = units
		})
		r.run(3000)
		return r.core.Stats().IPC()
	}
	if narrow, wide := run(1), run(4); wide <= narrow*1.5 {
		t.Fatalf("4 FP multipliers (IPC %.2f) should far exceed 1 (IPC %.2f)", wide, narrow)
	}
}

func TestIntALUsNotBottleneckedAtWidth(t *testing.T) {
	// 4 integer ALUs match the 4-wide issue: pure int code is front-end
	// limited, not FU limited.
	r := newRig(t, &scriptGen{script: computeOnly(1)}, func(c *config.Config) {
		c.Core.BranchMissPct = 0
	})
	r.run(3000)
	if ipc := r.core.Stats().IPC(); ipc < 3.8 {
		t.Fatalf("int IPC = %.2f, want ~4 (ALUs match width)", ipc)
	}
}

// newRigB is the benchmark twin of newRig.
func newRigB(b *testing.B, gen trace.Generator) *rig {
	b.Helper()
	cfg := config.Default(1)
	sys := dram.NewSystem(&cfg)
	pol, err := sched.New("hf-rf", 1)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := memctrl.New(&cfg, sys, pol, nil, xrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	hier := cache.NewHierarchy(&cfg, mc)
	r := &rig{cfg: cfg, mc: mc, hier: hier}
	r.core = NewCore(0, &r.cfg, gen, hier, xrand.New(3))
	return r
}

func TestSmallCodeNeverStallsFetch(t *testing.T) {
	r := newRig(t, &scriptGen{script: computeOnly(1)}, func(c *config.Config) {
		c.Core.BranchMissPct = 0
	})
	r.core.ConfigureFetch(64, 0.5, 1<<30) // 4 KiB hot loop
	// Warm the loop (one cold pass over 64 lines), then measure steady state.
	r.run(15000)
	warmRetired := r.core.Retired()
	warmStalls := r.core.Stats().IFetchStalls
	r.run(10000)
	ipc := float64(r.core.Retired()-warmRetired) / 10000
	if ipc < 3.5 {
		t.Fatalf("hot-loop steady-state IPC = %.2f, want ~4", ipc)
	}
	// After the cold pass the loop is L1I resident: no further stalls.
	if got := r.core.Stats().IFetchStalls - warmStalls; got != 0 {
		t.Fatalf("%d fetch stalls in steady state of an L1I-resident loop", got)
	}
}

func TestLargeCodeStallsFetch(t *testing.T) {
	// A branchy stream over a 4x-L1I code footprint must take front-end
	// stalls and lose IPC vs the same stream with a hot loop.
	branchy := []trace.Instr{
		{Kind: trace.KindBranch},
		{Kind: trace.KindInt}, {Kind: trace.KindInt}, {Kind: trace.KindInt},
	}
	script := make([]trace.Instr, 0, 8000)
	for len(script) < 8000 {
		script = append(script, branchy...)
	}
	run := func(codeLines uint64) (float64, uint64) {
		r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
			c.Core.BranchMissPct = 0
		})
		r.core.ConfigureFetch(codeLines, 0.5, 1<<30)
		r.run(20000)
		return r.core.Stats().IPC(), r.core.Stats().IFetchStalls
	}
	hotIPC, _ := run(64)
	bigIPC, bigStalls := run(4096)
	if bigStalls == 0 {
		t.Fatal("4x-L1I code footprint produced no fetch stalls")
	}
	if bigIPC >= hotIPC {
		t.Fatalf("big-code IPC %.2f not below hot-loop IPC %.2f", bigIPC, hotIPC)
	}
}

func TestFetchDisabledByDefault(t *testing.T) {
	r := newRig(t, &scriptGen{script: computeOnly(1)}, nil)
	r.run(1000)
	if r.core.Stats().IFetchStalls != 0 {
		t.Fatal("fetch stalls recorded without ConfigureFetch")
	}
	if r.hier.CoreStats(0).IFetches.Value() != 0 {
		t.Fatal("instruction fetches issued without ConfigureFetch")
	}
}

func TestConfigureFetchZeroDisables(t *testing.T) {
	r := newRig(t, &scriptGen{script: computeOnly(1)}, nil)
	r.core.ConfigureFetch(64, 0.5, 0)
	r.core.ConfigureFetch(0, 0, 0) // disable again
	r.run(1000)
	if r.hier.CoreStats(0).IFetches.Value() != 0 {
		t.Fatal("fetches issued after disabling")
	}
}

func TestLoadDependentBranchRedirect(t *testing.T) {
	// A mispredicted branch whose condition comes from a load resolves only
	// when the load returns, costing a full memory round trip of wrong-path
	// stall. Compare against the same pattern with an always-correct
	// predictor: the mispredicting run must be slower.
	pattern := []trace.Instr{
		{Kind: trace.KindLoad, Line: 0},
		{Kind: trace.KindBranch, DepOnLoad: true},
		{Kind: trace.KindInt}, {Kind: trace.KindInt},
	}
	mk := func(miss float64) float64 {
		script := make([]trace.Instr, 0, 40000)
		line := uint64(0)
		for len(script) < 40000 {
			p := make([]trace.Instr, len(pattern))
			copy(p, pattern)
			p[0].Line = line * 977
			line++
			script = append(script, p...)
		}
		r := newRig(t, &scriptGen{script: script}, func(c *config.Config) {
			c.Core.BranchMissPct = miss
		})
		r.run(25000)
		return r.core.Stats().IPC()
	}
	perfect := mk(0)
	noisy := mk(0.5)
	if noisy >= perfect {
		t.Fatalf("load-dependent mispredicts: IPC %.3f not below %.3f", noisy, perfect)
	}
}

func TestStatsIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Fatal("IPC with zero cycles should be 0")
	}
}

func TestCoreString(t *testing.T) {
	r := newRig(t, &scriptGen{script: computeOnly(1)}, nil)
	r.run(10)
	if s := r.core.String(); s == "" {
		t.Fatal("String() empty")
	}
}

// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// and different components (each core's trace generator, the scheduler's
// tie-breaker, ...) must draw from independent streams. xrand implements
// SplitMix64 for seeding and xoshiro256** for generation; both are public
// domain algorithms with well-studied statistical behavior and no global
// state.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to derive well-distributed seeds from arbitrary user seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or NewStream.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Any seed value, including zero,
// produces a valid, full-period generator state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// A theoretical all-zero expansion would break xoshiro; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStream returns a generator for logical stream `stream` of the given
// base seed. Distinct (seed, stream) pairs yield statistically independent
// sequences, which lets each core, channel, and component own a private
// stream derived from one run seed.
func NewStream(seed, stream uint64) *Rand {
	sm := seed
	a := splitMix64(&sm)
	sm = stream ^ 0xd1b54a32d192ed03
	b := splitMix64(&sm)
	return New(a ^ (b * 0x2545f4914f6cdd1d))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire multiply-shift with rejection: accept unless the low half of the
	// 128-bit product falls below (-n mod n), which would bias small residues.
	threshold := (-n) % n
	for {
		hi, lo := mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with the given
// mean (mean >= 1): the number of trials up to and including the first
// success when each trial succeeds with probability 1/mean. It is used to
// draw run lengths (e.g. sequential-access burst lengths).
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	u := r.Float64()
	// Inverse CDF; u in [0,1). Add tiny epsilon guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	n := int(math.Log(1-u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

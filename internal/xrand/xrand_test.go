package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: generators with same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var all uint64
	for i := 0; i < 16; i++ {
		all |= r.Uint64()
	}
	if all == 0 {
		t.Fatal("zero seed produced all-zero outputs")
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical outputs", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(9, 3)
	b := NewStream(9, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 65; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 8 buckets.
	r := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: count %d deviates >5%% from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if rate < 0.29 || rate > 0.31 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	for _, mean := range []float64{1, 2, 8, 64} {
		sum := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			v := r.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, v)
			}
			sum += v
		}
		got := float64(sum) / draws
		if got < mean*0.95-0.1 || got > mean*1.05+0.1 {
			t.Errorf("Geometric(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := make([]int, n)
		r.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nAlwaysInRange(t *testing.T) {
	r := New(13)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// Package prof wires the standard runtime/pprof profilers into the
// command-line tools, so controller hot paths can be profiled on real
// experiment runs (not only microbenchmarks) with the usual
// -cpuprofile/-memprofile flags.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two flag values; either may be
// empty. It returns a stop function that ends the CPU profile and writes the
// heap profile, to be called once when the command's work is done. Errors
// opening or writing profile files are reported, never fatal to the run.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Export writes the snapshot's full file set into dir (created if needed):
//
//	cores.csv       per-core epoch series
//	channels.csv    per-channel epoch series
//	controller.csv  controller epoch series
//	telemetry.json  the complete Snapshot
//	trace.json      Chrome trace-event file (load at ui.perfetto.dev)
//
// Every writer is deterministic — fixed field order, strconv float
// formatting — so fixed-seed runs export byte-identical files; the golden
// test pins that.
func (s *Snapshot) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"cores.csv", s.WriteCoresCSV},
		{"channels.csv", s.WriteChannelsCSV},
		{"controller.csv", s.WriteControllerCSV},
		{"telemetry.json", s.WriteJSON},
		{"trace.json", s.WriteTraceEvents},
	}
	for _, w := range writers {
		if err := writeFile(filepath.Join(dir, w.name), w.write); err != nil {
			return fmt.Errorf("telemetry: export %s: %w", w.name, err)
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ftoa formats floats the way every CSV column uses: shortest representation
// that round-trips, so output is deterministic and diff-friendly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCoresCSV writes one row per (epoch, core).
func (s *Snapshot) WriteCoresCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"epoch,end_cycle,core,retired,ipc,pending_reads,rob_occ,l1d_mshr,priority,mem_reads,mem_writes\n"); err != nil {
		return err
	}
	for _, ep := range s.Epochs {
		for i, c := range ep.Cores {
			_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%s,%d,%d,%d,%s,%d,%d\n",
				ep.Index, ep.EndCycle, i, c.Retired, ftoa(c.IPC), c.PendingReads,
				c.ROBOccupancy, c.MSHROccupancy, ftoa(c.Priority), c.MemReads, c.MemWrites)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteChannelsCSV writes one row per (epoch, channel).
func (s *Snapshot) WriteChannelsCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"epoch,end_cycle,channel,hits,closed,conflicts,row_hit_rate,bus_busy_cycles,bus_util,bandwidth_gbs\n"); err != nil {
		return err
	}
	for _, ep := range s.Epochs {
		for i, c := range ep.Channels {
			_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%s,%d,%s,%s\n",
				ep.Index, ep.EndCycle, i, c.Hits, c.Closed, c.Conflicts,
				ftoa(c.RowHitRate), c.BusBusyCycles, ftoa(c.BusUtilization), ftoa(c.BandwidthGBs))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteControllerCSV writes one row per epoch.
func (s *Snapshot) WriteControllerCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"epoch,end_cycle,read_q,write_q,l2_mshr,draining,drain_entries\n"); err != nil {
		return err
	}
	for _, ep := range s.Epochs {
		draining := 0
		if ep.Ctrl.Draining {
			draining = 1
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d\n",
			ep.Index, ep.EndCycle, ep.Ctrl.ReadQueueLen, ep.Ctrl.WriteQueueLen,
			ep.Ctrl.L2MSHRLen, draining, ep.Ctrl.DrainEntries)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the complete Snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// traceEvent is one Chrome trace-event record. Field order is fixed and args
// values are emitted through encoding/json (sorted map keys), so the trace
// file is deterministic. Timestamps are in simulated cycles, exported through
// the format's microsecond field — absolute magnitudes in the UI read as
// "µs", but all durations and alignments are exact.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace-event process IDs: one synthetic process per subsystem keeps the
// Perfetto track tree tidy (cores / controller / one process per channel).
const (
	tracePidCores = 1
	tracePidCtrl  = 2
	tracePidChan0 = 10 // channel i maps to pid tracePidChan0+i
)

// WriteTraceEvents writes the snapshot as a Chrome trace-event file:
// per-core counter tracks (IPC, pending reads, priority, ROB), controller
// counter tracks (queue depths), write-drain phases as duration slices, and
// the DRAM command timeline as one slice per (channel, rank, bank) track.
func (s *Snapshot) WriteTraceEvents(w io.Writer) error {
	events := make([]traceEvent, 0,
		len(s.Epochs)*(s.Cores+2)+len(s.Commands)+len(s.DrainPhases)+8)
	meta := func(pid, tid int, kind, name string) {
		events = append(events, traceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(tracePidCores, 0, "process_name", "cores")
	meta(tracePidCtrl, 0, "process_name", "controller")
	for ch := 0; ch < s.Channels; ch++ {
		pid := tracePidChan0 + ch
		meta(pid, 0, "process_name", fmt.Sprintf("channel%d", ch))
		for r := 0; r < s.RanksPerChan; r++ {
			for b := 0; b < s.BanksPerRank; b++ {
				meta(pid, r*s.BanksPerRank+b, "thread_name", fmt.Sprintf("rank%d bank%d", r, b))
			}
		}
	}
	for _, ep := range s.Epochs {
		ts := ep.EndCycle
		for i, c := range ep.Cores {
			events = append(events,
				traceEvent{Name: fmt.Sprintf("core%d ipc", i), Ph: "C", Ts: ts,
					Pid: tracePidCores, Tid: i, Args: map[string]any{"ipc": c.IPC}},
				traceEvent{Name: fmt.Sprintf("core%d pending", i), Ph: "C", Ts: ts,
					Pid: tracePidCores, Tid: i, Args: map[string]any{"reads": c.PendingReads}},
				traceEvent{Name: fmt.Sprintf("core%d priority", i), Ph: "C", Ts: ts,
					Pid: tracePidCores, Tid: i, Args: map[string]any{"score": c.Priority}},
				traceEvent{Name: fmt.Sprintf("core%d rob", i), Ph: "C", Ts: ts,
					Pid: tracePidCores, Tid: i, Args: map[string]any{"occ": c.ROBOccupancy}},
			)
		}
		events = append(events, traceEvent{Name: "queues", Ph: "C", Ts: ts,
			Pid: tracePidCtrl, Tid: 0,
			Args: map[string]any{"read": ep.Ctrl.ReadQueueLen, "write": ep.Ctrl.WriteQueueLen}})
	}
	for _, p := range s.DrainPhases {
		events = append(events, traceEvent{Name: "write-drain", Ph: "X",
			Ts: p.Start, Dur: p.End - p.Start, Pid: tracePidCtrl, Tid: 0})
	}
	for _, cmd := range s.Commands {
		events = append(events, traceEvent{
			Name: cmd.Class, Ph: "X", Ts: cmd.Start, Dur: cmd.DataDone - cmd.Start,
			Pid: tracePidChan0 + cmd.Channel, Tid: cmd.Rank*s.BanksPerRank + cmd.Bank,
			Args: map[string]any{"row": cmd.Row, "ap": cmd.AutoPrecharge,
				"data_start": cmd.DataStart},
		})
	}
	blob, err := json.MarshalIndent(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ns"}, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

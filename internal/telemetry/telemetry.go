// Package telemetry is the opt-in epoch-sampled observability layer of the
// simulator. A Collector attached to a run samples per-core, per-channel and
// controller-level time series at fixed cycle epochs — IPC, pending reads,
// ROB and MSHR occupancy, bandwidth, row-hit rate, write-drain phases, and
// the live ME/PendingRead priorities the controller computes — plus an
// optional per-bank DRAM command timeline captured through the same
// dram.Channel observer hook the timing checker uses. Snapshots export as
// CSV, JSON and Chrome trace-event files (see export.go).
//
// Design constraints, in order:
//
//   - Inert when disabled: a run without a Collector must be byte-identical
//     (results and allocations) to a build without this package. The sim
//     package only touches telemetry behind nil checks.
//   - Exact under cycle skipping: every sampled quantity is either an integer
//     counter or derived from integer counters at epoch boundaries, and
//     NextEventAt clamps next-event time advance to those boundaries (the
//     same contract as sim.OnlineEstimator), so a skipping run and a naive
//     run produce identical series — DiffSnapshots enforces ints exact,
//     floats within 1e-9.
//   - Allocation-conscious when enabled: sampling appends to grown-once
//     slices and per-epoch records; nothing allocates per cycle.
package telemetry

import (
	"fmt"
	"reflect"

	"memsched/internal/addr"
	"memsched/internal/cache"
	"memsched/internal/config"
	"memsched/internal/cpu"
	"memsched/internal/dram"
	"memsched/internal/memctrl"
	"memsched/internal/stats"
)

// DefaultEpoch is the sampling window in cycles when Options.Epoch is zero:
// fine enough to resolve write-drain bursts and priority flips, coarse enough
// that a full-length run stays in the low thousands of records.
const DefaultEpoch int64 = 10_000

// DefaultMaxCommands bounds the DRAM command timeline when
// Options.MaxCommands is zero; past it commands are counted, not stored.
const DefaultMaxCommands = 100_000

// Options configures telemetry for one run. A nil *Options on sim.Options /
// sim.RunSpec disables telemetry entirely.
type Options struct {
	// Epoch is the sampling window in cycles; 0 selects DefaultEpoch.
	Epoch int64
	// Dir, when non-empty, is the directory the Snapshot is exported to
	// after a successful run (cores.csv, channels.csv, controller.csv,
	// telemetry.json, trace.json).
	Dir string
	// Commands enables the per-bank DRAM command timeline. It installs the
	// dram.Channel observer, so it cannot be combined with another observer
	// (e.g. an attached dramcheck.Checker) on the same channels.
	Commands bool
	// MaxCommands bounds the stored command timeline; 0 selects
	// DefaultMaxCommands. Overflow is counted in Snapshot.CommandsDropped.
	MaxCommands int
	// Sink, when non-nil, receives the completed Snapshot at the end of the
	// measurement phase — the in-memory escape hatch for callers that go
	// through sim.Run and never see the System.
	Sink func(*Snapshot)
}

// CoreSample is one core's slice of an epoch.
type CoreSample struct {
	// Retired, MemReads and MemWrites are deltas over the epoch.
	Retired   uint64
	MemReads  uint64
	MemWrites uint64
	// IPC is Retired over the epoch's cycle count.
	IPC float64
	// PendingReads, ROBOccupancy and MSHROccupancy are instantaneous values
	// at the epoch boundary (pending reads is the controller-side counter
	// the priority tables are indexed with; MSHR occupancy is the core's
	// L1D miss file).
	PendingReads  int
	ROBOccupancy  int
	MSHROccupancy int
	// Priority is the live table score ME[i]/PendingRead[i] the controller
	// would use for this core right now (0 when the policy has no table).
	Priority float64
}

// ChannelSample is one channel's slice of an epoch. The counts are deltas
// over the epoch; the rates are derived from them.
type ChannelSample struct {
	Hits      uint64
	Closed    uint64
	Conflicts uint64
	// RowHitRate is Hits over all accesses of the epoch (0 when idle).
	RowHitRate float64
	// BusBusyCycles is the data-bus occupancy gained this epoch;
	// BusUtilization divides it by the epoch's cycle count.
	BusBusyCycles  int64
	BusUtilization float64
	// BandwidthGBs is the line-sized traffic of the epoch over its wall time.
	BandwidthGBs float64
}

// CtrlSample is the shared controller's slice of an epoch; queue depths and
// drain state are instantaneous at the boundary, DrainEntries cumulative.
type CtrlSample struct {
	ReadQueueLen  int
	WriteQueueLen int
	L2MSHRLen     int
	Draining      bool
	DrainEntries  uint64
}

// ClassLatSample is one serving class's read-latency distribution over the
// epoch: the delta of the class's cumulative log-spaced histogram between
// the two boundary cycles, so Reads counts exactly the completions that fell
// inside the window and the percentiles describe those completions alone.
// All-integer, hence exact under cycle skipping and parallel execution.
type ClassLatSample struct {
	Reads uint64
	P50   int64
	P95   int64
	P99   int64
	P999  int64
}

// Epoch is one sampling window. EndCycle is relative to the measurement
// start; Cycles is the window length (the final window may be shorter).
type Epoch struct {
	Index    int
	EndCycle int64
	Cycles   int64
	Cores    []CoreSample
	Channels []ChannelSample
	Ctrl     CtrlSample
	// ClassLat is indexed by serving class (0 = BE, 1 = LC, matching
	// workload.ServiceClass); with no classes assigned every completion lands
	// in the BE entry.
	ClassLat [2]ClassLatSample
}

// Command is one DRAM transaction on the per-bank timeline. Cycle fields are
// relative to the measurement start; Class is the row-buffer outcome string
// ("hit", "closed", "conflict").
type Command struct {
	Channel       int
	Rank          int
	Bank          int
	Row           int64
	Class         string
	Start         int64
	DataStart     int64
	DataDone      int64
	AutoPrecharge bool
}

// Phase is one closed write-drain interval, [Start, End) relative to the
// measurement start.
type Phase struct {
	Start int64
	End   int64
}

// Snapshot is the complete telemetry record of one measurement window.
type Snapshot struct {
	// EpochLen is the configured window; StartCycle the absolute cycle the
	// measurement began at; TotalCycles the measured length.
	EpochLen    int64
	StartCycle  int64
	TotalCycles int64
	// Geometry, so exports can label series without the config.
	Cores        int
	Channels     int
	RanksPerChan int
	BanksPerRank int

	Epochs      []Epoch
	DrainPhases []Phase
	// Commands is the DRAM command timeline (empty unless Options.Commands);
	// CommandsDropped counts overflow past MaxCommands.
	Commands        []Command
	CommandsDropped uint64
}

// Collector samples a running system. It is built by sim.New when telemetry
// is requested, lies dormant through warmup, and is driven by the run loop:
// Start at the measurement boundary, Tick every executed cycle, NextEventAt
// from the next-event scan, Finish after the last core commits.
type Collector struct {
	opts  Options
	cfg   *config.Config
	cores []*cpu.Core
	hier  *cache.Hierarchy
	mc    *memctrl.Controller
	dsys  *dram.System

	started bool
	t0      int64
	next    int64 // absolute cycle of the next boundary sample
	last    int64 // absolute cycle of the previous sample (t0-1 initially)

	lastRetired []uint64
	lastReads   []uint64
	lastWrites  []uint64
	lastChan    []dram.Stats
	// lastClassLat holds the per-class cumulative latency histograms at the
	// previous boundary; the epoch sample is the integer delta against them.
	lastClassLat [2]stats.LatencyHist

	// openDrain is the relative start of the drain phase in progress, -1 when
	// none.
	openDrain int64

	snap Snapshot
}

// NewCollector builds a collector over an assembled system's components.
// It observes nothing until Start.
func NewCollector(opts Options, cfg *config.Config, cores []*cpu.Core,
	hier *cache.Hierarchy, mc *memctrl.Controller, dsys *dram.System) *Collector {
	if opts.Epoch <= 0 {
		opts.Epoch = DefaultEpoch
	}
	if opts.MaxCommands <= 0 {
		opts.MaxCommands = DefaultMaxCommands
	}
	n := len(cores)
	return &Collector{
		opts:        opts,
		cfg:         cfg,
		cores:       cores,
		hier:        hier,
		mc:          mc,
		dsys:        dsys,
		lastRetired: make([]uint64, n),
		lastReads:   make([]uint64, n),
		lastWrites:  make([]uint64, n),
		lastChan:    make([]dram.Stats, len(dsys.Channels)),
		openDrain:   -1,
		snap: Snapshot{
			EpochLen:     opts.Epoch,
			Cores:        n,
			Channels:     len(dsys.Channels),
			RanksPerChan: cfg.Memory.RanksPerChan,
			BanksPerRank: cfg.Memory.BanksPerRank,
		},
	}
}

// Epoch returns the sampling window in cycles.
func (c *Collector) Epoch() int64 { return c.opts.Epoch }

// Snapshot returns the collected record; complete only after Finish.
func (c *Collector) Snapshot() *Snapshot { return &c.snap }

// Start arms the collector at the measurement boundary: counter baselines are
// taken (warmup resets have already run), the first epoch ends after Epoch
// executed cycles, and the drain and command observers are installed. now is
// the first measured cycle.
func (c *Collector) Start(now int64) {
	c.started = true
	c.t0 = now
	c.snap.StartCycle = now
	// The run loop ticks cycles now..now+Epoch-1 and then samples inside the
	// boundary tick, so the boundary is Epoch-1 past now and each window spans
	// exactly Epoch executed cycles (next - last).
	c.last = now - 1
	c.next = now + c.opts.Epoch - 1
	for i, core := range c.cores {
		c.lastRetired[i] = core.Retired()
		cs := c.mc.CoreStatsOf(i)
		c.lastReads[i] = cs.ReadsCompleted
		c.lastWrites[i] = cs.WritesRetired
	}
	for i, ch := range c.dsys.Channels {
		c.lastChan[i] = ch.Stats()
	}
	c.lastClassLat = c.classCumulative()
	if c.mc.Draining() {
		c.openDrain = 0
	}
	c.mc.SetDrainObserver(c.drainChanged)
	if c.opts.Commands {
		for i, ch := range c.dsys.Channels {
			i := i
			ch.SetObserver(func(coord addr.Coord, res dram.Result, autoPrecharge bool) {
				c.observeCommand(i, coord, res, autoPrecharge)
			})
		}
	}
}

// NextEventAt implements the next-event time-advance contract: the collector
// acts only at epoch boundaries, so a quiescent skip must not jump past one —
// otherwise the boundary sample would be taken late and the skipping and
// naive runs would bin deltas into different epochs.
func (c *Collector) NextEventAt(int64) int64 {
	if !c.started {
		return cpu.FarFuture
	}
	return c.next
}

// Tick advances the collector; the run loop calls it once per executed cycle,
// after every component has ticked, so boundary samples see the cycle's final
// state.
func (c *Collector) Tick(now int64) {
	if !c.started || now < c.next {
		return
	}
	c.sample(now)
	c.next += c.opts.Epoch
}

// Finish closes the record at end (the last executed cycle): a final partial
// epoch is sampled if any cycles are pending, the open drain phase (if any)
// is closed, observers are uninstalled, and the Sink fires.
func (c *Collector) Finish(end int64) {
	if !c.started {
		return
	}
	if end > c.last {
		c.sample(end)
	}
	c.snap.TotalCycles = end - c.t0 + 1
	if c.openDrain >= 0 {
		c.snap.DrainPhases = append(c.snap.DrainPhases, Phase{Start: c.openDrain, End: c.snap.TotalCycles})
		c.openDrain = -1
	}
	c.mc.SetDrainObserver(nil)
	if c.opts.Commands {
		for _, ch := range c.dsys.Channels {
			ch.SetObserver(nil)
		}
	}
	c.started = false
	if c.opts.Sink != nil {
		c.opts.Sink(&c.snap)
	}
}

// sample appends one epoch record covering (last, now].
func (c *Collector) sample(now int64) {
	dCycles := now - c.last
	ep := Epoch{
		Index:    len(c.snap.Epochs),
		EndCycle: now - c.t0 + 1,
		Cycles:   dCycles,
		Cores:    make([]CoreSample, len(c.cores)),
		Channels: make([]ChannelSample, len(c.dsys.Channels)),
	}
	table := c.mc.Table()
	for i, core := range c.cores {
		retired := core.Retired()
		cs := c.mc.CoreStatsOf(i)
		s := &ep.Cores[i]
		s.Retired = retired - c.lastRetired[i]
		s.MemReads = cs.ReadsCompleted - c.lastReads[i]
		s.MemWrites = cs.WritesRetired - c.lastWrites[i]
		c.lastRetired[i] = retired
		c.lastReads[i] = cs.ReadsCompleted
		c.lastWrites[i] = cs.WritesRetired
		s.IPC = float64(s.Retired) / float64(dCycles)
		s.PendingReads = c.mc.PendingReadsOf(i)
		s.ROBOccupancy = core.ROBOccupancy()
		s.MSHROccupancy = c.hier.L1DMSHRLen(i)
		if table != nil {
			s.Priority = table.Score(i, s.PendingReads)
		}
	}
	ns := float64(dCycles) / c.cfg.CyclesPerNs()
	lineBytes := float64(c.cfg.L2.LineBytes)
	for i, ch := range c.dsys.Channels {
		st := ch.Stats()
		prev := c.lastChan[i]
		c.lastChan[i] = st
		s := &ep.Channels[i]
		s.Hits = st.Hits - prev.Hits
		s.Closed = st.Closed - prev.Closed
		s.Conflicts = st.Conflicts - prev.Conflicts
		s.BusBusyCycles = st.BusBusyCycles - prev.BusBusyCycles
		if acc := s.Hits + s.Closed + s.Conflicts; acc > 0 {
			s.RowHitRate = float64(s.Hits) / float64(acc)
			s.BandwidthGBs = float64(acc) * lineBytes / ns
		}
		s.BusUtilization = float64(s.BusBusyCycles) / float64(dCycles)
	}
	ep.Ctrl = CtrlSample{
		ReadQueueLen:  c.mc.ReadQueueLen(),
		WriteQueueLen: c.mc.WriteQueueLen(),
		L2MSHRLen:     c.hier.L2MSHRLen(),
		Draining:      c.mc.Draining(),
		DrainEntries:  c.mc.DrainEntries(),
	}
	cum := c.classCumulative()
	for cls := range cum {
		delta := cum[cls]
		delta.Sub(&c.lastClassLat[cls])
		ep.ClassLat[cls] = ClassLatSample{
			Reads: delta.N(),
			P50:   delta.Quantile(0.50),
			P95:   delta.Quantile(0.95),
			P99:   delta.Quantile(0.99),
			P999:  delta.Quantile(0.999),
		}
	}
	c.lastClassLat = cum
	c.snap.Epochs = append(c.snap.Epochs, ep)
	c.last = now
}

// classCumulative merges the controller's live per-core latency histograms
// by serving class (0 = BE, 1 = LC). Histograms are fixed-size structs, so
// the merge allocates nothing.
func (c *Collector) classCumulative() [2]stats.LatencyHist {
	var cum [2]stats.LatencyHist
	for i := range c.cores {
		cls := 0
		if c.mc.LatencyCritical(i) {
			cls = 1
		}
		cum[cls].Merge(&c.mc.CoreStatsOf(i).LatHist)
	}
	return cum
}

// drainChanged is the controller's drain observer: transitions are recorded
// as closed [enter, leave) phases relative to the measurement start.
func (c *Collector) drainChanged(now int64, draining bool) {
	if draining {
		c.openDrain = now - c.t0
		return
	}
	if c.openDrain >= 0 {
		c.snap.DrainPhases = append(c.snap.DrainPhases, Phase{Start: c.openDrain, End: now - c.t0})
		c.openDrain = -1
	}
}

// observeCommand is the per-channel DRAM observer.
func (c *Collector) observeCommand(channel int, coord addr.Coord, res dram.Result, autoPrecharge bool) {
	if len(c.snap.Commands) >= c.opts.MaxCommands {
		c.snap.CommandsDropped++
		return
	}
	c.snap.Commands = append(c.snap.Commands, Command{
		Channel:       channel,
		Rank:          coord.Rank,
		Bank:          coord.Bank,
		Row:           coord.Row,
		Class:         res.Class.String(),
		Start:         res.Start - c.t0,
		DataStart:     res.DataStart - c.t0,
		DataDone:      res.DataDone - c.t0,
		AutoPrecharge: autoPrecharge,
	})
}

// DiffSnapshots compares two Snapshots with the same contract DiffResults
// applies to Results: integer, string and boolean fields identical, floats
// within floatTol relative. It backs the epoch-alignment regression test
// (skipping vs naive run loops must produce the same series).
func DiffSnapshots(got, want *Snapshot, floatTol float64) []string {
	var diffs []string
	diffSnapValues("", reflect.ValueOf(*got), reflect.ValueOf(*want), floatTol, &diffs)
	return diffs
}

func diffSnapValues(path string, got, want reflect.Value, floatTol float64, diffs *[]string) {
	switch got.Kind() {
	case reflect.Struct:
		for i := 0; i < got.NumField(); i++ {
			f := got.Type().Field(i)
			diffSnapValues(path+"."+f.Name, got.Field(i), want.Field(i), floatTol, diffs)
		}
	case reflect.Slice, reflect.Array:
		if got.Len() != want.Len() {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d != %d", path, got.Len(), want.Len()))
			return
		}
		for i := 0; i < got.Len(); i++ {
			diffSnapValues(fmt.Sprintf("%s[%d]", path, i), got.Index(i), want.Index(i), floatTol, diffs)
		}
	case reflect.Float32, reflect.Float64:
		g, w := got.Float(), want.Float()
		scale := 1.0
		for _, v := range []float64{g, w, -g, -w} {
			if v > scale {
				scale = v
			}
		}
		if d := g - w; d > floatTol*scale || d < -floatTol*scale {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v (rel tol %g)", path, g, w, floatTol))
		}
	default:
		if !reflect.DeepEqual(got.Interface(), want.Interface()) {
			*diffs = append(*diffs, fmt.Sprintf("%s: %v != %v", path, got.Interface(), want.Interface()))
		}
	}
}

package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"memsched/internal/telemetry"
)

// -update-golden regenerates the export fixtures under testdata/golden.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden telemetry exports")

// goldenFiles is the full export file set.
var goldenFiles = []string{"cores.csv", "channels.csv", "controller.csv", "telemetry.json", "trace.json"}

// TestGoldenExports pins the exports of one fixed-seed 4-core run byte for
// byte — the same contract internal/sim/golden_test.go applies to Results.
// Byte identity (not just value identity) is the point: the CSV, JSON and
// trace-event writers must stay deterministic so telemetry diffs between
// branches are meaningful.
func TestGoldenExports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	opts := telemetry.Options{
		Epoch:       1_000,
		Commands:    true,
		MaxCommands: 300,
		Dir:         filepath.Join(t.TempDir(), "export"),
	}
	runWith(t, "4MEM-1", "me-lreq", 5_000, opts, false)

	goldenDir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range goldenFiles {
		got, err := os.ReadFile(filepath.Join(opts.Dir, name))
		if err != nil {
			t.Fatalf("export missing: %v", err)
		}
		path := filepath.Join(goldenDir, name)
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fixture (run with -update-golden): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged from fixture (%d bytes vs %d)", name, len(got), len(want))
		}
	}
}

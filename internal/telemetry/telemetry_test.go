package telemetry_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/telemetry"
	"memsched/internal/workload"
)

// runWith runs a fixed-seed simulation with a telemetry collector attached
// and returns the snapshot alongside the Result.
func runWith(t *testing.T, mixName, policy string, instr uint64, opts telemetry.Options, noSkip bool) (*telemetry.Snapshot, sim.Result) {
	t.Helper()
	mix, err := workload.MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	var snap *telemetry.Snapshot
	prev := opts.Sink
	opts.Sink = func(s *telemetry.Snapshot) {
		snap = s
		if prev != nil {
			prev(s)
		}
	}
	res, err := sim.Run(context.Background(), sim.RunSpec{
		Mix: mix, Policy: policy, Instr: instr, Seed: sim.EvalSeed,
		NoCycleSkip: noSkip, Telemetry: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("telemetry sink never fired")
	}
	return snap, res
}

// TestCollectorSeries checks the structural invariants of a sampled run:
// epoch windows tile the measurement exactly, deltas reconcile against the
// Result, and the command timeline is time-ordered.
func TestCollectorSeries(t *testing.T) {
	const instr, epoch = 4_000, 1_000
	snap, res := runWith(t, "4MEM-1", "me-lreq", instr,
		telemetry.Options{Epoch: epoch, Commands: true}, false)

	if snap.EpochLen != epoch || snap.Cores != 4 {
		t.Fatalf("snapshot geometry: epoch %d cores %d", snap.EpochLen, snap.Cores)
	}
	if snap.TotalCycles != res.TotalCycles {
		t.Errorf("TotalCycles %d != Result %d", snap.TotalCycles, res.TotalCycles)
	}
	if len(snap.Epochs) == 0 {
		t.Fatal("no epochs sampled")
	}
	var cycles int64
	for i, ep := range snap.Epochs {
		if ep.Index != i {
			t.Errorf("epoch %d has index %d", i, ep.Index)
		}
		if ep.Cycles <= 0 || ep.Cycles > epoch {
			t.Errorf("epoch %d spans %d cycles", i, ep.Cycles)
		}
		if i < len(snap.Epochs)-1 && ep.Cycles != epoch {
			t.Errorf("non-final epoch %d spans %d cycles, want %d", i, ep.Cycles, epoch)
		}
		cycles += ep.Cycles
		if ep.EndCycle != cycles {
			t.Errorf("epoch %d ends at %d, want %d", i, ep.EndCycle, cycles)
		}
		if len(ep.Cores) != snap.Cores || len(ep.Channels) != snap.Channels {
			t.Fatalf("epoch %d: %d cores, %d channels", i, len(ep.Cores), len(ep.Channels))
		}
	}
	if cycles != snap.TotalCycles {
		t.Errorf("epochs tile %d cycles, want %d", cycles, snap.TotalCycles)
	}
	// Every core keeps running until the last one commits, so its summed
	// retired deltas are at least its slice.
	for core := 0; core < snap.Cores; core++ {
		var retired uint64
		for _, ep := range snap.Epochs {
			retired += ep.Cores[core].Retired
		}
		if retired < instr {
			t.Errorf("core %d: %d retired sampled, want >= %d", core, retired, instr)
		}
	}
	if len(snap.Commands) == 0 {
		t.Error("command timeline empty with Commands enabled")
	}
	for i := 1; i < len(snap.Commands); i++ {
		if snap.Commands[i].Start < snap.Commands[i-1].Start {
			t.Fatalf("command %d starts at %d, before predecessor at %d",
				i, snap.Commands[i].Start, snap.Commands[i-1].Start)
		}
	}
	for i, p := range snap.DrainPhases {
		if p.End <= p.Start {
			t.Errorf("drain phase %d: [%d, %d)", i, p.Start, p.End)
		}
		if i > 0 && p.Start < snap.DrainPhases[i-1].End {
			t.Errorf("drain phase %d overlaps predecessor", i)
		}
	}
}

// TestZeroPerturbation proves telemetry is read-only: enabling it must not
// change the Result (beyond the exempt SkippedCycles — epoch clamping only
// shortens skips, never changes the simulated machine).
func TestZeroPerturbation(t *testing.T) {
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Mix: mix, Policy: "me-lreq", Instr: 4_000, Seed: sim.EvalSeed}
	plain, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Telemetry = &telemetry.Options{Epoch: 700, Commands: true}
	observed, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sim.DiffResults(observed, plain, 1e-9) {
		t.Error(d)
	}
	// Classes arm: serving-class tagging plus per-epoch class latency sampling
	// together must still reproduce the plain run (class tags are labels, and
	// sampling only reads the controller's cumulative histograms).
	spec.Classes = []workload.ServiceClass{workload.LC, workload.BE, workload.BE, workload.BE}
	classed, err := sim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the label-carrying fields before diffing against the plain run.
	for i := range classed.Cores {
		classed.Cores[i].Service = workload.BE
	}
	classed.ClassLat = [2]sim.ClassLatency{}
	plain.ClassLat = [2]sim.ClassLatency{}
	for _, d := range sim.DiffResults(classed, plain, 1e-9) {
		t.Errorf("classed+telemetry vs plain: %s", d)
	}
}

// TestClassLatEpochs checks the per-epoch class latency samples: deltas are
// epoch-local (not cumulative), cover at least the run's frozen per-class read
// counts (cores keep completing reads past their commit targets, so epochs may
// observe more than the frozen Result), keep their percentiles ordered, and
// the BE slot stays empty when no core is tagged best-effort.
func TestClassLatEpochs(t *testing.T) {
	mix, err := workload.MixByName("4MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	classes := []workload.ServiceClass{workload.LC, workload.LC, workload.LC, workload.LC}
	res, snap := runClassedWith(t, mix, classes, telemetry.Options{Epoch: 600})
	if len(snap.Epochs) < 2 {
		t.Fatalf("only %d epochs sampled; delta property is vacuous", len(snap.Epochs))
	}
	var lcReads, beReads uint64
	for i, ep := range snap.Epochs {
		lc := ep.ClassLat[workload.LC]
		lcReads += lc.Reads
		beReads += ep.ClassLat[workload.BE].Reads
		if ep.ClassLat[workload.BE].Reads != 0 {
			t.Errorf("epoch %d: BE sample has %d reads with no BE cores", i, ep.ClassLat[workload.BE].Reads)
		}
		if lc.Reads > 0 && !(lc.P50 <= lc.P95 && lc.P95 <= lc.P99 && lc.P99 <= lc.P999) {
			t.Errorf("epoch %d: LC percentiles unordered: p50=%d p95=%d p99=%d p99.9=%d",
				i, lc.P50, lc.P95, lc.P99, lc.P999)
		}
	}
	// Each epoch is a delta, so the sum over epochs is the cumulative stream;
	// it must cover the frozen measurement window (equality only when no core
	// runs past its commit target, which memory-bound mixes never satisfy).
	if want := res.ClassLat[workload.LC].Reads; lcReads < want {
		t.Errorf("epoch LC read deltas sum to %d, below frozen run total %d", lcReads, want)
	}
	if beReads != 0 {
		t.Errorf("epoch BE read deltas sum to %d, want 0", beReads)
	}
}

func runClassedWith(t *testing.T, mix workload.Mix, classes []workload.ServiceClass, opts telemetry.Options) (sim.Result, *telemetry.Snapshot) {
	t.Helper()
	var snap *telemetry.Snapshot
	opts.Sink = func(s *telemetry.Snapshot) { snap = s }
	res, err := sim.Run(context.Background(), sim.RunSpec{
		Mix: mix, Policy: "me-lreq", Instr: 4_000, Seed: sim.EvalSeed,
		Classes: classes, Telemetry: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("telemetry sink never fired")
	}
	return res, snap
}

// TestExportThroughRunSpec checks the sim.Run export path: Dir set on the
// options produces the full file set.
func TestExportThroughRunSpec(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "telem")
	runWith(t, "2MEM-1", "hf-rf", 2_000,
		telemetry.Options{Epoch: 500, Commands: true, Dir: dir}, false)
	for _, name := range []string{"cores.csv", "channels.csv", "controller.csv", "telemetry.json", "trace.json"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("export missing %s: %v", name, err)
			continue
		}
		if len(blob) == 0 {
			t.Errorf("export %s is empty", name)
		}
	}
}

// TestMaxCommandsBounds checks timeline overflow accounting.
func TestMaxCommandsBounds(t *testing.T) {
	snap, _ := runWith(t, "4MEM-1", "fcfs", 3_000,
		telemetry.Options{Epoch: 1_000, Commands: true, MaxCommands: 10}, false)
	if len(snap.Commands) != 10 {
		t.Errorf("stored %d commands, want capped at 10", len(snap.Commands))
	}
	if snap.CommandsDropped == 0 {
		t.Error("no dropped commands counted past the cap")
	}
}

// TestDiffSnapshots checks the comparator both ways.
func TestDiffSnapshots(t *testing.T) {
	snap, _ := runWith(t, "2MEM-1", "fcfs", 1_500, telemetry.Options{Epoch: 400}, false)
	if diffs := telemetry.DiffSnapshots(snap, snap, 0); len(diffs) != 0 {
		t.Fatalf("self-compare diverged: %v", diffs)
	}
	other := *snap
	other.Epochs = append([]telemetry.Epoch(nil), snap.Epochs...)
	other.Epochs[0].Ctrl.ReadQueueLen++
	if diffs := telemetry.DiffSnapshots(snap, &other, 0); len(diffs) == 0 {
		t.Error("comparator missed an integer divergence")
	}
}

// Package lab orchestrates paper-scale experiment sweeps: it profiles
// applications once, computes single-core reference IPCs once, runs every
// (workload, policy) pair at most once, and parallelizes independent runs
// over a bounded worker pool. cmd/experiments is a thin presentation layer
// over this package.
package lab

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"memsched/internal/metrics"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// OnlinePolicy is the pseudo-policy name that runs me-lreq with the online
// ME estimator (started from neutral priorities) instead of profiled tables.
const OnlinePolicy = "me-lreq-online"

// Options configures a Lab.
type Options struct {
	// Instr is the evaluation slice length per core.
	Instr uint64
	// ProfInstr is the profiling slice length (ME measurement).
	ProfInstr uint64
	// Seed is the evaluation seed; profiling always uses sim.ProfileSeed.
	Seed uint64
	// Workers bounds the parallel runner (0 = GOMAXPROCS).
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// RunOut is one evaluated (workload, policy) pair.
type RunOut struct {
	// Speedup is the SMT speedup (sum of per-core IPC_multi/IPC_single).
	Speedup float64
	// Result is the full simulation outcome.
	Result sim.Result
}

type runKey struct {
	mix, policy string
}

// Lab caches profiling results, single-core references and evaluation runs.
// All methods are safe for concurrent use.
type Lab struct {
	opts Options

	mu        sync.Mutex
	profiles  map[byte]sim.Profile
	singleIPC map[byte]float64
	runs      map[runKey]RunOut
}

// New creates a Lab. Zero-valued Instr/ProfInstr default to 200 000.
func New(opts Options) *Lab {
	if opts.Instr == 0 {
		opts.Instr = 200_000
	}
	if opts.ProfInstr == 0 {
		opts.ProfInstr = 200_000
	}
	if opts.Seed == 0 {
		opts.Seed = sim.EvalSeed
	}
	return &Lab{
		opts:      opts,
		profiles:  map[byte]sim.Profile{},
		singleIPC: map[byte]float64{},
		runs:      map[runKey]RunOut{},
	}
}

func (l *Lab) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// Profile returns the (cached) single-core profiling result for the
// application with the given Table 2 code, measured with the profiling seed.
func (l *Lab) Profile(code byte) (sim.Profile, error) {
	l.mu.Lock()
	p, ok := l.profiles[code]
	l.mu.Unlock()
	if ok {
		return p, nil
	}
	app, err := workload.ByCode(code)
	if err != nil {
		return sim.Profile{}, err
	}
	l.logf("profiling %s", app.Name)
	p, err = sim.ProfileApp(app, l.opts.ProfInstr, sim.ProfileSeed)
	if err != nil {
		return sim.Profile{}, err
	}
	l.mu.Lock()
	l.profiles[code] = p
	l.mu.Unlock()
	return p, nil
}

// SetProfile overrides the cached profile for code (used when a caller has
// already run classification and wants its richer Profile retained).
func (l *Lab) SetProfile(code byte, p sim.Profile) {
	l.mu.Lock()
	l.profiles[code] = p
	l.mu.Unlock()
}

// SingleIPC returns the (cached) single-core IPC under the evaluation seed —
// the denominator of the SMT-speedup metric.
func (l *Lab) SingleIPC(code byte) (float64, error) {
	l.mu.Lock()
	v, ok := l.singleIPC[code]
	l.mu.Unlock()
	if ok {
		return v, nil
	}
	app, err := workload.ByCode(code)
	if err != nil {
		return 0, err
	}
	l.logf("single-core reference %s", app.Name)
	p, err := sim.ProfileApp(app, l.opts.Instr, l.opts.Seed)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.singleIPC[code] = p.IPC
	l.mu.Unlock()
	return p.IPC, nil
}

// MixVectors returns the per-core memory-efficiency vector (profiling seed)
// and single-core IPC vector (evaluation seed) for a mix.
func (l *Lab) MixVectors(mix workload.Mix) (mes, singles []float64, err error) {
	for i := 0; i < len(mix.Codes); i++ {
		p, err := l.Profile(mix.Codes[i])
		if err != nil {
			return nil, nil, err
		}
		s, err := l.SingleIPC(mix.Codes[i])
		if err != nil {
			return nil, nil, err
		}
		mes = append(mes, p.ME)
		singles = append(singles, s)
	}
	return mes, singles, nil
}

// Run evaluates mix under policy (cached). policy may be any registry name
// or OnlinePolicy.
func (l *Lab) Run(mix workload.Mix, policy string) (RunOut, error) {
	key := runKey{mix.Name, policy}
	l.mu.Lock()
	out, ok := l.runs[key]
	l.mu.Unlock()
	if ok {
		return out, nil
	}

	mes, singles, err := l.MixVectors(mix)
	if err != nil {
		return RunOut{}, err
	}
	var res sim.Result
	if policy == OnlinePolicy {
		res, err = l.runOnline(mix, mes)
	} else {
		res, err = sim.RunMix(mix, policy, l.opts.Instr, mes, l.opts.Seed)
	}
	if err != nil {
		return RunOut{}, fmt.Errorf("lab: %s under %s: %w", mix.Name, policy, err)
	}
	sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
	if err != nil {
		return RunOut{}, err
	}
	out = RunOut{Speedup: sp, Result: res}
	l.logf("%-8s %-14s speedup=%.3f", mix.Name, policy, sp)
	l.mu.Lock()
	l.runs[key] = out
	l.mu.Unlock()
	return out, nil
}

// runOnline evaluates me-lreq with the runtime ME estimator, starting from
// neutral (equal) priorities so the estimator has to earn its keep.
func (l *Lab) runOnline(mix workload.Mix, mes []float64) (sim.Result, error) {
	apps, err := mix.Apps()
	if err != nil {
		return sim.Result{}, err
	}
	neutral := make([]float64, len(mes))
	for i := range neutral {
		neutral[i] = 1
	}
	sys, err := sim.New(sim.Options{Policy: "me-lreq", Apps: apps, ME: neutral,
		Seed: l.opts.Seed, OnlineME: true})
	if err != nil {
		return sim.Result{}, err
	}
	return sys.Run(l.opts.Instr, 0)
}

// Unfairness computes the Figure 5 metric for a cached or fresh run.
func (l *Lab) Unfairness(mix workload.Mix, policy string) (float64, error) {
	out, err := l.Run(mix, policy)
	if err != nil {
		return 0, err
	}
	_, singles, err := l.MixVectors(mix)
	if err != nil {
		return 0, err
	}
	return metrics.Unfairness(out.Result.IPCs(), singles)
}

// Replicated is the outcome of RunReplicated: speedup statistics over
// several seeds.
type Replicated struct {
	Mean, StdDev float64
	N            int
	Samples      []float64
}

// RunReplicated evaluates mix under policy across n different seeds (the
// lab's base seed plus n-1 derived ones) and returns mean and standard
// deviation of the SMT speedup — a noise estimate the paper's single-run
// methodology lacks. Replicas recompute single-core references for their
// own seed, so each sample is internally consistent. Results are not cached.
func (l *Lab) RunReplicated(mix workload.Mix, policy string, n int) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("lab: replication count %d < 1", n)
	}
	mes, _, err := l.MixVectors(mix)
	if err != nil {
		return Replicated{}, err
	}
	apps, err := mix.Apps()
	if err != nil {
		return Replicated{}, err
	}
	out := Replicated{N: n}
	sum, sumSq := 0.0, 0.0
	for rep := 0; rep < n; rep++ {
		seed := l.opts.Seed + uint64(rep)*0x9E3779B97F4A7C15
		singles := make([]float64, len(apps))
		for i, a := range apps {
			p, err := sim.ProfileApp(a, l.opts.Instr, seed)
			if err != nil {
				return Replicated{}, err
			}
			singles[i] = p.IPC
		}
		res, err := sim.RunMix(mix, policy, l.opts.Instr, mes, seed)
		if err != nil {
			return Replicated{}, fmt.Errorf("lab: replica %d: %w", rep, err)
		}
		sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			return Replicated{}, err
		}
		out.Samples = append(out.Samples, sp)
		sum += sp
		sumSq += sp * sp
		l.logf("%-8s %-10s replica %d/%d speedup=%.3f", mix.Name, policy, rep+1, n, sp)
	}
	out.Mean = sum / float64(n)
	if n > 1 {
		variance := (sumSq - sum*sum/float64(n)) / float64(n-1)
		if variance > 0 {
			out.StdDev = math.Sqrt(variance)
		}
	}
	return out, nil
}

// Prime fills every cache needed for the given sweep, running independent
// evaluations on a bounded worker pool. After Prime returns nil, Run and
// MixVectors on the same arguments are cache hits.
func (l *Lab) Prime(mixes []workload.Mix, policies []string) error {
	// Profiles and references first: they feed every run.
	for _, mix := range mixes {
		if _, _, err := l.MixVectors(mix); err != nil {
			return err
		}
	}
	type job struct {
		mix workload.Mix
		pol string
	}
	var jobs []job
	for _, mix := range mixes {
		for _, pol := range policies {
			l.mu.Lock()
			_, done := l.runs[runKey{mix.Name, pol}]
			l.mu.Unlock()
			if !done {
				jobs = append(jobs, job{mix, pol})
			}
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	workers := l.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Buffered so the feeder never blocks even if a worker exits on error.
	jobCh := make(chan job, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if _, err := l.Run(j.mix, j.pol); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Package lab orchestrates paper-scale experiment sweeps: it profiles
// applications once, computes single-core reference IPCs once, runs every
// (workload, policy) pair at most once, and fans independent runs across
// internal/runner's worker pool — with cancellation, panic isolation and
// checkpoint/resume. cmd/experiments is a thin presentation layer over this
// package.
package lab

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"memsched/internal/metrics"
	"memsched/internal/runner"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// OnlinePolicy is the pseudo-policy name that runs me-lreq with the online
// ME estimator (started from neutral priorities) instead of profiled tables.
const OnlinePolicy = "me-lreq-online"

// Options configures a Lab.
type Options struct {
	// Instr is the evaluation slice length per core.
	Instr uint64
	// ProfInstr is the profiling slice length (ME measurement).
	ProfInstr uint64
	// Seed is the evaluation seed; profiling always uses sim.ProfileSeed.
	Seed uint64
	// Workers bounds the parallel runner (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// ParallelCores is passed through to every evaluation RunSpec: intra-run
	// parallelism over simulated cores (0 = auto, 1 = serial loop, >1 = forced
	// worker count). Orthogonal to Workers, which parallelizes across runs.
	ParallelCores int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Checkpoint, when non-empty, is the JSON file Prime persists completed
	// evaluations to; a later Prime with the same file resumes from it.
	Checkpoint string
	// JobTimeout bounds each evaluation's wall clock (0 = unbounded).
	JobTimeout time.Duration
	// Progress is the interval between runner progress lines sent to Logf
	// during Prime (0 disables them).
	Progress time.Duration
}

// RunOut is one evaluated (workload, policy) pair.
type RunOut struct {
	// Speedup is the SMT speedup (sum of per-core IPC_multi/IPC_single).
	Speedup float64
	// Result is the full simulation outcome.
	Result sim.Result
}

type runKey struct {
	mix, policy string
	// classes is the serving-class assignment in workload.FormatServiceClasses
	// form ("" = classless): a classed run schedules differently under
	// class-aware policies and splits its latency result by class, so it must
	// not share a cache slot with the classless run of the same pair.
	classes string
}

// Lab caches profiling results, single-core references and evaluation runs.
// All methods are safe for concurrent use.
type Lab struct {
	opts Options

	mu        sync.Mutex
	profiles  map[byte]sim.Profile
	singleIPC map[byte]float64
	runs      map[runKey]RunOut
}

// New creates a Lab. Zero-valued Instr/ProfInstr default to 200 000.
func New(opts Options) *Lab {
	if opts.Instr == 0 {
		opts.Instr = 200_000
	}
	if opts.ProfInstr == 0 {
		opts.ProfInstr = 200_000
	}
	if opts.Seed == 0 {
		opts.Seed = sim.EvalSeed
	}
	return &Lab{
		opts:      opts,
		profiles:  map[byte]sim.Profile{},
		singleIPC: map[byte]float64{},
		runs:      map[runKey]RunOut{},
	}
}

func (l *Lab) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// Profile returns the (cached) single-core profiling result for the
// application with the given Table 2 code, measured with the profiling seed.
func (l *Lab) Profile(code byte) (sim.Profile, error) {
	return l.ProfileContext(context.Background(), code)
}

// ProfileContext is Profile under a cancellable context.
func (l *Lab) ProfileContext(ctx context.Context, code byte) (sim.Profile, error) {
	l.mu.Lock()
	p, ok := l.profiles[code]
	l.mu.Unlock()
	if ok {
		return p, nil
	}
	app, err := workload.ByCode(code)
	if err != nil {
		return sim.Profile{}, err
	}
	l.logf("profiling %s", app.Name)
	p, err = sim.ProfileAppContext(ctx, app, l.opts.ProfInstr, sim.ProfileSeed)
	if err != nil {
		return sim.Profile{}, err
	}
	l.mu.Lock()
	l.profiles[code] = p
	l.mu.Unlock()
	return p, nil
}

// SetProfile overrides the cached profile for code (used when a caller has
// already run classification and wants its richer Profile retained).
func (l *Lab) SetProfile(code byte, p sim.Profile) {
	l.mu.Lock()
	l.profiles[code] = p
	l.mu.Unlock()
}

// SingleIPC returns the (cached) single-core IPC under the evaluation seed —
// the denominator of the SMT-speedup metric.
func (l *Lab) SingleIPC(code byte) (float64, error) {
	return l.SingleIPCContext(context.Background(), code)
}

// SingleIPCContext is SingleIPC under a cancellable context.
func (l *Lab) SingleIPCContext(ctx context.Context, code byte) (float64, error) {
	l.mu.Lock()
	v, ok := l.singleIPC[code]
	l.mu.Unlock()
	if ok {
		return v, nil
	}
	app, err := workload.ByCode(code)
	if err != nil {
		return 0, err
	}
	l.logf("single-core reference %s", app.Name)
	p, err := sim.ProfileAppContext(ctx, app, l.opts.Instr, l.opts.Seed)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.singleIPC[code] = p.IPC
	l.mu.Unlock()
	return p.IPC, nil
}

// MixVectors returns the per-core memory-efficiency vector (profiling seed)
// and single-core IPC vector (evaluation seed) for a mix.
func (l *Lab) MixVectors(mix workload.Mix) (mes, singles []float64, err error) {
	return l.MixVectorsContext(context.Background(), mix)
}

// MixVectorsContext is MixVectors under a cancellable context.
func (l *Lab) MixVectorsContext(ctx context.Context, mix workload.Mix) (mes, singles []float64, err error) {
	for i := 0; i < len(mix.Codes); i++ {
		p, err := l.ProfileContext(ctx, mix.Codes[i])
		if err != nil {
			return nil, nil, err
		}
		s, err := l.SingleIPCContext(ctx, mix.Codes[i])
		if err != nil {
			return nil, nil, err
		}
		mes = append(mes, p.ME)
		singles = append(singles, s)
	}
	return mes, singles, nil
}

// Run evaluates mix under policy (cached). policy may be any registry name
// or OnlinePolicy.
func (l *Lab) Run(mix workload.Mix, policy string) (RunOut, error) {
	return l.RunContext(context.Background(), mix, policy)
}

// RunContext is Run under a cancellable context: cancellation lands
// mid-simulation (sim.CancelCheckCycles granularity), not just between runs.
func (l *Lab) RunContext(ctx context.Context, mix workload.Mix, policy string) (RunOut, error) {
	return l.RunClassedContext(ctx, mix, policy, nil)
}

// RunClassedContext is RunContext with a per-core serving-class assignment
// (see sim.Options.Classes); nil classes reproduces RunContext exactly, and
// classed runs are cached separately from classless ones.
func (l *Lab) RunClassedContext(ctx context.Context, mix workload.Mix, policy string,
	classes []workload.ServiceClass) (RunOut, error) {
	key := runKey{mix.Name, policy, workload.FormatServiceClasses(classes)}
	l.mu.Lock()
	out, ok := l.runs[key]
	l.mu.Unlock()
	if ok {
		return out, nil
	}

	mes, singles, err := l.MixVectorsContext(ctx, mix)
	if err != nil {
		return RunOut{}, err
	}
	spec := sim.RunSpec{Mix: mix, Policy: policy, Instr: l.opts.Instr, ME: mes,
		Seed: l.opts.Seed, ParallelCores: l.opts.ParallelCores, Classes: classes}
	if policy == OnlinePolicy {
		// The runtime ME estimator starts from neutral (equal) priorities so
		// it has to earn its keep.
		neutral := make([]float64, len(mes))
		for i := range neutral {
			neutral[i] = 1
		}
		spec.Policy = "me-lreq"
		spec.ME = neutral
		spec.OnlineME = true
	}
	res, err := sim.Run(ctx, spec)
	if err != nil {
		return RunOut{}, fmt.Errorf("lab: %s under %s: %w", mix.Name, policy, err)
	}
	sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
	if err != nil {
		return RunOut{}, err
	}
	out = RunOut{Speedup: sp, Result: res}
	l.logf("%-8s %-14s speedup=%.3f", mix.Name, policy, sp)
	l.mu.Lock()
	l.runs[key] = out
	l.mu.Unlock()
	return out, nil
}

// Unfairness computes the Figure 5 metric for a cached or fresh run.
func (l *Lab) Unfairness(mix workload.Mix, policy string) (float64, error) {
	f, err := l.Fairness(mix, policy)
	if err != nil {
		return 0, err
	}
	return f.Unfairness, nil
}

// FairnessOut bundles every fairness metric of one (workload, policy) run.
type FairnessOut struct {
	// Speedup is the SMT speedup (throughput axis).
	Speedup float64
	// Slowdowns is the per-application slowdown vector
	// (IPC_single/IPC_multi per core).
	Slowdowns []float64
	// MaxSlowdown is the largest entry of Slowdowns.
	MaxSlowdown float64
	// Unfairness is max/min slowdown (the paper's Figure 5 metric).
	Unfairness float64
	// HarmonicSpeedup is the harmonic mean of per-application speedups.
	HarmonicSpeedup float64
}

// Fairness computes the full fairness-metric suite for a cached or fresh run.
func (l *Lab) Fairness(mix workload.Mix, policy string) (FairnessOut, error) {
	return l.FairnessContext(context.Background(), mix, policy)
}

// FairnessContext is Fairness under a cancellable context.
func (l *Lab) FairnessContext(ctx context.Context, mix workload.Mix, policy string) (FairnessOut, error) {
	out, err := l.RunContext(ctx, mix, policy)
	if err != nil {
		return FairnessOut{}, err
	}
	_, singles, err := l.MixVectorsContext(ctx, mix)
	if err != nil {
		return FairnessOut{}, err
	}
	multi := out.Result.IPCs()
	f := FairnessOut{Speedup: out.Speedup}
	if f.Slowdowns, err = metrics.Slowdowns(multi, singles); err != nil {
		return FairnessOut{}, fmt.Errorf("lab: %s under %s: %w", mix.Name, policy, err)
	}
	// The remaining metrics are pure functions of the slowdown vector the
	// call above already validated, so their errors cannot fire here.
	f.MaxSlowdown, _ = metrics.MaxSlowdown(multi, singles)
	f.Unfairness, _ = metrics.Unfairness(multi, singles)
	f.HarmonicSpeedup, _ = metrics.HarmonicSpeedup(multi, singles)
	return f, nil
}

// Replicated is the outcome of RunReplicated: speedup statistics over
// several seeds.
type Replicated struct {
	Mean, StdDev float64
	N            int
	Samples      []float64
}

// RunReplicated evaluates mix under policy across n different seeds (the
// lab's base seed plus n-1 derived ones) and returns mean and standard
// deviation of the SMT speedup — a noise estimate the paper's single-run
// methodology lacks. Replicas recompute single-core references for their
// own seed, so each sample is internally consistent. Results are not cached.
func (l *Lab) RunReplicated(mix workload.Mix, policy string, n int) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("lab: replication count %d < 1", n)
	}
	mes, _, err := l.MixVectors(mix)
	if err != nil {
		return Replicated{}, err
	}
	apps, err := mix.Apps()
	if err != nil {
		return Replicated{}, err
	}
	out := Replicated{N: n}
	sum, sumSq := 0.0, 0.0
	for rep := 0; rep < n; rep++ {
		seed := l.opts.Seed + uint64(rep)*0x9E3779B97F4A7C15
		singles := make([]float64, len(apps))
		for i, a := range apps {
			p, err := sim.ProfileAppContext(context.Background(), a, l.opts.Instr, seed)
			if err != nil {
				return Replicated{}, err
			}
			singles[i] = p.IPC
		}
		res, err := sim.Run(context.Background(), sim.RunSpec{
			Mix: mix, Policy: policy, Instr: l.opts.Instr, ME: mes, Seed: seed,
		})
		if err != nil {
			return Replicated{}, fmt.Errorf("lab: replica %d: %w", rep, err)
		}
		sp, err := metrics.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			return Replicated{}, err
		}
		out.Samples = append(out.Samples, sp)
		sum += sp
		sumSq += sp * sp
		l.logf("%-8s %-10s replica %d/%d speedup=%.3f", mix.Name, policy, rep+1, n, sp)
	}
	out.Mean = sum / float64(n)
	if n > 1 {
		variance := (sumSq - sum*sum/float64(n)) / float64(n-1)
		if variance > 0 {
			out.StdDev = math.Sqrt(variance)
		}
	}
	return out, nil
}

// Prime fills every cache needed for the given sweep, running independent
// evaluations on internal/runner's worker pool. After Prime returns nil, Run
// and MixVectors on the same arguments are cache hits.
func (l *Lab) Prime(mixes []workload.Mix, policies []string) error {
	return l.PrimeContext(context.Background(), mixes, policies)
}

// PrimeContext is Prime under a cancellable context. The fan-out inherits
// the full runner feature set: Workers-wide parallel execution whose cached
// results are identical to a serial pass, panic isolation per evaluation,
// per-job timeouts, progress lines, and — when Options.Checkpoint is set —
// persistent completed-run checkpoints that a later PrimeContext on the same
// file resumes from instead of re-simulating.
func (l *Lab) PrimeContext(ctx context.Context, mixes []workload.Mix, policies []string) error {
	// Profiles and references first: they feed every run, and keeping them
	// serial keeps their log order (and any profiling error) deterministic.
	for _, mix := range mixes {
		if _, _, err := l.MixVectorsContext(ctx, mix); err != nil {
			return err
		}
	}
	type job struct {
		mix workload.Mix
		pol string
	}
	var jobs []job
	var keys []string
	for _, mix := range mixes {
		for _, pol := range policies {
			l.mu.Lock()
			_, done := l.runs[runKey{mix.Name, pol, ""}]
			l.mu.Unlock()
			if !done {
				jobs = append(jobs, job{mix, pol})
				keys = append(keys, mix.Name+"/"+pol)
			}
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	outs, err := runner.Run(ctx, runner.NewJobs(keys),
		func(ctx context.Context, j runner.Job) (RunOut, error) {
			return l.RunContext(ctx, jobs[j.ID].mix, jobs[j.ID].pol)
		},
		runner.Options{
			Workers:    l.opts.Workers,
			JobTimeout: l.opts.JobTimeout,
			Progress:   l.opts.Progress,
			Logf:       l.opts.Logf,
			Checkpoint: l.opts.Checkpoint,
			Meta: fmt.Sprintf("lab instr=%d profinstr=%d seed=%#x",
				l.opts.Instr, l.opts.ProfInstr, l.opts.Seed),
		})
	// Splice checkpoint-resumed evaluations into the run cache so subsequent
	// Run calls are cache hits without re-simulating.
	for _, o := range outs {
		if !o.Resumed {
			continue
		}
		mixName, pol, _ := splitKey(o.Job.Key)
		l.mu.Lock()
		l.runs[runKey{mixName, pol, ""}] = o.Value
		l.mu.Unlock()
	}
	if err != nil {
		return err
	}
	return runner.FirstError(outs)
}

// ClassedJob names one (mix, policy, classes) evaluation for
// PrimeClassedContext.
type ClassedJob struct {
	Mix     workload.Mix
	Policy  string
	Classes []workload.ServiceClass
}

// PrimeClassedContext fills the run cache for an explicit list of classed
// evaluations, fanning independent runs across the worker pool the way
// PrimeContext does for classless sweeps. After it returns nil,
// RunClassedContext on the same triples is a cache hit.
func (l *Lab) PrimeClassedContext(ctx context.Context, jobs []ClassedJob) error {
	seen := map[string]bool{}
	for _, j := range jobs {
		if !seen[j.Mix.Name] {
			seen[j.Mix.Name] = true
			if _, _, err := l.MixVectorsContext(ctx, j.Mix); err != nil {
				return err
			}
		}
	}
	var pending []ClassedJob
	var keys []string
	for _, j := range jobs {
		cls := workload.FormatServiceClasses(j.Classes)
		l.mu.Lock()
		_, done := l.runs[runKey{j.Mix.Name, j.Policy, cls}]
		l.mu.Unlock()
		if !done {
			pending = append(pending, j)
			keys = append(keys, j.Mix.Name+"/"+j.Policy+"/"+cls)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	outs, err := runner.Run(ctx, runner.NewJobs(keys),
		func(ctx context.Context, job runner.Job) (RunOut, error) {
			j := pending[job.ID]
			return l.RunClassedContext(ctx, j.Mix, j.Policy, j.Classes)
		},
		runner.Options{
			Workers:    l.opts.Workers,
			JobTimeout: l.opts.JobTimeout,
			Progress:   l.opts.Progress,
			Logf:       l.opts.Logf,
			Checkpoint: l.opts.Checkpoint,
			Meta: fmt.Sprintf("lab instr=%d profinstr=%d seed=%#x",
				l.opts.Instr, l.opts.ProfInstr, l.opts.Seed),
		})
	for _, o := range outs {
		if !o.Resumed {
			continue
		}
		// Keys are "mix/policy/classes"; resumed runs re-enter the cache under
		// the same triple.
		mixName, rest, ok := splitKey(o.Job.Key)
		if !ok {
			continue
		}
		pol, cls, _ := splitKey(rest)
		l.mu.Lock()
		l.runs[runKey{mixName, pol, cls}] = o.Value
		l.mu.Unlock()
	}
	if err != nil {
		return err
	}
	return runner.FirstError(outs)
}

// splitKey undoes the "mix/policy" key format of PrimeContext.
func splitKey(key string) (mix, policy string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}

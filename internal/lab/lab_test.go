package lab

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"memsched/internal/sim"
	"memsched/internal/workload"
)

func testLab() *Lab {
	return New(Options{Instr: 15_000, ProfInstr: 15_000, Workers: 2})
}

func TestDefaults(t *testing.T) {
	l := New(Options{})
	if l.opts.Instr != 200_000 || l.opts.ProfInstr != 200_000 {
		t.Fatalf("defaults: %+v", l.opts)
	}
	if l.opts.Seed != sim.EvalSeed {
		t.Fatalf("seed default = %d", l.opts.Seed)
	}
}

func TestProfileCached(t *testing.T) {
	l := testLab()
	calls := 0
	l.opts.Logf = func(string, ...any) { calls++ }
	a, err := l.Profile('c')
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Profile('c')
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached profile differs")
	}
	if calls != 1 {
		t.Fatalf("profiling ran %d times, want 1", calls)
	}
	if _, err := l.Profile('!'); err == nil {
		t.Fatal("unknown code accepted")
	}
}

func TestSetProfileOverrides(t *testing.T) {
	l := testLab()
	l.SetProfile('c', sim.Profile{App: "custom", ME: 42})
	p, err := l.Profile('c')
	if err != nil {
		t.Fatal(err)
	}
	if p.ME != 42 || p.App != "custom" {
		t.Fatalf("override not retained: %+v", p)
	}
}

func TestRunCachedAndDeterministic(t *testing.T) {
	l := testLab()
	mix, err := workload.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Run(mix, "me-lreq")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Run(mix, "me-lreq")
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || a.Result.TotalCycles != b.Result.TotalCycles {
		t.Fatal("cached run differs")
	}
	// A fresh lab with identical options reproduces the same numbers.
	l2 := testLab()
	c, err := l2.Run(mix, "me-lreq")
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup != a.Speedup {
		t.Fatalf("fresh lab speedup %v != %v", c.Speedup, a.Speedup)
	}
}

func TestRunBadPolicy(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	if _, err := l.Run(mix, "definitely-not-a-policy"); err == nil {
		t.Fatal("bad policy accepted")
	} else if !strings.Contains(err.Error(), "2MEM-1") {
		t.Fatalf("error lacks workload context: %v", err)
	}
}

func TestPrimeThenRunIsCacheHit(t *testing.T) {
	l := testLab()
	mixes := workload.MixesFor(2, "MEM")[:2]
	policies := []string{"hf-rf", "lreq"}
	if err := l.Prime(mixes, policies); err != nil {
		t.Fatal(err)
	}
	ran := 0
	l.opts.Logf = func(format string, _ ...any) {
		if strings.Contains(format, "speedup") {
			ran++
		}
	}
	for _, mix := range mixes {
		for _, pol := range policies {
			if _, err := l.Run(mix, pol); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ran != 0 {
		t.Fatalf("%d runs executed after Prime, want 0", ran)
	}
}

func TestPrimeParallelMatchesSerial(t *testing.T) {
	mix, _ := workload.MixByName("2MEM-3")
	serial := New(Options{Instr: 15_000, ProfInstr: 15_000, Workers: 1})
	parallel := New(Options{Instr: 15_000, ProfInstr: 15_000, Workers: 4})
	policies := []string{"hf-rf", "rr", "me-lreq"}
	if err := serial.Prime([]workload.Mix{mix}, policies); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Prime([]workload.Mix{mix}, policies); err != nil {
		t.Fatal(err)
	}
	for _, pol := range policies {
		a, _ := serial.Run(mix, pol)
		b, _ := parallel.Run(mix, pol)
		if a.Speedup != b.Speedup {
			t.Fatalf("%s: parallel %v != serial %v", pol, b.Speedup, a.Speedup)
		}
	}
}

func TestPrimePropagatesErrors(t *testing.T) {
	l := testLab()
	mixes := workload.MixesFor(2, "MEM")[:1]
	if err := l.Prime(mixes, []string{"hf-rf", "bogus"}); err == nil {
		t.Fatal("Prime swallowed a bad policy")
	}
}

func TestOnlinePolicyRuns(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	out, err := l.Run(mix, OnlinePolicy)
	if err != nil {
		t.Fatal(err)
	}
	if out.Speedup <= 0 {
		t.Fatalf("online speedup = %v", out.Speedup)
	}
}

func TestUnfairness(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	u, err := l.Unfairness(mix, "hf-rf")
	if err != nil {
		t.Fatal(err)
	}
	if u < 1 {
		t.Fatalf("unfairness %v < 1", u)
	}
}

func TestFairnessSuite(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	f, err := l.Fairness(mix, "bliss")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Slowdowns) != 2 {
		t.Fatalf("slowdown vector length %d, want 2", len(f.Slowdowns))
	}
	maxS := f.Slowdowns[0]
	for _, s := range f.Slowdowns {
		if s > maxS {
			maxS = s
		}
	}
	if f.MaxSlowdown != maxS {
		t.Errorf("MaxSlowdown %v != max of vector %v", f.MaxSlowdown, f.Slowdowns)
	}
	if f.Unfairness < 1 {
		t.Errorf("unfairness %v < 1", f.Unfairness)
	}
	if f.HarmonicSpeedup <= 0 || f.HarmonicSpeedup > f.Speedup/2+1e-9 {
		t.Errorf("harmonic speedup %v outside (0, SMT/n] for SMT %v", f.HarmonicSpeedup, f.Speedup)
	}
	// Consistency with the single-metric path and the cached run.
	u, err := l.Unfairness(mix, "bliss")
	if err != nil {
		t.Fatal(err)
	}
	if u != f.Unfairness {
		t.Errorf("Unfairness %v != Fairness().Unfairness %v", u, f.Unfairness)
	}
}

func TestMixVectorsShape(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("4MEM-1")
	mes, singles, err := l.MixVectors(mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(mes) != 4 || len(singles) != 4 {
		t.Fatalf("vector lengths %d/%d", len(mes), len(singles))
	}
	for i := range mes {
		if mes[i] <= 0 || singles[i] <= 0 {
			t.Fatalf("non-positive vector entries: %v %v", mes, singles)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	rep, err := l.RunReplicated(mix, "me-lreq", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 3 || len(rep.Samples) != 3 {
		t.Fatalf("replicas: %+v", rep)
	}
	if rep.Mean <= 0 {
		t.Fatalf("mean = %v", rep.Mean)
	}
	// Different seeds should show SOME variance (deterministic but distinct).
	if rep.Samples[0] == rep.Samples[1] && rep.Samples[1] == rep.Samples[2] {
		t.Fatal("all replicas identical — seeds not varying")
	}
	if rep.StdDev <= 0 {
		t.Fatalf("stddev = %v", rep.StdDev)
	}
	// The mean sits within the sample range.
	lo, hi := rep.Samples[0], rep.Samples[0]
	for _, s := range rep.Samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if rep.Mean < lo || rep.Mean > hi {
		t.Fatalf("mean %v outside [%v, %v]", rep.Mean, lo, hi)
	}
	if _, err := l.RunReplicated(mix, "me-lreq", 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestRunReplicatedSingle(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	rep, err := l.RunReplicated(mix, "hf-rf", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StdDev != 0 {
		t.Fatalf("single replica stddev = %v", rep.StdDev)
	}
}

func TestPrimeContextCancellation(t *testing.T) {
	l := testLab()
	mix, _ := workload.MixByName("2MEM-1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := l.PrimeContext(ctx, []workload.Mix{mix}, []string{"hf-rf"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PrimeContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestPrimeCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lab.ckpt.json")
	opts := Options{Instr: 15_000, ProfInstr: 15_000, Workers: 2, Checkpoint: path}
	mixes := workload.MixesFor(2, "MEM")[:2]
	policies := []string{"hf-rf", "me-lreq"}

	first := New(opts)
	if err := first.Prime(mixes, policies); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// A fresh lab on the same checkpoint resumes every evaluation instead of
	// re-simulating, and serves identical numbers from its cache.
	second := New(opts)
	ran := 0
	second.opts.Logf = func(format string, _ ...any) {
		if strings.Contains(format, "speedup") {
			ran++
		}
	}
	if err := second.Prime(mixes, policies); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("%d evaluations re-ran on resume, want 0", ran)
	}
	for _, mix := range mixes {
		for _, pol := range policies {
			a, err := first.Run(mix, pol)
			if err != nil {
				t.Fatal(err)
			}
			b, err := second.Run(mix, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: resumed run differs from original", mix.Name, pol)
			}
		}
	}

	// A lab with different options must not reuse the checkpoint: the stale
	// file is moved aside to .bak and the prime starts clean, re-running
	// every evaluation.
	other := opts
	other.Instr = 20_000
	third := New(other)
	reran := 0
	third.opts.Logf = func(format string, _ ...any) {
		if strings.Contains(format, "speedup") {
			reran++
		}
	}
	if err := third.Prime(mixes, policies); err != nil {
		t.Fatalf("prime over a mismatched checkpoint: %v", err)
	}
	if reran == 0 {
		t.Fatal("no evaluations ran: mismatched checkpoint was silently reused")
	}
	if _, err := os.Stat(path + ".bak"); err != nil {
		t.Fatalf("mismatched checkpoint not preserved as .bak: %v", err)
	}
}

package memsched_test

import (
	"context"
	"testing"

	"memsched"
)

// TestPaperShape4MEM5 is the end-to-end shape test: on a contended 4-core
// memory-intensive workload the paper's qualitative results must hold. All
// randomness is seeded, so this test is deterministic, not flaky.
func TestPaperShape4MEM5(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test skipped in -short mode")
	}
	const instr = 60_000
	mix, err := memsched.MixByName("4MEM-5")
	if err != nil {
		t.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, mes, err := memsched.ProfileAllContext(ctx, apps, instr, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := memsched.ProfileAppContext(ctx, a, instr, memsched.EvalSeed)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = p.IPC
	}

	type out struct {
		speedup, unfairness, latency float64
	}
	results := map[string]out{}
	for _, pol := range []string{"hf-rf", "me", "rr", "lreq", "me-lreq"} {
		res, err := memsched.Run(ctx, memsched.RunSpec{
			Mix: mix, Policy: pol, Instr: instr, ME: mes, Seed: memsched.EvalSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			t.Fatal(err)
		}
		u, err := memsched.Unfairness(res.IPCs(), singles)
		if err != nil {
			t.Fatal(err)
		}
		results[pol] = out{speedup: sp, unfairness: u, latency: res.AvgReadLatency}
		t.Logf("%-8s speedup=%.3f unfairness=%.3f latency=%.0f", pol, sp, u, res.AvgReadLatency)
	}

	// Paper claim 1: ME-LREQ outperforms the HF-RF baseline on contended
	// memory-intensive workloads.
	if results["me-lreq"].speedup <= results["hf-rf"].speedup {
		t.Errorf("me-lreq speedup %.3f not above hf-rf %.3f",
			results["me-lreq"].speedup, results["hf-rf"].speedup)
	}
	// Paper claim 2 (Figure 5): the fixed-priority ME scheme is the least
	// fair of the five policies.
	for _, pol := range []string{"hf-rf", "rr", "lreq", "me-lreq"} {
		if results["me"].unfairness <= results[pol].unfairness {
			t.Errorf("fixed ME unfairness %.3f not above %s's %.3f",
				results["me"].unfairness, pol, results[pol].unfairness)
		}
	}
	// Paper claim 3 (Figure 4): ME-LREQ's average read latency sits below
	// the fixed-priority scheme's.
	if results["me-lreq"].latency >= results["me"].latency {
		t.Errorf("me-lreq latency %.0f not below me latency %.0f",
			results["me-lreq"].latency, results["me"].latency)
	}
	// ME-LREQ combines LREQ's short-term signal with the long-term ME
	// weighting; on this workload it must be at least as good.
	if results["me-lreq"].speedup < results["lreq"].speedup {
		t.Errorf("me-lreq speedup %.3f below lreq %.3f",
			results["me-lreq"].speedup, results["lreq"].speedup)
	}
}

package memsched_test

import (
	"context"
	"reflect"
	"testing"

	"memsched"
)

// The deprecated pre-context wrappers (deprecated.go) must stay exact,
// behavior-identical shims over the context entry points until removal.

func TestDeprecatedRunMix(t *testing.T) {
	mix, err := memsched.MixByName("2MEM-1")
	if err != nil {
		t.Fatal(err)
	}
	old, err := memsched.RunMix(mix, "me-lreq", apiSlice, nil, memsched.EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	spec := memsched.RunSpec{Mix: mix, Policy: "me-lreq", Instr: apiSlice, Seed: memsched.EvalSeed}
	res, err := memsched.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, res) {
		t.Fatal("RunMix diverged from Run(RunSpec)")
	}
}

func TestDeprecatedProfileClassify(t *testing.T) {
	app, err := memsched.AppByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	old, err := memsched.ProfileApp(app, apiSlice, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := memsched.ProfileAppContext(context.Background(), app, apiSlice, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, p) {
		t.Fatal("ProfileApp diverged from ProfileAppContext")
	}
	if err := memsched.Classify(app, &old, apiSlice, memsched.ProfileSeed); err != nil {
		t.Fatal(err)
	}
	if err := memsched.ClassifyContext(context.Background(), app, &p, apiSlice, memsched.ProfileSeed); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, p) {
		t.Fatal("Classify diverged from ClassifyContext")
	}
}

func TestDeprecatedProfileAll(t *testing.T) {
	apps := memsched.Apps()[:2]
	oldProfiles, oldMEs, err := memsched.ProfileAll(apps, apiSlice, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	profiles, mes, err := memsched.ProfileAllContext(context.Background(), apps, apiSlice, memsched.ProfileSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldProfiles, profiles) || !reflect.DeepEqual(oldMEs, mes) {
		t.Fatal("ProfileAll diverged from ProfileAllContext")
	}
}

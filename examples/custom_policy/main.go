// custom_policy shows how to plug a user-defined memory scheduling policy
// into the simulator through the public API, and benchmarks it against the
// built-in schemes on a 4-core workload.
//
// The example policy, "bank-fair", is deliberately simple but not in the
// paper: it balances *service received* rather than requests pending — each
// core accrues debt when served, and the least-served core's requests win
// (a deficit-round-robin flavor), with command-level hit-first retained.
//
//	go run ./examples/custom_policy
package main

import (
	"context"
	"fmt"
	"log"

	"memsched"
)

// bankFair implements memsched.Policy.
type bankFair struct {
	served []int // transactions served per core
}

func newBankFair(cores int) *bankFair {
	return &bankFair{served: make([]int, cores)}
}

// Name identifies the policy in results.
func (p *bankFair) Name() string { return "bank-fair" }

// Pick chooses among schedulable candidates: row hits first (they are nearly
// free), then the core that has received the least service, then age.
func (p *bankFair) Pick(cands []memsched.Candidate, ctx *memsched.PolicyContext) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		a, b := cands[i], cands[best]
		switch {
		case a.RowHit != b.RowHit:
			if a.RowHit {
				best = i
			}
		case p.served[a.Req.Core] != p.served[b.Req.Core]:
			if p.served[a.Req.Core] < p.served[b.Req.Core] {
				best = i
			}
		case a.Req.Arrive < b.Req.Arrive:
			best = i
		}
	}
	p.served[cands[best].Req.Core]++
	return best
}

const instrPerCore = 100_000

func main() {
	ctx := context.Background()
	mix, err := memsched.MixByName("4MEM-4")
	if err != nil {
		log.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}
	_, mes, err := memsched.ProfileAllContext(ctx, apps, instrPerCore, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := memsched.ProfileAppContext(ctx, a, instrPerCore, memsched.EvalSeed)
		if err != nil {
			log.Fatal(err)
		}
		singles[i] = p.IPC
	}

	run := func(policyName string, custom memsched.Policy) {
		res, err := memsched.Run(ctx, memsched.RunSpec{
			Policy:       policyName,
			CustomPolicy: custom,
			Apps:         apps,
			Instr:        instrPerCore,
			ME:           mes,
			Seed:         memsched.EvalSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			log.Fatal(err)
		}
		u, err := memsched.Unfairness(res.IPCs(), singles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s speedup=%.3f unfairness=%.3f avg read latency=%.0f\n",
			res.Policy, sp, u, res.AvgReadLatency)
	}

	fmt.Printf("custom policy vs built-ins on %s (%s)\n\n", mix.Name, mix.Codes)
	for _, name := range []string{"hf-rf", "rr", "lreq", "me-lreq"} {
		run(name, nil)
	}
	run("", newBankFair(len(apps)))
}

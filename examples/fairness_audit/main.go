// fairness_audit reproduces the paper's Section 5.3 analysis on one
// workload: per-core slowdowns, the unfairness metric (max slowdown over min
// slowdown), and the per-core read-latency spread that explains it — showing
// how a fixed-priority scheme starves its lowest-priority core while ME-LREQ
// both speeds the system up and narrows the spread.
//
//	go run ./examples/fairness_audit            # defaults to 4MEM-5
//	go run ./examples/fairness_audit 4MEM-1
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"memsched"
)

const instrPerCore = 100_000

func main() {
	ctx := context.Background()
	name := "4MEM-5"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	mix, err := memsched.MixByName(name)
	if err != nil {
		log.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}
	_, mes, err := memsched.ProfileAllContext(ctx, apps, instrPerCore, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := memsched.ProfileAppContext(ctx, a, instrPerCore, memsched.EvalSeed)
		if err != nil {
			log.Fatal(err)
		}
		singles[i] = p.IPC
	}

	fmt.Printf("fairness audit of %s (%s)\n", mix.Name, mix.Codes)
	for _, policy := range []string{"hf-rf", "me", "rr", "lreq", "me-lreq"} {
		res, err := memsched.Run(ctx, memsched.RunSpec{
			Mix: mix, Policy: policy, Instr: instrPerCore, ME: mes, Seed: memsched.EvalSeed})
		if err != nil {
			log.Fatal(err)
		}
		u, err := memsched.Unfairness(res.IPCs(), singles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: unfairness %.3f\n", policy, u)
		for i, c := range res.Cores {
			slowdown := singles[i] / c.IPC
			fmt.Printf("  core %d %-8s slowdown %.2fx  read latency %4.0f cycles  (ME %.3f)\n",
				i, c.App, slowdown, c.AvgReadLatency, mes[i])
		}
	}
	fmt.Println("\nExpected shape (paper Figure 4 right + Figure 5): the fixed-priority")
	fmt.Println("ME scheme shows the widest per-core latency spread (its lowest-ME core")
	fmt.Println("is starved); me-lreq keeps the spread narrow while also being fastest.")
}

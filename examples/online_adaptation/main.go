// online_adaptation demonstrates the paper's future-work item (Section 7):
// estimating memory efficiency at runtime instead of loading it from
// off-line profiles.
//
// The run starts the ME-LREQ scheduler with deliberately WRONG priorities —
// every core equal — and lets the epoch-based estimator discover the real
// efficiencies from hardware-counter-style measurements (committed
// instructions and memory traffic per epoch). The output compares the
// estimator's final values against off-line profiling and shows that the
// resulting speedup matches the statically-profiled configuration.
//
//	go run ./examples/online_adaptation
package main

import (
	"context"
	"fmt"
	"log"

	"memsched"
)

const instrPerCore = 100_000

func main() {
	ctx := context.Background()
	mix, err := memsched.MixByName("4MEM-1")
	if err != nil {
		log.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}

	// Off-line truth: Equation 1 via profiling runs.
	profiles, mes, err := memsched.ProfileAllContext(ctx, apps, instrPerCore, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}

	neutral := make([]float64, len(apps))
	for i := range neutral {
		neutral[i] = 1 // no prior knowledge
	}
	sys, err := memsched.NewSystem(memsched.Options{
		Policy:   "me-lreq",
		Apps:     apps,
		ME:       neutral,
		Seed:     memsched.EvalSeed,
		OnlineME: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	resOnline, err := sys.RunContext(ctx, instrPerCore, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online ME estimation on %s (epoch %d cycles):\n\n", mix.Name, sys.Online().Epoch())
	fmt.Printf("%-8s  %-12s  %-12s\n", "app", "profiled ME", "estimated ME")
	for i, p := range profiles {
		fmt.Printf("%-8s  %-12.3f  %-12.3f\n", p.App, mes[i], sys.Online().Estimate(i))
	}

	// Reference: the same policy with statically profiled tables. (RunSpec
	// with OnlineME would work for the online run too, but assembling the
	// System explicitly keeps sys.Online() reachable for the table above.)
	resStatic, err := memsched.Run(ctx, memsched.RunSpec{
		Mix: mix, Policy: "me-lreq", Instr: instrPerCore, ME: mes, Seed: memsched.EvalSeed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregate IPC: online %.3f vs statically profiled %.3f\n",
		sumIPC(resOnline), sumIPC(resStatic))
	fmt.Println("\nThe estimator recovers the profiled ordering at runtime, so the")
	fmt.Println("one-time profiling pass the paper assumes can be dropped entirely.")
}

func sumIPC(res memsched.Result) float64 {
	s := 0.0
	for _, c := range res.Cores {
		s += c.IPC
	}
	return s
}

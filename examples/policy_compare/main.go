// policy_compare reproduces a slice of the paper's Figure 2 on one workload:
// it runs the same multiprogrammed mix under every evaluated scheduling
// policy and reports SMT speedups relative to single-core execution, plus
// the gain of each policy over the HF-RF baseline.
//
//	go run ./examples/policy_compare            # defaults to 4MEM-5
//	go run ./examples/policy_compare 8MEM-1     # any Table 3 mix
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"memsched"
)

const instrPerCore = 100_000

func main() {
	ctx := context.Background()
	name := "4MEM-5"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	mix, err := memsched.MixByName(name)
	if err != nil {
		log.Fatal(err)
	}
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}

	// Memory efficiencies from profiling (disjoint instruction stream), and
	// single-core reference IPCs from the evaluation stream — the paper's
	// two-seed methodology.
	_, mes, err := memsched.ProfileAllContext(ctx, apps, instrPerCore, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}
	singles := make([]float64, len(apps))
	for i, a := range apps {
		p, err := memsched.ProfileAppContext(ctx, a, instrPerCore, memsched.EvalSeed)
		if err != nil {
			log.Fatal(err)
		}
		singles[i] = p.IPC
	}

	fmt.Printf("workload %s (%s), %d instructions/core\n\n", mix.Name, mix.Codes, instrPerCore)
	fmt.Printf("%-8s  %-11s  %-9s  %s\n", "policy", "SMT speedup", "vs hf-rf", "avg read latency")

	var base float64
	for _, policy := range []string{"hf-rf", "me", "rr", "lreq", "me-lreq"} {
		res, err := memsched.Run(ctx, memsched.RunSpec{
			Mix: mix, Policy: policy, Instr: instrPerCore, ME: mes, Seed: memsched.EvalSeed})
		if err != nil {
			log.Fatal(err)
		}
		sp, err := memsched.SMTSpeedup(res.IPCs(), singles)
		if err != nil {
			log.Fatal(err)
		}
		if policy == "hf-rf" {
			base = sp
		}
		fmt.Printf("%-8s  %-11.3f  %+8.1f%%  %.0f cycles\n",
			policy, sp, 100*(sp/base-1), res.AvgReadLatency)
	}
}

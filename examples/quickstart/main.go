// Quickstart: run one of the paper's 4-core memory-intensive workloads under
// the ME-LREQ scheduler and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"memsched"
)

func main() {
	ctx := context.Background()
	// 4MEM-1 is wupwise + swim + mgrid + applu (paper Table 3).
	mix, err := memsched.MixByName("4MEM-1")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (optional but faithful to the paper): profile each application
	// alone to measure its memory efficiency, Equation 1. Leaving RunSpec.ME
	// nil instead would fall back to the paper's published Table 2 values.
	apps, err := mix.Apps()
	if err != nil {
		log.Fatal(err)
	}
	profiles, mes, err := memsched.ProfileAllContext(ctx, apps, 100_000, memsched.ProfileSeed)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range profiles {
		fmt.Printf("profiled %-8s IPC=%.3f BW=%.2f GB/s ME=%.3f\n", p.App, p.IPC, p.BWGBs, p.ME)
	}

	// Step 2: run the multiprogrammed mix under ME-LREQ. The context makes
	// the run cancellable mid-simulation (hook it to signal.NotifyContext in
	// a real tool).
	res, err := memsched.Run(ctx, memsched.RunSpec{
		Mix:    mix,
		Policy: "me-lreq",
		Instr:  100_000,
		ME:     mes,
		Seed:   memsched.EvalSeed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s under %s: %d cycles, average read latency %.0f cycles\n",
		mix.Name, res.Policy, res.TotalCycles, res.AvgReadLatency)
	fmt.Printf("DRAM row-buffer hit rate: %.1f%%\n", 100*res.DRAM.HitRate())
	for i, c := range res.Cores {
		fmt.Printf("core %d %-8s IPC=%.3f read latency=%.0f cycles bandwidth=%.2f GB/s\n",
			i, c.App, c.IPC, c.AvgReadLatency, c.BandwidthGBs)
	}
}

// Package memsched is a cycle-level simulator of memory access scheduling
// for multi-core processors, reproducing "Memory Access Scheduling Schemes
// for Systems with Multi-Core Processors" (Zheng, Lin, Zhang, Zhu —
// ICPP 2008).
//
// The library simulates out-of-order cores, a two-level cache hierarchy, and
// a detailed DDR2 memory system whose controller schedules requests with a
// pluggable policy. It ships every policy the paper evaluates — the HF-RF
// baseline (hit-first + read-first), Round-Robin, Least-Request, fixed
// priorities, ME (memory-efficiency) and the paper's contribution ME-LREQ —
// plus the profiling methodology (Equation 1), the SMT-speedup and
// unfairness metrics, and the workloads of Tables 2 and 3.
//
// # Quick start
//
//	mix, _ := memsched.MixByName("4MEM-1")
//	res, err := memsched.Run(context.Background(), memsched.RunSpec{
//		Mix:    mix,
//		Policy: "me-lreq",
//		Instr:  200_000,
//	})
//	if err != nil { ... }
//	fmt.Println(res.AvgReadLatency, res.IPCs())
//
// Run observes context cancellation mid-simulation (polled every
// CancelCheckCycles simulated cycles), so a Ctrl-C or timeout lands within
// microseconds of simulated work rather than after the full run.
//
// On multi-core hosts a run can additionally shard its simulated cores
// across goroutines inside conservatively derived windows
// (RunSpec.ParallelCores / Options.ParallelCores; 0 auto-enables it when
// both the machine and the host have headroom) — Results are identical to
// the serial loop, parallelism is purely a wall-clock knob.
//
// See the examples/ directory for end-to-end programs, including one that
// implements a custom scheduling policy against this package's Policy
// interface.
package memsched

import (
	"context"
	"io"

	"memsched/internal/config"
	"memsched/internal/memctrl"
	"memsched/internal/metrics"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/trace"
	"memsched/internal/workload"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported public surface.
type (
	// Config is the full machine description (paper Table 1 defaults).
	Config = config.Config
	// Options configures one simulation run.
	Options = sim.Options
	// System is an assembled machine.
	System = sim.System
	// Result is the outcome of a run.
	Result = sim.Result
	// RunSpec is the declarative description of one simulation run — the
	// input of Run. Zero-valued optional fields reproduce the behavior of
	// the positional RunMix arguments.
	RunSpec = sim.RunSpec
	// CoreResult is one core's frozen statistics.
	CoreResult = sim.CoreResult
	// Profile is a single-core profiling outcome (Equation 1).
	Profile = sim.Profile
	// OnlineEstimator is the runtime memory-efficiency estimator
	// (the paper's future-work extension; see Options.OnlineME).
	OnlineEstimator = sim.OnlineEstimator
	// App is one synthetic application profile (Table 2).
	App = workload.App
	// Mix is one multiprogrammed workload (Table 3).
	Mix = workload.Mix
	// Class is the MEM/ILP application classification.
	Class = workload.Class
	// TraceParams parameterizes a synthetic instruction stream.
	TraceParams = trace.Params

	// Policy ranks schedulable memory requests; implement it to plug a
	// custom scheduler into the controller (see examples/custom_policy).
	Policy = memctrl.Policy
	// Candidate is a schedulable request, annotated with its row-buffer
	// outcome.
	Candidate = memctrl.Candidate
	// PolicyContext carries the controller state visible to a Policy.
	PolicyContext = memctrl.Context
)

// Classification constants.
const (
	// ILP marks compute-intensive applications.
	ILP = workload.ILP
	// MEM marks memory-intensive applications.
	MEM = workload.MEM
)

// Default seeds; profiling and evaluation use disjoint instruction streams
// (the paper's distinct SimPoint slices).
const (
	ProfileSeed = sim.ProfileSeed
	EvalSeed    = sim.EvalSeed
)

// CancelCheckCycles is the granularity, in simulated cycles, at which a
// running simulation polls its context for cancellation.
const CancelCheckCycles = sim.CancelCheckCycles

// DefaultConfig returns the paper's Table 1 machine for n cores.
func DefaultConfig(n int) Config { return config.Default(n) }

// NewSystem assembles a machine from options.
func NewSystem(opts Options) (*System, error) { return sim.New(opts) }

// NewPolicy constructs a built-in policy by registry name: "fcfs", "hf-rf",
// "rr", "lreq", "me", "me-lreq", or "fix:<order>" (e.g. "fix:3210").
func NewPolicy(name string, cores int) (Policy, error) { return sched.New(name, cores) }

// PolicyNames lists the built-in policy registry names.
func PolicyNames() []string { return sched.Names() }

// Apps returns the 26 synthetic SPEC CPU2000 stand-ins of Table 2.
func Apps() []App { return workload.Apps() }

// AppByCode looks an application up by its Table 2 code letter.
func AppByCode(code byte) (App, error) { return workload.ByCode(code) }

// AppByName looks an application up by its SPEC name.
func AppByName(name string) (App, error) { return workload.ByName(name) }

// LoadApps reads user-defined application profiles from JSON (see the
// internal/workload documentation for the schema).
func LoadApps(r io.Reader) ([]App, error) { return workload.LoadApps(r) }

// Mixes returns the 36 workload mixes of Table 3.
func Mixes() []Mix { return workload.Mixes() }

// MixByName returns a Table 3 workload by name, e.g. "4MEM-1".
func MixByName(name string) (Mix, error) { return workload.MixByName(name) }

// MixesFor filters Table 3 by core count and group ("MEM", "MIX" or "").
func MixesFor(cores int, group string) []Mix { return workload.MixesFor(cores, group) }

// Run assembles a machine from spec and executes it under ctx. Cancellation
// is observed mid-simulation with CancelCheckCycles granularity; a run under
// context.Background() is byte-identical to one under a cancellable context
// that never fires. This is the primary entry point — the pre-context
// wrappers (see deprecated.go) are removal-slated compatibility shims over it.
func Run(ctx context.Context, spec RunSpec) (Result, error) {
	return sim.Run(ctx, spec)
}

// ProfileAppContext measures IPC_single, BW_single and ME for one application
// on a single-core machine (paper Equation 1).
func ProfileAppContext(ctx context.Context, app App, instr uint64, seed uint64) (Profile, error) {
	return sim.ProfileAppContext(ctx, app, instr, seed)
}

// ProfileAllContext profiles every application and returns the ME vector,
// ready to hand to Run via RunSpec.ME.
func ProfileAllContext(ctx context.Context, apps []App, instr uint64, seed uint64) ([]Profile, []float64, error) {
	return sim.ProfileAllContext(ctx, apps, instr, seed)
}

// ClassifyContext fills the profile's perfect-memory classification fields
// (MEM if >15% faster with a perfect memory system).
func ClassifyContext(ctx context.Context, app App, p *Profile, instr uint64, seed uint64) error {
	return sim.ClassifyContext(ctx, app, p, instr, seed)
}

// SMTSpeedup is the paper's throughput metric: sum of per-core
// IPC_multi/IPC_single.
func SMTSpeedup(ipcMulti, ipcSingle []float64) (float64, error) {
	return metrics.SMTSpeedup(ipcMulti, ipcSingle)
}

// Unfairness is max slowdown over min slowdown across cores (Section 5.3).
func Unfairness(ipcMulti, ipcSingle []float64) (float64, error) {
	return metrics.Unfairness(ipcMulti, ipcSingle)
}
